// urlfsim — command-line driver for the reproduction.
//
//   urlfsim identify      [--json] [--seed N] [evasion flags]
//   urlfsim confirm       [--case N | --all] [--json] [--seed N] [flags]
//   urlfsim characterize  --vantage NAME [--runs N] [--json] [--seed N]
//   urlfsim probe         [--json] [--seed N]          (§4.4 category probe)
//   urlfsim scout         --vantage NAME [--product P] [--json]
//   urlfsim proxy-detect  [--json] [--seed N]
//   urlfsim export-scan   [--seed N]                   (banner index JSON)
//
// Evasion flags: --hide-surfaces --strip-branding --disregard-submitter
// Fault flags:   --faults R (per-process injected fault rate)
//                --retries N (transport retry budget w/ simulated backoff)
// Products: bluecoat | smartfilter | netsweeper | websense
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "core/monitor.h"
#include "core/profiler.h"
#include "core/proxy_detect.h"
#include "core/serialize.h"
#include "measure/journal.h"
#include "measure/mechanism.h"
#include "measure/mining.h"
#include "measure/session.h"
#include "scan/serialize.h"
#include "scenarios/campaign.h"
#include "scenarios/monitor.h"
#include "scenarios/paper_world.h"
#include "serve/loop.h"
#include "serve/server.h"

namespace {

using namespace urlf;

struct Options {
  std::string command;
  std::uint64_t seed = scenarios::kPaperSeed;
  bool json = false;
  bool all = false;
  std::optional<int> caseIndex;
  std::optional<std::string> vantage;
  filters::ProductKind product = filters::ProductKind::kSmartFilter;
  int runs = 1;
  int retries = 1;
  int trials = 3;  ///< mechanisms: evidence budget per URL
  int quorum = 1;  ///< campaign: cross-vantage quorum size
  bool hedge = false;  ///< campaign: pacing + deadlines + slow-drip hedging
  bool viaPortal = false;
  scenarios::PaperWorldOptions worldOptions;

  // campaign: write-ahead journal, resume, and injected persistent failures.
  std::optional<std::string> journalPath;
  bool resume = false;
  std::optional<int> breakerThreshold;
  scenarios::OutageSpec outages;

  // monitor: longitudinal re-scan/re-test campaign.
  std::uint64_t monitorHosts = 20000;
  int monitorTicks = 6;
  std::int64_t tickHours = 720;
  scenarios::MonitorMode monitorMode = scenarios::MonitorMode::kIncremental;
  std::size_t threads = 0;
  scenarios::MonitorChurn monitorChurn;
  std::optional<std::string> checkpointPath;

  /// Transport options derived from --retries (applied to every fetch the
  /// selected command performs).
  [[nodiscard]] simnet::FetchOptions fetchOptions() const {
    simnet::FetchOptions fetch;
    fetch.retry.maxAttempts = retries;
    return fetch;
  }
};

std::optional<filters::ProductKind> parseProduct(const std::string& name) {
  if (name == "bluecoat") return filters::ProductKind::kBlueCoat;
  if (name == "smartfilter") return filters::ProductKind::kSmartFilter;
  if (name == "netsweeper") return filters::ProductKind::kNetsweeper;
  if (name == "websense") return filters::ProductKind::kWebsense;
  return std::nullopt;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: urlfsim <identify|confirm|characterize|probe|scout|proxy-detect"
      "|profile|record|export-scan|campaign|monitor|serve|mechanisms>"
      " [options]\n"
      "       urlfsim diff <baseline.json> <current.json>\n"
      "       urlfsim reanalyze <session.json> [--mine]\n"
      "  --seed N            world seed (default %llu)\n"
      "  --json              machine-readable output\n"
      "  --case N            confirm: run only Table 3 row N (0-9)\n"
      "  --all               confirm: run all rows (default)\n"
      "  --vantage NAME      characterize/scout: field vantage point\n"
      "  --product P         scout: bluecoat|smartfilter|netsweeper|websense\n"
      "  --runs N            characterize: passes per URL\n"
      "  --portal            confirm: submit via the vendor Web portal\n"
      "  --faults R          inject transient faults at rate R per process\n"
      "  --interference R    adversarial interference (tarpits, flaky\n"
      "                      enforcement, blockpage mimicry) at rate R\n"
      "  --quorum N          campaign: k-of-n cross-vantage quorum on the\n"
      "                      Table 4 characterizations (default 1 = off)\n"
      "  --hedge             campaign: arm tarpit deadlines, slow-drip\n"
      "                      hedging, and pacing on the quorum path\n"
      "  --mechanisms        attach packet-level blocking (DNS poisoning,\n"
      "                      RST injection, SNI filtering, null-routing)\n"
      "  --trials N          mechanisms: evidence budget per URL (default 3)\n"
      "  --retries N         transport retry budget (simulated backoff)\n"
      "  --hide-surfaces --strip-branding --disregard-submitter\n"
      "  --journal PATH      campaign: write-ahead journal file\n"
      "  --resume            campaign: resume from --journal (config is\n"
      "                      adopted from the journal header)\n"
      "                      monitor: resume from --checkpoint\n"
      "  --hosts N           monitor: streamed background hosts\n"
      "  --ticks N           monitor: churn ticks after the baseline\n"
      "  --tick-hours N      monitor: simulated hours per tick\n"
      "  --mode M            monitor: full|incremental pipeline\n"
      "  --threads N         monitor: worker threads (0 = auto)\n"
      "  --rebrand R         monitor: per-host per-tick rebrand rate\n"
      "  --park R            monitor: per-host per-tick parking rate\n"
      "  --db-churn N        monitor: vendor DB mutations per tick\n"
      "  --checkpoint PATH   monitor: snapshot after every tick\n"
      "  --kill V@DATE       campaign: vantage V dies permanently on DATE\n"
      "  --stop-box B@DATE   campaign: middlebox B silently stops on DATE\n"
      "  --rollback F..U@T   campaign: category DBs revert to date T during\n"
      "                      the window [F, U)\n"
      "  --breaker N         campaign: open circuit after N hard failures\n",
      static_cast<unsigned long long>(scenarios::kPaperSeed));
  return 2;
}

/// Split "name@YYYY-MM-DD" into its two halves.
std::optional<std::pair<std::string, util::CivilDate>> parseNameAtDate(
    const std::string& text) {
  const auto at = text.rfind('@');
  if (at == std::string::npos || at == 0) return std::nullopt;
  const auto date = scenarios::parseCivilDate(text.substr(at + 1));
  if (!date) return std::nullopt;
  return std::make_pair(text.substr(0, at), *date);
}

std::optional<Options> parseArgs(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Options options;
  options.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--journal") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.journalPath = *value;
    } else if (arg == "--kill") {
      const auto value = next();
      if (!value) return std::nullopt;
      const auto parsed = parseNameAtDate(*value);
      if (!parsed) return std::nullopt;
      options.outages.vantageDeaths.push_back({parsed->first, parsed->second});
    } else if (arg == "--stop-box") {
      const auto value = next();
      if (!value) return std::nullopt;
      const auto parsed = parseNameAtDate(*value);
      if (!parsed) return std::nullopt;
      options.outages.middleboxStops.push_back(
          {parsed->first, parsed->second});
    } else if (arg == "--rollback") {
      // FROM..UNTIL@TO, e.g. 2013-04-10..2013-04-25@2013-01-01
      const auto value = next();
      if (!value) return std::nullopt;
      const auto dots = value->find("..");
      const auto at = value->rfind('@');
      if (dots == std::string::npos || at == std::string::npos || at < dots)
        return std::nullopt;
      const auto from = scenarios::parseCivilDate(value->substr(0, dots));
      const auto until =
          scenarios::parseCivilDate(value->substr(dots + 2, at - dots - 2));
      const auto to = scenarios::parseCivilDate(value->substr(at + 1));
      if (!from || !until || !to) return std::nullopt;
      options.outages.rollbacks.push_back({*from, *until, *to});
    } else if (arg == "--breaker") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.breakerThreshold = std::stoi(*value);
    } else if (arg == "--hosts") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.monitorHosts = std::stoull(*value);
    } else if (arg == "--ticks") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.monitorTicks = std::stoi(*value);
    } else if (arg == "--tick-hours") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.tickHours = std::stoll(*value);
    } else if (arg == "--mode") {
      const auto value = next();
      if (!value) return std::nullopt;
      if (*value == "full")
        options.monitorMode = scenarios::MonitorMode::kFull;
      else if (*value == "incremental")
        options.monitorMode = scenarios::MonitorMode::kIncremental;
      else
        return std::nullopt;
    } else if (arg == "--threads") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.threads = static_cast<std::size_t>(std::stoul(*value));
    } else if (arg == "--rebrand") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.monitorChurn.rebrandRate = std::stod(*value);
    } else if (arg == "--park") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.monitorChurn.parkRate = std::stod(*value);
    } else if (arg == "--db-churn") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.monitorChurn.dbMutationsPerTick = std::stoi(*value);
    } else if (arg == "--checkpoint") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.checkpointPath = *value;
    } else if (arg == "--all") {
      options.all = true;
    } else if (arg == "--portal") {
      options.viaPortal = true;
    } else if (arg == "--mechanisms") {
      options.worldOptions.packetMechanisms = true;
    } else if (arg == "--trials") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.trials = std::stoi(*value);
    } else if (arg == "--hide-surfaces") {
      options.worldOptions.hideExternalSurfaces = true;
    } else if (arg == "--strip-branding") {
      options.worldOptions.stripBranding = true;
    } else if (arg == "--disregard-submitter") {
      options.worldOptions.disregardSubmitter = true;
    } else if (arg == "--seed") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.seed = std::stoull(*value);
    } else if (arg == "--case") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.caseIndex = std::stoi(*value);
    } else if (arg == "--runs") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.runs = std::stoi(*value);
    } else if (arg == "--faults") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.worldOptions.faultRate = std::stod(*value);
    } else if (arg == "--interference") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.worldOptions.interferenceRate = std::stod(*value);
    } else if (arg == "--quorum") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.quorum = std::stoi(*value);
    } else if (arg == "--hedge") {
      options.hedge = true;
    } else if (arg == "--retries") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.retries = std::stoi(*value);
    } else if (arg == "--vantage") {
      const auto value = next();
      if (!value) return std::nullopt;
      options.vantage = *value;
    } else if (arg == "--product") {
      const auto value = next();
      if (!value) return std::nullopt;
      const auto product = parseProduct(*value);
      if (!product) return std::nullopt;
      options.product = *product;
    } else {
      return std::nullopt;
    }
  }
  return options;
}

int runIdentify(const Options& options) {
  scenarios::PaperWorld paper(options.seed, options.worldOptions);
  auto& world = paper.world();
  const auto geo = world.buildGeoDatabase(options.worldOptions.geoErrorRate);
  const auto whois = world.buildAsnDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo);
  core::Identifier identifier(world, index,
                              fingerprint::Engine::withBuiltinSignatures(),
                              geo, whois);
  const auto all = identifier.identifyAll();

  if (options.json) {
    std::printf("%s\n", core::toJson(all).dump(2).c_str());
    return 0;
  }
  for (const auto& [product, installations] : all) {
    std::printf("%s: %zu installations\n",
                std::string(filters::toString(product)).c_str(),
                installations.size());
    for (const auto& inst : installations)
      std::printf("  %s:%u  %s  AS%u (%s)\n", inst.ip.toString().c_str(),
                  inst.port, inst.countryAlpha2.c_str(),
                  inst.asn ? inst.asn->asn : 0,
                  inst.asn ? inst.asn->description.c_str() : "?");
  }
  return 0;
}

int runConfirm(const Options& options) {
  scenarios::PaperWorld paper(options.seed, options.worldOptions);
  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());

  report::Json results = report::Json::array();
  const auto& studies = paper.caseStudies();
  for (std::size_t i = 0; i < studies.size(); ++i) {
    if (options.caseIndex && static_cast<std::size_t>(*options.caseIndex) != i)
      continue;
    scenarios::advanceClockTo(paper.world(), studies[i].startDate);
    auto runConfig = studies[i].config;
    runConfig.submitViaHttpPortal = options.viaPortal;
    runConfig.fetchOptions = options.fetchOptions();
    const auto result = confirmer.run(runConfig);
    if (options.json) {
      results.push(core::toJson(result));
    } else {
      std::printf("[%zu] %-18s %-16s %s  %s blocked -> %s\n", i,
                  std::string(filters::toString(result.config.product)).c_str(),
                  result.config.ispName.c_str(), result.dateLabel.c_str(),
                  result.blockedRatio().c_str(),
                  result.confirmed ? "CONFIRMED" : "not confirmed");
    }
  }
  if (options.json) std::printf("%s\n", results.dump(2).c_str());
  return 0;
}

int runCharacterize(const Options& options) {
  if (!options.vantage) return usage();
  scenarios::PaperWorld paper(options.seed, options.worldOptions);
  const auto* vantage = paper.world().findVantage(*options.vantage);
  if (vantage == nullptr) {
    std::fprintf(stderr, "unknown vantage: %s\n", options.vantage->c_str());
    return 1;
  }
  core::Characterizer characterizer(paper.world());
  const auto result = characterizer.characterize(
      *options.vantage, "lab-toronto", paper.globalList(),
      paper.localList(vantage->countryAlpha2), options.runs,
      options.fetchOptions());

  if (options.json) {
    std::printf("%s\n", core::toJson(result).dump(2).c_str());
    return 0;
  }
  std::printf("%s (%s), attributed: %s\n", result.ispName.c_str(),
              result.countryAlpha2.c_str(),
              result.attributedProduct
                  ? std::string(filters::toString(*result.attributedProduct))
                        .c_str()
                  : "(none)");
  for (const auto& [category, cell] : result.cells)
    std::printf("  %-34s %d/%d blocked\n", category.c_str(), cell.blocked,
                cell.tested);
  return 0;
}

int runProbe(const Options& options) {
  scenarios::PaperWorld paper(options.seed, options.worldOptions);
  scenarios::advanceClockTo(paper.world(), {2013, 1, 14});
  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());
  const auto probe = confirmer.probeNetsweeperCategories(
      "field-yemennet", "lab-toronto", options.fetchOptions());

  if (options.json) {
    report::Json out = report::Json::array();
    for (const auto& result : probe) {
      report::Json item = report::Json::object();
      item["catno"] = report::Json::number(std::int64_t{result.category});
      item["category"] = report::Json::string(result.categoryName);
      item["blocked"] = report::Json::boolean(result.blocked);
      out.push(std::move(item));
    }
    std::printf("%s\n", out.dump(2).c_str());
    return 0;
  }
  for (const auto& result : probe)
    if (result.blocked)
      std::printf("blocked: catno %d (%s)\n", result.category,
                  result.categoryName.c_str());
  return 0;
}

int runScout(const Options& options) {
  if (!options.vantage) return usage();
  scenarios::PaperWorld paper(options.seed, options.worldOptions);
  core::CategoryScout scout(paper.world());
  const auto uses = scout.scout(*options.vantage, "lab-toronto",
                                paper.referenceSites(options.product));
  if (options.json) {
    report::Json out = report::Json::array();
    for (const auto& use : uses) out.push(core::toJson(use));
    std::printf("%s\n", out.dump(2).c_str());
    return 0;
  }
  for (const auto& use : uses)
    std::printf("%-20s %d/%d blocked -> %s\n", use.categoryName.c_str(),
                use.blocked, use.tested,
                use.inUse() ? "ENFORCED" : "not enforced");
  return 0;
}

int runProxyDetect(const Options& options) {
  scenarios::PaperWorld paper(options.seed, options.worldOptions);
  core::ProxyDetector detector(paper.world());
  report::Json out = report::Json::object();
  for (const auto& vantage : paper.world().vantages()) {
    if (vantage->isLab()) continue;
    const auto evidence =
        detector.detect(vantage->name, "lab-toronto", paper.echoUrl());
    if (options.json) {
      out[vantage->name] = core::toJson(evidence);
    } else {
      std::printf("%-18s %s%s\n", vantage->name.c_str(),
                  evidence.proxyDetected() ? "proxy detected" : "clean path",
                  evidence.productHint ? (" [" + *evidence.productHint + "]")
                                             .c_str()
                                       : "");
    }
  }
  if (options.json) std::printf("%s\n", out.dump(2).c_str());
  return 0;
}

int runDiff(const Options& options, const std::string& baselinePath,
            const std::string& currentPath) {
  auto readFile = [](const std::string& path) -> std::optional<std::string> {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return std::nullopt;
    std::string out;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0)
      out.append(buffer, n);
    std::fclose(file);
    return out;
  };

  const auto baselineText = readFile(baselinePath);
  const auto currentText = readFile(currentPath);
  if (!baselineText || !currentText) {
    std::fprintf(stderr, "diff: cannot read scan files\n");
    return 1;
  }
  auto baselineRecords = scan::importRecords(*baselineText);
  auto currentRecords = scan::importRecords(*currentText);
  if (!baselineRecords || !currentRecords) {
    std::fprintf(stderr, "diff: malformed scan data\n");
    return 1;
  }

  // Offline analysis: the world only supplies geo/whois context; all
  // validation is passive (stored banners, no live probes).
  scenarios::PaperWorld paper(options.seed, options.worldOptions);
  const auto geo = paper.world().buildGeoDatabase();
  const auto whois = paper.world().buildAsnDatabase();
  const auto engine = fingerprint::Engine::withBuiltinSignatures();

  const auto baselineIndex =
      scan::BannerIndex::fromRecords(std::move(*baselineRecords));
  const auto currentIndex =
      scan::BannerIndex::fromRecords(std::move(*currentRecords));
  core::Identifier fromBaseline(paper.world(), baselineIndex, engine, geo,
                                whois);
  core::Identifier fromCurrent(paper.world(), currentIndex, engine, geo,
                               whois);
  // Keep both runs alive: the diff's persisted/relocated entries are
  // pointers into them.
  const auto baselineRun = fromBaseline.identifyAllPassive();
  const auto currentRun = fromCurrent.identifyAllPassive();
  const auto diffs = core::diffAll(baselineRun, currentRun);

  for (const auto& [product, diff] : diffs) {
    if (diff.empty()) continue;
    std::printf("%s:\n", std::string(filters::toString(product)).c_str());
    for (const auto& inst : diff.appeared)
      std::printf("  + appeared  %s (%s)\n", inst.ip.toString().c_str(),
                  inst.countryAlpha2.c_str());
    for (const auto& inst : diff.vanished)
      std::printf("  - vanished  %s (%s)\n", inst.ip.toString().c_str(),
                  inst.countryAlpha2.c_str());
    for (const auto& [before, after] : diff.relocated)
      std::printf("  ~ relocated %s (%s -> %s)\n",
                  after->ip.toString().c_str(), before->countryAlpha2.c_str(),
                  after->countryAlpha2.c_str());
  }
  return 0;
}

std::optional<std::string> readWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string out;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0)
    out.append(buffer, n);
  std::fclose(file);
  return out;
}

int runRecord(const Options& options) {
  // Record a full measurement session (global + local lists, full wire
  // traces) from a field vantage — the collect-first half of §5.
  if (!options.vantage) return usage();
  scenarios::PaperWorld paper(options.seed, options.worldOptions);
  auto& world = paper.world();
  const auto* vantage = world.findVantage(*options.vantage);
  if (vantage == nullptr) {
    std::fprintf(stderr, "unknown vantage: %s\n", options.vantage->c_str());
    return 1;
  }
  measure::Client client(world, *vantage, *world.findVantage("lab-toronto"),
                         options.fetchOptions());
  std::vector<std::string> urls = paper.globalList().urls();
  for (const auto& url : paper.localList(vantage->countryAlpha2).urls())
    urls.push_back(url);
  const auto session = client.testList(urls);
  std::printf("%s\n", measure::exportSession(session, 2).c_str());
  return 0;
}

int runReanalyze(const std::string& path, bool mine) {
  // The analyze-later half of §5: reload a recorded session, re-classify
  // with the current pattern library, optionally mine pattern candidates
  // from the blocked traces.
  const auto text = readWholeFile(path);
  if (!text) {
    std::fprintf(stderr, "reanalyze: cannot read %s\n", path.c_str());
    return 1;
  }
  auto session = measure::importSession(*text);
  if (!session) {
    std::fprintf(stderr, "reanalyze: malformed session\n");
    return 1;
  }
  const auto reclassified = measure::reclassify(
      std::move(*session), measure::builtinBlockPagePatterns());

  std::map<std::string, int> verdictCounts;
  std::map<filters::ProductKind, int> productCounts;
  for (const auto& result : reclassified) {
    ++verdictCounts[std::string(measure::toString(result.verdict))];
    if (result.blockPage) ++productCounts[result.blockPage->product];
  }
  for (const auto& [verdict, count] : verdictCounts)
    std::printf("%-14s %d\n", verdict.c_str(), count);
  for (const auto& [product, count] : productCounts)
    std::printf("attributed to %s: %d\n",
                std::string(filters::toString(product)).c_str(), count);

  if (mine) {
    for (const auto& [product, count] : productCounts) {
      const auto pattern =
          measure::minePatternFromResults(product, reclassified);
      if (pattern)
        std::printf("mined candidate for %s: /%s/\n",
                    std::string(filters::toString(product)).c_str(),
                    pattern->regex.substr(0, 96).c_str());
    }
  }
  return 0;
}

int runProfile(const Options& options) {
  if (!options.vantage) return usage();
  scenarios::PaperWorld paper(options.seed, options.worldOptions);
  auto& world = paper.world();
  const auto* vantage = world.findVantage(*options.vantage);
  if (vantage == nullptr) {
    std::fprintf(stderr, "unknown vantage: %s\n", options.vantage->c_str());
    return 1;
  }

  const auto geo = world.buildGeoDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo);

  core::ProfilerSources sources;
  sources.index = &index;
  sources.geo = geo;
  sources.whois = world.buildAsnDatabase();
  for (const auto product : filters::allProducts())
    sources.referenceSites[product] = paper.referenceSites(product);
  sources.globalList = &paper.globalList();
  sources.localList = &paper.localList(vantage->countryAlpha2);
  sources.echoUrl = paper.echoUrl();
  sources.characterizationRuns = options.runs;
  sources.fetchOptions = options.fetchOptions();

  const auto profile =
      core::profileNetwork(world, *options.vantage, "lab-toronto", sources);

  if (options.json) {
    std::printf("%s\n", profile.toJson().dump(2).c_str());
    return 0;
  }
  std::printf("network profile: %s (%s)\n", profile.ispName.c_str(),
              profile.countryAlpha2.c_str());
  std::printf("installations geolocated in-country: %zu\n",
              profile.installationsInCountry.size());
  for (const auto& inst : profile.installationsInCountry)
    std::printf("  %s at %s\n",
                std::string(filters::toString(inst.product)).c_str(),
                inst.ip.toString().c_str());
  if (profile.proxyEvidence)
    std::printf("transparent proxy on path: %s%s\n",
                profile.proxyEvidence->proxyDetected() ? "yes" : "no",
                profile.proxyEvidence->productHint
                    ? (" (" + *profile.proxyEvidence->productHint + ")")
                          .c_str()
                    : "");
  for (const auto& [product, uses] : profile.categoryUse) {
    for (const auto& use : uses)
      if (use.inUse())
        std::printf("enforces %s category \"%s\"\n",
                    std::string(filters::toString(product)).c_str(),
                    use.categoryName.c_str());
  }
  std::printf("censored ONI categories:");
  for (const auto& [category, cell] : profile.characterization.cells)
    if (cell.blocked > 0) std::printf(" [%s]", category.c_str());
  std::printf("\n");
  return 0;
}

int runMechanisms(const Options& options) {
  // Demo of the §4.8 mechanism classifier: build the paper world with the
  // packet-level mechanisms attached and classify each country's local list
  // from its field vantage.
  auto worldOptions = options.worldOptions;
  worldOptions.packetMechanisms = true;
  scenarios::PaperWorld paper(options.seed, worldOptions);
  auto& world = paper.world();

  measure::MechanismOptions mechanismOptions;
  mechanismOptions.trialBudget = options.trials;
  mechanismOptions.fetchOptions = options.fetchOptions();

  report::Json all = report::Json::array();
  const std::pair<const char*, const char*> vantages[] = {
      {"field-yemennet", "YE"},
      {"field-ooredoo", "QA"},
      {"field-du", "AE"},
      {"field-etisalat", "AE"},
  };
  for (const auto& [vantageName, alpha2] : vantages) {
    if (options.vantage && *options.vantage != vantageName) continue;
    const auto* field = world.findVantage(vantageName);
    const auto* lab = world.findVantage("lab-toronto");
    measure::MechanismClassifier classifier(world, *field, *lab,
                                            mechanismOptions);
    std::vector<std::string> urls;
    for (const auto& entry : paper.localList(alpha2).entries)
      urls.push_back(entry.url);
    const auto verdicts = classifier.classifyList(urls);
    if (!options.json)
      std::printf("%s (budget %d):\n", vantageName, options.trials);
    for (const auto& verdict : verdicts) {
      if (options.json) {
        report::Json row = measure::toJson(verdict);
        row["vantage"] = report::Json::string(vantageName);
        all.push(std::move(row));
      } else {
        std::printf("  %-34s %-16s conf %.2f trials %d%s\n",
                    verdict.url.c_str(),
                    std::string(toString(verdict.mechanism)).c_str(),
                    verdict.confidence, verdict.trials,
                    verdict.residualObserved ? "  [residual]"
                    : verdict.esniBypassed   ? "  [esni-open]"
                                             : "");
      }
    }
  }
  if (options.json) std::printf("%s\n", all.dump(2).c_str());
  return 0;
}

int runCampaign(const Options& options) {
  // Full paper campaign (Table 3 + §4.4 probe + Table 4), optionally
  // journaled for crash tolerance. On --resume, every configuration knob is
  // adopted from the journal header: the journal is self-contained, and the
  // command line only supplies the file.
  scenarios::CampaignOptions campaign;
  std::optional<measure::CampaignJournal> journal;

  if (options.resume) {
    if (!options.journalPath) {
      std::fprintf(stderr, "urlfsim: --resume requires --journal PATH\n");
      return 1;
    }
    auto opened = measure::CampaignJournal::open(*options.journalPath);
    if (!opened) {
      std::fprintf(stderr, "urlfsim: %s\n", opened.error().c_str());
      return 1;
    }
    auto adopted =
        scenarios::CampaignOptions::fromHeaderJson(opened->header());
    if (!adopted) {
      std::fprintf(stderr, "urlfsim: cannot resume: %s\n",
                   adopted.error().c_str());
      return 1;
    }
    campaign = std::move(adopted.value());
    journal = std::move(opened.value());
    const auto& stats = journal->stats();
    std::fprintf(stderr,
                 "resuming: %zu journaled record(s)%s, %zu torn byte(s) "
                 "discarded\n",
                 stats.loadedRecords, stats.tornTail ? " (torn tail)" : "",
                 stats.droppedBytes);
  } else {
    campaign.seed = options.seed;
    campaign.world = options.worldOptions;
    campaign.outages = options.outages;
    if (options.quorum >= 2) {
      campaign.quorum = options.quorum;
      campaign.hedge = options.hedge;
      // The quorum draws on "-q<i>" clones of each field vantage; make sure
      // the world builds enough of them.
      campaign.world.quorumVantages =
          std::max(campaign.world.quorumVantages, options.quorum - 1);
    }
    if (options.breakerThreshold) {
      campaign.healthEnabled = true;
      campaign.breaker.failureThreshold = *options.breakerThreshold;
    }
    if (options.journalPath)
      journal = measure::CampaignJournal::start(*options.journalPath,
                                                campaign.headerJson());
  }

  scenarios::CampaignReport result;
  try {
    result = scenarios::runPaperCampaign(
        campaign, journal ? &journal.value() : nullptr);
  } catch (const measure::JournalDivergence& e) {
    std::fprintf(stderr, "urlfsim: cannot resume: %s\n", e.what());
    return 1;
  }

  if (options.json) {
    std::printf("%s\n", result.toJson().dump(2).c_str());
    return 0;
  }
  std::printf("campaign digest: %s\n", result.digestHex().c_str());
  std::printf("confirmed case studies: %d\n", result.confirmedCaseStudies);
  std::printf("probe blocked categories: %d\n",
              result.probeBlockedCategories);
  std::printf("table 4 blocked cells: %d\n", result.table4Blocked);
  if (result.degradedRows > 0)
    std::printf("degraded rows (vantage quarantined): %d\n",
                result.degradedRows);
  for (const auto& [vantage, state] : result.vantageHealth)
    std::printf("  breaker %-18s %s\n", vantage.c_str(),
                std::string(measure::toString(state)).c_str());
  return 0;
}

int runMonitorCommand(const Options& options) {
  // Longitudinal monitoring (DESIGN.md §4.7): a resident campaign re-runs
  // scan → identify → re-test each tick, reporting what changed. Fresh runs
  // execute the baseline plus --ticks churn ticks; --resume picks a
  // checkpointed campaign back up (config adopted from the checkpoint
  // header, --ticks further ticks are executed).
  std::unique_ptr<scenarios::MonitorSession> session;
  if (options.resume) {
    if (!options.checkpointPath) {
      std::fprintf(stderr, "urlfsim: --resume requires --checkpoint PATH\n");
      return 1;
    }
    auto resumed = scenarios::MonitorSession::resume(
        *options.checkpointPath, options.monitorMode, options.threads);
    if (!resumed) {
      std::fprintf(stderr, "urlfsim: %s\n", resumed.error().c_str());
      return 1;
    }
    session = std::move(resumed.value());
    std::fprintf(stderr, "resuming at tick %d (%s mode)\n", session->tick(),
                 std::string(toString(options.monitorMode)).c_str());
  } else {
    scenarios::MonitorOptions monitor;
    monitor.seed = options.seed;
    monitor.world = options.worldOptions;
    monitor.streamHosts = options.monitorHosts;
    monitor.ticks = options.monitorTicks;
    monitor.tickHours = options.tickHours;
    monitor.churn = options.monitorChurn;
    monitor.mode = options.monitorMode;
    monitor.threads = options.threads;
    if (options.breakerThreshold) {
      monitor.healthEnabled = true;
      monitor.breaker.failureThreshold = *options.breakerThreshold;
    }
    session = scenarios::MonitorSession::create(monitor);
  }

  const int firstTick = session->tick() + 1;
  const int lastTick = options.resume
                           ? session->tick() + options.monitorTicks
                           : options.monitorTicks;
  report::Json ticksJson = report::Json::array();
  for (int t = firstTick; t <= lastTick; ++t) {
    const auto tick = session->runTick();
    if (options.checkpointPath)
      session->writeCheckpoint(*options.checkpointPath);
    if (options.json) {
      ticksJson.push(tick.toJson());
      continue;
    }
    std::printf(
        "tick %2d (t+%5lldh): +%d -%d ~%d installations, %d verdict "
        "flip(s), %zu/%zu URLs fetched, %zu/%zu cells rebuilt, digest %s\n",
        tick.tick, static_cast<long long>(tick.atHours), tick.newlyConfirmed,
        tick.decommissioned, tick.relocated, tick.verdictFlips,
        tick.urlsTested, tick.urlsTested + tick.urlsReused, tick.cellsRebuilt,
        tick.cellCount, tick.digestHex().c_str());
    for (const auto& note : tick.notes)
      std::printf("    %s\n", note.c_str());
  }

  if (options.json) {
    report::Json out = report::Json::object();
    out["mode"] =
        report::Json::string(std::string(toString(options.monitorMode)));
    out["ticks"] = std::move(ticksJson);
    out["chain_digest"] = report::Json::string(
        scenarios::TickReport{.digest = session->chainDigest()}.digestHex());
    std::printf("%s\n", out.dump(2).c_str());
  } else {
    std::printf("chain digest: %016llx\n",
                static_cast<unsigned long long>(session->chainDigest()));
    if (options.checkpointPath)
      std::printf("checkpoint: %s (tick %d)\n",
                  options.checkpointPath->c_str(), session->tick());
  }
  return 0;
}

int runExportScan(const Options& options) {
  scenarios::PaperWorld paper(options.seed, options.worldOptions);
  const auto geo = paper.world().buildGeoDatabase();
  scan::BannerIndex index;
  index.crawl(paper.world(), geo);
  std::printf("%s\n", scan::exportRecords(index.records(), 2).c_str());
  return 0;
}

int runServe(const Options& options) {
  // Resident campaign server demo (DESIGN.md §4.6): spin up the server and
  // its event loop, then drive it the way tenants would — two concurrent
  // campaigns over the wire format, queries before and after a live
  // recategorization — and finish with the server's own status report.
  // Exits 1 if any session misbehaves or a digest disagrees with solo.
  scenarios::CampaignOptions base;
  base.seed = options.seed;
  base.world = options.worldOptions;
  const std::string soloDigest = scenarios::runPaperCampaign(base).digestHex();

  serve::ServerConfig config;
  config.workers = 4;
  config.maxQueued = 8;
  serve::CampaignServer server(config);
  server.addSnapshot("paper", base);
  serve::ServerLoop loop(server);

  auto post = [](const std::string& path, const report::Json& body) {
    http::Request request;
    request.method = "POST";
    request.url = *net::Url::parse("http://campaigns.sim" + path);
    request.body = body.dump();
    return request;
  };
  auto field = [](const http::Response& response, const char* name) {
    const auto body = report::Json::parse(response.body);
    if (!body) return std::string("<unparseable>");
    const auto* value = body->find(name);
    if (value == nullptr) return std::string("<missing>");
    if (value->asString()) return *value->asString();
    return value->dump();
  };

  report::Json campaign = report::Json::object();
  campaign["kind"] = report::Json::string("campaign");
  campaign["snapshot"] = report::Json::string("paper");

  report::Json query = report::Json::object();
  query["kind"] = report::Json::string("query");
  query["snapshot"] = report::Json::string("paper");
  query["vantage"] = report::Json::string("field-bayanat");
  query["date"] = report::Json::string("2013-05-06");
  report::Json urls = report::Json::array();
  urls.push(report::Json::string("http://humanrightsmonitor.org/"));
  query["urls"] = std::move(urls);

  report::Json edit = report::Json::object();
  edit["snapshot"] = report::Json::string("paper");
  edit["product"] = report::Json::string("McAfee SmartFilter");
  edit["host"] = report::Json::string("humanrightsmonitor.org");
  edit["category"] = report::Json::string("Pornography");

  // Two tenants race full campaigns while a third runs the cheap query.
  auto alpha = loop.connect();
  auto beta = loop.connect();
  auto gamma = loop.connect();
  alpha->sendRequest(post("/v1/session", campaign));
  beta->sendRequest(post("/v1/session", campaign));
  const auto preEdit = gamma->roundTrip(post("/v1/session", query));
  const auto fromAlpha = alpha->awaitResponse();
  const auto fromBeta = beta->awaitResponse();

  bool ok = true;
  for (const auto* result : {&fromAlpha, &fromBeta}) {
    if (!result->ok() || result->value().statusCode != 200 ||
        field(result->value(), "digest") != soloDigest) {
      std::fprintf(stderr, "urlfsim: campaign session diverged from solo\n");
      ok = false;
    }
  }
  if (!preEdit.ok() || preEdit.value().statusCode != 200) {
    std::fprintf(stderr, "urlfsim: query session failed\n");
    ok = false;
  }

  // Live recategorization: the verdict flips for sessions that start later.
  const auto edited = gamma->roundTrip(post("/v1/admin/recategorize", edit));
  const auto postEdit = gamma->roundTrip(post("/v1/session", query));
  if (!edited.ok() || edited.value().statusCode != 200 || !postEdit.ok() ||
      postEdit.value().statusCode != 200) {
    std::fprintf(stderr, "urlfsim: recategorization round failed\n");
    ok = false;
  }

  http::Request status;
  status.url = *net::Url::parse("http://campaigns.sim/v1/status");
  const auto statusResponse = gamma->roundTrip(status);
  loop.stop();

  if (options.json) {
    report::Json out = report::Json::object();
    out["solo_digest"] = report::Json::string(soloDigest);
    out["campaign_digests_equal"] = report::Json::boolean(ok);
    if (preEdit.ok())
      out["query_before_edit"] = *report::Json::parse(preEdit.value().body);
    if (postEdit.ok())
      out["query_after_edit"] = *report::Json::parse(postEdit.value().body);
    if (statusResponse.ok())
      out["status"] = *report::Json::parse(statusResponse.value().body);
    std::printf("%s\n", out.dump(2).c_str());
  } else {
    std::printf("solo digest          %s\n", soloDigest.c_str());
    std::printf("campaign sessions    2 concurrent, digests %s\n",
                ok ? "identical" : "DIVERGED");
    if (preEdit.ok() && postEdit.ok())
      std::printf("query flip           epoch %s -> epoch %s after "
                  "recategorization\n",
                  field(preEdit.value(), "epoch").c_str(),
                  field(postEdit.value(), "epoch").c_str());
    if (statusResponse.ok())
      std::printf("server status        %s\n",
                  statusResponse.value().body.c_str());
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // `diff` and `reanalyze` take positional file arguments.
  if (argc >= 2 && std::strcmp(argv[1], "diff") == 0) {
    if (argc != 4) return usage();
    return runDiff(Options{}, argv[2], argv[3]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "reanalyze") == 0) {
    if (argc < 3 || argc > 4) return usage();
    const bool mine = argc == 4 && std::strcmp(argv[3], "--mine") == 0;
    return runReanalyze(argv[2], mine);
  }
  const auto options = parseArgs(argc, argv);
  if (!options) return usage();
  if (options->command == "identify") return runIdentify(*options);
  if (options->command == "confirm") return runConfirm(*options);
  if (options->command == "characterize") return runCharacterize(*options);
  if (options->command == "probe") return runProbe(*options);
  if (options->command == "scout") return runScout(*options);
  if (options->command == "proxy-detect") return runProxyDetect(*options);
  if (options->command == "profile") return runProfile(*options);
  if (options->command == "record") return runRecord(*options);
  if (options->command == "export-scan") return runExportScan(*options);
  if (options->command == "campaign") return runCampaign(*options);
  if (options->command == "monitor") return runMonitorCommand(*options);
  if (options->command == "serve") return runServe(*options);
  if (options->command == "mechanisms") return runMechanisms(*options);
  return usage();
}
