#include "simnet/outage.h"

#include <algorithm>

#include "util/hash.h"

namespace urlf::simnet {

bool OutagePlan::vantageDead(const VantagePoint& vantage,
                             util::SimTime now) const {
  const auto it = vantageDeaths_.find(vantage.name);
  return it != vantageDeaths_.end() && now >= it->second;
}

std::optional<util::SimTime> OutagePlan::deathTime(
    const std::string& vantageName) const {
  const auto it = vantageDeaths_.find(vantageName);
  if (it == vantageDeaths_.end()) return std::nullopt;
  return it->second;
}

void OutagePlan::scheduleSeededDeaths(std::span<const std::string> candidates,
                                      std::size_t count, util::SimTime from,
                                      util::SimTime until) {
  if (candidates.empty() || until <= from) return;
  count = std::min(count, candidates.size());

  // Keyed draws, one per candidate: rank candidates by their draw and kill
  // the `count` lowest. Stable for a given (seed, candidate set) regardless
  // of call order elsewhere — the same discipline FaultPlan uses.
  std::vector<std::pair<std::uint64_t, std::size_t>> ranked;
  ranked.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::uint64_t key = seed_;
    util::splitmix64Next(key);
    key ^= util::fnv1a64(candidates[i]);
    std::uint64_t cursor = key;
    ranked.emplace_back(util::splitmix64Next(cursor), i);
  }
  std::sort(ranked.begin(), ranked.end());

  const auto window = static_cast<std::uint64_t>(until - from);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t i = ranked[k].second;
    std::uint64_t key = ranked[k].first;
    const std::int64_t offset =
        static_cast<std::int64_t>(util::splitmix64Next(key) % window);
    killVantage(candidates[i], from + offset);
  }
}

bool OutagePlan::middleboxStopped(const Middlebox& box,
                                  util::SimTime now) const {
  const auto it = middleboxStops_.find(box.name());
  return it != middleboxStops_.end() && now >= it->second;
}

void OutagePlan::addDbRollback(util::SimTime from, util::SimTime until,
                               util::SimTime rollbackTo) {
  rollbacks_.push_back({from, until, rollbackTo});
  std::sort(rollbacks_.begin(), rollbacks_.end(),
            [](const Rollback& a, const Rollback& b) { return a.from < b.from; });
}

util::SimTime OutagePlan::policyTime(util::SimTime now) const {
  for (const Rollback& window : rollbacks_)
    if (now >= window.from && now < window.until) return window.rollbackTo;
  return now;
}

}  // namespace urlf::simnet
