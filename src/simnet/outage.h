#ifndef URLF_SIMNET_OUTAGE_H
#define URLF_SIMNET_OUTAGE_H

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "simnet/isp.h"
#include "simnet/middlebox.h"
#include "util/clock.h"

namespace urlf::simnet {

/// The persistent-failure sibling of FaultPlan. Where FaultPlan models
/// transient substrate noise (per-attempt Bernoulli flaps that a retry
/// budget rides out), OutagePlan models things that do NOT come back within
/// a campaign:
///
///  * permanent vantage death — an in-country tester drops off the network
///    for good (ICLab-style vantage churn); every later fetch from that
///    vantage times out,
///  * middlebox silent-stop — a filtering device ceases intercepting
///    mid-campaign (fails open): submitted sites stop being blocked even
///    though the vendor reviewed them,
///  * category-DB rollback windows — the deployment's policy view reverts
///    to an earlier feed date for a bounded window (a botched vendor-feed
///    update), then recovers.
///
/// Everything is a pure function of (plan state, simulated now), so installing
/// a plan keeps the world deterministic and thread-count independent, and
/// verdict memoization (keyed on the clock) stays valid.
class OutagePlan {
 public:
  explicit OutagePlan(std::uint64_t seed = 0) : seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // --- permanent vantage death -------------------------------------------

  /// From `at` onward, every fetch from the named vantage times out.
  void killVantage(const std::string& vantageName, util::SimTime at) {
    vantageDeaths_[vantageName] = at;
  }

  [[nodiscard]] bool vantageDead(const VantagePoint& vantage,
                                 util::SimTime now) const;
  [[nodiscard]] std::optional<util::SimTime> deathTime(
      const std::string& vantageName) const;

  /// Seeded churn: pick `count` distinct candidates (keyed draws off the
  /// plan seed — stable for a given candidate list) and schedule each death
  /// at a uniformly drawn hour in [from, until).
  void scheduleSeededDeaths(std::span<const std::string> candidates,
                            std::size_t count, util::SimTime from,
                            util::SimTime until);

  // --- middlebox silent-stop ---------------------------------------------

  /// From `at` onward, middleboxes named `boxName` neither intercept nor
  /// post-process traffic (the filter fails open, silently).
  void stopMiddlebox(const std::string& boxName, util::SimTime at) {
    middleboxStops_[boxName] = at;
  }

  [[nodiscard]] bool middleboxStopped(const Middlebox& box,
                                      util::SimTime now) const;

  // --- category-DB rollback windows --------------------------------------

  /// During [from, until), every middlebox policy decision sees the world as
  /// of `rollbackTo` instead of `now` (categorizeAsOf and friends consult
  /// the intercept-context clock). Windows may not overlap; the earliest
  /// matching window wins if they do.
  void addDbRollback(util::SimTime from, util::SimTime until,
                     util::SimTime rollbackTo);

  /// The policy-effective time the middlebox chain should see at `now`.
  [[nodiscard]] util::SimTime policyTime(util::SimTime now) const;

  [[nodiscard]] bool empty() const {
    return vantageDeaths_.empty() && middleboxStops_.empty() &&
           rollbacks_.empty();
  }

 private:
  struct Rollback {
    util::SimTime from;
    util::SimTime until;
    util::SimTime rollbackTo;
  };

  std::uint64_t seed_;
  std::map<std::string, util::SimTime> vantageDeaths_;  ///< name -> death
  std::map<std::string, util::SimTime> middleboxStops_; ///< name -> stop
  std::vector<Rollback> rollbacks_;                     ///< sorted by from
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_OUTAGE_H
