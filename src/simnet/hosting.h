#ifndef URLF_SIMNET_HOSTING_H
#define URLF_SIMNET_HOSTING_H

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/origin_server.h"
#include "simnet/world.h"

namespace urlf::simnet {

/// What a freshly created test domain serves — the content profiles the
/// paper's confirmation experiments used (§4.3, §4.4).
enum class ContentProfile {
  kGlypeProxy,  ///< Glype proxy script as the index page (UAE experiment)
  kAdultImage,  ///< an adult image at "/" plus a benign image at /benign.jpg
                ///< (Saudi experiment; testers fetch only the benign file)
  kBenign,      ///< an innocuous placeholder page
  kNews,        ///< an independent-news-looking page
};

[[nodiscard]] std::string_view toString(ContentProfile profile);
/// The ground-truth content label stored on the index page of each profile.
[[nodiscard]] std::string_view contentLabel(ContentProfile profile);

/// A domain created by the hosting provider.
struct HostedDomain {
  std::string hostname;
  net::Ipv4Addr address;
  ContentProfile profile = ContentProfile::kBenign;
  OriginServer* server = nullptr;
};

/// A commercial hosting company inside the simulated Internet.
///
/// The confirmation methodology needs fresh, attacker-controlled,
/// never-categorized domains ("two random non-profane words registered with
/// the .info TLD", §4.3). The provider allocates addresses from its AS,
/// registers DNS, and serves the requested content profile.
class HostingProvider {
 public:
  /// `asn` must already exist in the world (the provider's network).
  HostingProvider(World& world, std::uint32_t asn);

  /// A fresh "word1word2.info"-style name, unique within this provider.
  [[nodiscard]] std::string freshDomainName();

  /// Create, bind, and DNS-register a domain serving `profile`.
  HostedDomain createDomain(const std::string& hostname, ContentProfile profile);

  /// Convenience: fresh name + createDomain.
  HostedDomain createFreshDomain(ContentProfile profile);

  /// Replace the index page with a benign one (the paper removed the adult
  /// image promptly after the experiment, §4.6).
  void sanitizeDomain(const HostedDomain& domain);

  /// Remove DNS and the binding entirely.
  void teardownDomain(const HostedDomain& domain);

  [[nodiscard]] std::uint32_t asn() const { return asn_; }

 private:
  World* world_;
  std::uint32_t asn_;
  util::Rng nameRng_;
  std::vector<std::string> issued_;
};

/// Build the page set for a content profile (exposed for tests).
[[nodiscard]] Page indexPageFor(ContentProfile profile,
                                const std::string& hostname);

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_HOSTING_H
