#ifndef URLF_SIMNET_ORIGIN_SERVER_H
#define URLF_SIMNET_ORIGIN_SERVER_H

#include <map>
#include <optional>
#include <string>

#include "simnet/endpoint.h"

namespace urlf::simnet {

/// One page served by an origin server.
struct Page {
  std::string title;
  std::string body;                     ///< inner-body HTML
  std::string contentType = "text/html";
  /// Ground-truth content label (e.g. "proxy-script", "adult-image",
  /// "news"); used by scenario builders to seed vendor databases and by the
  /// evaluation to score classification. Free-form, not consulted by the
  /// methodology code.
  std::string contentLabel = "benign";
};

/// A plain Web server hosting a small set of pages. Unknown paths yield 404.
class OriginServer : public HttpEndpoint {
 public:
  explicit OriginServer(std::string hostname,
                        std::string serverHeader = "Apache/2.2.22 (Unix)")
      : hostname_(std::move(hostname)), serverHeader_(std::move(serverHeader)) {}

  /// Install or replace a page at an absolute path ("/", "/img/pic1.jpg"...).
  void setPage(std::string path, Page page);

  /// When set, any path not explicitly installed is answered with this page
  /// instead of 404 (used e.g. for category-test hosts).
  void setCatchAll(Page page) { catchAll_ = std::move(page); }

  [[nodiscard]] const std::string& hostname() const { return hostname_; }
  [[nodiscard]] const Page* findPage(const std::string& path) const;

  http::Response handle(const http::Request& request, util::SimTime now) override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::string hostname_;
  std::string serverHeader_;
  std::map<std::string, Page> pages_;
  std::optional<Page> catchAll_;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_ORIGIN_SERVER_H
