#ifndef URLF_SIMNET_PACKET_FILTER_H
#define URLF_SIMNET_PACKET_FILTER_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/message.h"
#include "net/ipv4.h"
#include "simnet/flow.h"
#include "util/clock.h"

namespace urlf::simnet {

class Isp;

/// Context handed to a packet filter for each wire event. Unlike the HTTP
/// middlebox InterceptContext there is no RNG here: every packet-level
/// decision in the simulator is a pure function of (event, now, flow-table
/// state), which is what keeps mechanism-classification experiments
/// reproducible at any thread count.
struct PacketContext {
  util::SimTime now;
  const Isp* isp = nullptr;      ///< the ISP whose packet chain is executing
  std::string vantageName;       ///< subscriber identity for flow keying
  FlowTable* flows = nullptr;    ///< shared conntrack (never null in use)
};

/// What an on-path device answered a subscriber's DNS query with.
struct DnsTamper {
  enum class Kind {
    kNxdomain,  ///< forged empty answer — client sees NXDOMAIN
    kForged,    ///< forged A record — client connects to `answer`
  };
  Kind kind = Kind::kNxdomain;
  net::Ipv4Addr answer;  ///< meaningful only for kForged

  static DnsTamper nxdomain() { return {Kind::kNxdomain, {}}; }
  static DnsTamper forged(net::Ipv4Addr a) { return {Kind::kForged, a}; }
};

/// How a packet filter terminated a flow when it did not let it pass.
struct FlowKill {
  enum class Kind {
    kReset,   ///< injected RST/FIN — client sees connection reset
    kDrop,    ///< flow blackholed — client sees a timeout
    kRefuse,  ///< forged RST on the SYN — client sees connection refused
  };
  Kind kind = Kind::kReset;

  static FlowKill reset() { return {Kind::kReset}; }
  static FlowKill drop() { return {Kind::kDrop}; }
  static FlowKill refuse() { return {Kind::kRefuse}; }
};

/// What the wire shows about a new client flow at connect time: the SYN plus
/// (for TLS) the ClientHello. `sniPresent` models ESNI/ECH-style omission —
/// an SNI filter that "fails open" passes TLS flows whose hello names no
/// server.
struct FlowSyn {
  std::string host;        ///< lowercased destination hostname
  net::Ipv4Addr dstIp;
  std::uint16_t port = 80;
  bool tls = false;        ///< the flow is a TLS session (https URL)
  bool sniPresent = true;  ///< ClientHello carries the server name
};

/// An on-path packet-level device in an ISP: sees subscribers' DNS queries,
/// connection attempts, and cleartext request bytes, and may tamper with or
/// kill them — but can never speak HTTP back. This is the wire-level
/// counterpart of Middlebox, modelling the blocking mechanisms the paper's
/// four products do NOT use: DNS poisoning, TCP RST/FIN injection, SNI
/// filtering, and null-routing ("Where The Light Gets In", PAPERS.md).
class PacketFilter {
 public:
  virtual ~PacketFilter() = default;

  PacketFilter() = default;
  PacketFilter(const PacketFilter&) = delete;
  PacketFilter& operator=(const PacketFilter&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// DNS stage: the subscriber's query for `hostname` crosses the wire
  /// before any resolver answers. Returning a tamper preempts resolution.
  virtual std::optional<DnsTamper> onDnsQuery(std::string_view hostname,
                                              const PacketContext& ctx) {
    (void)hostname;
    (void)ctx;
    return std::nullopt;
  }

  /// Connect stage: the SYN (and, for TLS, the ClientHello) crosses the
  /// wire. A kill here lands before any application byte — the client-visible
  /// signature is rst-before-banner / timeout / refused.
  virtual std::optional<FlowKill> onConnect(const FlowSyn& syn,
                                            const PacketContext& ctx) {
    (void)syn;
    (void)ctx;
    return std::nullopt;
  }

  /// Request stage: the first cleartext request bytes cross the wire on an
  /// established flow. TLS flows never reach this hook — the payload is
  /// opaque to an on-path device. A kill here is rst-after-request.
  virtual std::optional<FlowKill> onRequest(const FlowSyn& syn,
                                            const http::Request& request,
                                            const PacketContext& ctx) {
    (void)syn;
    (void)request;
    (void)ctx;
    return std::nullopt;
  }

  /// Monotone counter over mutable inputs that can change a decision for a
  /// given (event, now, flow-table state). Rule-table edits bump it; the
  /// shared FlowTable keeps its own epoch. Stateless filters keep 0.
  [[nodiscard]] virtual std::uint64_t stateEpoch() const { return 0; }

  /// True when decisions are pure in (event, now, flow-table state) — every
  /// built-in model is; a hypothetical lossy injector would not be.
  [[nodiscard]] virtual bool deterministicDecision() const { return true; }

  /// True when a decision mutates state beyond statistics (arming residual
  /// hold-downs). Verdict replay paths must never skip a fetch through such
  /// a filter: the skipped world would miss the state the real fetch armed.
  [[nodiscard]] virtual bool decisionHasSideEffects() const { return false; }
};

// --- the four packet-level censorship mechanisms ---------------------------

/// DNS poisoner: forges answers to subscriber queries, either NXDOMAIN or a
/// wrong A record (sinkhole). With zones configured only queries for a
/// listed zone (exact host or any subdomain) are poisoned; with no zones the
/// device poisons every query — resolver-wide tampering.
class DnsPoisoner : public PacketFilter {
 public:
  DnsPoisoner(std::string name, DnsTamper::Kind mode,
              net::Ipv4Addr sinkhole = {})
      : name_(std::move(name)), mode_(mode), sinkhole_(sinkhole) {}

  void poisonZone(std::string zone);

  [[nodiscard]] std::string name() const override { return name_; }
  std::optional<DnsTamper> onDnsQuery(std::string_view hostname,
                                      const PacketContext& ctx) override;
  [[nodiscard]] std::uint64_t stateEpoch() const override { return epoch_; }

  [[nodiscard]] std::uint64_t queriesPoisoned() const {
    return queriesPoisoned_;
  }

 private:
  [[nodiscard]] bool matches(std::string_view hostname) const;

  std::string name_;
  DnsTamper::Kind mode_;
  net::Ipv4Addr sinkhole_;
  std::vector<std::string> zones_;  ///< lowercased; empty = poison all
  std::uint64_t epoch_ = 0;
  std::uint64_t queriesPoisoned_ = 0;
};

/// TCP RST/FIN injector: watches cleartext request bytes for keywords and
/// kills matching flows with an injected reset. With a hold-down window
/// (`holdDownHours` > 0) the injector is *stateful*: after a kill it resets
/// every subsequent flow to the same destination until the window expires,
/// before any application byte — the residual-blocking fingerprint.
class RstInjector : public PacketFilter {
 public:
  RstInjector(std::string name, std::vector<std::string> keywords,
              std::int64_t holdDownHours = 0);

  [[nodiscard]] std::string name() const override { return name_; }
  std::optional<FlowKill> onConnect(const FlowSyn& syn,
                                    const PacketContext& ctx) override;
  std::optional<FlowKill> onRequest(const FlowSyn& syn,
                                    const http::Request& request,
                                    const PacketContext& ctx) override;
  [[nodiscard]] std::uint64_t stateEpoch() const override { return epoch_; }
  /// A stateful injector arms hold-down state on a kill; replaying its
  /// verdicts without fetching would miss the arm.
  [[nodiscard]] bool decisionHasSideEffects() const override {
    return holdDownHours_ > 0;
  }

  [[nodiscard]] std::int64_t holdDownHours() const { return holdDownHours_; }
  [[nodiscard]] std::uint64_t resetsInjected() const {
    return resetsInjected_;
  }
  [[nodiscard]] std::uint64_t residualKills() const { return residualKills_; }

 private:
  std::string name_;
  std::vector<std::string> keywords_;  ///< lowercased
  std::int64_t holdDownHours_;
  std::uint64_t epoch_ = 0;
  std::uint64_t resetsInjected_ = 0;
  std::uint64_t residualKills_ = 0;
};

/// SNI filter: resets TLS flows whose ClientHello names a listed server.
/// Fails open on ESNI-style omission — a hello with no server name passes —
/// and never touches cleartext flows.
class SniFilter : public PacketFilter {
 public:
  SniFilter(std::string name, std::vector<std::string> hostnames);

  [[nodiscard]] std::string name() const override { return name_; }
  std::optional<FlowKill> onConnect(const FlowSyn& syn,
                                    const PacketContext& ctx) override;
  [[nodiscard]] std::uint64_t stateEpoch() const override { return epoch_; }

  [[nodiscard]] std::uint64_t handshakesKilled() const {
    return handshakesKilled_;
  }
  [[nodiscard]] std::uint64_t esniPassed() const { return esniPassed_; }

 private:
  std::string name_;
  std::vector<std::string> hostnames_;  ///< lowercased; subdomains match
  std::uint64_t epoch_ = 0;
  std::uint64_t handshakesKilled_ = 0;
  std::uint64_t esniPassed_ = 0;
};

/// Null-route: destinations on the list are blackholed at connect time —
/// the SYN goes nowhere and the client times out. Port- and TLS-agnostic.
class NullRouteFilter : public PacketFilter {
 public:
  NullRouteFilter(std::string name, std::vector<std::string> hostnames);

  [[nodiscard]] std::string name() const override { return name_; }
  std::optional<FlowKill> onConnect(const FlowSyn& syn,
                                    const PacketContext& ctx) override;
  [[nodiscard]] std::uint64_t stateEpoch() const override { return epoch_; }

  [[nodiscard]] std::uint64_t flowsBlackholed() const {
    return flowsBlackholed_;
  }

 private:
  std::string name_;
  std::vector<std::string> hostnames_;  ///< lowercased; subdomains match
  std::uint64_t epoch_ = 0;
  std::uint64_t flowsBlackholed_ = 0;
};

/// True when `hostname` is `zone` or a subdomain of it (both lowercase).
[[nodiscard]] bool hostInZone(std::string_view hostname,
                              std::string_view zone);

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_PACKET_FILTER_H
