#include "simnet/churn_stream.h"

#include <cstddef>

#include "util/hash.h"

namespace urlf::simnet {

namespace {

// Rebrand content pools. Deliberately overlapping with the identification
// keywords (the bait entries) so churn moves hosts in and out of the
// candidate population, not just in and out of the index.
constexpr std::string_view kChurnBaits[] = {
    "proxysg review part 2",
    "webadmin tutorial refresh",
    "url blocked faq 2013",
    "blockpage.cgi archive",
};
constexpr std::string_view kChurnTopics[] = {
    "seasonal recipes",
    "city marathon results",
    "open data portal",
    "community radio schedule",
    "hiking trail conditions",
    "secondhand bookstore",
};
constexpr std::string_view kChurnServers[] = {
    "nginx/1.4.1",
    "Apache/2.4.6",
    "lighttpd/1.4.32",
    "cherokee/1.2.102",
};

constexpr std::uint64_t kRebrandSalt = 0x5EBA11D0C0FFEEULL;
constexpr std::uint64_t kParkSalt = 0x9A12CEDB10C4ADULL;

std::uint64_t churnKey(std::uint64_t seed, std::uint64_t salt,
                       std::uint64_t id, std::uint64_t tick) {
  return seed ^ (salt + id * 0x9E3779B97F4A7C15ULL +
                 tick * 0xD1B54A32D192ED03ULL);
}

}  // namespace

ChurnHostStream::ChurnHostStream(std::shared_ptr<const WorldStream> base,
                                 std::uint64_t seed, ChurnConfig config)
    : base_(std::move(base)), seed_(seed), config_(config) {}

bool ChurnHostStream::rebrandEventAt(std::uint64_t id,
                                     std::uint64_t tick) const {
  if (tick == 0 || config_.rebrandRate <= 0.0) return false;
  return util::keyedUniform01(churnKey(seed_, kRebrandSalt, id, tick)) <
         config_.rebrandRate;
}

bool ChurnHostStream::parkedAt(std::uint64_t id, std::uint64_t tick) const {
  if (tick == 0 || config_.parkRate <= 0.0) return false;
  return util::keyedUniform01(churnKey(seed_, kParkSalt, id, tick)) <
         config_.parkRate;
}

bool ChurnHostStream::dirtyAt(std::uint64_t id, std::uint64_t tick) const {
  if (tick == 0) return false;
  if (parkedAt(id, tick) != parkedAt(id, tick - 1)) return true;
  // While parked the rendered page ignores branding, so a rebrand event only
  // dirties a host that is actually visible. Unparking re-reveals whatever
  // branding accumulated, which the park-state flip above already caught.
  return !parkedAt(id, tick) && rebrandEventAt(id, tick);
}

std::uint64_t ChurnHostStream::lastRebrandTick(std::uint64_t id,
                                               std::uint64_t tick) const {
  for (std::uint64_t t = tick; t >= 1; --t)
    if (rebrandEventAt(id, t)) return t;
  return 0;
}

std::uint64_t ChurnHostStream::lastContentChange(std::uint64_t id) const {
  for (std::uint64_t t = tick_; t >= 1; --t)
    if (dirtyAt(id, t)) return t;
  return 0;
}

StreamedHost ChurnHostStream::host(std::uint64_t id) const {
  StreamedHost out = base_->host(id);
  if (parkedAt(id, tick_)) {
    out.serverHeader = "parking-ns/1.0";
    out.page.title = "Domain parked - " + out.hostname;
    out.page.body =
        "<h1>domain parked</h1><p>" + out.hostname +
        " is registered and parked. Contact the registrar to acquire it.</p>";
    return out;
  }
  const std::uint64_t rebrand = lastRebrandTick(id, tick_);
  if (rebrand == 0) return out;

  std::uint64_t key = churnKey(seed_, kRebrandSalt ^ 0xA5A5A5A5ULL, id, rebrand);
  const std::uint64_t pick = util::splitmix64Next(key);
  const double baitDraw = util::keyedUniform01(key);
  out.serverHeader = std::string(kChurnServers[pick % std::size(kChurnServers)]);
  const bool bait = baitDraw < config_.baitFraction;
  const auto phrase = bait ? kChurnBaits[(pick >> 8) % std::size(kChurnBaits)]
                           : kChurnTopics[(pick >> 8) % std::size(kChurnTopics)];
  out.page.title =
      "Host " + std::to_string(id) + " - " + std::string(phrase);
  out.page.body = "<h1>" + std::string(phrase) + "</h1><p>served by " +
                  out.hostname + " (generation " + std::to_string(rebrand) +
                  ")</p>";
  return out;
}

}  // namespace urlf::simnet
