#include "simnet/world.h"

#include <stdexcept>

#include "simnet/world_stream.h"
#include "util/strings.h"

namespace urlf::simnet {

World::World(std::uint64_t seed) : rng_(seed) {}

AutonomousSystem& World::createAs(std::uint32_t asn, std::string name,
                                  std::string description,
                                  std::string countryAlpha2,
                                  std::vector<net::IpPrefix> prefixes) {
  if (ases_.contains(asn))
    throw std::invalid_argument("World::createAs: duplicate ASN " +
                                std::to_string(asn));
  auto as = std::make_unique<AutonomousSystem>(
      asn, std::move(name), std::move(description), std::move(countryAlpha2));
  for (const auto& p : prefixes) as->announce(p);
  auto& ref = *as;
  ases_.emplace(asn, std::move(as));
  return ref;
}

AutonomousSystem* World::findAs(std::uint32_t asn) {
  const auto it = ases_.find(asn);
  return it == ases_.end() ? nullptr : it->second.get();
}

const AutonomousSystem* World::findAs(std::uint32_t asn) const {
  const auto it = ases_.find(asn);
  return it == ases_.end() ? nullptr : it->second.get();
}

Isp& World::createIsp(std::string name, std::string countryAlpha2,
                      std::vector<std::uint32_t> asns) {
  auto isp = std::make_unique<Isp>(std::move(name), std::move(countryAlpha2));
  for (const auto asn : asns) {
    if (!findAs(asn))
      throw std::invalid_argument("World::createIsp: unknown ASN " +
                                  std::to_string(asn));
    isp->addAsn(asn);
  }
  isps_.push_back(std::move(isp));
  return *isps_.back();
}

Isp* World::findIsp(std::string_view name) {
  for (const auto& isp : isps_)
    if (util::iequals(isp->name(), name)) return isp.get();
  return nullptr;
}

net::Ipv4Addr World::allocateAddress(std::uint32_t asn) {
  auto* as = findAs(asn);
  if (as == nullptr)
    throw std::invalid_argument("World::allocateAddress: unknown ASN " +
                                std::to_string(asn));
  return as->allocateAddress();
}

void World::registerHostname(std::string hostname, net::Ipv4Addr addr) {
  dns_[util::toLower(hostname)] = addr;
}

void World::unregisterHostname(const std::string& hostname) {
  dns_.erase(util::toLower(hostname));
}

std::optional<net::Ipv4Addr> World::resolve(const std::string& hostname) const {
  // IP literals resolve to themselves.
  if (const auto ip = net::Ipv4Addr::parse(hostname)) return ip;
  const auto it = dns_.find(util::toLower(hostname));
  if (it == dns_.end()) return std::nullopt;
  return it->second;
}

void World::bind(net::Ipv4Addr ip, std::uint16_t port, HttpEndpoint& endpoint,
                 bool externallyVisible) {
  const auto key = bindingKey(ip, port);
  if (bindingIndex_.contains(key))
    throw std::invalid_argument("World::bind: " + ip.toString() + ":" +
                                std::to_string(port) + " already bound");
  bindingIndex_.emplace(key, bindings_.size());
  bindings_.push_back({ip, port, &endpoint, externallyVisible});
}

void World::unbind(net::Ipv4Addr ip, std::uint16_t port) {
  const auto key = bindingKey(ip, port);
  const auto it = bindingIndex_.find(key);
  if (it == bindingIndex_.end()) return;
  bindings_[it->second].endpoint = nullptr;  // tombstone keeps slots stable
  bindingIndex_.erase(it);
}

HttpEndpoint* World::endpointAt(net::Ipv4Addr ip, std::uint16_t port) const {
  const auto it = bindingIndex_.find(bindingKey(ip, port));
  if (it == bindingIndex_.end()) return nullptr;
  return bindings_[it->second].endpoint;
}

HttpEndpoint* World::externalEndpointAt(net::Ipv4Addr ip,
                                        std::uint16_t port) const {
  const auto it = bindingIndex_.find(bindingKey(ip, port));
  if (it == bindingIndex_.end()) return nullptr;
  const Binding& b = bindings_[it->second];
  return b.externallyVisible ? b.endpoint : nullptr;
}

std::optional<http::Response> World::probeExternal(
    net::Ipv4Addr ip, std::uint16_t port, const http::Request& request) const {
  if (auto* endpoint = externalEndpointAt(ip, port))
    return endpoint->handle(request, clock_.now());
  if (hostStream_) {
    if (const auto id = hostStream_->hostAt(ip, port)) {
      const auto server =
          WorldStream::materializeEndpoint(hostStream_->host(*id));
      return server->handle(request, clock_.now());
    }
  }
  return std::nullopt;
}

std::vector<const AutonomousSystem*> World::allAses() const {
  std::vector<const AutonomousSystem*> out;
  out.reserve(ases_.size());
  for (const auto& [asn, as] : ases_) out.push_back(as.get());
  return out;
}

std::vector<Surface> World::externalSurfaces() const {
  std::vector<Surface> out;
  for (const auto& b : bindings_)
    if (b.endpoint != nullptr && b.externallyVisible)
      out.push_back({b.ip, b.port, b.endpoint});
  return out;
}

VantagePoint& World::createVantage(std::string name, std::string countryAlpha2,
                                   const Isp* isp) {
  auto vantage = std::make_unique<VantagePoint>();
  vantage->name = std::move(name);
  vantage->countryAlpha2 = std::move(countryAlpha2);
  vantage->isp = isp;
  vantages_.push_back(std::move(vantage));
  return *vantages_.back();
}

VantagePoint* World::findVantage(std::string_view name) {
  for (const auto& v : vantages_)
    if (util::iequals(v->name, name)) return v.get();
  return nullptr;
}

geo::GeoDatabase World::buildGeoDatabase(double errorRate) const {
  geo::GeoDatabase db;
  for (const auto& [asn, as] : ases_)
    for (const auto& prefix : as->prefixes()) db.add(prefix, as->country());
  db.setErrorModel(errorRate, /*seed=*/0x6E05C0DE);
  return db;
}

geo::AsnDatabase World::buildAsnDatabase() const {
  geo::AsnDatabase db;
  for (const auto& [asn, as] : ases_) {
    geo::AsnRecord record{asn, as->name(), as->description(), as->country()};
    for (const auto& prefix : as->prefixes()) db.add(prefix, record);
  }
  return db;
}

}  // namespace urlf::simnet
