#include "simnet/packet_filter.h"

#include <algorithm>

#include "util/strings.h"

namespace urlf::simnet {

bool hostInZone(std::string_view hostname, std::string_view zone) {
  if (zone.empty()) return false;
  if (hostname == zone) return true;
  return hostname.size() > zone.size() + 1 &&
         hostname[hostname.size() - zone.size() - 1] == '.' &&
         util::endsWith(hostname, zone);
}

namespace {

FlowKey keyFor(const FlowSyn& syn, const PacketContext& ctx) {
  return FlowKey{ctx.vantageName, syn.host, syn.port};
}

bool anyZoneMatches(const std::vector<std::string>& zones,
                    std::string_view hostname) {
  return std::any_of(zones.begin(), zones.end(), [&](const std::string& z) {
    return hostInZone(hostname, z);
  });
}

}  // namespace

// --- DnsPoisoner -----------------------------------------------------------

void DnsPoisoner::poisonZone(std::string zone) {
  zones_.push_back(util::toLower(zone));
  ++epoch_;
}

bool DnsPoisoner::matches(std::string_view hostname) const {
  return zones_.empty() || anyZoneMatches(zones_, hostname);
}

std::optional<DnsTamper> DnsPoisoner::onDnsQuery(std::string_view hostname,
                                                 const PacketContext& ctx) {
  (void)ctx;
  if (!matches(hostname)) return std::nullopt;
  ++queriesPoisoned_;
  return mode_ == DnsTamper::Kind::kNxdomain ? DnsTamper::nxdomain()
                                             : DnsTamper::forged(sinkhole_);
}

// --- RstInjector -----------------------------------------------------------

RstInjector::RstInjector(std::string name, std::vector<std::string> keywords,
                         std::int64_t holdDownHours)
    : name_(std::move(name)), holdDownHours_(holdDownHours) {
  keywords_.reserve(keywords.size());
  for (auto& keyword : keywords) keywords_.push_back(util::toLower(keyword));
}

std::optional<FlowKill> RstInjector::onConnect(const FlowSyn& syn,
                                               const PacketContext& ctx) {
  if (holdDownHours_ <= 0 || ctx.flows == nullptr) return std::nullopt;
  const FlowKey key = keyFor(syn, ctx);
  if (!ctx.flows->residualActive(key, ctx.now)) return std::nullopt;
  // Residual blocking: the destination is still in hold-down from an
  // earlier kill, so the SYN dies before any application byte.
  ++residualKills_;
  ctx.flows->recordKill(key, ctx.now);
  ctx.flows->armResidual(key, ctx.now, ctx.now + holdDownHours_);
  return FlowKill::reset();
}

std::optional<FlowKill> RstInjector::onRequest(const FlowSyn& syn,
                                               const http::Request& request,
                                               const PacketContext& ctx) {
  const std::string wire = syn.host + " " + request.url.toString();
  const std::string lowered = util::toLower(wire);
  const bool hit =
      std::any_of(keywords_.begin(), keywords_.end(),
                  [&](const std::string& keyword) {
                    return lowered.find(keyword) != std::string::npos;
                  });
  if (!hit) return std::nullopt;
  ++resetsInjected_;
  if (ctx.flows != nullptr) {
    const FlowKey key = keyFor(syn, ctx);
    ctx.flows->recordKill(key, ctx.now);
    if (holdDownHours_ > 0)
      ctx.flows->armResidual(key, ctx.now, ctx.now + holdDownHours_);
  }
  return FlowKill::reset();
}

// --- SniFilter -------------------------------------------------------------

SniFilter::SniFilter(std::string name, std::vector<std::string> hostnames)
    : name_(std::move(name)) {
  hostnames_.reserve(hostnames.size());
  for (auto& host : hostnames) hostnames_.push_back(util::toLower(host));
}

std::optional<FlowKill> SniFilter::onConnect(const FlowSyn& syn,
                                             const PacketContext& ctx) {
  (void)ctx;
  if (!syn.tls) return std::nullopt;
  if (!syn.sniPresent) {
    // ESNI-style omission: nothing to match on, so the filter fails open.
    if (anyZoneMatches(hostnames_, syn.host)) ++esniPassed_;
    return std::nullopt;
  }
  if (!anyZoneMatches(hostnames_, syn.host)) return std::nullopt;
  ++handshakesKilled_;
  if (ctx.flows != nullptr) ctx.flows->recordKill(keyFor(syn, ctx), ctx.now);
  return FlowKill::reset();
}

// --- NullRouteFilter -------------------------------------------------------

NullRouteFilter::NullRouteFilter(std::string name,
                                 std::vector<std::string> hostnames)
    : name_(std::move(name)) {
  hostnames_.reserve(hostnames.size());
  for (auto& host : hostnames) hostnames_.push_back(util::toLower(host));
}

std::optional<FlowKill> NullRouteFilter::onConnect(const FlowSyn& syn,
                                                   const PacketContext& ctx) {
  if (!anyZoneMatches(hostnames_, syn.host)) return std::nullopt;
  ++flowsBlackholed_;
  if (ctx.flows != nullptr) ctx.flows->recordKill(keyFor(syn, ctx), ctx.now);
  return FlowKill::drop();
}

}  // namespace urlf::simnet
