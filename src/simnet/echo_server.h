#ifndef URLF_SIMNET_ECHO_SERVER_H
#define URLF_SIMNET_ECHO_SERVER_H

#include "http/html.h"
#include "simnet/endpoint.h"

namespace urlf::simnet {

/// A diagnostic origin that echoes back the request exactly as it arrived —
/// the server-side half of Netalyzr-style transparent-proxy detection
/// (the paper proposes its methodology as ground truth for such tools, §7).
/// If an in-path proxy annotated the request, the client sees the
/// annotations in the echo.
class RequestEchoServer : public HttpEndpoint {
 public:
  explicit RequestEchoServer(std::string hostname)
      : hostname_(std::move(hostname)) {}

  http::Response handle(const http::Request& request,
                        util::SimTime /*now*/) override {
    std::string echo = request.requestLine() + "\n";
    for (const auto& field : request.headers.fields())
      echo += field.name + ": " + field.value + "\n";
    auto resp = http::Response::make(
        http::Status::kOk,
        http::makePage("Request Echo",
                       "<pre>" + http::escape(echo) + "</pre>"));
    resp.headers.add("Server", "EchoServer/1.0");
    resp.headers.add("Cache-Control", "no-store");
    return resp;
  }

  [[nodiscard]] std::string describe() const override {
    return "request echo service at " + hostname_;
  }

 private:
  std::string hostname_;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_ECHO_SERVER_H
