#ifndef URLF_SIMNET_INTERFERENCE_H
#define URLF_SIMNET_INTERFERENCE_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/message.h"
#include "simnet/isp.h"
#include "util/clock.h"

namespace urlf::simnet {

/// Ground-truth record of which adversarial behaviour (if any) shaped a
/// fetch. Like FailureCause, this is simulation-side truth: measurement
/// clients must never branch on it — it exists so benches and journals can
/// score how often a robustness layer was deceived.
enum class InterferenceEffect {
  kNone,       ///< no interference touched this fetch
  kHidden,     ///< probe detected — censor served the clean page
  kLockout,    ///< rate-limit temp-ban — fetch refused or black-holed
  kTarpit,     ///< slow-drip response consumed simulated clock
  kFlakyOpen,  ///< per-flow flaky enforcement let this flow through
  kMimicry,    ///< blockpage swapped for another vendor's template
};

[[nodiscard]] std::string_view toString(InterferenceEffect effect);

/// Which vendor's blockpage template a mimicking censor serves. simnet
/// cannot depend on filters/, so the template set is named locally; the
/// synthesized responses match the builtin blockpage fingerprints.
enum class MimicTemplate {
  kSmartFilter,
  kBlueCoat,
  kNetsweeper,
  kWebsense,
};

[[nodiscard]] std::string_view toString(MimicTemplate t);

/// Synthesize a response that matches the named vendor's builtin blockpage
/// fingerprint (filters::builtinBlockPagePatterns). A mimicking censor
/// serves this instead of its own template to cause misattribution.
[[nodiscard]] http::Response mimicResponse(MimicTemplate t);

/// Per-ISP knobs for adversarial measurement interference. All thresholds
/// default to off; a default-constructed profile is a no-op.
struct InterferenceProfile {
  // Probe detection: more than `probeThreshold` fetches from one vantage
  // within `probeWindowHours` of simulated clock → the censor "hides" from
  // that vantage (serves clean pages) for `hideHours`. 0 = off.
  int probeThreshold = 0;
  std::int64_t probeWindowHours = 1;
  std::int64_t hideHours = 24;

  // Rate-limit lockout: more than `lockoutThreshold` fetches within
  // `lockoutWindowHours` → temp-ban for `banHours` with refused/timeout
  // signatures. 0 = off.
  int lockoutThreshold = 0;
  std::int64_t lockoutWindowHours = 1;
  std::int64_t banHours = 12;

  // Tarpitting: with probability `tarpitRate` per fetch, the response is a
  // slow drip that consumes `tarpitHours` of simulated clock unless the
  // client enforces a per-attempt deadline (FetchOptions).
  double tarpitRate = 0.0;
  std::int64_t tarpitHours = 48;

  // Flaky enforcement: with probability `flakyRate` per flow, the censor
  // simply does not enforce — the fetch sails through clean.
  double flakyRate = 0.0;

  // Blockpage mimicry: with probability `mimicryRate` per intercepted
  // fetch, the censor serves a template drawn from `mimicPool` instead of
  // its own blockpage.
  double mimicryRate = 0.0;
  std::vector<MimicTemplate> mimicPool;

  bool operator==(const InterferenceProfile&) const = default;

  /// True if any feature is armed.
  [[nodiscard]] bool any() const {
    return probeThreshold > 0 || lockoutThreshold > 0 || tarpitRate > 0.0 ||
           flakyRate > 0.0 || (mimicryRate > 0.0 && !mimicPool.empty());
  }

  /// True if any history-dependent feature is armed (probe detection or
  /// lockout windows). Stateful features make verdicts cadence-dependent,
  /// so verdict memos must stay off for affected vantages.
  [[nodiscard]] bool stateful() const {
    return probeThreshold > 0 || lockoutThreshold > 0;
  }
};

/// Deterministic per-ISP interference configuration — the adversarial twin
/// of FaultPlan. Every probabilistic decision is a pure hash draw keyed by
/// (seed, purpose, vantage, url, attempt): no shared RNG is consumed, so
/// fetch order and thread count cannot change any outcome.
class InterferencePlan {
 public:
  explicit InterferencePlan(std::uint64_t seed) : seed_(seed) {}

  void setDefaultProfile(InterferenceProfile profile) {
    defaultProfile_ = profile;
  }
  void setIspProfile(const std::string& ispName, InterferenceProfile profile) {
    ispProfiles_[ispName] = profile;
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// ISP override if present, else the default profile. Lab vantages
  /// (no ISP) are never interfered with.
  [[nodiscard]] const InterferenceProfile& profileFor(
      const VantagePoint& vantage) const;

  /// True if any interference feature is armed for this vantage.
  [[nodiscard]] bool activeFor(const VantagePoint& vantage) const;

  /// True if a history-dependent feature (probe/lockout window) is armed
  /// for this vantage.
  [[nodiscard]] bool statefulFor(const VantagePoint& vantage) const;

  /// Pure uniform [0,1) draw for one decision. `purpose` namespaces the
  /// draw ("tarpit", "flaky", "mimic", "lockout-sig") so decisions on the
  /// same fetch are independent.
  [[nodiscard]] double draw(std::string_view purpose,
                            const VantagePoint& vantage, std::string_view url,
                            int attempt) const;

  /// Pure template pick from the profile's mimic pool (must be non-empty).
  [[nodiscard]] MimicTemplate drawTemplate(const InterferenceProfile& profile,
                                           const VantagePoint& vantage,
                                           std::string_view url,
                                           int attempt) const;

 private:
  std::uint64_t seed_;
  InterferenceProfile defaultProfile_;
  std::map<std::string, InterferenceProfile> ispProfiles_;
};

/// Per-vantage sliding-window counters for the stateful interference
/// features, owned by the World beside the FlowTable and following the same
/// epoch contract: arming (or extending) a hide/ban window bumps
/// stateEpoch() because it changes later filtering decisions; pure request
/// counting inside an open window deliberately does not.
class InterferenceState {
 public:
  /// Record one fetch attempt from `vantageName` at `now` and update the
  /// probe/lockout windows per `profile`. Returns the effect that should
  /// apply to *this* fetch: kHidden while a hide window is open, kLockout
  /// while a ban is active, else kNone. The fetch that trips a threshold is
  /// itself affected.
  InterferenceEffect recordFetch(const std::string& vantageName,
                                 util::SimTime now,
                                 const InterferenceProfile& profile);

  [[nodiscard]] bool hidden(const std::string& vantageName,
                            util::SimTime now) const;
  [[nodiscard]] bool banned(const std::string& vantageName,
                            util::SimTime now) const;

  /// Bumped whenever a hide or ban window is armed or extended.
  [[nodiscard]] std::uint64_t stateEpoch() const { return epoch_; }

  void clear() {
    windows_.clear();
    ++epoch_;
  }

 private:
  struct Window {
    std::int64_t probeWindowStart = -1;
    int probeCount = 0;
    std::int64_t lockoutWindowStart = -1;
    int lockoutCount = 0;
    util::SimTime hiddenUntil{-1};
    util::SimTime bannedUntil{-1};
  };

  std::map<std::string, Window> windows_;
  std::uint64_t epoch_ = 0;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_INTERFERENCE_H
