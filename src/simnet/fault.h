#ifndef URLF_SIMNET_FAULT_H
#define URLF_SIMNET_FAULT_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "simnet/isp.h"

namespace urlf::simnet {

/// Which transient fault process fired for one fetch attempt (kNone = the
/// attempt ran cleanly through the real transport path).
enum class FaultKind {
  kNone,
  kDnsFlap,      ///< resolver transiently returned NXDOMAIN
  kConnectFail,  ///< SYN lost or refused under load
  kLoss,         ///< flow blackholed mid-transfer — client sees a timeout
  kTimeout,      ///< response delayed past the client deadline
  kOutage,       ///< permanent vantage death (OutagePlan) — never transient
};

[[nodiscard]] std::string_view toString(FaultKind kind);

/// Per-process transient fault probabilities for one scope (a country, an
/// ISP, or the plan default). Each process is an independent Bernoulli per
/// fetch attempt; at most one fires (first match on a single uniform draw).
struct FaultRates {
  double dnsFlap = 0.0;
  double connectFail = 0.0;
  double loss = 0.0;
  double timeout = 0.0;

  /// Probability that *some* fault fires on one attempt.
  [[nodiscard]] double total() const {
    return dnsFlap + connectFail + loss + timeout;
  }
  [[nodiscard]] bool zero() const { return total() <= 0.0; }

  /// All four processes at the same rate — the shape the CLI `--faults R`
  /// flag and the scenario presets use.
  static FaultRates uniform(double perProcessRate) {
    return {perProcessRate, perProcessRate, perProcessRate, perProcessRate};
  }

  bool operator==(const FaultRates&) const = default;
};

/// A deterministic, seeded model of substrate unreliability (the paper's
/// Challenge 2, §4.4: "inconsistent blocking" seen by in-country testers).
///
/// The plan holds default rates plus per-country and per-ISP overrides
/// (ISP > country > default). Whether a fault fires for a given attempt is a
/// pure function of (plan seed, vantage name, url, attempt): the draw comes
/// from a private splitmix64 stream keyed on those values, never from the
/// world's shared RNG, so outcomes are reproducible, independent of fetch
/// order, and independent of the worker-pool width (DESIGN.md §4.2).
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed, FaultRates defaults = {})
      : seed_(seed), defaults_(defaults) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  void setDefaultRates(FaultRates rates) { defaults_ = rates; }
  void setCountryRates(const std::string& alpha2, FaultRates rates) {
    countryRates_[alpha2] = rates;
  }
  void setIspRates(const std::string& ispName, FaultRates rates) {
    ispRates_[ispName] = rates;
  }

  /// Effective rates for a vantage point: its ISP's override if any, else
  /// its country's, else the plan default.
  [[nodiscard]] const FaultRates& ratesFor(const VantagePoint& vantage) const;

  /// Decide the fault (if any) for one fetch attempt. Pure and const —
  /// consumes no stream state.
  [[nodiscard]] FaultKind roll(const VantagePoint& vantage,
                               std::string_view url, int attempt) const;

 private:
  std::uint64_t seed_;
  FaultRates defaults_;
  std::map<std::string, FaultRates> countryRates_;  ///< alpha2 -> rates
  std::map<std::string, FaultRates> ispRates_;      ///< ISP name -> rates
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_FAULT_H
