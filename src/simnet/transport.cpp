#include "simnet/transport.h"

#include <algorithm>

#include "util/strings.h"

namespace urlf::simnet {

std::string_view toString(FetchOutcome outcome) {
  switch (outcome) {
    case FetchOutcome::kOk: return "ok";
    case FetchOutcome::kDnsFailure: return "dns-failure";
    case FetchOutcome::kConnectFailure: return "connect-failure";
    case FetchOutcome::kTimeout: return "timeout";
    case FetchOutcome::kReset: return "reset";
    case FetchOutcome::kBadUrl: return "bad-url";
  }
  return "unknown";
}

std::string_view toString(FailureSignature signature) {
  switch (signature) {
    case FailureSignature::kNone: return "none";
    case FailureSignature::kEmptyDns: return "empty-dns";
    case FailureSignature::kRefused: return "refused";
    case FailureSignature::kRstBeforeBanner: return "rst-before-banner";
    case FailureSignature::kRstAfterRequest: return "rst-after-request";
    case FailureSignature::kTimeout: return "timeout";
    case FailureSignature::kSlowDrip: return "slow-drip";
  }
  return "unknown";
}

std::string_view toString(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone: return "none";
    case FailureCause::kOrganic: return "organic";
    case FailureCause::kFault: return "fault";
    case FailureCause::kOutage: return "outage";
    case FailureCause::kMiddlebox: return "middlebox";
    case FailureCause::kPacketFilter: return "packet-filter";
    case FailureCause::kInterference: return "interference";
  }
  return "unknown";
}

bool RetryPolicy::shouldRetry(FetchOutcome outcome) const {
  switch (outcome) {
    case FetchOutcome::kOk:
    case FetchOutcome::kBadUrl:
      return false;
    case FetchOutcome::kTimeout: return retryOnTimeout;
    case FetchOutcome::kReset: return retryOnReset;
    case FetchOutcome::kDnsFailure: return retryOnDns;
    case FetchOutcome::kConnectFailure: return retryOnConnectFailure;
  }
  return false;
}

std::int64_t RetryPolicy::backoffHours(int attempt) const {
  std::int64_t hours = std::max(0, initialBackoffHours);
  for (int i = 0; i < attempt; ++i) hours *= std::max(1, backoffMultiplier);
  return hours;
}

FetchResult Transport::fetchOnce(const VantagePoint& vantage,
                                 http::Request request,
                                 const FetchOptions& options, int attempt) {
  FetchResult result;

  const OutagePlan* outages = world_->outagePlan();

  // Permanent vantage death (OutagePlan) preempts everything, including
  // transient fault injection: a dead vantage has no network activity at
  // all, only client-side timeouts.
  if (outages != nullptr && outages->vantageDead(vantage, world_->now())) {
    result.outcome = FetchOutcome::kTimeout;
    result.injectedFault = FaultKind::kOutage;
    result.signature = FailureSignature::kTimeout;
    result.cause = FailureCause::kOutage;
    result.error = "vantage offline: " + vantage.name +
                   " permanently dead since hour " +
                   std::to_string(outages->deathTime(vantage.name)->hours());
    return result;
  }

  // Injected transient fault (FaultPlan, if the world carries one) preempts
  // the whole exchange. The decision is a pure function of
  // (plan seed, vantage, url, attempt) — see simnet/fault.h. The signatures
  // deliberately overlap packet-level censorship's: on a single trial the
  // two are indistinguishable, which is what the mechanism classifier's
  // evidence budget exists to resolve.
  if (const FaultPlan* plan = world_->faultPlan()) {
    const FaultKind fault = plan->roll(vantage, request.url.toString(),
                                       options.attemptBase + attempt);
    if (fault != FaultKind::kNone) {
      result.injectedFault = fault;
      result.cause = FailureCause::kFault;
      switch (fault) {
        case FaultKind::kDnsFlap:
          result.outcome = FetchOutcome::kDnsFailure;
          result.signature = FailureSignature::kEmptyDns;
          result.error = "injected transient DNS flap: " + request.url.host();
          break;
        case FaultKind::kConnectFail:
          result.outcome = FetchOutcome::kConnectFailure;
          result.signature = FailureSignature::kRefused;
          result.error = "injected transient connect failure";
          break;
        case FaultKind::kLoss:
          result.outcome = FetchOutcome::kTimeout;
          result.signature = FailureSignature::kTimeout;
          result.error = "injected transient loss (flow blackholed)";
          break;
        case FaultKind::kTimeout:
          result.outcome = FetchOutcome::kTimeout;
          result.signature = FailureSignature::kTimeout;
          result.error = "injected timeout (response past deadline)";
          break;
        case FaultKind::kNone:
        case FaultKind::kOutage:  // never rolled by a FaultPlan
          break;
      }
      return result;
    }
  }

  // Adversarial interference (InterferencePlan, if armed for this ISP).
  // Window state is fed first — the fetch that trips a threshold is itself
  // affected — then lockouts preempt the exchange, tarpits consume clock,
  // and hide/flaky windows unplug the HTTP censor for this flow. All rate
  // draws are pure in (plan seed, purpose, vantage, url, attempt); only the
  // probe/lockout windows are history-dependent, and arming one bumps the
  // world's state epoch exactly like a residual hold-down.
  const InterferencePlan* iplan = world_->interferencePlan();
  const InterferenceProfile* iprofile = nullptr;
  std::string iUrl;
  int iAttempt = 0;
  bool censorUnplugged = false;
  if (iplan != nullptr && vantage.isp != nullptr) {
    const InterferenceProfile& profile = iplan->profileFor(vantage);
    if (profile.any()) {
      iprofile = &profile;
      iUrl = request.url.toString();
      iAttempt = options.attemptBase + attempt;
      const InterferenceEffect window = world_->interferenceState().recordFetch(
          vantage.name, world_->now(), profile);
      if (window == InterferenceEffect::kLockout) {
        result.interference = InterferenceEffect::kLockout;
        result.cause = FailureCause::kInterference;
        if (iplan->draw("lockout-sig", vantage, iUrl, iAttempt) < 0.5) {
          result.outcome = FetchOutcome::kConnectFailure;
          result.signature = FailureSignature::kRefused;
          result.error = "connection refused (rate-limit lockout)";
        } else {
          result.outcome = FetchOutcome::kTimeout;
          result.signature = FailureSignature::kTimeout;
          result.error = "connection timed out (rate-limit lockout)";
        }
        return result;
      }
      if (profile.tarpitRate > 0.0 &&
          iplan->draw("tarpit", vantage, iUrl, iAttempt) < profile.tarpitRate) {
        if (options.attemptDeadlineHours > 0 &&
            options.attemptDeadlineHours < profile.tarpitHours) {
          // Deadline cancellation: the client hangs up after its per-attempt
          // budget and sees the distinct slow-drip signature.
          world_->clock().advanceHours(options.attemptDeadlineHours);
          result.interference = InterferenceEffect::kTarpit;
          result.outcome = FetchOutcome::kTimeout;
          result.signature = FailureSignature::kSlowDrip;
          result.cause = FailureCause::kInterference;
          result.error = "slow-drip response cancelled at deadline";
          return result;
        }
        // No (effective) deadline: the drip eventually completes, at full
        // simulated-clock cost. The exchange then proceeds normally.
        world_->clock().advanceHours(profile.tarpitHours);
        result.interference = InterferenceEffect::kTarpit;
      }
      if (window == InterferenceEffect::kHidden) {
        censorUnplugged = true;
        if (result.interference == InterferenceEffect::kNone)
          result.interference = InterferenceEffect::kHidden;
      } else if (profile.flakyRate > 0.0 &&
                 iplan->draw("flaky", vantage, iUrl, iAttempt) <
                     profile.flakyRate) {
        censorUnplugged = true;
        if (result.interference == InterferenceEffect::kNone)
          result.interference = InterferenceEffect::kFlakyOpen;
      }
    }
  }

  const std::string host = util::toLower(request.url.host());
  const std::vector<PacketFilter*>* packetChain =
      vantage.isp != nullptr ? &vantage.isp->packetChain() : nullptr;
  PacketContext pctx{world_->now(), vantage.isp, vantage.name,
                     &world_->flows()};

  // DNS stage of the wire chain: an on-path poisoner races the resolver and
  // wins — its forged answer preempts both the ISP override and the global
  // registry.
  std::optional<net::Ipv4Addr> ip;
  if (packetChain != nullptr) {
    for (PacketFilter* filter : *packetChain) {
      const auto tamper = filter->onDnsQuery(host, pctx);
      if (!tamper) continue;
      if (tamper->kind == DnsTamper::Kind::kNxdomain) {
        result.outcome = FetchOutcome::kDnsFailure;
        result.signature = FailureSignature::kEmptyDns;
        result.cause = FailureCause::kPacketFilter;
        result.error = "NXDOMAIN: " + request.url.host() +
                       " (forged empty answer)";
        return result;
      }
      ip = tamper->answer;
      break;
    }
  }

  // Field vantage points use their ISP's resolver, which may be tampered
  // with (DNS-based censorship); the lab resolves cleanly.
  if (!ip && vantage.isp != nullptr) ip = vantage.isp->dnsOverride(host);
  if (!ip) ip = world_->resolve(request.url.host());
  if (!ip) {
    result.outcome = FetchOutcome::kDnsFailure;
    result.signature = FailureSignature::kEmptyDns;
    result.cause = FailureCause::kOrganic;
    result.error = "NXDOMAIN: " + request.url.host();
    return result;
  }

  // Connect + request stages of the wire chain. The flow is tracked in the
  // shared conntrack, then every filter sees the SYN/ClientHello; cleartext
  // flows additionally expose their first request bytes. TLS payloads are
  // opaque on the wire, so the request stage never runs for https.
  const bool tls = util::iequals(request.url.scheme(), "https");
  if (packetChain != nullptr && !packetChain->empty()) {
    FlowSyn syn{host, *ip, request.url.effectivePort(), tls,
                tls && !options.omitSni};
    world_->flows().track(FlowKey{vantage.name, host, syn.port},
                          world_->now());
    const auto killResult = [&](const FlowKill& kill,
                                FailureSignature resetSignature) {
      result.cause = FailureCause::kPacketFilter;
      switch (kill.kind) {
        case FlowKill::Kind::kReset:
          result.outcome = FetchOutcome::kReset;
          result.signature = resetSignature;
          result.error = "connection reset by peer";
          break;
        case FlowKill::Kind::kDrop:
          result.outcome = FetchOutcome::kTimeout;
          result.signature = FailureSignature::kTimeout;
          result.error = "connection timed out";
          break;
        case FlowKill::Kind::kRefuse:
          result.outcome = FetchOutcome::kConnectFailure;
          result.signature = FailureSignature::kRefused;
          result.error = "connection refused: " + ip->toString() + ":" +
                         std::to_string(syn.port);
          break;
      }
    };
    for (PacketFilter* filter : *packetChain) {
      if (const auto kill = filter->onConnect(syn, pctx)) {
        killResult(*kill, FailureSignature::kRstBeforeBanner);
        return result;
      }
    }
    if (!tls) {
      for (PacketFilter* filter : *packetChain) {
        if (const auto kill = filter->onRequest(syn, request, pctx)) {
          killResult(*kill, FailureSignature::kRstAfterRequest);
          return result;
        }
      }
    }
  }

  // Middleboxes see the policy-effective time: normally `now`, but during an
  // OutagePlan DB-rollback window the chain's view of mutable policy state
  // (category databases, frozen snapshots) reverts to an earlier date.
  const util::SimTime policyNow =
      outages != nullptr ? outages->policyTime(world_->now()) : world_->now();
  InterceptContext ctx{policyNow, vantage.isp, vantage.countryAlpha2,
                       &world_->rng()};

  // Egress middlebox chain (field vantage points only). A box the outage
  // plan has silently stopped fails open: it neither intercepts nor
  // post-processes, exactly as if unplugged. An HTTP-layer proxy only acts
  // once it has the request, so its reset signature is rst-after-request —
  // the same shape a stateless packet injector produces.
  // A hidden (probe-detected) or flaky-open censor behaves as if unplugged
  // for this flow: no intercept, no return-path post-processing.
  if (vantage.isp != nullptr && !censorUnplugged) {
    for (Middlebox* box : vantage.isp->chain()) {
      if (outages != nullptr && outages->middleboxStopped(*box, world_->now()))
        continue;
      const auto action = box->intercept(request, ctx);
      if (!action) continue;
      switch (action->kind) {
        case InterceptAction::Kind::kRespond:
          result.outcome = FetchOutcome::kOk;
          result.response = action->response;
          // Blockpage mimicry: swap the censor's own template for another
          // vendor's to bait misattribution. Pure per-fetch draw.
          if (iprofile != nullptr && iprofile->mimicryRate > 0.0 &&
              !iprofile->mimicPool.empty() &&
              iplan->draw("mimic", vantage, iUrl, iAttempt) <
                  iprofile->mimicryRate) {
            result.response =
                mimicResponse(iplan->drawTemplate(*iprofile, vantage, iUrl,
                                                  iAttempt));
            result.interference = InterferenceEffect::kMimicry;
          }
          return result;
        case InterceptAction::Kind::kReset:
          result.outcome = FetchOutcome::kReset;
          result.signature = FailureSignature::kRstAfterRequest;
          result.cause = FailureCause::kMiddlebox;
          result.error = "connection reset by peer";
          return result;
        case InterceptAction::Kind::kDrop:
          result.outcome = FetchOutcome::kTimeout;
          result.signature = FailureSignature::kTimeout;
          result.cause = FailureCause::kMiddlebox;
          result.error = "connection timed out";
          return result;
      }
    }
  }

  HttpEndpoint* endpoint = world_->endpointAt(*ip, request.url.effectivePort());
  if (endpoint == nullptr) {
    result.outcome = FetchOutcome::kConnectFailure;
    result.signature = FailureSignature::kRefused;
    result.cause = FailureCause::kOrganic;
    result.error = "connection refused: " + ip->toString() + ":" +
                   std::to_string(request.url.effectivePort());
    return result;
  }

  http::Response response = endpoint->handle(request, world_->now());

  // Return path through the chain, innermost middlebox last.
  if (vantage.isp != nullptr && !censorUnplugged) {
    const auto& chain = vantage.isp->chain();
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (outages != nullptr &&
          outages->middleboxStopped(**it, world_->now()))
        continue;
      (*it)->postProcess(request, response, ctx);
    }
  }

  result.outcome = FetchOutcome::kOk;
  result.response = std::move(response);
  return result;
}

std::optional<net::Ipv4Addr> Transport::resolveFrom(
    const VantagePoint& vantage, std::string_view hostname) {
  const std::string host = util::toLower(hostname);
  if (vantage.isp != nullptr) {
    PacketContext pctx{world_->now(), vantage.isp, vantage.name,
                       &world_->flows()};
    for (PacketFilter* filter : vantage.isp->packetChain()) {
      const auto tamper = filter->onDnsQuery(host, pctx);
      if (!tamper) continue;
      if (tamper->kind == DnsTamper::Kind::kNxdomain) return std::nullopt;
      return tamper->answer;
    }
    if (const auto ip = vantage.isp->dnsOverride(host)) return ip;
  }
  return world_->resolve(host);
}

FetchResult Transport::fetchAttempt(const VantagePoint& vantage,
                                    const http::Request& request,
                                    const FetchOptions& options, int attempt) {
  FetchResult result = fetchOnce(vantage, request, options, attempt);
  if (!options.followRedirects) return result;

  int hops = 0;
  while (result.ok() && result.response->isRedirect() &&
         hops < options.maxRedirects) {
    const auto location = result.response->location();
    if (!location) break;

    std::optional<net::Url> target = net::Url::parse(*location);
    if (!target) {
      // Relative redirect: resolve against the current request URL.
      std::string path(*location);
      if (path.empty() || path.front() != '/') break;
      const std::size_t qmark = path.find('?');
      target = net::Url{request.url.scheme(), request.url.host(),
                        request.url.explicitPort(),
                        qmark == std::string::npos ? path : path.substr(0, qmark),
                        qmark == std::string::npos ? "" : path.substr(qmark + 1)};
    }

    std::vector<http::Response> chain = std::move(result.redirectChain);
    chain.push_back(std::move(*result.response));
    result = fetchOnce(vantage, http::Request::get(*target), options, attempt);
    // Keep the accumulated chain regardless of the hop's outcome.
    chain.insert(chain.end(),
                 std::make_move_iterator(result.redirectChain.begin()),
                 std::make_move_iterator(result.redirectChain.end()));
    result.redirectChain = std::move(chain);
    ++hops;
  }
  return result;
}

FetchResult Transport::fetch(const VantagePoint& vantage,
                             const http::Request& request,
                             const FetchOptions& options) {
  const int maxAttempts = std::max(1, options.retry.maxAttempts);
  FetchResult result;
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    result = fetchAttempt(vantage, request, options, attempt);
    result.attempts = attempt + 1;
    if (attempt + 1 == maxAttempts) break;
    if (!options.retry.shouldRetry(result.outcome)) break;
    // Simulated-clock backoff between attempts; the whole world ages, so
    // retries see vendor-feed/license state as a real re-test would.
    world_->clock().advanceHours(options.retry.backoffHours(attempt));
  }
  return result;
}

FetchResult Transport::fetchUrl(const VantagePoint& vantage,
                                std::string_view urlText,
                                const FetchOptions& options) {
  const auto url = net::Url::parse(urlText);
  if (!url) {
    FetchResult result;
    result.outcome = FetchOutcome::kBadUrl;
    result.error = "malformed URL: " + std::string(urlText);
    return result;
  }
  return fetch(vantage, http::Request::get(*url), options);
}

}  // namespace urlf::simnet
