#include "simnet/transport.h"

#include <algorithm>

#include "util/strings.h"

namespace urlf::simnet {

std::string_view toString(FetchOutcome outcome) {
  switch (outcome) {
    case FetchOutcome::kOk: return "ok";
    case FetchOutcome::kDnsFailure: return "dns-failure";
    case FetchOutcome::kConnectFailure: return "connect-failure";
    case FetchOutcome::kTimeout: return "timeout";
    case FetchOutcome::kReset: return "reset";
    case FetchOutcome::kBadUrl: return "bad-url";
  }
  return "unknown";
}

bool RetryPolicy::shouldRetry(FetchOutcome outcome) const {
  switch (outcome) {
    case FetchOutcome::kOk:
    case FetchOutcome::kBadUrl:
      return false;
    case FetchOutcome::kTimeout: return retryOnTimeout;
    case FetchOutcome::kReset: return retryOnReset;
    case FetchOutcome::kDnsFailure: return retryOnDns;
    case FetchOutcome::kConnectFailure: return retryOnConnectFailure;
  }
  return false;
}

std::int64_t RetryPolicy::backoffHours(int attempt) const {
  std::int64_t hours = std::max(0, initialBackoffHours);
  for (int i = 0; i < attempt; ++i) hours *= std::max(1, backoffMultiplier);
  return hours;
}

FetchResult Transport::fetchOnce(const VantagePoint& vantage,
                                 http::Request request, int attempt) {
  FetchResult result;

  const OutagePlan* outages = world_->outagePlan();

  // Permanent vantage death (OutagePlan) preempts everything, including
  // transient fault injection: a dead vantage has no network activity at
  // all, only client-side timeouts.
  if (outages != nullptr && outages->vantageDead(vantage, world_->now())) {
    result.outcome = FetchOutcome::kTimeout;
    result.injectedFault = FaultKind::kOutage;
    result.error = "vantage offline: " + vantage.name +
                   " permanently dead since hour " +
                   std::to_string(outages->deathTime(vantage.name)->hours());
    return result;
  }

  // Injected transient fault (FaultPlan, if the world carries one) preempts
  // the whole exchange. The decision is a pure function of
  // (plan seed, vantage, url, attempt) — see simnet/fault.h.
  if (const FaultPlan* plan = world_->faultPlan()) {
    const FaultKind fault = plan->roll(vantage, request.url.toString(), attempt);
    if (fault != FaultKind::kNone) {
      result.injectedFault = fault;
      switch (fault) {
        case FaultKind::kDnsFlap:
          result.outcome = FetchOutcome::kDnsFailure;
          result.error = "injected transient DNS flap: " + request.url.host();
          break;
        case FaultKind::kConnectFail:
          result.outcome = FetchOutcome::kConnectFailure;
          result.error = "injected transient connect failure";
          break;
        case FaultKind::kLoss:
          result.outcome = FetchOutcome::kTimeout;
          result.error = "injected transient loss (flow blackholed)";
          break;
        case FaultKind::kTimeout:
          result.outcome = FetchOutcome::kTimeout;
          result.error = "injected timeout (response past deadline)";
          break;
        case FaultKind::kNone:
        case FaultKind::kOutage:  // never rolled by a FaultPlan
          break;
      }
      return result;
    }
  }

  // Field vantage points use their ISP's resolver, which may be tampered
  // with (DNS-based censorship); the lab resolves cleanly.
  std::optional<net::Ipv4Addr> ip;
  if (vantage.isp != nullptr)
    ip = vantage.isp->dnsOverride(util::toLower(request.url.host()));
  if (!ip) ip = world_->resolve(request.url.host());
  if (!ip) {
    result.outcome = FetchOutcome::kDnsFailure;
    result.error = "NXDOMAIN: " + request.url.host();
    return result;
  }

  // Middleboxes see the policy-effective time: normally `now`, but during an
  // OutagePlan DB-rollback window the chain's view of mutable policy state
  // (category databases, frozen snapshots) reverts to an earlier date.
  const util::SimTime policyNow =
      outages != nullptr ? outages->policyTime(world_->now()) : world_->now();
  InterceptContext ctx{policyNow, vantage.isp, vantage.countryAlpha2,
                       &world_->rng()};

  // Egress middlebox chain (field vantage points only). A box the outage
  // plan has silently stopped fails open: it neither intercepts nor
  // post-processes, exactly as if unplugged.
  if (vantage.isp != nullptr) {
    for (Middlebox* box : vantage.isp->chain()) {
      if (outages != nullptr && outages->middleboxStopped(*box, world_->now()))
        continue;
      const auto action = box->intercept(request, ctx);
      if (!action) continue;
      switch (action->kind) {
        case InterceptAction::Kind::kRespond:
          result.outcome = FetchOutcome::kOk;
          result.response = action->response;
          return result;
        case InterceptAction::Kind::kReset:
          result.outcome = FetchOutcome::kReset;
          result.error = "connection reset by peer";
          return result;
        case InterceptAction::Kind::kDrop:
          result.outcome = FetchOutcome::kTimeout;
          result.error = "connection timed out";
          return result;
      }
    }
  }

  HttpEndpoint* endpoint = world_->endpointAt(*ip, request.url.effectivePort());
  if (endpoint == nullptr) {
    result.outcome = FetchOutcome::kConnectFailure;
    result.error = "connection refused: " + ip->toString() + ":" +
                   std::to_string(request.url.effectivePort());
    return result;
  }

  http::Response response = endpoint->handle(request, world_->now());

  // Return path through the chain, innermost middlebox last.
  if (vantage.isp != nullptr) {
    const auto& chain = vantage.isp->chain();
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (outages != nullptr &&
          outages->middleboxStopped(**it, world_->now()))
        continue;
      (*it)->postProcess(request, response, ctx);
    }
  }

  result.outcome = FetchOutcome::kOk;
  result.response = std::move(response);
  return result;
}

FetchResult Transport::fetchAttempt(const VantagePoint& vantage,
                                    const http::Request& request,
                                    const FetchOptions& options, int attempt) {
  FetchResult result = fetchOnce(vantage, request, attempt);
  if (!options.followRedirects) return result;

  int hops = 0;
  while (result.ok() && result.response->isRedirect() &&
         hops < options.maxRedirects) {
    const auto location = result.response->location();
    if (!location) break;

    std::optional<net::Url> target = net::Url::parse(*location);
    if (!target) {
      // Relative redirect: resolve against the current request URL.
      std::string path(*location);
      if (path.empty() || path.front() != '/') break;
      const std::size_t qmark = path.find('?');
      target = net::Url{request.url.scheme(), request.url.host(),
                        request.url.explicitPort(),
                        qmark == std::string::npos ? path : path.substr(0, qmark),
                        qmark == std::string::npos ? "" : path.substr(qmark + 1)};
    }

    std::vector<http::Response> chain = std::move(result.redirectChain);
    chain.push_back(std::move(*result.response));
    result = fetchOnce(vantage, http::Request::get(*target), attempt);
    // Keep the accumulated chain regardless of the hop's outcome.
    chain.insert(chain.end(),
                 std::make_move_iterator(result.redirectChain.begin()),
                 std::make_move_iterator(result.redirectChain.end()));
    result.redirectChain = std::move(chain);
    ++hops;
  }
  return result;
}

FetchResult Transport::fetch(const VantagePoint& vantage,
                             const http::Request& request,
                             const FetchOptions& options) {
  const int maxAttempts = std::max(1, options.retry.maxAttempts);
  FetchResult result;
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    result = fetchAttempt(vantage, request, options, attempt);
    result.attempts = attempt + 1;
    if (attempt + 1 == maxAttempts) break;
    if (!options.retry.shouldRetry(result.outcome)) break;
    // Simulated-clock backoff between attempts; the whole world ages, so
    // retries see vendor-feed/license state as a real re-test would.
    world_->clock().advanceHours(options.retry.backoffHours(attempt));
  }
  return result;
}

FetchResult Transport::fetchUrl(const VantagePoint& vantage,
                                std::string_view urlText,
                                const FetchOptions& options) {
  const auto url = net::Url::parse(urlText);
  if (!url) {
    FetchResult result;
    result.outcome = FetchOutcome::kBadUrl;
    result.error = "malformed URL: " + std::string(urlText);
    return result;
  }
  return fetch(vantage, http::Request::get(*url), options);
}

}  // namespace urlf::simnet
