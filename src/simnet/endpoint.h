#ifndef URLF_SIMNET_ENDPOINT_H
#define URLF_SIMNET_ENDPOINT_H

#include "http/message.h"
#include "util/clock.h"

namespace urlf::simnet {

/// Anything that can answer an HTTP request at a bound (ip, port): origin
/// Web servers, filter management consoles, block-page services, vendor
/// portals.
class HttpEndpoint {
 public:
  virtual ~HttpEndpoint() = default;

  HttpEndpoint() = default;
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Handle one request. `now` is the simulation time of the exchange.
  virtual http::Response handle(const http::Request& request,
                                util::SimTime now) = 0;

  /// Human-readable description used in debugging and scan metadata.
  [[nodiscard]] virtual std::string describe() const = 0;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_ENDPOINT_H
