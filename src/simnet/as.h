#ifndef URLF_SIMNET_AS_H
#define URLF_SIMNET_AS_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/ipv4.h"

namespace urlf::simnet {

/// An autonomous system: number, naming, home country, and the prefixes it
/// announces. Addresses for hosts inside the AS are allocated sequentially
/// from its prefixes.
class AutonomousSystem {
 public:
  AutonomousSystem(std::uint32_t asn, std::string name, std::string description,
                   std::string countryAlpha2)
      : asn_(asn),
        name_(std::move(name)),
        description_(std::move(description)),
        country_(std::move(countryAlpha2)) {}

  [[nodiscard]] std::uint32_t asn() const { return asn_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& description() const { return description_; }
  [[nodiscard]] const std::string& country() const { return country_; }
  [[nodiscard]] const std::vector<net::IpPrefix>& prefixes() const {
    return prefixes_;
  }

  void announce(const net::IpPrefix& prefix) { prefixes_.push_back(prefix); }

  /// Allocate the next unused address in this AS (skipping the network
  /// address of each prefix). Throws when the AS is exhausted.
  net::Ipv4Addr allocateAddress() {
    for (; prefixCursor_ < prefixes_.size(); ++prefixCursor_) {
      const auto& prefix = prefixes_[prefixCursor_];
      if (hostCursor_ == 0) hostCursor_ = 1;  // skip network address
      if (hostCursor_ < prefix.size()) return prefix.addressAt(hostCursor_++);
      hostCursor_ = 0;
    }
    throw std::runtime_error("AutonomousSystem " + std::to_string(asn_) +
                             ": address space exhausted");
  }

 private:
  std::uint32_t asn_;
  std::string name_;
  std::string description_;
  std::string country_;
  std::vector<net::IpPrefix> prefixes_;
  std::size_t prefixCursor_ = 0;
  std::uint64_t hostCursor_ = 0;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_AS_H
