#ifndef URLF_SIMNET_MIDDLEBOX_H
#define URLF_SIMNET_MIDDLEBOX_H

#include <optional>
#include <string>

#include "http/message.h"
#include "util/clock.h"
#include "util/rng.h"

namespace urlf::simnet {

class Isp;

/// Context handed to a middlebox for each intercepted exchange.
struct InterceptContext {
  util::SimTime now;
  const Isp* isp = nullptr;      ///< the ISP whose chain is executing
  std::string clientCountry;     ///< alpha-2 of the requesting vantage point
  util::Rng* rng = nullptr;      ///< simulation randomness (never null in use)
};

/// What a middlebox does to an intercepted request when it does not simply
/// let it pass.
struct InterceptAction {
  enum class Kind {
    kRespond,  ///< short-circuit with `response` (block page, redirect, ...)
    kReset,    ///< inject a TCP RST — client sees connection reset
    kDrop,     ///< blackhole the flow — client sees a timeout
  };

  Kind kind = Kind::kRespond;
  http::Response response;  ///< meaningful only for kRespond

  static InterceptAction respond(http::Response r) {
    return {Kind::kRespond, std::move(r)};
  }
  static InterceptAction reset() { return {Kind::kReset, {}}; }
  static InterceptAction drop() { return {Kind::kDrop, {}}; }
};

/// An in-path device in an ISP: sees every outbound subscriber request and
/// may short-circuit it (block page, redirect, RST, blackhole) and/or
/// annotate traffic (proxy Via headers). URL filtering products implement
/// this interface.
class Middlebox {
 public:
  virtual ~Middlebox() = default;

  Middlebox() = default;
  Middlebox(const Middlebox&) = delete;
  Middlebox& operator=(const Middlebox&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Inspect (and possibly annotate) an outbound request. Returning an
  /// action short-circuits the exchange — the origin is never contacted.
  virtual std::optional<InterceptAction> intercept(http::Request& request,
                                                   const InterceptContext& ctx) = 0;

  /// Post-process the origin's response on the way back (e.g. a transparent
  /// proxy stamping Via headers). Default: no-op.
  virtual void postProcess(const http::Request& request, http::Response& response,
                           const InterceptContext& ctx) {
    (void)request;
    (void)response;
    (void)ctx;
  }

  /// A monotone counter covering every mutable input that can change what
  /// intercept() returns for a given (request, now) — e.g. category-database
  /// mutation counts. Verdict memoization is valid only while the epoch (and
  /// the clock) is unchanged. Stateless boxes keep the default 0.
  [[nodiscard]] virtual std::uint64_t stateEpoch() const { return 0; }

  /// True when intercept() is a pure function of (request, now, epoch) —
  /// i.e. it never draws randomness. Boxes that roll dice per request
  /// (license overload, §4.4) must return false so callers neither memoize
  /// their verdicts nor skip replays that would consume RNG draws.
  [[nodiscard]] virtual bool deterministicIntercept() const { return true; }

  /// True when intercept() mutates state beyond its own statistics — e.g.
  /// queueing uncategorized URLs for vendor categorization (§4.4). A
  /// cross-session verdict store (measure::SharedVerdictStore) must never
  /// skip a fetch through such a box: the skipped world would miss the
  /// mutation the solo run performed. Pure classifiers keep the default.
  [[nodiscard]] virtual bool interceptHasSideEffects() const { return false; }
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_MIDDLEBOX_H
