#ifndef URLF_SIMNET_WORLD_H
#define URLF_SIMNET_WORLD_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "geo/geodb.h"
#include "net/ipv4.h"
#include "simnet/as.h"
#include "simnet/endpoint.h"
#include "simnet/fault.h"
#include "simnet/flow.h"
#include "simnet/interference.h"
#include "simnet/isp.h"
#include "simnet/middlebox.h"
#include "simnet/outage.h"
#include "simnet/packet_filter.h"
#include "util/clock.h"
#include "util/rng.h"

namespace urlf::simnet {

class WorldStream;

/// An externally reachable (ip, port) with the endpoint behind it — the unit
/// a banner scanner enumerates.
struct Surface {
  net::Ipv4Addr ip;
  std::uint16_t port = 80;
  HttpEndpoint* endpoint = nullptr;
};

/// The simulated Internet.
///
/// Owns the clock, randomness, autonomous systems, ISPs, endpoints,
/// middleboxes, the DNS registry, and the (ip,port)->endpoint binding table.
/// Everything is deterministic given the construction seed.
class World {
 public:
  explicit World(std::uint64_t seed);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] util::SimClock& clock() { return clock_; }
  [[nodiscard]] const util::SimClock& clock() const { return clock_; }
  [[nodiscard]] util::SimTime now() const { return clock_.now(); }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  // --- substrate faults ---------------------------------------------------

  /// Install (or replace) the transient-fault model the transport consults.
  /// A zero-rate plan is behaviourally identical to having no plan.
  void setFaultPlan(FaultPlan plan) { faultPlan_ = std::move(plan); }
  void clearFaultPlan() { faultPlan_.reset(); }
  [[nodiscard]] const FaultPlan* faultPlan() const {
    return faultPlan_ ? &*faultPlan_ : nullptr;
  }

  /// Install (or replace) the persistent-failure model (vantage deaths,
  /// middlebox silent-stops, DB rollback windows). Like the fault plan, an
  /// empty plan is behaviourally identical to having none.
  void setOutagePlan(OutagePlan plan) { outagePlan_ = std::move(plan); }
  void clearOutagePlan() { outagePlan_.reset(); }
  [[nodiscard]] const OutagePlan* outagePlan() const {
    return outagePlan_ ? &*outagePlan_ : nullptr;
  }

  /// Install (or replace) the adversarial-interference model (probe
  /// detection, lockouts, tarpits, flaky enforcement, mimicry). Installing
  /// a plan resets any sliding-window state; a plan with all-inert profiles
  /// is behaviourally identical to having none.
  void setInterferencePlan(InterferencePlan plan) {
    interferencePlan_ = std::move(plan);
    interference_.clear();
  }
  void clearInterferencePlan() {
    interferencePlan_.reset();
    interference_.clear();
  }
  [[nodiscard]] const InterferencePlan* interferencePlan() const {
    return interferencePlan_ ? &*interferencePlan_ : nullptr;
  }

  /// Sliding-window probe/lockout counters the transport feeds — shared
  /// across all interfering ISPs like the FlowTable is across packet
  /// filters.
  [[nodiscard]] InterferenceState& interferenceState() { return interference_; }
  [[nodiscard]] const InterferenceState& interferenceState() const {
    return interference_;
  }

  // --- topology -----------------------------------------------------------

  /// Create and register an AS. Throws if the ASN already exists.
  AutonomousSystem& createAs(std::uint32_t asn, std::string name,
                             std::string description, std::string countryAlpha2,
                             std::vector<net::IpPrefix> prefixes);

  [[nodiscard]] AutonomousSystem* findAs(std::uint32_t asn);
  [[nodiscard]] const AutonomousSystem* findAs(std::uint32_t asn) const;

  /// Create an ISP operating the given ASes (which must already exist).
  Isp& createIsp(std::string name, std::string countryAlpha2,
                 std::vector<std::uint32_t> asns);

  [[nodiscard]] const std::vector<std::unique_ptr<Isp>>& isps() const {
    return isps_;
  }
  [[nodiscard]] Isp* findIsp(std::string_view name);

  /// Allocate the next free address in an AS. Throws on unknown ASN.
  net::Ipv4Addr allocateAddress(std::uint32_t asn);

  // --- ownership ----------------------------------------------------------

  /// Construct an endpoint owned by the world; returns a stable reference.
  template <typename T, typename... Args>
  T& makeEndpoint(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    endpoints_.push_back(std::move(owned));
    return ref;
  }

  /// Construct a middlebox owned by the world; returns a stable reference.
  template <typename T, typename... Args>
  T& makeMiddlebox(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    middleboxes_.push_back(std::move(owned));
    return ref;
  }

  /// Construct a packet-level filter owned by the world; returns a stable
  /// reference. Attach it to an ISP's wire chain with attachPacketFilter.
  template <typename T, typename... Args>
  T& makePacketFilter(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    packetFilters_.push_back(std::move(owned));
    return ref;
  }

  [[nodiscard]] const std::vector<std::unique_ptr<PacketFilter>>&
  packetFilters() const {
    return packetFilters_;
  }

  /// The conntrack every ISP's packet filters share (DESIGN.md §4.8). Flows
  /// are tracked lazily — worlds without packet filters never touch it.
  [[nodiscard]] FlowTable& flows() { return flows_; }
  [[nodiscard]] const FlowTable& flows() const { return flows_; }

  /// Every middlebox the world owns, in creation order. Exposed so
  /// cross-cutting drivers (the longitudinal monitor) can enumerate
  /// deployments — e.g. to normalize policies or compute update-lag bounds —
  /// without holding references to each one.
  [[nodiscard]] const std::vector<std::unique_ptr<Middlebox>>& middleboxes()
      const {
    return middleboxes_;
  }

  /// Sum of every owned middlebox's stateEpoch(): changes whenever any
  /// mutable filtering input (category databases, frozen snapshots) changes.
  /// Together with the clock this keys verdict memoization — see
  /// measure::Client.
  /// Packet filters and the flow table fold in too: a residual hold-down
  /// arm changes what later fetches see exactly like a DB mutation does.
  [[nodiscard]] std::uint64_t middleboxStateEpoch() const {
    std::uint64_t epoch = flows_.stateEpoch() + interference_.stateEpoch();
    for (const auto& box : middleboxes_) epoch += box->stateEpoch();
    for (const auto& filter : packetFilters_) epoch += filter->stateEpoch();
    return epoch;
  }

  // --- naming & binding ---------------------------------------------------

  /// Register a DNS A record. Re-registering a name overwrites it.
  void registerHostname(std::string hostname, net::Ipv4Addr addr);

  /// Remove a DNS A record (domain teardown).
  void unregisterHostname(const std::string& hostname);

  [[nodiscard]] std::optional<net::Ipv4Addr> resolve(
      const std::string& hostname) const;

  /// Bind an endpoint at (ip, port). `externallyVisible` controls whether a
  /// global scan can see it — the paper's identification method only works
  /// on externally visible installations (§3.1, Table 5).
  void bind(net::Ipv4Addr ip, std::uint16_t port, HttpEndpoint& endpoint,
            bool externallyVisible);

  void unbind(net::Ipv4Addr ip, std::uint16_t port);

  [[nodiscard]] HttpEndpoint* endpointAt(net::Ipv4Addr ip,
                                         std::uint16_t port) const;

  /// The endpoint at (ip, port) only if it is externally visible — what an
  /// Internet-wide scanner can reach. Firewalled bindings return nullptr.
  [[nodiscard]] HttpEndpoint* externalEndpointAt(net::Ipv4Addr ip,
                                                 std::uint16_t port) const;

  /// All externally visible surfaces, in binding order.
  [[nodiscard]] std::vector<Surface> externalSurfaces() const;

  /// All registered autonomous systems (ascending ASN).
  [[nodiscard]] std::vector<const AutonomousSystem*> allAses() const;

  // --- streamed hosts -----------------------------------------------------

  /// Attach a host stream: procedurally generated hosts the world never
  /// holds resident. Streamed hosts are not bound — they never appear in
  /// externalSurfaces() — but they answer through probeExternal and are
  /// enumerated shard-by-shard by scan::crawlStream. Pass nullptr to detach.
  /// (WorldStream::materializeInto is the eager reference mode that binds
  /// every streamed host as a regular endpoint instead.)
  void attachHostStream(std::shared_ptr<const WorldStream> stream) {
    hostStream_ = std::move(stream);
  }
  [[nodiscard]] const WorldStream* hostStream() const {
    return hostStream_.get();
  }

  /// Probe (ip, port) as an external client would: a bound, externally
  /// visible endpoint answers first; otherwise an attached host stream
  /// materializes the host on demand (a pure function of the stream seed and
  /// host id, so repeated probes are byte-identical). Returns nullopt when
  /// nothing externally reachable answers.
  [[nodiscard]] std::optional<http::Response> probeExternal(
      net::Ipv4Addr ip, std::uint16_t port,
      const http::Request& request) const;

  // --- vantage points -----------------------------------------------------

  VantagePoint& createVantage(std::string name, std::string countryAlpha2,
                              const Isp* isp);
  [[nodiscard]] const std::vector<std::unique_ptr<VantagePoint>>& vantages()
      const {
    return vantages_;
  }
  [[nodiscard]] VantagePoint* findVantage(std::string_view name);

  // --- derived databases --------------------------------------------------

  /// Build a MaxMind-style geolocation DB from the AS registry.
  [[nodiscard]] geo::GeoDatabase buildGeoDatabase(double errorRate = 0.0) const;

  /// Build a Team Cymru-style whois DB from the AS registry.
  [[nodiscard]] geo::AsnDatabase buildAsnDatabase() const;

 private:
  static std::uint64_t bindingKey(net::Ipv4Addr ip, std::uint16_t port) {
    return (std::uint64_t{ip.value()} << 16) | port;
  }

  struct Binding {
    net::Ipv4Addr ip;
    std::uint16_t port;
    HttpEndpoint* endpoint;
    bool externallyVisible;
  };

  util::SimClock clock_;
  util::Rng rng_;
  std::optional<FaultPlan> faultPlan_;
  std::optional<OutagePlan> outagePlan_;
  std::optional<InterferencePlan> interferencePlan_;
  InterferenceState interference_;
  std::map<std::uint32_t, std::unique_ptr<AutonomousSystem>> ases_;
  std::vector<std::unique_ptr<Isp>> isps_;
  std::vector<std::unique_ptr<HttpEndpoint>> endpoints_;
  std::vector<std::unique_ptr<Middlebox>> middleboxes_;
  std::vector<std::unique_ptr<PacketFilter>> packetFilters_;
  FlowTable flows_;
  std::vector<std::unique_ptr<VantagePoint>> vantages_;
  std::map<std::string, net::Ipv4Addr> dns_;
  std::map<std::uint64_t, std::size_t> bindingIndex_;  ///< key -> bindings_ slot
  std::vector<Binding> bindings_;                      ///< insertion order kept
  std::shared_ptr<const WorldStream> hostStream_;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_WORLD_H
