#include "simnet/fault.h"

#include "util/hash.h"

namespace urlf::simnet {

using util::fnv1a64;
using util::keyedUniform01;
using util::splitmix64Next;

std::string_view toString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDnsFlap: return "dns-flap";
    case FaultKind::kConnectFail: return "connect-fail";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kOutage: return "outage";
  }
  return "unknown";
}

const FaultRates& FaultPlan::ratesFor(const VantagePoint& vantage) const {
  if (vantage.isp != nullptr) {
    const auto it = ispRates_.find(vantage.isp->name());
    if (it != ispRates_.end()) return it->second;
  }
  const auto it = countryRates_.find(vantage.countryAlpha2);
  if (it != countryRates_.end()) return it->second;
  return defaults_;
}

FaultKind FaultPlan::roll(const VantagePoint& vantage, std::string_view url,
                          int attempt) const {
  const FaultRates& rates = ratesFor(vantage);
  if (rates.zero()) return FaultKind::kNone;

  // Mix (seed, vantage, url, attempt) through the splitmix64 schedule; each
  // component advances the key so e.g. ("a", 1) and ("a1",) differ.
  std::uint64_t key = seed_;
  splitmix64Next(key);
  key ^= fnv1a64(vantage.name);
  splitmix64Next(key);
  key ^= fnv1a64(url);
  splitmix64Next(key);
  key ^= static_cast<std::uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL;

  // One draw, cumulative thresholds: at most one process fires per attempt.
  const double u = keyedUniform01(key);
  double edge = rates.dnsFlap;
  if (u < edge) return FaultKind::kDnsFlap;
  edge += rates.connectFail;
  if (u < edge) return FaultKind::kConnectFail;
  edge += rates.loss;
  if (u < edge) return FaultKind::kLoss;
  edge += rates.timeout;
  if (u < edge) return FaultKind::kTimeout;
  return FaultKind::kNone;
}

}  // namespace urlf::simnet
