#include "simnet/fault.h"

namespace urlf::simnet {

namespace {

constexpr std::uint64_t splitmix64Next(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// FNV-1a over a string, folded into the splitmix64 key schedule.
constexpr std::uint64_t hashText(std::string_view text) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x00000100000001B3ULL;
  }
  return h;
}

/// Uniform double in [0, 1) from the keyed stream — mirrors Rng::uniform01.
double keyedUniform01(std::uint64_t key) noexcept {
  return static_cast<double>(splitmix64Next(key) >> 11) * 0x1.0p-53;
}

}  // namespace

std::string_view toString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDnsFlap: return "dns-flap";
    case FaultKind::kConnectFail: return "connect-fail";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kTimeout: return "timeout";
  }
  return "unknown";
}

const FaultRates& FaultPlan::ratesFor(const VantagePoint& vantage) const {
  if (vantage.isp != nullptr) {
    const auto it = ispRates_.find(vantage.isp->name());
    if (it != ispRates_.end()) return it->second;
  }
  const auto it = countryRates_.find(vantage.countryAlpha2);
  if (it != countryRates_.end()) return it->second;
  return defaults_;
}

FaultKind FaultPlan::roll(const VantagePoint& vantage, std::string_view url,
                          int attempt) const {
  const FaultRates& rates = ratesFor(vantage);
  if (rates.zero()) return FaultKind::kNone;

  // Mix (seed, vantage, url, attempt) through the splitmix64 schedule; each
  // component advances the key so e.g. ("a", 1) and ("a1",) differ.
  std::uint64_t key = seed_;
  splitmix64Next(key);
  key ^= hashText(vantage.name);
  splitmix64Next(key);
  key ^= hashText(url);
  splitmix64Next(key);
  key ^= static_cast<std::uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL;

  // One draw, cumulative thresholds: at most one process fires per attempt.
  const double u = keyedUniform01(key);
  double edge = rates.dnsFlap;
  if (u < edge) return FaultKind::kDnsFlap;
  edge += rates.connectFail;
  if (u < edge) return FaultKind::kConnectFail;
  edge += rates.loss;
  if (u < edge) return FaultKind::kLoss;
  edge += rates.timeout;
  if (u < edge) return FaultKind::kTimeout;
  return FaultKind::kNone;
}

}  // namespace urlf::simnet
