#ifndef URLF_SIMNET_CHURN_STREAM_H
#define URLF_SIMNET_CHURN_STREAM_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "simnet/world_stream.h"

namespace urlf::simnet {

/// Per-tick churn rates over a base host stream. All draws are pure keyed
/// hashes of (seed, host id, tick) — no shared RNG stream — so any host's
/// state at any tick can be recomputed independently and in any order.
struct ChurnConfig {
  /// Per-host per-tick probability of a content redraw (new server header,
  /// new page phrase, fresh bait roll) — a hosting migration or rebrand.
  double rebrandRate = 0.0;
  /// Per-host per-tick probability of serving a registrar parking page
  /// instead of its content — birth/death churn without address churn.
  double parkRate = 0.0;
  /// Bait probability of a rebrand redraw (matches the base stream's
  /// ProceduralHostConfig::baitFraction so the keyword population stays
  /// stationary while individual members churn).
  double baitFraction = 0.01;
};

/// A deterministic churn overlay over another WorldStream: the monitor's
/// change feed. `setTick` selects the simulation epoch; `host(id)` then
/// applies the overlay for that tick on top of the base host. Addresses,
/// ports, hostnames, countries, and shard layout never change — only the
/// served content does — so doc-id layout stays stable across ticks and an
/// incremental index rebuild touches exactly the cells holding dirty hosts.
///
/// `dirtyAt(id, tick)` is the change-feed predicate: true when the host's
/// observable content at `tick` differs from `tick - 1`. It is exact (not an
/// over-approximation): parked state is a fresh keyed draw per tick and
/// rebrand events redraw content keyed on the event tick, so content is a
/// pure function of (seed, id, last rebrand tick, parked-now).
class ChurnHostStream final : public WorldStream {
 public:
  ChurnHostStream(std::shared_ptr<const WorldStream> base, std::uint64_t seed,
                  ChurnConfig config);

  /// Select the epoch `host()` renders. Ticks start at 0 (= pristine base
  /// stream; no churn draws apply at tick 0).
  void setTick(std::uint64_t tick) { tick_ = tick; }
  [[nodiscard]] std::uint64_t tick() const { return tick_; }
  [[nodiscard]] const ChurnConfig& config() const { return config_; }

  /// Did a rebrand event fire for this host at exactly `tick`?
  [[nodiscard]] bool rebrandEventAt(std::uint64_t id, std::uint64_t tick) const;
  /// Is this host serving the parking page at `tick`?
  [[nodiscard]] bool parkedAt(std::uint64_t id, std::uint64_t tick) const;
  /// Did this host's observable content change between tick-1 and tick?
  [[nodiscard]] bool dirtyAt(std::uint64_t id, std::uint64_t tick) const;
  /// Largest t <= current tick at which the host's content changed; 0 when
  /// it has never churned. Monotone per host — the incremental identifier
  /// uses it as the surface epoch for validation-cache invalidation.
  [[nodiscard]] std::uint64_t lastContentChange(std::uint64_t id) const;

  // --- WorldStream --------------------------------------------------------
  [[nodiscard]] std::uint64_t hostCount() const override {
    return base_->hostCount();
  }
  [[nodiscard]] StreamedHost host(std::uint64_t id) const override;
  [[nodiscard]] std::optional<std::uint64_t> hostAt(
      net::Ipv4Addr ip, std::uint16_t port) const override {
    return base_->hostAt(ip, port);
  }
  [[nodiscard]] std::vector<HostShard> shards(
      std::uint64_t targetHostsPerShard) const override {
    return base_->shards(targetHostsPerShard);
  }
  void announceInto(World& world) const override {
    base_->announceInto(world);
  }

 private:
  /// Last rebrand event at or before `tick` (0 = never).
  [[nodiscard]] std::uint64_t lastRebrandTick(std::uint64_t id,
                                              std::uint64_t tick) const;

  std::shared_ptr<const WorldStream> base_;
  std::uint64_t seed_ = 0;
  ChurnConfig config_;
  std::uint64_t tick_ = 0;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_CHURN_STREAM_H
