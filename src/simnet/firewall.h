#ifndef URLF_SIMNET_FIREWALL_H
#define URLF_SIMNET_FIREWALL_H

#include <string>
#include <vector>

#include "simnet/middlebox.h"
#include "util/strings.h"

namespace urlf::simnet {

/// A national-firewall-style censor that injects TCP resets when the
/// requested host or path matches a keyword — censorship *without* block
/// pages, the ambiguous mechanism §4.1 deliberately avoids ("we avoid
/// ambiguities such as censorship via dropped packets or TCP resets").
/// Included as a contrast baseline: the measurement client sees these
/// blocks as kBlockedOther with no product attribution.
class KeywordResetFirewall : public Middlebox {
 public:
  explicit KeywordResetFirewall(std::string name, std::vector<std::string>
                                    keywords,
                                bool dropInsteadOfReset = false)
      : name_(std::move(name)),
        keywords_(std::move(keywords)),
        drop_(dropInsteadOfReset) {}

  [[nodiscard]] std::string name() const override { return name_; }

  std::optional<InterceptAction> intercept(
      http::Request& request, const InterceptContext& /*ctx*/) override {
    const std::string target = request.url.toString();
    for (const auto& keyword : keywords_) {
      if (util::icontains(target, keyword)) {
        ++resetsInjected_;
        return drop_ ? InterceptAction::drop() : InterceptAction::reset();
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t resetsInjected() const { return resetsInjected_; }

 private:
  std::string name_;
  std::vector<std::string> keywords_;
  bool drop_;
  std::uint64_t resetsInjected_ = 0;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_FIREWALL_H
