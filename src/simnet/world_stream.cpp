#include "simnet/world_stream.h"

#include <algorithm>
#include <stdexcept>

#include "net/cctld.h"
#include "simnet/world.h"
#include "util/hash.h"
#include "util/strings.h"

namespace urlf::simnet {

std::unique_ptr<OriginServer> WorldStream::materializeEndpoint(
    const StreamedHost& host) {
  auto server = std::make_unique<OriginServer>(host.hostname,
                                               host.serverHeader);
  server->setPage("/", host.page);
  return server;
}

void WorldStream::materializeInto(World& world) const {
  const std::uint64_t count = hostCount();
  for (std::uint64_t id = 0; id < count; ++id) {
    const auto spec = host(id);
    auto& server =
        world.makeEndpoint<OriginServer>(spec.hostname, spec.serverHeader);
    server.setPage("/", spec.page);
    world.bind(spec.ip, spec.port, server, /*externallyVisible=*/true);
    world.registerHostname(spec.hostname, spec.ip);
  }
}

namespace {

/// Bait phrases mirror the RandomWorld decoys: banners that trip the Table 2
/// Shodan keywords but fail active validation.
constexpr std::string_view kBaits[] = {
    "webadmin tutorial",
    "proxysg review",
    "url blocked faq",
    "blockpage.cgi clone",
};
constexpr std::string_view kTopics[] = {
    "gardening tips",
    "weather report",
    "local news digest",
    "cooking recipes",
};
constexpr std::string_view kServers[] = {
    "Apache/2.2.22 (Unix)",
    "nginx/1.2.1",
    "lighttpd/1.4.28",
    "Microsoft-IIS/6.0",
};

/// Addresses usable inside one /12 block (network address reserved, like
/// AutonomousSystem::allocateAddress does).
constexpr std::uint64_t kBlockCapacity = (1ULL << 20) - 1;

}  // namespace

ProceduralHostStream::ProceduralHostStream(std::uint64_t seed,
                                           ProceduralHostConfig config)
    : seed_(seed), config_(config) {
  if (config_.countries <= 0)
    throw std::invalid_argument("ProceduralHostStream: countries must be > 0");
  const auto registry = net::allCountries();
  if (static_cast<std::size_t>(config_.countries) > registry.size())
    throw std::invalid_argument(
        "ProceduralHostStream: more countries than the registry has");
  for (int c = 0; c < config_.countries; ++c)
    if (blockSize(c) > kBlockCapacity)
      throw std::invalid_argument(
          "ProceduralHostStream: a country block exceeds its /12 prefix");
}

std::uint64_t ProceduralHostStream::blockStart(int country) const {
  const auto c = static_cast<std::uint64_t>(country);
  const auto n = static_cast<std::uint64_t>(config_.countries);
  const std::uint64_t q = config_.hosts / n;
  const std::uint64_t r = config_.hosts % n;
  return c * q + std::min<std::uint64_t>(c, r);
}

std::uint64_t ProceduralHostStream::blockSize(int country) const {
  const auto c = static_cast<std::uint64_t>(country);
  const auto n = static_cast<std::uint64_t>(config_.countries);
  return config_.hosts / n + (c < config_.hosts % n ? 1 : 0);
}

int ProceduralHostStream::countryOf(std::uint64_t id) const {
  const auto n = static_cast<std::uint64_t>(config_.countries);
  const std::uint64_t q = config_.hosts / n;
  const std::uint64_t r = config_.hosts % n;
  // The first r blocks have q+1 hosts, the rest q.
  if (q == 0) return static_cast<int>(id);
  if (id < (q + 1) * r) return static_cast<int>(id / (q + 1));
  return static_cast<int>(r + (id - (q + 1) * r) / q);
}

std::uint32_t ProceduralHostStream::prefixBase(int country) const {
  const auto c = static_cast<std::uint32_t>(country);
  // Marching /12s from 100.0.0.0 — disjoint from the 70.x RandomWorld
  // prefixes and any in-tree scenario space.
  return ((100u + c / 16u) << 24) | ((c % 16u) << 20);
}

std::string_view ProceduralHostStream::alpha2(int country) const {
  return net::allCountries()[static_cast<std::size_t>(country)].alpha2;
}

StreamedHost ProceduralHostStream::host(std::uint64_t id) const {
  if (id >= config_.hosts)
    throw std::out_of_range("ProceduralHostStream::host: id out of range");
  const int c = countryOf(id);
  const std::uint64_t offset = id - blockStart(c);
  const std::string cc(alpha2(c));

  StreamedHost out;
  out.id = id;
  out.ip = net::Ipv4Addr{
      static_cast<std::uint32_t>(prefixBase(c) + 1 + offset)};
  out.port = config_.port;
  out.countryAlpha2 = cc;
  out.hostname =
      "h" + std::to_string(id) + "." + util::toLower(cc) + ".stream.example";

  // Keyed draws: no shared stream, so generation order never matters.
  std::uint64_t key = seed_ ^ (0x57EA4D5EEDULL + id * 0x9E3779B97F4A7C15ULL);
  const std::uint64_t pick = util::splitmix64Next(key);
  const double baitDraw = util::keyedUniform01(key);
  out.serverHeader = std::string(kServers[pick % std::size(kServers)]);

  const bool bait = baitDraw < config_.baitFraction;
  const auto phrase = bait ? kBaits[(pick >> 8) % std::size(kBaits)]
                           : kTopics[(pick >> 8) % std::size(kTopics)];
  out.page.title = "Host " + std::to_string(id) + " - " + std::string(phrase);
  out.page.body = "<h1>" + std::string(phrase) + "</h1><p>served by " +
                  out.hostname + "</p>";
  return out;
}

std::optional<std::uint64_t> ProceduralHostStream::hostAt(
    net::Ipv4Addr ip, std::uint16_t port) const {
  if (port != config_.port) return std::nullopt;
  const std::uint32_t value = ip.value();
  const std::uint32_t a = value >> 24;
  if (a < 100) return std::nullopt;
  const std::uint32_t c = (a - 100) * 16 + ((value >> 20) & 0xF);
  if (c >= static_cast<std::uint32_t>(config_.countries)) return std::nullopt;
  const std::uint32_t low = value & 0xFFFFF;
  if (low == 0) return std::nullopt;  // network address never assigned
  const std::uint64_t offset = low - 1;
  if (offset >= blockSize(static_cast<int>(c))) return std::nullopt;
  return blockStart(static_cast<int>(c)) + offset;
}

std::vector<HostShard> ProceduralHostStream::shards(
    std::uint64_t targetHostsPerShard) const {
  if (targetHostsPerShard == 0) targetHostsPerShard = 1;
  std::vector<HostShard> out;
  for (int c = 0; c < config_.countries; ++c) {
    const std::uint64_t start = blockStart(c);
    const std::uint64_t size = blockSize(c);
    const auto base = net::Ipv4Addr{prefixBase(c)};
    for (std::uint64_t chunk = 0, begin = 0; begin < size;
         ++chunk, begin += targetHostsPerShard) {
      const std::uint64_t end = std::min(size, begin + targetHostsPerShard);
      HostShard shard;
      shard.label = std::string(alpha2(c)) + "/" + base.toString() + "/12#" +
                    std::to_string(chunk);
      shard.begin = start + begin;
      shard.end = start + end;
      out.push_back(std::move(shard));
    }
  }
  return out;
}

void ProceduralHostStream::announceInto(World& world) const {
  for (int c = 0; c < config_.countries; ++c) {
    const std::string cc(alpha2(c));
    world.createAs(config_.baseAsn + static_cast<std::uint32_t>(c),
                   "STREAM-AS-" + cc, "Streamed hosts of " + cc, cc,
                   {net::IpPrefix{net::Ipv4Addr{prefixBase(c)}, 12}});
  }
}

}  // namespace urlf::simnet
