#ifndef URLF_SIMNET_ISP_H
#define URLF_SIMNET_ISP_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "simnet/middlebox.h"
#include "simnet/packet_filter.h"

namespace urlf::simnet {

/// An Internet service provider: a named network in one country, built on
/// one or more ASes, with an ordered chain of in-path middleboxes that every
/// subscriber request traverses.
class Isp {
 public:
  Isp(std::string name, std::string countryAlpha2)
      : name_(std::move(name)), country_(std::move(countryAlpha2)) {}

  Isp(const Isp&) = delete;
  Isp& operator=(const Isp&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& country() const { return country_; }
  [[nodiscard]] const std::vector<std::uint32_t>& asns() const { return asns_; }

  void addAsn(std::uint32_t asn) { asns_.push_back(asn); }

  /// Append a middlebox to the egress chain (non-owning; the World owns it).
  void attachMiddlebox(Middlebox& box) { chain_.push_back(&box); }

  [[nodiscard]] const std::vector<Middlebox*>& chain() const { return chain_; }

  /// Append a packet-level filter to the wire chain (non-owning; the World
  /// owns it). Packet filters sit *under* the HTTP middleboxes: they see the
  /// subscriber's DNS queries, SYNs/ClientHellos, and cleartext request
  /// bytes before any proxy can answer.
  void attachPacketFilter(PacketFilter& filter) {
    packetChain_.push_back(&filter);
  }

  [[nodiscard]] const std::vector<PacketFilter*>& packetChain() const {
    return packetChain_;
  }

  /// Primary ASN (the first one) — what Table 3 reports per ISP.
  [[nodiscard]] std::uint32_t primaryAsn() const {
    return asns_.empty() ? 0 : asns_.front();
  }

  // --- DNS-based censorship -------------------------------------------------
  // Some censors tamper with their resolvers instead of (or besides)
  // deploying URL filters: a censored hostname resolves to a sinkhole or a
  // block server. Subscribers using the ISP resolver get the override; the
  // lab does not — one of the non-block-page mechanisms §4.1 sets aside.

  /// Make `hostname` resolve to `target` for this ISP's subscribers.
  void addDnsOverride(const std::string& hostname, net::Ipv4Addr target) {
    dnsOverrides_[hostname] = target;
  }
  void removeDnsOverride(const std::string& hostname) {
    dnsOverrides_.erase(hostname);
  }
  [[nodiscard]] std::optional<net::Ipv4Addr> dnsOverride(
      const std::string& hostname) const {
    const auto it = dnsOverrides_.find(hostname);
    if (it == dnsOverrides_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::string name_;
  std::string country_;
  std::vector<std::uint32_t> asns_;
  std::vector<Middlebox*> chain_;
  std::vector<PacketFilter*> packetChain_;
  std::map<std::string, net::Ipv4Addr> dnsOverrides_;
};

/// A measurement vantage point: either inside an ISP ("field") or in the
/// uncensored lab (isp == nullptr), mirroring §4.1 of the paper.
struct VantagePoint {
  std::string name;          ///< e.g. "field-etisalat" or "lab-toronto"
  std::string countryAlpha2; ///< "CA" for the lab
  const Isp* isp = nullptr;  ///< nullptr = uncensored lab network

  [[nodiscard]] bool isLab() const { return isp == nullptr; }
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_ISP_H
