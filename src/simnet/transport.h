#ifndef URLF_SIMNET_TRANSPORT_H
#define URLF_SIMNET_TRANSPORT_H

#include <optional>
#include <string>
#include <vector>

#include "http/message.h"
#include "simnet/isp.h"
#include "simnet/world.h"

namespace urlf::simnet {

/// How a single fetch ended at the transport level.
enum class FetchOutcome {
  kOk,              ///< got an HTTP response (possibly a block page)
  kDnsFailure,      ///< hostname did not resolve
  kConnectFailure,  ///< nothing listening at (ip, port)
  kTimeout,         ///< flow blackholed in transit
  kReset,           ///< TCP RST injected in transit
};

[[nodiscard]] std::string_view toString(FetchOutcome outcome);

/// The result of fetching a URL from a vantage point.
struct FetchResult {
  FetchOutcome outcome = FetchOutcome::kOk;
  std::optional<http::Response> response;  ///< set when outcome == kOk
  /// Intermediate 3xx responses consumed while following redirects.
  std::vector<http::Response> redirectChain;
  std::string error;  ///< human-readable detail for non-kOk outcomes

  [[nodiscard]] bool ok() const {
    return outcome == FetchOutcome::kOk && response.has_value();
  }
};

struct FetchOptions {
  bool followRedirects = true;
  int maxRedirects = 5;
};

/// Client-side HTTP over the simulated Internet.
///
/// A fetch from a field vantage point traverses its ISP's middlebox chain
/// (where URL filters may block it); a fetch from the lab vantage goes
/// straight to the origin. This is the only I/O primitive the measurement
/// methodology uses.
class Transport {
 public:
  explicit Transport(World& world) : world_(&world) {}

  [[nodiscard]] FetchResult fetch(const VantagePoint& vantage,
                                  const http::Request& request,
                                  const FetchOptions& options = {});

  /// Convenience: build a GET for `urlText` and fetch it. Malformed URLs
  /// yield kDnsFailure with a descriptive error.
  [[nodiscard]] FetchResult fetchUrl(const VantagePoint& vantage,
                                     std::string_view urlText,
                                     const FetchOptions& options = {});

 private:
  [[nodiscard]] FetchResult fetchOnce(const VantagePoint& vantage,
                                      http::Request request);

  World* world_;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_TRANSPORT_H
