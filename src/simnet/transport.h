#ifndef URLF_SIMNET_TRANSPORT_H
#define URLF_SIMNET_TRANSPORT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "http/message.h"
#include "simnet/fault.h"
#include "simnet/isp.h"
#include "simnet/world.h"

namespace urlf::simnet {

/// How a single fetch ended at the transport level.
enum class FetchOutcome {
  kOk,              ///< got an HTTP response (possibly a block page)
  kDnsFailure,      ///< hostname did not resolve
  kConnectFailure,  ///< nothing listening at (ip, port)
  kTimeout,         ///< flow blackholed in transit
  kReset,           ///< TCP RST injected in transit
  kBadUrl,          ///< the URL never parsed — no network activity happened
};

[[nodiscard]] std::string_view toString(FetchOutcome outcome);

/// The result of fetching a URL from a vantage point.
struct FetchResult {
  FetchOutcome outcome = FetchOutcome::kOk;
  std::optional<http::Response> response;  ///< set when outcome == kOk
  /// Intermediate 3xx responses consumed while following redirects.
  std::vector<http::Response> redirectChain;
  std::string error;  ///< human-readable detail for non-kOk outcomes
  /// The injected fault that produced this outcome, if any — keeps
  /// fault-rate accounting separable from organic failures.
  FaultKind injectedFault = FaultKind::kNone;
  /// Attempts consumed, including the final one (1 = no retry happened).
  int attempts = 1;

  [[nodiscard]] bool ok() const {
    return outcome == FetchOutcome::kOk && response.has_value();
  }
};

/// When and how often a transient failure is re-fetched. Backoff runs on the
/// simulated clock: the world advances `backoffHours(attempt)` hours after
/// failed attempt `attempt` (0-based), doubling (by default) each time.
struct RetryPolicy {
  int maxAttempts = 1;  ///< total attempts; 1 disables retrying
  int initialBackoffHours = 1;
  int backoffMultiplier = 2;
  /// Which outcomes are considered transient. kOk (even a block page) and
  /// kBadUrl (a client-side parse error) are never retried.
  bool retryOnTimeout = true;
  bool retryOnReset = true;
  bool retryOnDns = true;
  bool retryOnConnectFailure = false;

  [[nodiscard]] bool shouldRetry(FetchOutcome outcome) const;
  /// Hours to wait after failed attempt `attempt` (0-based):
  /// initialBackoffHours * backoffMultiplier^attempt.
  [[nodiscard]] std::int64_t backoffHours(int attempt) const;

  /// Convenience: `attempts` tries with the default backoff schedule.
  static RetryPolicy attempts(int n) {
    RetryPolicy policy;
    policy.maxAttempts = n;
    return policy;
  }
};

struct FetchOptions {
  bool followRedirects = true;
  int maxRedirects = 5;
  RetryPolicy retry = {};
};

/// Client-side HTTP over the simulated Internet.
///
/// A fetch from a field vantage point traverses its ISP's middlebox chain
/// (where URL filters may block it); a fetch from the lab vantage goes
/// straight to the origin. This is the only I/O primitive the measurement
/// methodology uses. When the world carries a FaultPlan, each attempt may be
/// preempted by an injected transient fault; the retry policy then governs
/// re-fetching with simulated-clock backoff.
class Transport {
 public:
  explicit Transport(World& world) : world_(&world) {}

  [[nodiscard]] FetchResult fetch(const VantagePoint& vantage,
                                  const http::Request& request,
                                  const FetchOptions& options = {});

  /// Convenience: build a GET for `urlText` and fetch it. Malformed URLs
  /// yield kBadUrl with a descriptive error (no retry, no fault roll).
  [[nodiscard]] FetchResult fetchUrl(const VantagePoint& vantage,
                                     std::string_view urlText,
                                     const FetchOptions& options = {});

 private:
  [[nodiscard]] FetchResult fetchOnce(const VantagePoint& vantage,
                                      http::Request request, int attempt);
  /// One attempt: fetchOnce plus redirect following.
  [[nodiscard]] FetchResult fetchAttempt(const VantagePoint& vantage,
                                         const http::Request& request,
                                         const FetchOptions& options,
                                         int attempt);

  World* world_;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_TRANSPORT_H
