#ifndef URLF_SIMNET_TRANSPORT_H
#define URLF_SIMNET_TRANSPORT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "http/message.h"
#include "simnet/fault.h"
#include "simnet/interference.h"
#include "simnet/isp.h"
#include "simnet/world.h"

namespace urlf::simnet {

/// How a single fetch ended at the transport level.
enum class FetchOutcome {
  kOk,              ///< got an HTTP response (possibly a block page)
  kDnsFailure,      ///< hostname did not resolve
  kConnectFailure,  ///< nothing listening at (ip, port)
  kTimeout,         ///< flow blackholed in transit
  kReset,           ///< TCP RST injected in transit
  kBadUrl,          ///< the URL never parsed — no network activity happened
};

[[nodiscard]] std::string_view toString(FetchOutcome outcome);

/// The fine-grained, client-visible shape of a failed fetch — *what the
/// wire showed*, not why. Packet-level censorship and ordinary substrate
/// faults produce overlapping signatures (that ambiguity is the point:
/// a single trial cannot tell them apart), so the mechanism classifier
/// works from repeated signatures plus cross-checks, never one draw.
enum class FailureSignature {
  kNone,             ///< the fetch did not fail
  kEmptyDns,         ///< resolution came back empty (NXDOMAIN)
  kRefused,          ///< connection refused — RST on the SYN
  kRstBeforeBanner,  ///< reset after connect, before any application byte
  kRstAfterRequest,  ///< reset after the request bytes went out
  kTimeout,          ///< nothing came back before the deadline
  kSlowDrip,         ///< bytes trickled but the per-attempt deadline fired
};

[[nodiscard]] std::string_view toString(FailureSignature signature);

/// Why the fetch failed — *ground truth the simulator knows*, recorded so
/// journals and resumed campaigns never conflate an injected transient
/// fault with a middlebox- or packet-filter-caused failure that has the
/// same outcome. (Real measurement clients cannot observe this directly;
/// the mechanism classifier must recover it from signatures alone.)
enum class FailureCause {
  kNone,          ///< no failure
  kOrganic,       ///< condition of the world itself (no DNS record, no
                  ///< listener at the address)
  kFault,         ///< injected transient fault (FaultPlan)
  kOutage,        ///< permanent vantage death (OutagePlan)
  kMiddlebox,     ///< HTTP-layer middlebox killed the exchange
  kPacketFilter,  ///< packet-level filter tampered with or killed the flow
  kInterference,  ///< adversarial interference (InterferencePlan)
};

[[nodiscard]] std::string_view toString(FailureCause cause);

/// The result of fetching a URL from a vantage point.
struct FetchResult {
  FetchOutcome outcome = FetchOutcome::kOk;
  std::optional<http::Response> response;  ///< set when outcome == kOk
  /// Intermediate 3xx responses consumed while following redirects.
  std::vector<http::Response> redirectChain;
  std::string error;  ///< human-readable detail for non-kOk outcomes
  /// The injected fault that produced this outcome, if any — keeps
  /// fault-rate accounting separable from organic failures.
  FaultKind injectedFault = FaultKind::kNone;
  /// Client-visible failure shape (kNone on success).
  FailureSignature signature = FailureSignature::kNone;
  /// Simulator-side ground truth for the failure (kNone on success).
  FailureCause cause = FailureCause::kNone;
  /// Ground-truth interference that shaped this fetch (kNone when no
  /// InterferencePlan is armed). Measurement code must never branch on it.
  InterferenceEffect interference = InterferenceEffect::kNone;
  /// Attempts consumed, including the final one (1 = no retry happened).
  int attempts = 1;

  [[nodiscard]] bool ok() const {
    return outcome == FetchOutcome::kOk && response.has_value();
  }
};

/// When and how often a transient failure is re-fetched. Backoff runs on the
/// simulated clock: the world advances `backoffHours(attempt)` hours after
/// failed attempt `attempt` (0-based), doubling (by default) each time.
struct RetryPolicy {
  int maxAttempts = 1;  ///< total attempts; 1 disables retrying
  int initialBackoffHours = 1;
  int backoffMultiplier = 2;
  /// Which outcomes are considered transient. kOk (even a block page) and
  /// kBadUrl (a client-side parse error) are never retried.
  bool retryOnTimeout = true;
  bool retryOnReset = true;
  bool retryOnDns = true;
  bool retryOnConnectFailure = false;

  [[nodiscard]] bool shouldRetry(FetchOutcome outcome) const;
  /// Hours to wait after failed attempt `attempt` (0-based):
  /// initialBackoffHours * backoffMultiplier^attempt.
  [[nodiscard]] std::int64_t backoffHours(int attempt) const;

  /// Convenience: `attempts` tries with the default backoff schedule.
  static RetryPolicy attempts(int n) {
    RetryPolicy policy;
    policy.maxAttempts = n;
    return policy;
  }
};

struct FetchOptions {
  bool followRedirects = true;
  int maxRedirects = 5;
  RetryPolicy retry = {};
  /// ESNI/ECH-style SNI omission: TLS fetches send a ClientHello that names
  /// no server. An SNI filter fails open on such flows (Table 5 evasion).
  bool omitSni = false;
  /// Offset added to the attempt index the FaultPlan is rolled with. Fault
  /// draws are pure in (seed, vantage, url, attempt), so a caller re-trying
  /// the same URL across separate fetch() calls (the mechanism classifier's
  /// evidence budget) must advance this or every trial re-observes the
  /// first attempt's draw and a transient fault looks persistent.
  int attemptBase = 0;
  /// Per-attempt deadline on the simulated clock, in hours. 0 = wait
  /// forever (historical behaviour). With a deadline set, a tarpitted
  /// attempt is cancelled after `attemptDeadlineHours` and reports the
  /// distinct kSlowDrip signature instead of burning the full tarpit.
  std::int64_t attemptDeadlineHours = 0;
};

/// Client-side HTTP over the simulated Internet.
///
/// A fetch from a field vantage point traverses its ISP's middlebox chain
/// (where URL filters may block it); a fetch from the lab vantage goes
/// straight to the origin. This is the only I/O primitive the measurement
/// methodology uses. When the world carries a FaultPlan, each attempt may be
/// preempted by an injected transient fault; the retry policy then governs
/// re-fetching with simulated-clock backoff.
class Transport {
 public:
  explicit Transport(World& world) : world_(&world) {}

  [[nodiscard]] FetchResult fetch(const VantagePoint& vantage,
                                  const http::Request& request,
                                  const FetchOptions& options = {});

  /// Convenience: build a GET for `urlText` and fetch it. Malformed URLs
  /// yield kBadUrl with a descriptive error (no retry, no fault roll).
  [[nodiscard]] FetchResult fetchUrl(const VantagePoint& vantage,
                                     std::string_view urlText,
                                     const FetchOptions& options = {});

  /// Resolve `hostname` exactly as a fetch from `vantage` would — packet
  /// chain DNS stage first, then the ISP resolver override, then the global
  /// registry. This is the mechanism classifier's resolver cross-check: it
  /// consumes no fault draw and advances nothing, like a client re-querying
  /// its resolver out of band.
  [[nodiscard]] std::optional<net::Ipv4Addr> resolveFrom(
      const VantagePoint& vantage, std::string_view hostname);

 private:
  [[nodiscard]] FetchResult fetchOnce(const VantagePoint& vantage,
                                      http::Request request,
                                      const FetchOptions& options,
                                      int attempt);
  /// One attempt: fetchOnce plus redirect following.
  [[nodiscard]] FetchResult fetchAttempt(const VantagePoint& vantage,
                                         const http::Request& request,
                                         const FetchOptions& options,
                                         int attempt);

  World* world_;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_TRANSPORT_H
