#include "simnet/flow.h"

namespace urlf::simnet {

FlowEntry& FlowTable::track(const FlowKey& key, util::SimTime now) {
  FlowEntry& entry = entries_[key];
  ++entry.flowsSeen;
  entry.lastSeen = now;
  return entry;
}

void FlowTable::recordKill(const FlowKey& key, util::SimTime now) {
  FlowEntry& entry = entries_[key];
  ++entry.kills;
  if (entry.lastSeen < now) entry.lastSeen = now;
  ++kills_;
}

void FlowTable::armResidual(const FlowKey& key, util::SimTime now,
                            util::SimTime until) {
  FlowEntry& entry = entries_[key];
  if (entry.lastSeen < now) entry.lastSeen = now;
  if (until > entry.residualUntil) {
    entry.residualUntil = until;
    ++epoch_;
  }
}

bool FlowTable::residualActive(const FlowKey& key, util::SimTime now) const {
  const FlowEntry* entry = find(key);
  return entry != nullptr && now < entry->residualUntil;
}

const FlowEntry* FlowTable::find(const FlowKey& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void FlowTable::clear() {
  entries_.clear();
  // The epoch survives clear(): dropping armed state changes decisions too.
  ++epoch_;
}

}  // namespace urlf::simnet
