#include "simnet/origin_server.h"

#include "http/html.h"

namespace urlf::simnet {

void OriginServer::setPage(std::string path, Page page) {
  pages_[std::move(path)] = std::move(page);
}

const Page* OriginServer::findPage(const std::string& path) const {
  const auto it = pages_.find(path);
  if (it != pages_.end()) return &it->second;
  if (catchAll_) return &*catchAll_;
  return nullptr;
}

http::Response OriginServer::handle(const http::Request& request,
                                    util::SimTime /*now*/) {
  const Page* page = findPage(request.url.path());
  if (page == nullptr) {
    auto resp = http::Response::make(
        http::Status::kNotFound,
        http::makePage("404 Not Found",
                       "<h1>Not Found</h1><p>The requested URL " +
                           http::escape(request.url.path()) +
                           " was not found on this server.</p>"));
    resp.headers.add("Server", serverHeader_);
    return resp;
  }
  auto resp = http::Response::make(
      http::Status::kOk,
      page->contentType == "text/html" ? http::makePage(page->title, page->body)
                                       : page->body,
      page->contentType);
  resp.headers.add("Server", serverHeader_);
  return resp;
}

std::string OriginServer::describe() const {
  return "origin server for " + hostname_;
}

}  // namespace urlf::simnet
