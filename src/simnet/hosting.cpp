#include "simnet/hosting.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace urlf::simnet {

namespace {

// Two pools of short, non-profane English words, mirroring the paper's
// "two random (non-profane) words registered with the .info top-level
// domain (e.g., starwasher.info)".
constexpr std::array<std::string_view, 32> kFirstWords{
    "star",   "cloud",  "river",  "maple",  "stone",  "amber",  "cedar",
    "ivory",  "noble",  "quiet",  "rapid",  "solar",  "tidal",  "urban",
    "velvet", "winter", "copper", "dawn",   "ember",  "frost",  "glade",
    "harbor", "indigo", "jasper", "kindle", "lunar",  "meadow", "north",
    "ocean",  "pearl",  "quartz", "ridge"};

constexpr std::array<std::string_view, 32> kSecondWords{
    "washer",  "keeper",  "runner", "finder",  "maker",  "holder", "walker",
    "bringer", "catcher", "dancer", "driver",  "farmer", "gazer",  "helper",
    "jumper",  "leader",  "mover",  "painter", "porter", "reader", "rider",
    "seeker",  "singer",  "skater", "smith",   "tender", "trader", "turner",
    "watcher", "weaver",  "worker", "writer"};

}  // namespace

std::string_view toString(ContentProfile profile) {
  switch (profile) {
    case ContentProfile::kGlypeProxy: return "glype-proxy";
    case ContentProfile::kAdultImage: return "adult-image";
    case ContentProfile::kBenign: return "benign";
    case ContentProfile::kNews: return "news";
  }
  return "unknown";
}

std::string_view contentLabel(ContentProfile profile) {
  switch (profile) {
    case ContentProfile::kGlypeProxy: return "proxy-script";
    case ContentProfile::kAdultImage: return "pornography";
    case ContentProfile::kBenign: return "benign";
    case ContentProfile::kNews: return "news";
  }
  return "unknown";
}

Page indexPageFor(ContentProfile profile, const std::string& hostname) {
  Page page;
  page.contentLabel = std::string(contentLabel(profile));
  switch (profile) {
    case ContentProfile::kGlypeProxy:
      page.title = hostname + " - Glype Proxy";
      page.body =
          "<h1>Web Proxy</h1>"
          "<!-- Powered by Glype (c) UpsideOut, Inc. -->"
          "<form method=\"post\" action=\"/browse.php\">"
          "<input type=\"text\" name=\"u\" placeholder=\"Enter URL\"/>"
          "<input type=\"submit\" value=\"Go\"/></form>"
          "<p>Browse the web anonymously through " + hostname + ".</p>";
      break;
    case ContentProfile::kAdultImage:
      page.title = hostname;
      page.body =
          "<img src=\"/image1.jpg\" alt=\"adult content\"/>";
      break;
    case ContentProfile::kBenign:
      page.title = hostname;
      page.body = "<h1>Welcome</h1><p>Placeholder page for " + hostname + ".</p>";
      break;
    case ContentProfile::kNews:
      page.title = hostname + " - Independent News";
      page.body =
          "<h1>Independent News</h1>"
          "<p>Reporting on politics, society and human rights.</p>";
      break;
  }
  return page;
}

HostingProvider::HostingProvider(World& world, std::uint32_t asn)
    : world_(&world), asn_(asn), nameRng_(world.rng().fork()) {
  if (world.findAs(asn) == nullptr)
    throw std::invalid_argument("HostingProvider: unknown ASN " +
                                std::to_string(asn));
}

std::string HostingProvider::freshDomainName() {
  for (int attempt = 0; attempt < 4096; ++attempt) {
    std::string name;
    name += kFirstWords[nameRng_.index(kFirstWords.size())];
    name += kSecondWords[nameRng_.index(kSecondWords.size())];
    name += ".info";
    if (std::find(issued_.begin(), issued_.end(), name) == issued_.end() &&
        !world_->resolve(name)) {
      issued_.push_back(name);
      return name;
    }
  }
  // 1024 combinations exhausted: fall back to numbered names.
  std::string name = "testhost" + std::to_string(issued_.size()) + ".info";
  issued_.push_back(name);
  return name;
}

HostedDomain HostingProvider::createDomain(const std::string& hostname,
                                           ContentProfile profile) {
  const auto ip = world_->allocateAddress(asn_);
  auto& server = world_->makeEndpoint<OriginServer>(hostname);

  server.setPage("/", indexPageFor(profile, hostname));
  if (profile == ContentProfile::kAdultImage) {
    // The adult image itself, plus the benign file the testers actually
    // fetch to limit their exposure (§4.6).
    Page image;
    image.contentType = "image/jpeg";
    image.body = "\xFF\xD8\xFF\xE0 simulated-adult-jpeg-bytes";
    image.contentLabel = "pornography";
    server.setPage("/image1.jpg", std::move(image));

    Page benign;
    benign.contentType = "image/jpeg";
    benign.body = "\xFF\xD8\xFF\xE0 simulated-benign-jpeg-bytes";
    benign.contentLabel = "benign";
    server.setPage("/benign.jpg", std::move(benign));
  }
  if (profile == ContentProfile::kGlypeProxy) {
    Page browse;
    browse.title = hostname + " - browsing";
    browse.body = "<p>Proxied content would appear here.</p>";
    browse.contentLabel = "proxy-script";
    server.setPage("/browse.php", std::move(browse));
  }

  world_->bind(ip, 80, server, /*externallyVisible=*/true);
  world_->registerHostname(hostname, ip);
  return HostedDomain{hostname, ip, profile, &server};
}

HostedDomain HostingProvider::createFreshDomain(ContentProfile profile) {
  return createDomain(freshDomainName(), profile);
}

void HostingProvider::sanitizeDomain(const HostedDomain& domain) {
  if (domain.server == nullptr) return;
  domain.server->setPage("/",
                         indexPageFor(ContentProfile::kBenign, domain.hostname));
}

void HostingProvider::teardownDomain(const HostedDomain& domain) {
  world_->unregisterHostname(domain.hostname);
  world_->unbind(domain.address, 80);
}

}  // namespace urlf::simnet
