#ifndef URLF_SIMNET_WORLD_STREAM_H
#define URLF_SIMNET_WORLD_STREAM_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "simnet/origin_server.h"

namespace urlf::simnet {

class World;

/// One on-demand host: everything needed to materialize its origin server,
/// derived as a pure function of (stream seed, host id). Two calls for the
/// same id always yield byte-identical fields, so a streamed host can be
/// re-materialized at any time (crawl, record re-fetch, active validation)
/// without storing it.
struct StreamedHost {
  std::uint64_t id = 0;
  std::string hostname;
  net::Ipv4Addr ip;
  std::uint16_t port = 80;
  std::string countryAlpha2;  ///< ground truth (the geo DB derives from it)
  std::string serverHeader;
  Page page;  ///< the page served at "/"
};

/// A contiguous id range of streamed hosts sharing a country and an address
/// prefix — the unit scan::crawlStream materializes, probes, indexes, and
/// discards, so peak memory is O(shard) rather than O(world).
struct HostShard {
  std::string label;        ///< e.g. "SA/100.0.16.0/20#0"
  std::uint64_t begin = 0;  ///< first host id (inclusive)
  std::uint64_t end = 0;    ///< one past the last host id
};

/// A source of procedurally generated hosts the world never holds resident.
///
/// Contract: `host(id)` is a pure function of (stream seed, id); `hostAt` is
/// its exact inverse on (ip, port); ids are dense in [0, hostCount()) and
/// ordered so that every shard returned by `shards()` is a contiguous id
/// range. `announceInto` registers the stream's address space (ASes and
/// prefixes) in a world so geolocation/whois databases cover streamed hosts;
/// it binds nothing.
///
/// `materializeInto` is the eager reference mode: it binds every streamed
/// host as a regular world endpoint (in id order), producing a world that is
/// observationally identical to the streamed one — the equivalence the
/// property tests pin down.
class WorldStream {
 public:
  virtual ~WorldStream() = default;

  [[nodiscard]] virtual std::uint64_t hostCount() const = 0;
  [[nodiscard]] virtual StreamedHost host(std::uint64_t id) const = 0;

  /// Inverse of host(): the id listening at (ip, port), if any.
  [[nodiscard]] virtual std::optional<std::uint64_t> hostAt(
      net::Ipv4Addr ip, std::uint16_t port) const = 0;

  /// Country/prefix shards of at most `targetHostsPerShard` hosts each,
  /// covering [0, hostCount()) in ascending id order without gaps.
  [[nodiscard]] virtual std::vector<HostShard> shards(
      std::uint64_t targetHostsPerShard) const = 0;

  /// Register the stream's ASes/prefixes in `world` (no bindings).
  virtual void announceInto(World& world) const = 0;

  /// Build the origin server a streamed host answers as. Pure: the returned
  /// server's responses depend only on the host fields.
  [[nodiscard]] static std::unique_ptr<OriginServer> materializeEndpoint(
      const StreamedHost& host);

  /// Eager reference mode: bind and DNS-register every streamed host in id
  /// order. Call after all other world construction so binding order matches
  /// the streamed doc order (`announceInto` must already have run).
  void materializeInto(World& world) const;
};

/// Configuration of the procedural host stream.
struct ProceduralHostConfig {
  std::uint64_t hosts = 0;
  /// Countries drawn from the front of net::allCountries(); hosts are laid
  /// out in contiguous per-country id blocks, one /12 prefix and one AS per
  /// country (max ~1M hosts per country).
  int countries = 8;
  /// Fraction of hosts whose page carries product-keyword bait that the
  /// identification pipeline must locate and then reject — the needles that
  /// make million-host scans meaningful.
  double baitFraction = 0.01;
  std::uint32_t baseAsn = 64600;  ///< AS numbers baseAsn + countryIndex
  std::uint16_t port = 80;
};

/// The default WorldStream: hosts generated arithmetically from the seed.
/// Host ids map to (country block, offset); the address is prefix + offset;
/// page content and server header come from keyed splitmix64 draws — no
/// shared RNG stream, so access order never matters.
class ProceduralHostStream final : public WorldStream {
 public:
  ProceduralHostStream(std::uint64_t seed, ProceduralHostConfig config);

  [[nodiscard]] std::uint64_t hostCount() const override {
    return config_.hosts;
  }
  [[nodiscard]] StreamedHost host(std::uint64_t id) const override;
  [[nodiscard]] std::optional<std::uint64_t> hostAt(
      net::Ipv4Addr ip, std::uint16_t port) const override;
  [[nodiscard]] std::vector<HostShard> shards(
      std::uint64_t targetHostsPerShard) const override;
  void announceInto(World& world) const override;

  [[nodiscard]] const ProceduralHostConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::uint64_t blockStart(int country) const;
  [[nodiscard]] std::uint64_t blockSize(int country) const;
  [[nodiscard]] int countryOf(std::uint64_t id) const;
  [[nodiscard]] std::uint32_t prefixBase(int country) const;
  [[nodiscard]] std::string_view alpha2(int country) const;

  std::uint64_t seed_ = 0;
  ProceduralHostConfig config_;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_WORLD_STREAM_H
