#include "simnet/interference.h"

#include "util/hash.h"

namespace urlf::simnet {

std::string_view toString(InterferenceEffect effect) {
  switch (effect) {
    case InterferenceEffect::kNone: return "none";
    case InterferenceEffect::kHidden: return "hidden";
    case InterferenceEffect::kLockout: return "lockout";
    case InterferenceEffect::kTarpit: return "tarpit";
    case InterferenceEffect::kFlakyOpen: return "flaky-open";
    case InterferenceEffect::kMimicry: return "mimicry";
  }
  return "unknown";
}

std::string_view toString(MimicTemplate t) {
  switch (t) {
    case MimicTemplate::kSmartFilter: return "smartfilter";
    case MimicTemplate::kBlueCoat: return "bluecoat";
    case MimicTemplate::kNetsweeper: return "netsweeper";
    case MimicTemplate::kWebsense: return "websense";
  }
  return "unknown";
}

http::Response mimicResponse(MimicTemplate t) {
  http::Response r;
  r.statusCode = 200;
  r.reason = "OK";
  r.headers.set("Content-Type", "text/html");
  switch (t) {
    case MimicTemplate::kSmartFilter:
      r.headers.set("Via", "1.1 filter (McAfee Web Gateway 7.3)");
      r.body =
          "<html><head><title>McAfee Web Gateway - Notification</title>"
          "</head><body><h1>Access Denied</h1></body></html>";
      break;
    case MimicTemplate::kBlueCoat:
      r.body =
          "<html><head><title>Blue Coat WebFilter</title></head>"
          "<body><h1>Your request was denied</h1></body></html>";
      break;
    case MimicTemplate::kNetsweeper:
      r.headers.set("X-Filter", "Netsweeper");
      r.body =
          "<html><head><title>Web page blocked</title></head>"
          "<body>Netsweeper WebAdmin denied this request.</body></html>";
      break;
    case MimicTemplate::kWebsense:
      r.body =
          "<html><head><title>Websense - Access denied</title></head>"
          "<body><h1>Content blocked by your organization</h1></body></html>";
      break;
  }
  return r;
}

const InterferenceProfile& InterferencePlan::profileFor(
    const VantagePoint& vantage) const {
  static const InterferenceProfile kInert;
  if (vantage.isp == nullptr) return kInert;
  const auto it = ispProfiles_.find(vantage.isp->name());
  return it != ispProfiles_.end() ? it->second : defaultProfile_;
}

bool InterferencePlan::activeFor(const VantagePoint& vantage) const {
  return profileFor(vantage).any();
}

bool InterferencePlan::statefulFor(const VantagePoint& vantage) const {
  return profileFor(vantage).stateful();
}

double InterferencePlan::draw(std::string_view purpose,
                              const VantagePoint& vantage,
                              std::string_view url, int attempt) const {
  // Same key schedule as FaultPlan::roll, extended with a purpose tag so
  // independent decisions about the same (vantage, url, attempt) fetch do
  // not reuse one draw.
  std::uint64_t key = seed_;
  util::splitmix64Next(key);
  key ^= util::fnv1a64(purpose);
  util::splitmix64Next(key);
  key ^= util::fnv1a64(vantage.name);
  util::splitmix64Next(key);
  key ^= util::fnv1a64(url);
  util::splitmix64Next(key);
  key ^= static_cast<std::uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL;
  return util::keyedUniform01(key);
}

MimicTemplate InterferencePlan::drawTemplate(const InterferenceProfile& profile,
                                             const VantagePoint& vantage,
                                             std::string_view url,
                                             int attempt) const {
  const double u = draw("mimic-template", vantage, url, attempt);
  const auto index = static_cast<std::size_t>(
      u * static_cast<double>(profile.mimicPool.size()));
  return profile.mimicPool[index < profile.mimicPool.size()
                               ? index
                               : profile.mimicPool.size() - 1];
}

InterferenceEffect InterferenceState::recordFetch(
    const std::string& vantageName, util::SimTime now,
    const InterferenceProfile& profile) {
  if (!profile.stateful()) return InterferenceEffect::kNone;
  auto& w = windows_[vantageName];

  if (profile.probeThreshold > 0) {
    if (w.probeWindowStart < 0 ||
        now.hours() - w.probeWindowStart >= profile.probeWindowHours) {
      w.probeWindowStart = now.hours();
      w.probeCount = 0;
    }
    ++w.probeCount;
    if (w.probeCount > profile.probeThreshold && now >= w.hiddenUntil) {
      // Arming (or re-arming) a hide window changes later intercept
      // decisions — bump the epoch. Counting inside the window does not.
      w.hiddenUntil = now + profile.hideHours;
      ++epoch_;
    }
  }

  if (profile.lockoutThreshold > 0) {
    if (w.lockoutWindowStart < 0 ||
        now.hours() - w.lockoutWindowStart >= profile.lockoutWindowHours) {
      w.lockoutWindowStart = now.hours();
      w.lockoutCount = 0;
    }
    ++w.lockoutCount;
    if (w.lockoutCount > profile.lockoutThreshold && now >= w.bannedUntil) {
      w.bannedUntil = now + profile.banHours;
      ++epoch_;
    }
  }

  // A ban dominates a hide: a locked-out client gets wire failures, not
  // clean pages.
  if (now < w.bannedUntil) return InterferenceEffect::kLockout;
  if (now < w.hiddenUntil) return InterferenceEffect::kHidden;
  return InterferenceEffect::kNone;
}

bool InterferenceState::hidden(const std::string& vantageName,
                               util::SimTime now) const {
  const auto it = windows_.find(vantageName);
  return it != windows_.end() && now < it->second.hiddenUntil;
}

bool InterferenceState::banned(const std::string& vantageName,
                               util::SimTime now) const {
  const auto it = windows_.find(vantageName);
  return it != windows_.end() && now < it->second.bannedUntil;
}

}  // namespace urlf::simnet
