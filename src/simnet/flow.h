#ifndef URLF_SIMNET_FLOW_H
#define URLF_SIMNET_FLOW_H

#include <cstdint>
#include <map>
#include <string>
#include <tuple>

#include "util/clock.h"

namespace urlf::simnet {

/// Identity of one client flow as an on-path packet-level device sees it:
/// who is talking (the vantage), to which destination host, on which port.
/// The destination is tracked by name rather than address — every injector
/// model here keys its policy on the hostname it extracted from the DNS
/// query, the SNI, or the cleartext Host header, and names survive
/// re-resolution while addresses do not.
struct FlowKey {
  std::string vantage;  ///< VantagePoint::name
  std::string dstHost;  ///< lowercased destination hostname
  std::uint16_t port = 80;

  auto operator<=>(const FlowKey&) const = default;
};

/// Conntrack state for one flow key. `residualUntil` implements the
/// stateful-injector signature: once an injector kills a flow it may keep
/// killing *every* subsequent flow to the same destination until the
/// hold-down expires — the fingerprint "Where The Light Gets In" uses to
/// distinguish stateful injectors from stateless ones.
struct FlowEntry {
  std::uint64_t flowsSeen = 0;       ///< flows tracked under this key
  std::uint64_t kills = 0;           ///< flows a filter terminated
  util::SimTime lastSeen{};          ///< most recent flow start
  util::SimTime residualUntil{-1};   ///< hold-down expiry; < lastSeen = off
};

/// The flow table an ISP's packet-level filters share: a deterministic
/// conntrack in the idiom of the netfilter exemplar's conntrack/queue/
/// urlfilter split. The table is the *only* mutable state the packet layer
/// owns, and every mutation that can change a later filtering decision
/// (arming or refreshing a residual hold-down) bumps `stateEpoch()`, which
/// the world folds into its middlebox state epoch so verdict memoization
/// can never replay across a residual-state change. Pure bookkeeping
/// (flow/kill counters) is deliberately excluded from the epoch: it never
/// alters a decision, and including it would invalidate the memo on every
/// fetch through a packet chain.
class FlowTable {
 public:
  /// Record a flow start under `key` (bookkeeping only; epoch unchanged).
  FlowEntry& track(const FlowKey& key, util::SimTime now);

  /// Record that a filter terminated a flow under `key`.
  void recordKill(const FlowKey& key, util::SimTime now);

  /// Arm (or extend) the residual hold-down for `key`. Bumps the epoch when
  /// it actually extends the window.
  void armResidual(const FlowKey& key, util::SimTime now,
                   util::SimTime until);

  /// True while the hold-down window armed for `key` covers `now`.
  [[nodiscard]] bool residualActive(const FlowKey& key,
                                    util::SimTime now) const;

  [[nodiscard]] const FlowEntry* find(const FlowKey& key) const;

  /// Monotone counter over decision-relevant mutations (residual arms).
  [[nodiscard]] std::uint64_t stateEpoch() const { return epoch_; }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t totalKills() const { return kills_; }

  void clear();

 private:
  std::map<FlowKey, FlowEntry> entries_;
  std::uint64_t epoch_ = 0;
  std::uint64_t kills_ = 0;
};

}  // namespace urlf::simnet

#endif  // URLF_SIMNET_FLOW_H
