#include "serve/snapshot.h"

#include "util/hash.h"

namespace urlf::serve {

using report::Json;

Json Recategorization::toJson() const {
  Json out = Json::object();
  out["product"] = Json::string(filters::toString(product));
  out["host"] = Json::string(host);
  out["category"] = Json::string(category);
  return out;
}

std::optional<Recategorization> Recategorization::fromJson(const Json& json) {
  if (!json.isObject()) return std::nullopt;
  const auto* productText = json.find("product");
  const auto* host = json.find("host");
  const auto* category = json.find("category");
  if (productText == nullptr || !productText->asString() || host == nullptr ||
      !host->asString() || category == nullptr || !category->asString())
    return std::nullopt;
  const auto product = productFromString(*productText->asString());
  if (!product || host->asString()->empty() || category->asString()->empty())
    return std::nullopt;
  return Recategorization{*product, *host->asString(), *category->asString()};
}

std::optional<filters::ProductKind> productFromString(std::string_view name) {
  for (const auto kind : filters::allProducts())
    if (filters::toString(kind) == name) return kind;
  return std::nullopt;
}

std::uint64_t SnapshotSpec::scopeKey() const {
  std::string text = name;
  text += '|';
  text += options.headerJson().dump();
  text += '|';
  text += std::to_string(epoch);
  return util::fnv1a64(text);
}

Json SnapshotSpec::overlayJson() const {
  Json out = Json::array();
  for (const auto& edit : overlay) out.push(edit.toJson());
  return out;
}

util::Expected<std::vector<Recategorization>> SnapshotSpec::overlayFromJson(
    const Json& json) {
  using Result = util::Expected<std::vector<Recategorization>>;
  if (!json.isArray()) return Result::failure("overlay is not an array");
  std::vector<Recategorization> overlay;
  for (const auto& entry : *json.asArray()) {
    auto edit = Recategorization::fromJson(entry);
    if (!edit) return Result::failure("malformed overlay entry");
    overlay.push_back(std::move(*edit));
  }
  return overlay;
}

std::unique_ptr<scenarios::PaperWorld> SnapshotSpec::materialize(
    const SnapshotSpec& spec) {
  auto paper = std::make_unique<scenarios::PaperWorld>(spec.options.seed,
                                                       spec.options.world);
  for (const auto& edit : spec.overlay) {
    auto& vendor = paper->vendor(edit.product);
    const auto category = vendor.scheme().byName(edit.category);
    if (!category)
      throw std::invalid_argument("snapshot overlay names unknown category '" +
                                  edit.category + "'");
    vendor.masterDb().addHost(edit.host, category->id);
  }
  return paper;
}

std::uint64_t WorldSnapshot::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::size_t WorldSnapshot::overlaySize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overlay_.size();
}

SnapshotSpec WorldSnapshot::capture() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return SnapshotSpec{name_, base_, overlay_, epoch_};
}

util::Expected<std::uint64_t> WorldSnapshot::recategorize(
    Recategorization edit) {
  using Result = util::Expected<std::uint64_t>;
  if (edit.host.empty()) return Result::failure("recategorize: empty host");
  const auto scheme = filters::schemeFor(edit.product);
  if (!scheme.byName(edit.category))
    return Result::failure("recategorize: unknown " +
                           std::string(filters::toString(edit.product)) +
                           " category '" + edit.category + "'");
  std::lock_guard<std::mutex> lock(mutex_);
  overlay_.push_back(std::move(edit));
  ++epoch_;
  return epoch_;
}

}  // namespace urlf::serve
