#ifndef URLF_SERVE_CHANNEL_H
#define URLF_SERVE_CHANNEL_H

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "http/message.h"
#include "util/expected.h"

namespace urlf::serve {

/// One direction of an in-process connection: an ordered byte buffer with
/// producer/consumer locking. Writers append whole serialized messages (the
/// buffer preserves byte order, so interleaving at message granularity is
/// the writer's job); the consumer drains whatever has arrived and frames it
/// with http::messageFrame.
class ByteStream {
 public:
  void write(std::string_view bytes);
  void close();
  [[nodiscard]] bool closed() const;

  /// Move all buffered bytes onto the end of `out`; returns bytes moved.
  std::size_t drain(std::string& out);

  /// Block until data is buffered or the stream closes. False on timeout.
  bool waitForData(std::chrono::milliseconds timeout);

  /// Hook invoked (outside the lock) after every write/close — the server
  /// loop uses it to wake its scan. Set once, before traffic starts.
  void setOnActivity(std::function<void()> hook);

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::string buffer_;
  bool closed_ = false;
  std::function<void()> onActivity_;
};

/// A full-duplex in-process connection between a client and the server
/// loop. The client half offers blocking request/response helpers that set
/// Content-Length explicitly (http::serialize does not) so both directions
/// frame cleanly. One request should be outstanding per connection at a
/// time — responses to pipelined requests complete in whatever order the
/// worker pool finishes them.
class Connection {
 public:
  [[nodiscard]] ByteStream& toServer() { return toServer_; }
  [[nodiscard]] ByteStream& toClient() { return toClient_; }

  void sendRequest(http::Request request);
  [[nodiscard]] util::Expected<http::Response> awaitResponse(
      std::chrono::milliseconds timeout = std::chrono::seconds(120));

  /// sendRequest + awaitResponse.
  [[nodiscard]] util::Expected<http::Response> roundTrip(
      http::Request request,
      std::chrono::milliseconds timeout = std::chrono::seconds(120));

  void close();

 private:
  ByteStream toServer_;
  ByteStream toClient_;
  std::string clientBuffer_;  ///< client-side reassembly of toClient_
};

}  // namespace urlf::serve

#endif  // URLF_SERVE_CHANNEL_H
