#ifndef URLF_SERVE_SERVER_H
#define URLF_SERVE_SERVER_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "http/message.h"
#include "measure/shared_memo.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"
#include "util/thread_pool.h"

namespace urlf::serve {

struct ServerConfig {
  /// Worker threads for session execution — also the in-flight admission
  /// capacity, so admitted kRun sessions never wait behind each other.
  std::size_t workers = 4;
  /// Sessions allowed to wait behind the in-flight ones; beyond this the
  /// server sheds with 503.
  std::size_t maxQueued = 8;
  /// Default classify-thread limit for sessions that do not pin their own
  /// (1 keeps per-session classification serial — concurrency comes from
  /// running whole sessions in parallel, which benchmarks far better than
  /// nesting fan-outs).
  std::size_t classifyThreads = 1;
  /// Share verdicts across sessions through one SharedVerdictStore.
  bool shareVerdicts = true;
};

struct ServerStats {
  std::uint64_t campaignsCompleted = 0;
  std::uint64_t queriesCompleted = 0;
  std::uint64_t holdsCompleted = 0;
  std::uint64_t crashes = 0;       ///< SimulatedCrash caught (500)
  std::uint64_t divergences = 0;   ///< JournalDivergence caught (409)
  std::uint64_t badRequests = 0;   ///< 4xx responses
  AdmissionController::Stats admission;
  measure::SharedVerdictStore::Stats memo;
  std::size_t pooledWorlds = 0;

  [[nodiscard]] report::Json toJson() const;
};

/// The resident campaign server (DESIGN.md §4.6): holds named world
/// snapshots, runs many concurrent sessions over private deterministic
/// replicas on its own util::ThreadPool, shares one verdict store across
/// sessions (scope-keyed to snapshot + config + epoch), and sheds load past
/// its admission capacity. Thread-safe throughout; `handle` may be called
/// from any thread and `submit` callbacks fire on worker threads.
class CampaignServer {
 public:
  explicit CampaignServer(ServerConfig config = {});
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  WorldSnapshot& addSnapshot(std::string name,
                             scenarios::CampaignOptions base = {});
  [[nodiscard]] WorldSnapshot* findSnapshot(const std::string& name);

  /// Synchronous dispatch: admin/status inline; session requests go through
  /// admission (shed -> 503) and run on the CALLING thread. The transport
  /// loop and tests that want one-call semantics use this.
  [[nodiscard]] http::Response handle(const http::Request& request);

  /// Asynchronous dispatch: admin/status answered before returning; session
  /// requests are shed (503, immediate callback) or admitted onto the
  /// worker pool (callback from the worker when the session completes).
  void submit(http::Request request,
              std::function<void(http::Response)> done);

  /// Release a parked hold session (also pre-releases: a hold arriving
  /// after its release returns immediately).
  void releaseHold(const std::string& token);

  /// Block until every admitted session has completed.
  void drain();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] measure::SharedVerdictStore& sharedStore() { return store_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

 private:
  /// Route one request; session kinds run inline (admission already done by
  /// the caller).
  [[nodiscard]] http::Response dispatch(const http::Request& request);
  [[nodiscard]] http::Response runSession(const SessionRequest& request);
  [[nodiscard]] http::Response runCampaignSession(const SessionRequest& request);
  [[nodiscard]] http::Response runQuerySession(const SessionRequest& request);
  [[nodiscard]] http::Response runHoldSession(const SessionRequest& request);
  [[nodiscard]] http::Response handleStatus();
  [[nodiscard]] http::Response handleSnapshots();
  [[nodiscard]] http::Response handleRecategorize(const http::Request& request);
  [[nodiscard]] http::Response handleRelease(const http::Request& request);

  /// World pool for query sessions: replicas are reusable only while their
  /// clock has not passed the requested date (worlds only move forward).
  [[nodiscard]] std::unique_ptr<scenarios::PaperWorld> acquireWorld(
      const SnapshotSpec& spec, const util::CivilDate& date);
  void returnWorld(const SnapshotSpec& spec,
                   std::unique_ptr<scenarios::PaperWorld> world);

  void noteCompletion(int statusCode, SessionRequest::Kind kind);

  ServerConfig config_;
  util::ThreadPool pool_;
  AdmissionController admission_;
  measure::SharedVerdictStore store_;

  mutable std::mutex snapshotsMutex_;
  std::map<std::string, std::unique_ptr<WorldSnapshot>> snapshots_;

  mutable std::mutex worldsMutex_;
  std::map<std::uint64_t, std::vector<std::unique_ptr<scenarios::PaperWorld>>>
      worldPool_;  ///< keyed by SnapshotSpec::scopeKey()

  mutable std::mutex holdsMutex_;
  std::condition_variable holdsCv_;
  std::set<std::string> releasedTokens_;

  mutable std::mutex statsMutex_;
  ServerStats stats_;

  mutable std::mutex drainMutex_;
  std::condition_variable drainCv_;
  std::size_t live_ = 0;  ///< admitted sessions not yet completed
};

}  // namespace urlf::serve

#endif  // URLF_SERVE_SERVER_H
