#ifndef URLF_SERVE_PROTOCOL_H
#define URLF_SERVE_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "http/message.h"
#include "report/json.h"
#include "util/clock.h"
#include "util/expected.h"

namespace urlf::serve {

/// The campaign server's wire protocol rides the repo's own simulated HTTP
/// message format (src/http). JSON bodies both ways; Content-Length is set
/// explicitly on every message so http::messageFrame can frame the stream.
///
/// Endpoints:
///   POST /v1/session              run one session (kinds below)
///   GET  /v1/status               server + admission + verdict-store stats
///   GET  /v1/snapshots            resident snapshots with epochs
///   POST /v1/admin/recategorize   {snapshot, product, host, category}
///   POST /v1/admin/release        {token} — release a parked hold session
///
/// Session kinds:
///   campaign  full paper campaign on a private replica of `snapshot`,
///             optionally journaled ({journal, resume, crash_after}).
///   query     test `urls` from `vantage` (vs `lab`) at `date` on a pooled
///             replica — the cheap multi-tenant workload.
///   hold      park an admitted worker slot until its `token` is released —
///             deterministic back-pressure for admission tests.
///
/// Statuses: 200 ok; 400 malformed; 404 unknown snapshot/route; 409 journal
/// divergence on resume; 500 simulated crash; 503 shed by admission control.

/// Shed responses carry this marker so clients can tell back-pressure from
/// a server error: {"error": "shed"}.
inline constexpr std::string_view kShedMarker = "shed";

struct SessionRequest {
  enum class Kind { kCampaign, kQuery, kHold };
  Kind kind = Kind::kCampaign;
  std::string snapshot;

  // campaign
  std::size_t classifyThreads = 0;  ///< util::parallelFor semantics
  std::string journalPath;          ///< empty = unjournaled
  bool resume = false;              ///< open journalPath instead of starting
  int crashAfter = 0;               ///< arm CampaignJournal::crashAfterAppends

  // query
  std::string fieldVantage;
  std::string labVantage = "lab-toronto";
  std::optional<util::CivilDate> date;
  std::vector<std::string> urls;

  // hold
  std::string token;

  [[nodiscard]] static util::Expected<SessionRequest> parse(
      const report::Json& body);
  [[nodiscard]] report::Json toJson() const;
};

/// Build a JSON-bodied response with Content-Length set.
[[nodiscard]] http::Response jsonResponse(int status,
                                          const report::Json& body);

/// Parse a request body as JSON; nullopt when absent or malformed.
[[nodiscard]] std::optional<report::Json> bodyJson(
    const http::Request& request);

/// The standard error body: {"error": <message>}.
[[nodiscard]] http::Response errorResponse(int status, std::string_view message);

}  // namespace urlf::serve

#endif  // URLF_SERVE_PROTOCOL_H
