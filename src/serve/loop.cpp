#include "serve/loop.h"

#include <chrono>

#include "http/wire.h"

namespace urlf::serve {

ServerLoop::ServerLoop(CampaignServer& server) : server_(&server) {
  thread_ = std::thread([this] { run(); });
}

ServerLoop::~ServerLoop() { stop(); }

std::shared_ptr<Connection> ServerLoop::connect() {
  auto connection = std::make_shared<Connection>();
  connection->toServer().setOnActivity([this] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      activity_ = true;
    }
    wake_.notify_all();
  });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    peers_.push_back(std::make_unique<Peer>(Peer{connection, {}}));
    activity_ = true;
  }
  wake_.notify_all();
  return connection;
}

void ServerLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::vector<std::unique_ptr<Peer>> peers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    peers.swap(peers_);
  }
  for (auto& peer : peers) peer->connection->close();
}

std::size_t ServerLoop::connectionCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peers_.size();
}

void ServerLoop::run() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait_for(lock, std::chrono::milliseconds(50),
                     [this] { return activity_ || stopping_; });
      if (stopping_) return;
      activity_ = false;
    }

    // Snapshot the peer pointers, pump each outside the lock (pump may
    // parse and dispatch), then drop the ones that went bad or hung up.
    // Only the loop thread reads or erases entries; connect() appends new
    // ones, which the next wakeup picks up.
    std::vector<Peer*> scan;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      scan.reserve(peers_.size());
      for (const auto& peer : peers_) scan.push_back(peer.get());
    }
    std::vector<Peer*> dead;
    for (Peer* peer : scan)
      if (!pump(*peer)) dead.push_back(peer);
    if (!dead.empty()) {
      std::lock_guard<std::mutex> lock(mutex_);
      for (Peer* gone : dead) {
        gone->connection->toClient().close();
        for (std::size_t i = 0; i < peers_.size(); ++i) {
          if (peers_[i].get() == gone) {
            peers_.erase(peers_.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      }
    }
  }
}

bool ServerLoop::pump(Peer& peer) {
  peer.connection->toServer().drain(peer.inbox);

  while (true) {
    const auto frame = http::messageFrame(peer.inbox);
    if (frame.state == http::Frame::State::kBad) return false;
    if (frame.state == http::Frame::State::kIncomplete) break;

    auto request = http::parseRequest(
        std::string_view(peer.inbox).substr(0, frame.size));
    peer.inbox.erase(0, frame.size);
    if (!request) return false;

    // Capture the connection, not the Peer (the peers_ vector reallocates).
    auto connection = peer.connection;
    server_->submit(std::move(*request), [connection](http::Response response) {
      response.headers.set("Content-Length",
                           std::to_string(response.body.size()));
      connection->toClient().write(http::serialize(response));
    });
  }

  // A hung-up peer is dropped once every buffered request has been framed.
  return !(peer.connection->toServer().closed() && peer.inbox.empty());
}

}  // namespace urlf::serve
