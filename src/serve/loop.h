#ifndef URLF_SERVE_LOOP_H
#define URLF_SERVE_LOOP_H

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/channel.h"
#include "serve/server.h"

namespace urlf::serve {

/// A small single-threaded event loop in front of a CampaignServer: accepts
/// in-process connections, frames their byte streams with
/// http::messageFrame, and dispatches complete requests. Admin requests are
/// answered from the loop thread; session requests go through
/// CampaignServer::submit, so their responses are written back from worker
/// threads while the loop keeps serving other connections — one slow
/// campaign cannot stall the accept path.
class ServerLoop {
 public:
  explicit ServerLoop(CampaignServer& server);
  ~ServerLoop();

  ServerLoop(const ServerLoop&) = delete;
  ServerLoop& operator=(const ServerLoop&) = delete;

  /// Open a new connection served by the loop.
  [[nodiscard]] std::shared_ptr<Connection> connect();

  /// Stop the loop thread and close every connection.
  void stop();

  [[nodiscard]] std::size_t connectionCount() const;

 private:
  struct Peer {
    std::shared_ptr<Connection> connection;
    std::string inbox;  ///< loop-side reassembly of toServer bytes
  };

  void run();
  /// Returns false when the peer went bad and must be dropped.
  bool pump(Peer& peer);

  CampaignServer* server_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  /// unique_ptr entries keep Peer addresses stable while the loop thread
  /// works outside the lock and connect() appends concurrently.
  std::vector<std::unique_ptr<Peer>> peers_;
  bool stopping_ = false;
  bool activity_ = false;
  std::thread thread_;
};

}  // namespace urlf::serve

#endif  // URLF_SERVE_LOOP_H
