#ifndef URLF_SERVE_SNAPSHOT_H
#define URLF_SERVE_SNAPSHOT_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "filters/category.h"
#include "report/json.h"
#include "scenarios/campaign.h"
#include "scenarios/paper_world.h"
#include "util/expected.h"

namespace urlf::serve {

/// One live category-database edit layered on top of a snapshot's base
/// world: `host` gains `category` (a vendor-scheme category name) in
/// `product`'s master database. This is how an operator models the vendor
/// recategorizing a site while the server is resident.
struct Recategorization {
  filters::ProductKind product = filters::ProductKind::kSmartFilter;
  std::string host;
  std::string category;

  [[nodiscard]] report::Json toJson() const;
  [[nodiscard]] static std::optional<Recategorization> fromJson(
      const report::Json& json);
};

/// Parse a product name as produced by filters::toString. Case-sensitive.
[[nodiscard]] std::optional<filters::ProductKind> productFromString(
    std::string_view name);

/// An immutable point-in-time view of a snapshot, captured under the
/// snapshot lock. Sessions materialize their private world replica from the
/// spec, so a recategorization that lands after capture() cannot perturb
/// them — only sessions captured afterwards see the new epoch.
struct SnapshotSpec {
  std::string name;
  scenarios::CampaignOptions options;
  std::vector<Recategorization> overlay;
  std::uint64_t epoch = 0;

  /// Scope key for the cross-session verdict store: folds in everything
  /// that selects the world program — the snapshot name, the full campaign
  /// config header (seed, world knobs, health, outages), and the epoch.
  /// Two specs with equal scope keys materialize byte-identical worlds.
  [[nodiscard]] std::uint64_t scopeKey() const;

  [[nodiscard]] report::Json overlayJson() const;
  [[nodiscard]] static util::Expected<std::vector<Recategorization>>
  overlayFromJson(const report::Json& json);

  /// Build a fresh deterministic world replica: base PaperWorld from
  /// (options.seed, options.world), then the overlay applied in order.
  /// Campaign-level concerns (outage plans, health) are applied by
  /// runPaperCampaign, not here.
  [[nodiscard]] static std::unique_ptr<scenarios::PaperWorld> materialize(
      const SnapshotSpec& spec);
};

/// A named, shared, mutable world snapshot held by the campaign server.
/// Reads (capture) and writes (recategorize) are serialized by an internal
/// mutex; the epoch counts recategorizations and retires the verdict-store
/// scope of every prior generation.
class WorldSnapshot {
 public:
  WorldSnapshot(std::string name, scenarios::CampaignOptions base)
      : name_(std::move(name)), base_(std::move(base)) {}

  WorldSnapshot(const WorldSnapshot&) = delete;
  WorldSnapshot& operator=(const WorldSnapshot&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::size_t overlaySize() const;
  [[nodiscard]] SnapshotSpec capture() const;

  /// Validate against the product's category scheme, append to the overlay,
  /// and bump the epoch. Returns the new epoch, or the validation error.
  [[nodiscard]] util::Expected<std::uint64_t> recategorize(
      Recategorization edit);

 private:
  mutable std::mutex mutex_;
  std::string name_;
  scenarios::CampaignOptions base_;
  std::vector<Recategorization> overlay_;
  std::uint64_t epoch_ = 0;
};

}  // namespace urlf::serve

#endif  // URLF_SERVE_SNAPSHOT_H
