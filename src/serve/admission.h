#ifndef URLF_SERVE_ADMISSION_H
#define URLF_SERVE_ADMISSION_H

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace urlf::serve {

/// Admission control for session work (DESIGN.md §4.6): at most
/// `maxInFlight` sessions admitted to run plus `maxQueued` waiting behind
/// them; everything beyond that is shed immediately (the 503 path). All
/// decisions happen under one lock at submit time, on the caller's thread —
/// the controller never waits on the worker pool, so a given sequence of
/// admit/complete calls yields the same decisions at any pool width.
class AdmissionController {
 public:
  enum class Decision {
    kRun,    ///< admitted against an in-flight slot
    kQueue,  ///< admitted against a queue slot (runs when a slot frees)
    kShed,   ///< rejected — both in-flight and queue are full
  };

  struct Stats {
    std::size_t inFlight = 0;
    std::size_t queued = 0;
    std::uint64_t admitted = 0;   ///< kRun + kQueue decisions
    std::uint64_t shed = 0;       ///< kShed decisions
    std::uint64_t completed = 0;  ///< onComplete calls
  };

  AdmissionController(std::size_t maxInFlight, std::size_t maxQueued)
      : maxInFlight_(maxInFlight == 0 ? 1 : maxInFlight),
        maxQueued_(maxQueued) {}

  [[nodiscard]] Decision tryAdmit();

  /// A kQueue session began executing: its slot moves queued -> in-flight.
  void onStart();

  /// An admitted session finished (however it ended).
  void onComplete();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t maxInFlight() const { return maxInFlight_; }
  [[nodiscard]] std::size_t maxQueued() const { return maxQueued_; }

 private:
  const std::size_t maxInFlight_;
  const std::size_t maxQueued_;
  mutable std::mutex mutex_;
  Stats stats_;
};

}  // namespace urlf::serve

#endif  // URLF_SERVE_ADMISSION_H
