#include "serve/channel.h"

#include "http/wire.h"

namespace urlf::serve {

void ByteStream::write(std::string_view bytes) {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    buffer_.append(bytes);
    hook = onActivity_;
  }
  cv_.notify_all();
  if (hook) hook();
}

void ByteStream::close() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    hook = onActivity_;
  }
  cv_.notify_all();
  if (hook) hook();
}

bool ByteStream::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t ByteStream::drain(std::string& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t moved = buffer_.size();
  out.append(buffer_);
  buffer_.clear();
  return moved;
}

bool ByteStream::waitForData(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, timeout,
                      [this] { return !buffer_.empty() || closed_; });
}

void ByteStream::setOnActivity(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  onActivity_ = std::move(hook);
}

void Connection::sendRequest(http::Request request) {
  // Guarantee wire-validity: parseRequest needs a Host header to rebuild
  // the absolute URL, and messageFrame needs Content-Length to frame the
  // body (serialize adds neither).
  if (!request.headers.get("Host"))
    request.headers.set("Host", request.url.host());
  request.headers.set("Content-Length", std::to_string(request.body.size()));
  toServer_.write(http::serialize(request));
}

util::Expected<http::Response> Connection::awaitResponse(
    std::chrono::milliseconds timeout) {
  using Result = util::Expected<http::Response>;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    toClient_.drain(clientBuffer_);
    const auto frame = http::messageFrame(clientBuffer_);
    if (frame.state == http::Frame::State::kBad)
      return Result::failure("unparseable response stream");
    if (frame.state == http::Frame::State::kComplete) {
      auto response = http::parseResponse(
          std::string_view(clientBuffer_).substr(0, frame.size));
      clientBuffer_.erase(0, frame.size);
      if (!response) return Result::failure("malformed response");
      return std::move(*response);
    }
    if (toClient_.closed() && frame.state == http::Frame::State::kIncomplete)
      return Result::failure("connection closed mid-response");
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return Result::failure("response timed out");
    toClient_.waitForData(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
  }
}

util::Expected<http::Response> Connection::roundTrip(
    http::Request request, std::chrono::milliseconds timeout) {
  sendRequest(std::move(request));
  return awaitResponse(timeout);
}

void Connection::close() {
  toServer_.close();
  toClient_.close();
}

}  // namespace urlf::serve
