#include "serve/admission.h"

namespace urlf::serve {

AdmissionController::Decision AdmissionController::tryAdmit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.inFlight < maxInFlight_) {
    ++stats_.inFlight;
    ++stats_.admitted;
    return Decision::kRun;
  }
  if (stats_.queued < maxQueued_) {
    ++stats_.queued;
    ++stats_.admitted;
    return Decision::kQueue;
  }
  ++stats_.shed;
  return Decision::kShed;
}

void AdmissionController::onStart() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.queued > 0) {
    --stats_.queued;
    ++stats_.inFlight;
  }
}

void AdmissionController::onComplete() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.inFlight > 0) --stats_.inFlight;
  ++stats_.completed;
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace urlf::serve
