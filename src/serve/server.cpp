#include "serve/server.h"

#include <chrono>

#include "measure/client.h"
#include "measure/journal.h"
#include "util/hash.h"

namespace urlf::serve {

using measure::CampaignJournal;
using report::Json;

namespace {

/// The self-contained journal header of a server session: everything needed
/// to rebuild the exact world replica on resume — the campaign config AND
/// the snapshot overlay at capture time — so later snapshot mutations (or a
/// different resident server entirely) cannot change what resume replays.
Json serveHeader(const SnapshotSpec& spec) {
  Json header = Json::object();
  header["type"] = Json::string("serve-session");
  header["version"] = Json::number(std::int64_t{1});
  header["snapshot"] = Json::string(spec.name);
  header["epoch"] = Json::number(static_cast<std::int64_t>(spec.epoch));
  header["campaign"] = spec.options.headerJson();
  header["overlay"] = spec.overlayJson();
  return header;
}

util::Expected<SnapshotSpec> specFromHeader(const Json& header) {
  using Result = util::Expected<SnapshotSpec>;
  const auto* type = header.find("type");
  if (type == nullptr || !type->asString() ||
      *type->asString() != "serve-session")
    return Result::failure("journal is not a serve-session journal");

  SnapshotSpec spec;
  if (const auto* name = header.find("snapshot"); name && name->asString())
    spec.name = *name->asString();
  if (const auto* epoch = header.find("epoch"); epoch && epoch->asNumber())
    spec.epoch = static_cast<std::uint64_t>(*epoch->asNumber());

  const auto* campaign = header.find("campaign");
  if (campaign == nullptr)
    return Result::failure("serve-session journal has no campaign header");
  auto options = scenarios::CampaignOptions::fromHeaderJson(*campaign);
  if (!options) return Result::failure(options.error());
  spec.options = std::move(options.value());

  if (const auto* overlay = header.find("overlay")) {
    auto edits = SnapshotSpec::overlayFromJson(*overlay);
    if (!edits) return Result::failure(edits.error());
    spec.overlay = std::move(edits.value());
  }
  return spec;
}

}  // namespace

Json ServerStats::toJson() const {
  Json out = Json::object();
  out["campaigns_completed"] =
      Json::number(static_cast<std::int64_t>(campaignsCompleted));
  out["queries_completed"] =
      Json::number(static_cast<std::int64_t>(queriesCompleted));
  out["holds_completed"] =
      Json::number(static_cast<std::int64_t>(holdsCompleted));
  out["crashes"] = Json::number(static_cast<std::int64_t>(crashes));
  out["divergences"] = Json::number(static_cast<std::int64_t>(divergences));
  out["bad_requests"] = Json::number(static_cast<std::int64_t>(badRequests));

  Json adm = Json::object();
  adm["in_flight"] = Json::number(static_cast<std::int64_t>(admission.inFlight));
  adm["queued"] = Json::number(static_cast<std::int64_t>(admission.queued));
  adm["admitted"] = Json::number(static_cast<std::int64_t>(admission.admitted));
  adm["shed"] = Json::number(static_cast<std::int64_t>(admission.shed));
  adm["completed"] =
      Json::number(static_cast<std::int64_t>(admission.completed));
  out["admission"] = std::move(adm);

  Json memoJson = Json::object();
  memoJson["hits"] = Json::number(static_cast<std::int64_t>(memo.hits));
  memoJson["misses"] = Json::number(static_cast<std::int64_t>(memo.misses));
  memoJson["inserts"] = Json::number(static_cast<std::int64_t>(memo.inserts));
  memoJson["invalidated"] =
      Json::number(static_cast<std::int64_t>(memo.invalidated));
  out["verdict_store"] = std::move(memoJson);

  out["pooled_worlds"] = Json::number(static_cast<std::int64_t>(pooledWorlds));
  return out;
}

CampaignServer::CampaignServer(ServerConfig config)
    : config_(config),
      pool_(config.workers == 0 ? 1 : config.workers, /*widthForced=*/true),
      admission_(config.workers == 0 ? 1 : config.workers, config.maxQueued) {}

CampaignServer::~CampaignServer() { drain(); }

WorldSnapshot& CampaignServer::addSnapshot(std::string name,
                                           scenarios::CampaignOptions base) {
  std::lock_guard<std::mutex> lock(snapshotsMutex_);
  auto& slot = snapshots_[name];
  slot = std::make_unique<WorldSnapshot>(std::move(name), std::move(base));
  return *slot;
}

WorldSnapshot* CampaignServer::findSnapshot(const std::string& name) {
  std::lock_guard<std::mutex> lock(snapshotsMutex_);
  const auto it = snapshots_.find(name);
  return it == snapshots_.end() ? nullptr : it->second.get();
}

http::Response CampaignServer::handle(const http::Request& request) {
  const bool isSession =
      request.method == "POST" && request.url.path() == "/v1/session";
  if (!isSession) return dispatch(request);

  const auto decision = admission_.tryAdmit();
  if (decision == AdmissionController::Decision::kShed)
    return errorResponse(503, kShedMarker);
  {
    std::lock_guard<std::mutex> lock(drainMutex_);
    ++live_;
  }
  if (decision == AdmissionController::Decision::kQueue) admission_.onStart();
  http::Response response = dispatch(request);
  admission_.onComplete();
  {
    std::lock_guard<std::mutex> lock(drainMutex_);
    --live_;
  }
  drainCv_.notify_all();
  return response;
}

void CampaignServer::submit(http::Request request,
                            std::function<void(http::Response)> done) {
  const bool isSession =
      request.method == "POST" && request.url.path() == "/v1/session";
  if (!isSession) {
    done(dispatch(request));
    return;
  }

  const auto decision = admission_.tryAdmit();
  if (decision == AdmissionController::Decision::kShed) {
    done(errorResponse(503, kShedMarker));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(drainMutex_);
    ++live_;
  }
  pool_.submit([this, decision, request = std::move(request),
                done = std::move(done)]() {
    if (decision == AdmissionController::Decision::kQueue)
      admission_.onStart();
    http::Response response = dispatch(request);
    admission_.onComplete();
    {
      std::lock_guard<std::mutex> lock(drainMutex_);
      --live_;
    }
    drainCv_.notify_all();
    done(std::move(response));
  });
}

void CampaignServer::releaseHold(const std::string& token) {
  {
    std::lock_guard<std::mutex> lock(holdsMutex_);
    releasedTokens_.insert(token);
  }
  holdsCv_.notify_all();
}

void CampaignServer::drain() {
  std::unique_lock<std::mutex> lock(drainMutex_);
  drainCv_.wait(lock, [this] { return live_ == 0; });
}

ServerStats CampaignServer::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    out = stats_;
  }
  out.admission = admission_.stats();
  out.memo = store_.stats();
  {
    std::lock_guard<std::mutex> lock(worldsMutex_);
    std::size_t n = 0;
    for (const auto& [scope, worlds] : worldPool_) n += worlds.size();
    out.pooledWorlds = n;
  }
  return out;
}

http::Response CampaignServer::dispatch(const http::Request& request) {
  const std::string path = std::string(request.url.path());
  if (request.method == "GET" && path == "/v1/status") return handleStatus();
  if (request.method == "GET" && path == "/v1/snapshots")
    return handleSnapshots();
  if (request.method == "POST" && path == "/v1/admin/recategorize")
    return handleRecategorize(request);
  if (request.method == "POST" && path == "/v1/admin/release")
    return handleRelease(request);
  if (request.method == "POST" && path == "/v1/session") {
    const auto body = bodyJson(request);
    if (!body) {
      noteCompletion(400, SessionRequest::Kind::kCampaign);
      return errorResponse(400, "session body is not valid JSON");
    }
    auto session = SessionRequest::parse(*body);
    if (!session) {
      noteCompletion(400, SessionRequest::Kind::kCampaign);
      return errorResponse(400, session.error());
    }
    return runSession(session.value());
  }
  return errorResponse(404, "no such endpoint: " + request.method + " " + path);
}

http::Response CampaignServer::runSession(const SessionRequest& request) {
  http::Response response;
  switch (request.kind) {
    case SessionRequest::Kind::kCampaign:
      response = runCampaignSession(request);
      break;
    case SessionRequest::Kind::kQuery:
      response = runQuerySession(request);
      break;
    case SessionRequest::Kind::kHold:
      response = runHoldSession(request);
      break;
  }
  noteCompletion(response.statusCode, request.kind);
  return response;
}

http::Response CampaignServer::runCampaignSession(
    const SessionRequest& request) {
  SnapshotSpec spec;
  std::optional<CampaignJournal> journal;

  if (request.resume) {
    auto opened = CampaignJournal::open(request.journalPath);
    if (!opened) return errorResponse(400, opened.error());
    auto fromHeader = specFromHeader(opened.value().header());
    if (!fromHeader) return errorResponse(400, fromHeader.error());
    spec = std::move(fromHeader.value());
    journal.emplace(std::move(opened.value()));
  } else {
    WorldSnapshot* snapshot = findSnapshot(request.snapshot);
    if (snapshot == nullptr)
      return errorResponse(404, "unknown snapshot '" + request.snapshot + "'");
    spec = snapshot->capture();
    if (!request.journalPath.empty())
      journal.emplace(
          CampaignJournal::start(request.journalPath, serveHeader(spec)));
  }
  if (journal && request.crashAfter > 0)
    journal->crashAfterAppends(request.crashAfter);

  scenarios::CampaignOptions options = spec.options;
  options.classifyThreads = request.classifyThreads != 0
                                ? request.classifyThreads
                                : config_.classifyThreads;

  scenarios::CampaignRunContext run;
  run.journal = journal ? &*journal : nullptr;
  run.sharedMemo = config_.shareVerdicts ? &store_ : nullptr;
  run.memoScope = spec.scopeKey();

  try {
    auto paper = SnapshotSpec::materialize(spec);
    const auto report = scenarios::runPaperCampaign(*paper, options, run);

    Json body = report.toJson();
    body["snapshot"] = Json::string(spec.name);
    body["epoch"] = Json::number(static_cast<std::int64_t>(spec.epoch));
    if (journal) {
      body["journal_records"] =
          Json::number(static_cast<std::int64_t>(journal->recordCount()));
      body["journal_appends"] =
          Json::number(static_cast<std::int64_t>(journal->appendCount()));
      body["resumed"] = Json::boolean(request.resume);
    }
    return jsonResponse(200, body);
  } catch (const measure::SimulatedCrash& crash) {
    Json body = Json::object();
    body["error"] = Json::string("simulated-crash");
    body["detail"] = Json::string(crash.what());
    body["journal"] = Json::string(request.journalPath);
    return jsonResponse(500, body);
  } catch (const measure::JournalDivergence& divergence) {
    Json body = Json::object();
    body["error"] = Json::string("journal-divergence");
    body["detail"] = Json::string(divergence.what());
    return jsonResponse(409, body);
  } catch (const std::invalid_argument& bad) {
    return errorResponse(400, bad.what());
  }
}

http::Response CampaignServer::runQuerySession(const SessionRequest& request) {
  WorldSnapshot* snapshot = findSnapshot(request.snapshot);
  if (snapshot == nullptr)
    return errorResponse(404, "unknown snapshot '" + request.snapshot + "'");
  const SnapshotSpec spec = snapshot->capture();

  std::unique_ptr<scenarios::PaperWorld> paper;
  try {
    paper = acquireWorld(spec, *request.date);
  } catch (const std::invalid_argument& bad) {
    return errorResponse(400, bad.what());
  }
  auto& world = paper->world();
  scenarios::advanceClockTo(world, *request.date);

  auto* field = world.findVantage(request.fieldVantage);
  auto* lab = world.findVantage(request.labVantage);
  if (field == nullptr || lab == nullptr) {
    returnWorld(spec, std::move(paper));
    return errorResponse(400, "unknown vantage point");
  }

  measure::Client client(world, *field, *lab);
  client.enableVerdictMemo(true);
  client.attachSharedMemo(config_.shareVerdicts ? &store_ : nullptr,
                          spec.scopeKey());
  const std::size_t classifyThreads = request.classifyThreads != 0
                                          ? request.classifyThreads
                                          : config_.classifyThreads;
  const auto results = client.testListBatched(request.urls, classifyThreads);
  const std::uint64_t sharedHits = client.sharedMemoHits();
  returnWorld(spec, std::move(paper));

  std::string digestText;
  Json rows = Json::array();
  for (const auto& result : results) {
    Json row = Json::object();
    row["url"] = Json::string(result.url);
    row["verdict"] = Json::string(measure::toString(result.verdict));
    if (result.blockPage)
      row["product"] =
          Json::string(filters::toString(result.blockPage->product));
    rows.push(std::move(row));
    digestText += result.url;
    digestText += '=';
    digestText += measure::toString(result.verdict);
    digestText += '\n';
  }

  Json body = Json::object();
  body["snapshot"] = Json::string(spec.name);
  body["epoch"] = Json::number(static_cast<std::int64_t>(spec.epoch));
  body["vantage"] = Json::string(request.fieldVantage);
  body["date"] = Json::string(request.date->iso());
  body["results"] = std::move(rows);
  char digestHex[17];
  std::snprintf(digestHex, sizeof digestHex, "%016llx",
                static_cast<unsigned long long>(util::fnv1a64(digestText)));
  body["digest"] = Json::string(digestHex);
  body["shared_hits"] = Json::number(static_cast<std::int64_t>(sharedHits));
  return jsonResponse(200, body);
}

http::Response CampaignServer::runHoldSession(const SessionRequest& request) {
  std::unique_lock<std::mutex> lock(holdsMutex_);
  const bool released =
      holdsCv_.wait_for(lock, std::chrono::seconds(60), [&] {
        return releasedTokens_.count(request.token) > 0;
      });
  if (!released)
    return errorResponse(500, "hold '" + request.token + "' timed out");
  releasedTokens_.erase(request.token);
  lock.unlock();

  Json body = Json::object();
  body["held"] = Json::string(request.token);
  return jsonResponse(200, body);
}

http::Response CampaignServer::handleStatus() {
  return jsonResponse(200, stats().toJson());
}

http::Response CampaignServer::handleSnapshots() {
  Json list = Json::array();
  std::lock_guard<std::mutex> lock(snapshotsMutex_);
  for (const auto& [name, snapshot] : snapshots_) {
    Json entry = Json::object();
    entry["name"] = Json::string(name);
    entry["epoch"] = Json::number(static_cast<std::int64_t>(snapshot->epoch()));
    entry["overlay"] =
        Json::number(static_cast<std::int64_t>(snapshot->overlaySize()));
    list.push(std::move(entry));
  }
  Json body = Json::object();
  body["snapshots"] = std::move(list);
  return jsonResponse(200, body);
}

http::Response CampaignServer::handleRecategorize(
    const http::Request& request) {
  const auto body = bodyJson(request);
  if (!body) return errorResponse(400, "recategorize body is not valid JSON");
  const auto* name = body->find("snapshot");
  if (name == nullptr || !name->asString())
    return errorResponse(400, "recategorize needs a snapshot");
  auto edit = Recategorization::fromJson(*body);
  if (!edit) return errorResponse(400, "malformed recategorization");

  WorldSnapshot* snapshot = findSnapshot(*name->asString());
  if (snapshot == nullptr)
    return errorResponse(404, "unknown snapshot '" + *name->asString() + "'");

  // The pre-edit scope retires: entries under it are unreachable by new
  // sessions (they capture the bumped epoch), so release the memory now.
  // Pooled worlds of the old generation are stale for the same reason.
  const std::uint64_t oldScope = snapshot->capture().scopeKey();
  auto epoch = snapshot->recategorize(std::move(*edit));
  if (!epoch) return errorResponse(400, epoch.error());
  store_.invalidateScope(oldScope);
  {
    std::lock_guard<std::mutex> lock(worldsMutex_);
    worldPool_.erase(oldScope);
  }

  Json out = Json::object();
  out["snapshot"] = Json::string(*name->asString());
  out["epoch"] = Json::number(static_cast<std::int64_t>(epoch.value()));
  return jsonResponse(200, out);
}

http::Response CampaignServer::handleRelease(const http::Request& request) {
  const auto body = bodyJson(request);
  if (!body) return errorResponse(400, "release body is not valid JSON");
  const auto* token = body->find("token");
  if (token == nullptr || !token->asString())
    return errorResponse(400, "release needs a token");
  releaseHold(*token->asString());
  Json out = Json::object();
  out["released"] = Json::string(*token->asString());
  return jsonResponse(200, out);
}

std::unique_ptr<scenarios::PaperWorld> CampaignServer::acquireWorld(
    const SnapshotSpec& spec, const util::CivilDate& date) {
  const std::uint64_t scope = spec.scopeKey();
  const auto target = util::SimTime::fromDate(date);
  {
    std::lock_guard<std::mutex> lock(worldsMutex_);
    auto it = worldPool_.find(scope);
    if (it != worldPool_.end()) {
      auto& worlds = it->second;
      for (std::size_t i = 0; i < worlds.size(); ++i) {
        if (worlds[i]->world().now() <= target) {
          auto world = std::move(worlds[i]);
          worlds.erase(worlds.begin() + static_cast<std::ptrdiff_t>(i));
          return world;
        }
      }
    }
  }
  return SnapshotSpec::materialize(spec);
}

void CampaignServer::returnWorld(const SnapshotSpec& spec,
                                 std::unique_ptr<scenarios::PaperWorld> world) {
  constexpr std::size_t kMaxPooledPerScope = 16;
  std::lock_guard<std::mutex> lock(worldsMutex_);
  auto& worlds = worldPool_[spec.scopeKey()];
  if (worlds.size() < kMaxPooledPerScope) worlds.push_back(std::move(world));
}

void CampaignServer::noteCompletion(int statusCode,
                                    SessionRequest::Kind kind) {
  std::lock_guard<std::mutex> lock(statsMutex_);
  if (statusCode == 200) {
    switch (kind) {
      case SessionRequest::Kind::kCampaign: ++stats_.campaignsCompleted; break;
      case SessionRequest::Kind::kQuery: ++stats_.queriesCompleted; break;
      case SessionRequest::Kind::kHold: ++stats_.holdsCompleted; break;
    }
  } else if (statusCode == 500) {
    ++stats_.crashes;
  } else if (statusCode == 409) {
    ++stats_.divergences;
  } else if (statusCode >= 400) {
    ++stats_.badRequests;
  }
  (void)kind;
}

}  // namespace urlf::serve
