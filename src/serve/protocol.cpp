#include "serve/protocol.h"

#include "http/status.h"
#include "scenarios/campaign.h"

namespace urlf::serve {

using report::Json;

util::Expected<SessionRequest> SessionRequest::parse(const Json& body) {
  using Result = util::Expected<SessionRequest>;
  if (!body.isObject()) return Result::failure("session body is not an object");

  SessionRequest request;
  const auto* kind = body.find("kind");
  if (kind == nullptr || !kind->asString())
    return Result::failure("session body has no kind");
  if (*kind->asString() == "campaign")
    request.kind = Kind::kCampaign;
  else if (*kind->asString() == "query")
    request.kind = Kind::kQuery;
  else if (*kind->asString() == "hold")
    request.kind = Kind::kHold;
  else
    return Result::failure("unknown session kind '" + *kind->asString() + "'");

  if (const auto* v = body.find("snapshot"); v && v->asString())
    request.snapshot = *v->asString();

  if (const auto* v = body.find("classify_threads"); v && v->asNumber())
    request.classifyThreads = static_cast<std::size_t>(*v->asNumber());
  if (const auto* v = body.find("journal"); v && v->asString())
    request.journalPath = *v->asString();
  if (const auto* v = body.find("resume"); v && v->asBool())
    request.resume = *v->asBool();
  if (const auto* v = body.find("crash_after"); v && v->asNumber())
    request.crashAfter = static_cast<int>(*v->asNumber());

  if (const auto* v = body.find("vantage"); v && v->asString())
    request.fieldVantage = *v->asString();
  if (const auto* v = body.find("lab"); v && v->asString())
    request.labVantage = *v->asString();
  if (const auto* v = body.find("date"); v && v->asString()) {
    request.date = scenarios::parseCivilDate(*v->asString());
    if (!request.date)
      return Result::failure("malformed date '" + *v->asString() + "'");
  }
  if (const auto* v = body.find("urls"); v && v->asArray()) {
    for (const auto& url : *v->asArray()) {
      if (!url.asString()) return Result::failure("urls entries must be strings");
      request.urls.push_back(*url.asString());
    }
  }

  if (const auto* v = body.find("token"); v && v->asString())
    request.token = *v->asString();

  switch (request.kind) {
    case Kind::kCampaign:
      if (request.snapshot.empty())
        return Result::failure("campaign session needs a snapshot");
      if (request.resume && request.journalPath.empty())
        return Result::failure("resume needs a journal path");
      break;
    case Kind::kQuery:
      if (request.snapshot.empty())
        return Result::failure("query session needs a snapshot");
      if (request.fieldVantage.empty())
        return Result::failure("query session needs a vantage");
      if (!request.date) return Result::failure("query session needs a date");
      if (request.urls.empty())
        return Result::failure("query session needs urls");
      break;
    case Kind::kHold:
      if (request.token.empty())
        return Result::failure("hold session needs a token");
      break;
  }
  return request;
}

Json SessionRequest::toJson() const {
  Json out = Json::object();
  switch (kind) {
    case Kind::kCampaign: out["kind"] = Json::string("campaign"); break;
    case Kind::kQuery: out["kind"] = Json::string("query"); break;
    case Kind::kHold: out["kind"] = Json::string("hold"); break;
  }
  if (!snapshot.empty()) out["snapshot"] = Json::string(snapshot);
  if (classifyThreads != 0)
    out["classify_threads"] =
        Json::number(static_cast<std::int64_t>(classifyThreads));
  if (!journalPath.empty()) out["journal"] = Json::string(journalPath);
  if (resume) out["resume"] = Json::boolean(true);
  if (crashAfter > 0) out["crash_after"] = Json::number(std::int64_t{crashAfter});
  if (!fieldVantage.empty()) out["vantage"] = Json::string(fieldVantage);
  if (kind == Kind::kQuery) out["lab"] = Json::string(labVantage);
  if (date) out["date"] = Json::string(date->iso());
  if (!urls.empty()) {
    Json list = Json::array();
    for (const auto& url : urls) list.push(Json::string(url));
    out["urls"] = std::move(list);
  }
  if (!token.empty()) out["token"] = Json::string(token);
  return out;
}

http::Response jsonResponse(int status, const Json& body) {
  http::Response response;
  response.statusCode = status;
  response.reason = std::string(http::reasonPhrase(status));
  response.body = body.dump();
  response.headers.set("Content-Type", "application/json");
  response.headers.set("Content-Length", std::to_string(response.body.size()));
  return response;
}

std::optional<Json> bodyJson(const http::Request& request) {
  if (request.body.empty()) return std::nullopt;
  return Json::parse(request.body);
}

http::Response errorResponse(int status, std::string_view message) {
  Json body = Json::object();
  body["error"] = Json::string(message);
  return jsonResponse(status, body);
}

}  // namespace urlf::serve
