#ifndef URLF_REPORT_JSON_H
#define URLF_REPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace urlf::report {

/// A small JSON value/writer — enough to export results and scan data in a
/// machine-readable form (the paper published its data; so do we).
/// Build values with the static factories, serialize with dump().
class Json {
 public:
  using Array = std::vector<Json>;
  /// std::map keeps key order deterministic across runs.
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}

  static Json null() { return Json(); }
  static Json boolean(bool v) { return Json(Value{v}); }
  static Json number(double v) { return Json(Value{v}); }
  static Json number(std::int64_t v) {
    return Json(Value{static_cast<double>(v)});
  }
  static Json string(std::string_view v) {
    return Json(Value{std::string(v)});
  }
  static Json array(Array items = {}) { return Json(Value{std::move(items)}); }
  static Json object(Object members = {}) {
    return Json(Value{std::move(members)});
  }

  [[nodiscard]] bool isNull() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool isObject() const {
    return std::holds_alternative<Object>(value_);
  }
  [[nodiscard]] bool isArray() const {
    return std::holds_alternative<Array>(value_);
  }

  /// Member access; inserts on objects (like std::map::operator[]).
  /// Throws std::logic_error when the value is not an object.
  Json& operator[](const std::string& key);
  [[nodiscard]] const Json* find(const std::string& key) const;

  /// Append to an array value. Throws when not an array.
  void push(Json item);

  /// Typed accessors: non-null only when the value holds that type.
  [[nodiscard]] const Array* asArray() const {
    return std::get_if<Array>(&value_);
  }
  [[nodiscard]] const Object* asObject() const {
    return std::get_if<Object>(&value_);
  }
  [[nodiscard]] const std::string* asString() const {
    return std::get_if<std::string>(&value_);
  }
  [[nodiscard]] const double* asNumber() const {
    return std::get_if<double>(&value_);
  }
  [[nodiscard]] const bool* asBool() const { return std::get_if<bool>(&value_); }

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse a JSON document. Returns nullopt on any syntax error or
  /// trailing garbage. Supports the standard scalar types, arrays, objects,
  /// and \uXXXX escapes for the BMP (encoded as UTF-8).
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

  /// Escape a string for embedding in JSON (without the quotes).
  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  using Value =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;
  explicit Json(Value value) : value_(std::move(value)) {}

  void dumpTo(std::string& out, int indent, int depth) const;

  Value value_;
};

}  // namespace urlf::report

#endif  // URLF_REPORT_JSON_H
