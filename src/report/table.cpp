#include "report/table.h"

#include <algorithm>
#include <stdexcept>

namespace urlf::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::addRow(std::vector<std::string> row) {
  if (row.size() > headers_.size())
    throw std::invalid_argument("TextTable: row wider than header");
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto renderRow = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };

  std::string separator = "+";
  for (const auto w : widths) separator += std::string(w + 2, '-') + "+";
  separator += "\n";

  std::string out = separator + renderRow(headers_) + separator;
  for (const auto& row : rows_) out += renderRow(row);
  out += separator;
  return out;
}

std::string sectionBanner(const std::string& title) {
  return "\n== " + title + " ==\n";
}

}  // namespace urlf::report
