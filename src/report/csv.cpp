#include "report/csv.h"

namespace urlf::report {

std::string csvEscape(std::string_view field) {
  const bool needsQuoting =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needsQuoting) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csvRow(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += ',';
    out += csvEscape(fields[i]);
  }
  return out;
}

std::string csvDocument(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::string out = csvRow(header) + "\n";
  for (const auto& row : rows) out += csvRow(row) + "\n";
  return out;
}

}  // namespace urlf::report
