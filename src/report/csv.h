#ifndef URLF_REPORT_CSV_H
#define URLF_REPORT_CSV_H

#include <string>
#include <string_view>
#include <vector>

namespace urlf::report {

/// RFC 4180-style CSV field escaping: fields containing commas, quotes or
/// newlines are quoted, embedded quotes doubled.
[[nodiscard]] std::string csvEscape(std::string_view field);

/// One CSV line (no trailing newline).
[[nodiscard]] std::string csvRow(const std::vector<std::string>& fields);

/// A whole document: header row + data rows, '\n' separated, trailing
/// newline included.
[[nodiscard]] std::string csvDocument(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows);

}  // namespace urlf::report

#endif  // URLF_REPORT_CSV_H
