#ifndef URLF_REPORT_TABLE_H
#define URLF_REPORT_TABLE_H

#include <string>
#include <vector>

namespace urlf::report {

/// A fixed-width ASCII table, used by the bench binaries to print the
/// paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Rows shorter than the header are padded with empty cells; longer rows
  /// throw std::invalid_argument.
  void addRow(std::vector<std::string> row);

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "== title ==" section banner used by the bench output.
[[nodiscard]] std::string sectionBanner(const std::string& title);

}  // namespace urlf::report

#endif  // URLF_REPORT_TABLE_H
