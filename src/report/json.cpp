#include "report/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace urlf::report {

Json& Json::operator[](const std::string& key) {
  auto* object = std::get_if<Object>(&value_);
  if (object == nullptr) {
    if (isNull()) {
      value_ = Object{};
      object = std::get_if<Object>(&value_);
    } else {
      throw std::logic_error("Json::operator[]: not an object");
    }
  }
  return (*object)[key];
}

const Json* Json::find(const std::string& key) const {
  const auto* object = std::get_if<Object>(&value_);
  if (object == nullptr) return nullptr;
  const auto it = object->find(key);
  return it == object->end() ? nullptr : &it->second;
}

void Json::push(Json item) {
  auto* array = std::get_if<Array>(&value_);
  if (array == nullptr) {
    if (isNull()) {
      value_ = Array{};
      array = std::get_if<Array>(&value_);
    } else {
      throw std::logic_error("Json::push: not an array");
    }
  }
  array->push_back(std::move(item));
}

std::string Json::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dumpTo(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          (static_cast<std::size_t>(depth) + 1),
                                      ' ')
                 : "";
  const std::string closePad =
      indent > 0
          ? "\n" + std::string(
                       static_cast<std::size_t>(indent) *
                           static_cast<std::size_t>(depth),
                       ' ')
          : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (*d == std::floor(*d) && std::abs(*d) < 1e15) {
      out += std::to_string(static_cast<std::int64_t>(*d));
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.10g", *d);
      out += buf;
    }
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += '"';
    out += escape(*s);
    out += '"';
  } else if (const auto* array = std::get_if<Array>(&value_)) {
    if (array->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& item : *array) {
      if (!first) out += ',';
      first = false;
      out += pad;
      item.dumpTo(out, indent, depth + 1);
    }
    out += closePad;
    out += ']';
  } else if (const auto* object = std::get_if<Object>(&value_)) {
    if (object->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, item] : *object) {
      if (!first) out += ',';
      first = false;
      out += pad;
      out += '"';
      out += escape(key);
      out += "\":";
      if (indent > 0) out += ' ';
      item.dumpTo(out, indent, depth + 1);
    }
    out += closePad;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    skipWhitespace();
    auto value = parseValue();
    if (!value) return std::nullopt;
    skipWhitespace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<Json> parseValue() {
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        auto s = parseString();
        if (!s) return std::nullopt;
        return Json::string(*s);
      }
      case 't':
        return consumeLiteral("true") ? std::optional(Json::boolean(true))
                                      : std::nullopt;
      case 'f':
        return consumeLiteral("false") ? std::optional(Json::boolean(false))
                                       : std::nullopt;
      case 'n':
        return consumeLiteral("null") ? std::optional(Json::null())
                                      : std::nullopt;
      default: return parseNumber();
    }
  }

  std::optional<Json> parseObject() {
    if (!consume('{')) return std::nullopt;
    Json out = Json::object();
    skipWhitespace();
    if (consume('}')) return out;
    while (true) {
      skipWhitespace();
      auto key = parseString();
      if (!key) return std::nullopt;
      skipWhitespace();
      if (!consume(':')) return std::nullopt;
      skipWhitespace();
      auto value = parseValue();
      if (!value) return std::nullopt;
      out[*key] = std::move(*value);
      skipWhitespace();
      if (consume(',')) continue;
      if (consume('}')) return out;
      return std::nullopt;
    }
  }

  std::optional<Json> parseArray() {
    if (!consume('[')) return std::nullopt;
    Json out = Json::array();
    skipWhitespace();
    if (consume(']')) return out;
    while (true) {
      skipWhitespace();
      auto value = parseValue();
      if (!value) return std::nullopt;
      out.push(std::move(*value));
      skipWhitespace();
      if (consume(',')) continue;
      if (consume(']')) return out;
      return std::nullopt;
    }
  }

  std::optional<std::string> parseString() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return std::nullopt;
          }
          // Encode the BMP code point as UTF-8 (surrogates unsupported).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parseNumber() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Json::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace urlf::report
