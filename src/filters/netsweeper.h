#ifndef URLF_FILTERS_NETSWEEPER_H
#define URLF_FILTERS_NETSWEEPER_H

#include <optional>

#include "filters/deployment.h"

namespace urlf::filters {

/// Netsweeper Content Filtering.
///
/// Signature behaviour (Table 2): a WebAdmin management console at
/// ":8080/webadmin/" and deny pages under "webadmin/deny". Two behaviours
/// the paper documents are modeled here:
///  * in-country accesses to uncategorized URLs are queued for vendor
///    categorization (§4.4) — enabled via FilterPolicy::queueAccessedUrls;
///  * the vendor's operator tool denypagetests.netsweeper.com/category/
///    catno/<N> returns the deny page iff category N is blocked (§4.4).
class NetsweeperDeployment : public Deployment {
 public:
  NetsweeperDeployment(std::string deploymentName, Vendor& vendor,
                       FilterPolicy policy);

  void installExternalSurfaces(simnet::World& world, std::uint32_t asn) override;

  /// The deny page served at :8080/webadmin/deny.php.
  [[nodiscard]] http::Response makeDenyPage(
      const std::optional<std::string>& blockedUrl,
      const std::set<CategoryId>& categories) const;

  /// Parse "/category/catno/<N>" into N; nullopt for other paths.
  static std::optional<CategoryId> parseCategoryProbePath(
      std::string_view path);

 protected:
  std::optional<simnet::InterceptAction> preIntercept(
      http::Request& request, const simnet::InterceptContext& ctx) override;

  simnet::InterceptAction buildBlockAction(
      const http::Request& request, const std::set<CategoryId>& blockedCategories,
      const simnet::InterceptContext& ctx) override;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_NETSWEEPER_H
