#ifndef URLF_FILTERS_WEBSENSE_H
#define URLF_FILTERS_WEBSENSE_H

#include <optional>

#include "filters/deployment.h"

namespace urlf::filters {

/// Concurrent-user licensing for a Websense installation.
///
/// Prior ONI work observed a Yemeni ISP running Websense with a limited
/// number of concurrent user licenses: "when the number of users exceeded
/// the number of licenses no content would be filtered" (§4.4). Active users
/// follow a diurnal curve with jitter; any exchange arriving while the
/// installation is over-license passes unfiltered.
struct LicenseModel {
  int licenses = 1000;
  int baseUsers = 600;      ///< midnight load
  int peakExtraUsers = 800; ///< additional load at the daily peak
  int jitter = 100;         ///< uniform +/- jitter per exchange
};

/// Websense Web Security / Content Gateway.
///
/// Signature behaviour (Table 2): blocking redirects the client to a host on
/// port 15871 with a "ws-session" parameter to fetch blockpage.cgi; Shodan
/// keywords are "blockpage.cgi" and "gateway websense".
class WebsenseDeployment : public Deployment {
 public:
  WebsenseDeployment(std::string deploymentName, Vendor& vendor,
                     FilterPolicy policy);

  void setLicenseModel(LicenseModel model) { licenseModel_ = model; }
  [[nodiscard]] const std::optional<LicenseModel>& licenseModel() const {
    return licenseModel_;
  }

  /// Simulated concurrent users at `now` (diurnal curve + jitter).
  [[nodiscard]] int activeUsers(util::SimTime now, util::Rng& rng) const;

  void installExternalSurfaces(simnet::World& world, std::uint32_t asn) override;

  [[nodiscard]] bool isOffline(const simnet::InterceptContext& ctx) const override;

  /// The license model draws RNG jitter per exchange — verdicts must be
  /// re-drawn, never memoized.
  [[nodiscard]] bool deterministicIntercept() const override {
    return Deployment::deterministicIntercept() && !licenseModel_;
  }

  /// The block page served from :15871/cgi-bin/blockpage.cgi.
  [[nodiscard]] http::Response makeBlockPage(
      const std::optional<std::string>& blockedUrl) const;

 protected:
  simnet::InterceptAction buildBlockAction(
      const http::Request& request, const std::set<CategoryId>& blockedCategories,
      const simnet::InterceptContext& ctx) override;

 private:
  std::optional<LicenseModel> licenseModel_;
  mutable std::uint64_t sessionCounter_ = 7000;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_WEBSENSE_H
