#ifndef URLF_FILTERS_BLUECOAT_H
#define URLF_FILTERS_BLUECOAT_H

#include "filters/deployment.h"

namespace urlf::filters {

/// Blue Coat ProxySG with the optional Blue Coat Web Filter database.
///
/// Signature behaviour (Table 2): block redirects whose Location points at
/// www.cfauth.com with a "cfru=" parameter; "ProxySG" appears in the
/// management console banner. A ProxySG can also run a third-party filtering
/// engine (e.g. McAfee SmartFilter) instead of Web Filter — the tandem
/// arrangement the paper found in Etisalat (Challenge 3, §4.5): category
/// submissions to Blue Coat then have no effect on blocking.
class BlueCoatProxySG : public Deployment {
 public:
  BlueCoatProxySG(std::string deploymentName, Vendor& vendor,
                  FilterPolicy policy);

  /// Delegate URL-filtering decisions to another product running on this
  /// appliance (Challenge 3). The ProxySG keeps providing traffic
  /// management; its own Web Filter database is no longer consulted.
  void setFilteringEngine(Deployment& engine) { engine_ = &engine; }
  [[nodiscard]] bool hasFilteringEngine() const { return engine_ != nullptr; }

  void installExternalSurfaces(simnet::World& world, std::uint32_t asn) override;

  std::optional<simnet::InterceptAction> intercept(
      http::Request& request, const simnet::InterceptContext& ctx) override;

  void postProcess(const http::Request& request, http::Response& response,
                   const simnet::InterceptContext& ctx) override;

  /// The tandem delegates filtering, so the engine's side effects (e.g. a
  /// queue-on-access Netsweeper) are this box's side effects too.
  [[nodiscard]] bool interceptHasSideEffects() const override {
    return Deployment::interceptHasSideEffects() ||
           (engine_ != nullptr && engine_->interceptHasSideEffects());
  }

 protected:
  simnet::InterceptAction buildBlockAction(
      const http::Request& request, const std::set<CategoryId>& blockedCategories,
      const simnet::InterceptContext& ctx) override;

 private:
  [[nodiscard]] std::string cfauthRedirect(const net::Url& url) const;

  Deployment* engine_ = nullptr;
  std::string applianceHost_;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_BLUECOAT_H
