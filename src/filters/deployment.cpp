#include "filters/deployment.h"

#include <algorithm>

#include "util/strings.h"

namespace urlf::filters {

namespace {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace

Deployment::Deployment(std::string deploymentName, Vendor& vendor,
                       FilterPolicy policy)
    : deploymentName_(std::move(deploymentName)),
      vendor_(&vendor),
      policy_(std::move(policy)) {}

void Deployment::installExternalSurfaces(simnet::World& world,
                                         std::uint32_t asn) {
  serviceIp_ = world.allocateAddress(asn);
}

void Deployment::freezeUpdates() {
  frozenDb_ = vendor_->masterDb();
  policy_.receivesUpdates = false;
}

bool Deployment::isOffline(const simnet::InterceptContext& ctx) const {
  return policy_.offlineProbability > 0.0 && ctx.rng != nullptr &&
         ctx.rng->chance(policy_.offlineProbability);
}

bool Deployment::syncedLocally(std::string_view host) const {
  if (policy_.syncCoverage >= 1.0) return true;
  if (policy_.syncCoverage <= 0.0) return false;
  // Key coverage on the registrable domain so www.x and x agree. The salt
  // is mixed through a finalizer so that nearby salts give independent
  // inclusion sets. Callers pass Url::host(), normalized lowercase at parse
  // time, so the suffix view hashes the same bytes the lowercased copy did.
  const std::string_view domain = net::registrableDomainView(host);
  std::uint64_t h = fnv1a64(domain) ^ policy_.syncSalt;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return unit < policy_.syncCoverage;
}

void Deployment::effectiveCategoriesInto(const net::Url& url,
                                         util::SimTime now,
                                         CategorySet& out) const {
  policy_.customDb.categorizeInto(url, out);
  const CategoryDatabase& db =
      (frozenDb_ && !policy_.receivesUpdates) ? *frozenDb_ : vendor_->masterDb();
  if (syncedLocally(url.host())) {
    // Updates pushed by the vendor reach the box `updateLagHours` later.
    db.categorizeAsOfInto(url, now - policy_.updateLagHours, out);
  }
}

std::set<CategoryId> Deployment::effectiveCategories(const net::Url& url,
                                                     util::SimTime now) const {
  CategorySet scratch;
  effectiveCategoriesInto(url, now, scratch);
  return scratch.toSet();
}

std::uint64_t Deployment::stateEpoch() const {
  std::uint64_t epoch =
      vendor_->masterDb().mutationCount() + policy_.customDb.mutationCount();
  // The snapshot's presence flips which database is consulted, so freezing
  // itself must advance the epoch even though the snapshot never mutates.
  if (frozenDb_) epoch += frozenDb_->mutationCount() + 1;
  return epoch;
}

bool Deployment::deterministicIntercept() const {
  return policy_.offlineProbability <= 0.0;
}

bool Deployment::isOwnServiceTraffic(const http::Request& request) const {
  if (serviceIp_ == net::Ipv4Addr{}) return false;
  return request.url.host() == serviceIp_.toString();
}

std::optional<simnet::InterceptAction> Deployment::intercept(
    http::Request& request, const simnet::InterceptContext& ctx) {
  // Vendor-side queues advance lazily with simulated time.
  vendor_->processUntil(ctx.now);
  ++requestsSeen_;

  if (isOwnServiceTraffic(request)) return std::nullopt;

  if (auto action = preIntercept(request, ctx)) return action;

  if (isOffline(ctx)) return onPassThrough(request, ctx);

  // Per-request fast path: one reused scratch set, no node allocations.
  // The common outcome — uncategorized, pass through — touches the heap
  // not at all once the scratch has warmed up.
  thread_local CategorySet categories;
  categories.clear();
  effectiveCategoriesInto(request.url, ctx.now, categories);
  std::set<CategoryId> blocked;
  for (const CategoryId category : categories)
    if (policy_.blockedCategories.count(category) != 0)
      blocked.insert(category);
  if (!blocked.empty()) {
    ++requestsBlocked_;
    for (const auto category : blocked) ++blocksByCategory_[category];
    return buildBlockAction(request, blocked, ctx);
  }

  if (policy_.queueAccessedUrls && categories.empty())
    vendor_->queueForCategorization(request.url, ctx.now);

  return onPassThrough(request, ctx);
}

}  // namespace urlf::filters
