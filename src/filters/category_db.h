#ifndef URLF_FILTERS_CATEGORY_DB_H
#define URLF_FILTERS_CATEGORY_DB_H

#include <map>
#include <set>
#include <string>
#include <string_view>

#include "filters/category.h"
#include "net/url.h"
#include "util/clock.h"

namespace urlf::filters {

/// A vendor's database of categorized URLs.
///
/// Entries exist at two granularities, reflecting real products: whole
/// hostnames (SmartFilter blocked even the benign image on a categorized
/// host, §4.6) and exact URLs. Lookup checks the exact URL first, then the
/// hostname, then the registrable domain, and unions the results.
///
/// Each entry records when it was added, so deployments that receive
/// updates on a delay (§2.1's "subscription/update component") can query
/// the database "as of" an earlier time.
class CategoryDatabase {
 public:
  CategoryDatabase() = default;

  /// Categorize a whole hostname (and all URLs on it). `addedAt` defaults
  /// to the simulation epoch, i.e. visible at any query time.
  void addHost(std::string_view host, CategoryId category,
               util::SimTime addedAt = util::SimTime{});
  /// Categorize one exact URL (canonical string form).
  void addUrl(const net::Url& url, CategoryId category,
              util::SimTime addedAt = util::SimTime{});

  void removeHost(std::string_view host);

  /// All categories that apply to this URL (ignoring entry times).
  [[nodiscard]] std::set<CategoryId> categorize(const net::Url& url) const;

  /// Only the categories whose entries existed at or before `cutoff` — the
  /// view of a deployment whose last update sync was at `cutoff`.
  [[nodiscard]] std::set<CategoryId> categorizeAsOf(const net::Url& url,
                                                    util::SimTime cutoff) const;

  /// Categories recorded for the hostname itself (no URL/domain fallback).
  [[nodiscard]] std::set<CategoryId> hostCategories(std::string_view host) const;

  [[nodiscard]] bool isCategorized(const net::Url& url) const {
    return !categorize(url).empty();
  }

  /// Number of categorized hosts + URLs (vendors advertise this figure —
  /// "Netsweeper by the numbers" [19]).
  [[nodiscard]] std::size_t entryCount() const {
    return byHost_.size() + byUrl_.size();
  }

 private:
  /// category -> time the entry was added.
  using Entry = std::map<CategoryId, util::SimTime>;

  static std::set<CategoryId> categoriesOf(const Entry& entry,
                                           util::SimTime cutoff);

  std::map<std::string, Entry, std::less<>> byHost_;
  std::map<std::string, Entry, std::less<>> byUrl_;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_CATEGORY_DB_H
