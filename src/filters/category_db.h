#ifndef URLF_FILTERS_CATEGORY_DB_H
#define URLF_FILTERS_CATEGORY_DB_H

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "filters/category.h"
#include "filters/category_set.h"
#include "net/url.h"
#include "util/clock.h"
#include "util/flat_map.h"

namespace urlf::filters {

/// A vendor's database of categorized URLs.
///
/// Entries exist at two granularities, reflecting real products: whole
/// hostnames (SmartFilter blocked even the benign image on a categorized
/// host, §4.6) and exact URLs. Lookup checks the exact URL first, then the
/// hostname, then the registrable domain, and unions the results.
///
/// Each entry records when it was added, so deployments that receive
/// updates on a delay (§2.1's "subscription/update component") can query
/// the database "as of" an earlier time.
///
/// Internals are open-addressing flat maps (util::FlatStringMap) over
/// interned (lowercased-at-insert) keys, with each entry a small
/// category-sorted vector. The *Into/As-of fast paths below are
/// allocation-free after warm-up (thread-local key scratch + caller-reused
/// CategorySet) and are what Deployment::intercept runs per request; the
/// std::set-returning methods are thin adapters kept for existing callers.
/// ReferenceCategoryStore preserves the original tree-based implementation
/// for equivalence testing.
class CategoryDatabase {
 public:
  CategoryDatabase() = default;

  /// Categorize a whole hostname (and all URLs on it). `addedAt` defaults
  /// to the simulation epoch, i.e. visible at any query time.
  void addHost(std::string_view host, CategoryId category,
               util::SimTime addedAt = util::SimTime{});
  /// Categorize one exact URL (canonical string form).
  void addUrl(const net::Url& url, CategoryId category,
              util::SimTime addedAt = util::SimTime{});

  void removeHost(std::string_view host);

  /// All categories that apply to this URL (ignoring entry times).
  [[nodiscard]] std::set<CategoryId> categorize(const net::Url& url) const;

  /// Only the categories whose entries existed at or before `cutoff` — the
  /// view of a deployment whose last update sync was at `cutoff`.
  [[nodiscard]] std::set<CategoryId> categorizeAsOf(const net::Url& url,
                                                    util::SimTime cutoff) const;

  /// Fast path: union this URL's categories (as of `cutoff`) into `out`
  /// without allocating. Does NOT clear `out` — callers union several
  /// sources (custom DB + delayed master view) into one scratch set.
  void categorizeAsOfInto(const net::Url& url, util::SimTime cutoff,
                          CategorySet& out) const;
  /// Same, ignoring entry times.
  void categorizeInto(const net::Url& url, CategorySet& out) const;

  /// Categories recorded for the hostname itself (no URL/domain fallback).
  [[nodiscard]] std::set<CategoryId> hostCategories(std::string_view host) const;

  /// Allocation-free membership test: true when any probe (URL, host,
  /// registrable domain) has an entry visible at `cutoff`.
  [[nodiscard]] bool isCategorizedAsOf(const net::Url& url,
                                       util::SimTime cutoff) const;
  [[nodiscard]] bool isCategorized(const net::Url& url) const;

  /// Number of categorized hosts + URLs (vendors advertise this figure —
  /// "Netsweeper by the numbers" [19]).
  [[nodiscard]] std::size_t entryCount() const {
    return byHost_.size() + byUrl_.size();
  }

  /// Count of mutations (addHost/addUrl/removeHost) since construction.
  /// Monotone; callers memoizing lookup results compare this to detect
  /// staleness (see Deployment::stateEpoch).
  [[nodiscard]] std::uint64_t mutationCount() const { return mutationCount_; }

 private:
  /// One category assignment with the earliest time it appeared; entries
  /// are kept sorted by category id.
  struct TimedCategory {
    CategoryId category = 0;
    util::SimTime addedAt;
  };
  using Entry = std::vector<TimedCategory>;
  using FlatMap = util::FlatStringMap<Entry>;

  static void addTo(Entry& entry, CategoryId category, util::SimTime addedAt);
  static void collect(const Entry& entry, util::SimTime cutoff,
                      CategorySet& out);
  static bool anyVisible(const Entry& entry, util::SimTime cutoff);

  /// The three probe keys for a URL, in union order. `urlKey` is only built
  /// (into the thread-local scratch) when the URL map is non-empty.
  template <typename Fn>
  void forEachProbe(const net::Url& url, Fn&& fn) const;

  FlatMap byHost_;
  FlatMap byUrl_;
  std::uint64_t mutationCount_ = 0;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_CATEGORY_DB_H
