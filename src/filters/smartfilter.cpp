#include "filters/smartfilter.h"

#include "filters/fixed_endpoint.h"
#include "http/html.h"
#include "util/strings.h"

namespace urlf::filters {

namespace {
constexpr std::string_view kProductBanner = "McAfee Web Gateway 7.2.0.9";
}

SmartFilterDeployment::SmartFilterDeployment(std::string deploymentName,
                                             Vendor& vendor, FilterPolicy policy)
    : Deployment(std::move(deploymentName), vendor, std::move(policy)) {
  gatewayHost_ = "mwg." + util::toLower(util::replaceAll(name(), " ", "-")) +
                 ".local";
}

http::Response SmartFilterDeployment::makeBlockPage(
    const net::Url& url, const std::set<CategoryId>& categories) const {
  std::string categoryNames;
  for (const auto id : categories) {
    if (!categoryNames.empty()) categoryNames += ", ";
    categoryNames += vendor().scheme().nameOf(id);
  }

  const bool branded = !policy().stripBranding;
  const std::string title =
      branded ? "McAfee Web Gateway - Notification" : "Access Denied";
  std::string body = "<h1>URL Blocked</h1><p>The requested URL <tt>" +
                     http::escape(url.toString()) +
                     "</tt> was blocked by the network content policy.</p>";
  if (branded) {
    body += "<p>Categories: " + http::escape(categoryNames) + "</p>";
    body += "<hr/><address>" + std::string(kProductBanner) + " at " +
            gatewayHost_ + "</address>";
  }

  auto resp = http::Response::make(http::Status::kForbidden,
                                   http::makePage(title, body));
  if (branded) {
    resp.headers.add("Via",
                     "1.1 " + gatewayHost_ + " (" + std::string(kProductBanner) +
                         ")");
  } else {
    resp.headers.add("Via", "1.1 " + gatewayHost_);
  }
  return resp;
}

simnet::InterceptAction SmartFilterDeployment::buildBlockAction(
    const http::Request& request, const std::set<CategoryId>& blockedCategories,
    const simnet::InterceptContext& /*ctx*/) {
  return simnet::InterceptAction::respond(
      makeBlockPage(request.url, blockedCategories));
}

void SmartFilterDeployment::installExternalSurfaces(simnet::World& world,
                                                    std::uint32_t asn) {
  Deployment::installExternalSurfaces(world, asn);
  const bool visible = policy().externallyVisible;

  // MWG administrative UI (port 4711).
  auto& console = world.makeEndpoint<FixedEndpoint>(
      "McAfee Web Gateway console for " + name(),
      [this](const http::Request&, util::SimTime) {
        auto resp = http::Response::make(
            http::Status::kOk,
            http::makePage("McAfee Web Gateway - Login",
                           "<h1>McAfee Web Gateway</h1>"
                           "<form method=\"post\" action=\"/login\">"
                           "<input name=\"user\"/><input name=\"pass\" "
                           "type=\"password\"/></form>"));
        resp.headers.add("Server", std::string(kProductBanner));
        return resp;
      });
  world.bind(serviceIp(), 4711, console, visible);

  // Notification service (port 80): serves the standard "URL Blocked"
  // notification template — the surface Shodan's "url blocked" keyword hits.
  auto& notification = world.makeEndpoint<FixedEndpoint>(
      "McAfee Web Gateway notification service for " + name(),
      [this](const http::Request& req, util::SimTime) {
        return makeBlockPage(req.url, {});
      });
  world.bind(serviceIp(), 80, notification, visible);
}

}  // namespace urlf::filters
