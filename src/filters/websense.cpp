#include "filters/websense.h"

#include <cmath>
#include <numbers>

#include "filters/fixed_endpoint.h"
#include "http/html.h"
#include "util/strings.h"

namespace urlf::filters {

WebsenseDeployment::WebsenseDeployment(std::string deploymentName,
                                       Vendor& vendor, FilterPolicy policy)
    : Deployment(std::move(deploymentName), vendor, std::move(policy)) {}

int WebsenseDeployment::activeUsers(util::SimTime now, util::Rng& rng) const {
  if (!licenseModel_) return 0;
  const auto& m = *licenseModel_;
  const double hourOfDay = static_cast<double>(now.hours() % 24);
  // Diurnal curve peaking mid-afternoon (hour 15).
  const double phase =
      std::sin((hourOfDay - 9.0) / 24.0 * 2.0 * std::numbers::pi);
  const double diurnal = m.baseUsers + m.peakExtraUsers * std::max(0.0, phase);
  const auto jitter = static_cast<double>(rng.uniform(0, 2 * m.jitter)) -
                      static_cast<double>(m.jitter);
  return std::max(0, static_cast<int>(diurnal + jitter));
}

bool WebsenseDeployment::isOffline(const simnet::InterceptContext& ctx) const {
  if (licenseModel_ && ctx.rng != nullptr)
    return activeUsers(ctx.now, *ctx.rng) > licenseModel_->licenses;
  return Deployment::isOffline(ctx);
}

http::Response WebsenseDeployment::makeBlockPage(
    const std::optional<std::string>& blockedUrl) const {
  const bool branded = !policy().stripBranding;
  const std::string title = branded
                                ? "Websense - Access to this site is blocked"
                                : "Access to this site is blocked";
  std::string body =
      "<h1>Content blocked</h1><p>Access to this web site is restricted at "
      "this time.</p>";
  if (blockedUrl) body += "<p>URL: <tt>" + http::escape(*blockedUrl) + "</tt></p>";
  if (branded)
    body +=
        "<hr/><p>This page was served by blockpage.cgi on your organization's "
        "Websense gateway.</p>";
  auto resp =
      http::Response::make(http::Status::kForbidden, http::makePage(title, body));
  if (branded) resp.headers.add("Server", "Websense Content Gateway");
  return resp;
}

simnet::InterceptAction WebsenseDeployment::buildBlockAction(
    const http::Request& request,
    const std::set<CategoryId>& /*blockedCategories*/,
    const simnet::InterceptContext& /*ctx*/) {
  // Table 2 / WhatWeb: "Location header redirects to a host on port 15871
  // with parameter ws-session".
  auto resp = http::Response::make(http::Status::kFound);
  resp.headers.add("Location", "http://" + serviceIp().toString() +
                                   ":15871/cgi-bin/blockpage.cgi?ws-session=" +
                                   std::to_string(++sessionCounter_) +
                                   "&url=" + request.url.host());
  return simnet::InterceptAction::respond(std::move(resp));
}

void WebsenseDeployment::installExternalSurfaces(simnet::World& world,
                                                 std::uint32_t asn) {
  Deployment::installExternalSurfaces(world, asn);
  const bool visible = policy().externallyVisible;

  // Block-page service on the signature port 15871.
  auto& blockService = world.makeEndpoint<FixedEndpoint>(
      "Websense block-page service for " + name(),
      [this](const http::Request& req, util::SimTime) {
        std::optional<std::string> blockedUrl;
        if (const auto url = net::queryParam(req.url.query(), "url"))
          blockedUrl = *url;
        return makeBlockPage(blockedUrl);
      });
  world.bind(serviceIp(), 15871, blockService, visible);

  // Content Gateway console on port 80.
  auto& console = world.makeEndpoint<FixedEndpoint>(
      "Websense Content Gateway console for " + name(),
      [](const http::Request&, util::SimTime) {
        auto resp = http::Response::make(
            http::Status::kOk,
            http::makePage("Websense Content Gateway",
                           "<h1>Web Security Gateway Websense</h1>"
                           "<p>Administrator sign-in required.</p>"));
        resp.headers.add("Server", "Websense Content Gateway");
        return resp;
      });
  world.bind(serviceIp(), 80, console, visible);
}

}  // namespace urlf::filters
