#ifndef URLF_FILTERS_SMARTFILTER_H
#define URLF_FILTERS_SMARTFILTER_H

#include "filters/deployment.h"

namespace urlf::filters {

/// McAfee SmartFilter, as shipped in McAfee Web Gateway (MWG).
///
/// Signature behaviour (Table 2): block pages carry a Via header naming
/// "McAfee Web Gateway" and an HTML title containing the same; the paper's
/// Shodan keywords are "mcafee web gateway" and "url blocked".
/// Blocking is at hostname granularity (§4.6).
class SmartFilterDeployment : public Deployment {
 public:
  SmartFilterDeployment(std::string deploymentName, Vendor& vendor,
                        FilterPolicy policy);

  void installExternalSurfaces(simnet::World& world, std::uint32_t asn) override;

  /// The gateway hostname stamped into Via headers.
  [[nodiscard]] const std::string& gatewayHost() const { return gatewayHost_; }

  /// The block page exactly as emitted in-path (exposed for the external
  /// notification service and tests).
  [[nodiscard]] http::Response makeBlockPage(
      const net::Url& url, const std::set<CategoryId>& categories) const;

 protected:
  simnet::InterceptAction buildBlockAction(
      const http::Request& request, const std::set<CategoryId>& blockedCategories,
      const simnet::InterceptContext& ctx) override;

 private:
  std::string gatewayHost_;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_SMARTFILTER_H
