#include "filters/netsweeper.h"

#include <cctype>

#include "filters/fixed_endpoint.h"
#include "http/html.h"
#include "util/base64.h"
#include "util/strings.h"

namespace urlf::filters {

namespace {
constexpr std::string_view kDenyPageTestsHost = "denypagetests.netsweeper.com";
}

NetsweeperDeployment::NetsweeperDeployment(std::string deploymentName,
                                           Vendor& vendor, FilterPolicy policy)
    : Deployment(std::move(deploymentName), vendor, std::move(policy)) {}

std::optional<CategoryId> NetsweeperDeployment::parseCategoryProbePath(
    std::string_view path) {
  constexpr std::string_view kPrefix = "/category/catno/";
  if (!util::startsWith(path, kPrefix)) return std::nullopt;
  const std::string_view digits = path.substr(kPrefix.size());
  if (digits.empty() || digits.size() > 4) return std::nullopt;
  CategoryId id = 0;
  for (const char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    id = id * 10 + (c - '0');
  }
  return id;
}

http::Response NetsweeperDeployment::makeDenyPage(
    const std::optional<std::string>& blockedUrl,
    const std::set<CategoryId>& categories) const {
  std::string categoryNames;
  for (const auto id : categories) {
    if (!categoryNames.empty()) categoryNames += ", ";
    categoryNames += vendor().scheme().nameOf(id) + " (" + std::to_string(id) +
                     ")";
  }

  const bool branded = !policy().stripBranding;
  const std::string title =
      branded ? "Netsweeper WebAdmin - Web Page Blocked" : "Web Page Blocked";
  std::string body =
      "<h1>Web Page Blocked</h1><p>The web page you have requested has been "
      "blocked";
  body += branded ? " by Netsweeper content filtering.</p>"
                  : " by your network administrator.</p>";
  if (blockedUrl) body += "<p>URL: <tt>" + http::escape(*blockedUrl) + "</tt></p>";
  if (branded && !categoryNames.empty())
    body += "<p>Categories: " + http::escape(categoryNames) + "</p>";

  auto resp = http::Response::make(http::Status::kForbidden,
                                   http::makePage(title, body));
  if (branded) resp.headers.add("X-Filter", "Netsweeper");
  return resp;
}

std::optional<simnet::InterceptAction> NetsweeperDeployment::preIntercept(
    http::Request& request, const simnet::InterceptContext& /*ctx*/) {
  // Operator configuration-test tool (§4.4): requesting
  // denypagetests.netsweeper.com/category/catno/<N> yields the deny page
  // exactly when category N is blocked here; otherwise the request passes
  // through to the vendor's origin ("not being filtered").
  if (!util::iequals(request.url.host(), kDenyPageTestsHost)) return std::nullopt;
  const auto category = parseCategoryProbePath(request.url.path());
  if (!category || !policy().blockedCategories.contains(*category))
    return std::nullopt;
  // The vendor's test tool only covers vendor-maintained categories;
  // operator-defined custom categories (catno 66) have no test URL.
  if (const auto cat = vendor().scheme().byId(*category);
      cat && util::iequals(cat->name, "Custom"))
    return std::nullopt;
  return buildBlockAction(request, {*category}, {});
}

simnet::InterceptAction NetsweeperDeployment::buildBlockAction(
    const http::Request& request, const std::set<CategoryId>& blockedCategories,
    const simnet::InterceptContext& /*ctx*/) {
  // Redirect to the deny page on the box's WebAdmin service (Table 2:
  // "webadmin/deny").
  std::string location = "http://" + serviceIp().toString() +
                         ":8080/webadmin/deny.php?dpid=2";
  if (!blockedCategories.empty())
    location += "&catno=" + std::to_string(*blockedCategories.begin());
  location += "&dpruri=" + util::base64Encode(request.url.toString());

  auto resp = http::Response::make(http::Status::kFound);
  resp.headers.add("Location", location);
  return simnet::InterceptAction::respond(std::move(resp));
}

void NetsweeperDeployment::installExternalSurfaces(simnet::World& world,
                                                   std::uint32_t asn) {
  Deployment::installExternalSurfaces(world, asn);
  const bool visible = policy().externallyVisible;

  // WebAdmin console + deny-page service on port 8080.
  auto& webadmin = world.makeEndpoint<FixedEndpoint>(
      "Netsweeper WebAdmin for " + name(),
      [this](const http::Request& req, util::SimTime) -> http::Response {
        const std::string& path = req.url.path();
        if (path == "/" || path.empty()) {
          auto resp = http::Response::make(http::Status::kFound);
          resp.headers.add("Location", "/webadmin/");
          resp.headers.add("Server", "Netsweeper/5.0");
          return resp;
        }
        if (util::startsWith(path, "/webadmin/deny")) {
          std::optional<std::string> blockedUrl;
          if (const auto encoded = net::queryParam(req.url.query(), "dpruri"))
            blockedUrl = util::base64Decode(*encoded);
          std::set<CategoryId> categories;
          if (const auto catText = net::queryParam(req.url.query(), "catno")) {
            if (const auto cat = parseCategoryProbePath("/category/catno/" +
                                                        *catText))
              categories.insert(*cat);
          }
          auto resp = makeDenyPage(blockedUrl, categories);
          resp.headers.add("Server", "Netsweeper/5.0");
          return resp;
        }
        if (util::startsWith(path, "/webadmin")) {
          auto resp = http::Response::make(
              http::Status::kOk,
              http::makePage("Netsweeper WebAdmin - Login",
                             "<h1>netsweeper webadmin</h1>"
                             "<form method=\"post\" action=\"/webadmin/login\">"
                             "<input name=\"user\"/><input name=\"pass\" "
                             "type=\"password\"/></form>"));
          resp.headers.add("Server", "Netsweeper/5.0");
          return resp;
        }
        auto resp = http::Response::make(http::Status::kNotFound,
                                         http::makePage("404", "Not found"));
        resp.headers.add("Server", "Netsweeper/5.0");
        return resp;
      });
  world.bind(serviceIp(), 8080, webadmin, visible);
}

}  // namespace urlf::filters
