#ifndef URLF_FILTERS_REGISTRY_H
#define URLF_FILTERS_REGISTRY_H

#include <memory>
#include <string>

#include "filters/bluecoat.h"
#include "filters/deployment.h"
#include "filters/netsweeper.h"
#include "filters/smartfilter.h"
#include "filters/websense.h"

namespace urlf::filters {

/// Construct the right Deployment subclass for a product kind, owned by the
/// world. Convenience used by scenario builders and tests.
inline Deployment& makeDeployment(simnet::World& world, ProductKind kind,
                                  std::string deploymentName, Vendor& vendor,
                                  FilterPolicy policy) {
  switch (kind) {
    case ProductKind::kBlueCoat:
      return world.makeMiddlebox<BlueCoatProxySG>(std::move(deploymentName),
                                                  vendor, std::move(policy));
    case ProductKind::kSmartFilter:
      return world.makeMiddlebox<SmartFilterDeployment>(
          std::move(deploymentName), vendor, std::move(policy));
    case ProductKind::kNetsweeper:
      return world.makeMiddlebox<NetsweeperDeployment>(std::move(deploymentName),
                                                       vendor, std::move(policy));
    case ProductKind::kWebsense:
      return world.makeMiddlebox<WebsenseDeployment>(std::move(deploymentName),
                                                     vendor, std::move(policy));
  }
  throw std::invalid_argument("makeDeployment: unknown product kind");
}

}  // namespace urlf::filters

#endif  // URLF_FILTERS_REGISTRY_H
