#ifndef URLF_FILTERS_CATEGORY_H
#define URLF_FILTERS_CATEGORY_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace urlf::filters {

/// A vendor-assigned category identifier. Meaning is vendor-specific
/// (Netsweeper's 23 is "Pornography"; SmartFilter numbers differ).
using CategoryId = int;

/// One category in a vendor's taxonomy.
struct Category {
  CategoryId id = 0;
  std::string name;
};

/// A vendor's category taxonomy (its "database schema"): ordered list of
/// categories with id and name lookup.
class CategoryScheme {
 public:
  CategoryScheme() = default;
  explicit CategoryScheme(std::vector<Category> categories);

  [[nodiscard]] const std::vector<Category>& categories() const {
    return categories_;
  }
  [[nodiscard]] std::size_t size() const { return categories_.size(); }

  [[nodiscard]] std::optional<Category> byId(CategoryId id) const;
  /// Case-insensitive name lookup.
  [[nodiscard]] std::optional<Category> byName(std::string_view name) const;

  /// Name for an id, or "category-<id>" when unknown.
  [[nodiscard]] std::string nameOf(CategoryId id) const;

 private:
  std::vector<Category> categories_;
};

/// The products studied in the paper (Table 1).
enum class ProductKind { kBlueCoat, kSmartFilter, kNetsweeper, kWebsense };

[[nodiscard]] std::string_view toString(ProductKind kind);
[[nodiscard]] std::string_view vendorCompany(ProductKind kind);
[[nodiscard]] std::string_view vendorHeadquarters(ProductKind kind);
[[nodiscard]] std::string_view productDescription(ProductKind kind);
/// All four products in Table 1 order.
[[nodiscard]] const std::vector<ProductKind>& allProducts();

/// Vendor taxonomies.
/// Blue Coat WebFilter categories ("Proxy Avoidance", "Pornography", ...).
[[nodiscard]] CategoryScheme blueCoatScheme();
/// McAfee SmartFilter categories ("Anonymizers", "Pornography", ...).
[[nodiscard]] CategoryScheme smartFilterScheme();
/// Netsweeper's 66 numbered categories; catno 23 is "Pornography" as the
/// paper's denypagetests example shows (§4.4).
[[nodiscard]] CategoryScheme netsweeperScheme();
/// Websense categories.
[[nodiscard]] CategoryScheme websenseScheme();

[[nodiscard]] CategoryScheme schemeFor(ProductKind kind);

}  // namespace urlf::filters

#endif  // URLF_FILTERS_CATEGORY_H
