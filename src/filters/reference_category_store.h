#ifndef URLF_FILTERS_REFERENCE_CATEGORY_STORE_H
#define URLF_FILTERS_REFERENCE_CATEGORY_STORE_H

#include <limits>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "filters/category.h"
#include "net/url.h"
#include "util/clock.h"
#include "util/strings.h"

namespace urlf::filters {

/// The original node-based CategoryDatabase implementation, preserved
/// verbatim as the behavioral reference for the flat store.
///
/// CategoryDatabase replaced its std::map/std::set internals with hash-based
/// flat maps; this class keeps the obviously-correct tree-based version so
/// property tests can check flat ≡ reference on randomized worlds and the
/// categorize benchmark can measure the speedup against a live baseline.
/// Not used on any production path.
class ReferenceCategoryStore {
 public:
  ReferenceCategoryStore() = default;

  void addHost(std::string_view host, CategoryId category,
               util::SimTime addedAt = util::SimTime{}) {
    auto& entry = byHost_[util::toLower(host)];
    const auto it = entry.find(category);
    // Keep the earliest time an entry appeared.
    if (it == entry.end() || addedAt < it->second) entry[category] = addedAt;
  }

  void addUrl(const net::Url& url, CategoryId category,
              util::SimTime addedAt = util::SimTime{}) {
    auto& entry = byUrl_[url.toString()];
    const auto it = entry.find(category);
    if (it == entry.end() || addedAt < it->second) entry[category] = addedAt;
  }

  void removeHost(std::string_view host) {
    byHost_.erase(util::toLower(host));
  }

  [[nodiscard]] std::set<CategoryId> categorize(const net::Url& url) const {
    return categorizeAsOf(url, kNoCutoff);
  }

  [[nodiscard]] std::set<CategoryId> categorizeAsOf(
      const net::Url& url, util::SimTime cutoff) const {
    std::set<CategoryId> out;

    if (const auto it = byUrl_.find(url.toString()); it != byUrl_.end()) {
      const auto categories = categoriesOf(it->second, cutoff);
      out.insert(categories.begin(), categories.end());
    }

    if (const auto it = byHost_.find(url.host()); it != byHost_.end()) {
      const auto categories = categoriesOf(it->second, cutoff);
      out.insert(categories.begin(), categories.end());
    }

    const std::string domain = net::registrableDomain(url.host());
    if (domain != url.host()) {
      if (const auto it = byHost_.find(domain); it != byHost_.end()) {
        const auto categories = categoriesOf(it->second, cutoff);
        out.insert(categories.begin(), categories.end());
      }
    }
    return out;
  }

  [[nodiscard]] std::set<CategoryId> hostCategories(
      std::string_view host) const {
    const auto it = byHost_.find(util::toLower(host));
    if (it == byHost_.end()) return {};
    return categoriesOf(it->second, kNoCutoff);
  }

  [[nodiscard]] bool isCategorized(const net::Url& url) const {
    return !categorize(url).empty();
  }

  [[nodiscard]] std::size_t entryCount() const {
    return byHost_.size() + byUrl_.size();
  }

 private:
  using Entry = std::map<CategoryId, util::SimTime>;

  static constexpr util::SimTime kNoCutoff{
      std::numeric_limits<std::int64_t>::max()};

  static std::set<CategoryId> categoriesOf(const Entry& entry,
                                           util::SimTime cutoff) {
    std::set<CategoryId> out;
    for (const auto& [category, addedAt] : entry)
      if (addedAt <= cutoff) out.insert(category);
    return out;
  }

  std::map<std::string, Entry, std::less<>> byHost_;
  std::map<std::string, Entry, std::less<>> byUrl_;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_REFERENCE_CATEGORY_STORE_H
