#ifndef URLF_FILTERS_FIXED_ENDPOINT_H
#define URLF_FILTERS_FIXED_ENDPOINT_H

#include <functional>
#include <string>
#include <utility>

#include "simnet/endpoint.h"

namespace urlf::filters {

/// An HttpEndpoint defined by a handler function — used for product
/// management consoles, deny-page services, and block-page services whose
/// behaviour is a function of the request.
class FixedEndpoint : public simnet::HttpEndpoint {
 public:
  using Handler =
      std::function<http::Response(const http::Request&, util::SimTime)>;

  FixedEndpoint(std::string description, Handler handler)
      : description_(std::move(description)), handler_(std::move(handler)) {}

  http::Response handle(const http::Request& request,
                        util::SimTime now) override {
    return handler_(request, now);
  }

  [[nodiscard]] std::string describe() const override { return description_; }

 private:
  std::string description_;
  Handler handler_;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_FIXED_ENDPOINT_H
