#ifndef URLF_FILTERS_CATEGORY_SET_H
#define URLF_FILTERS_CATEGORY_SET_H

#include <algorithm>
#include <set>
#include <vector>

#include "filters/category.h"

namespace urlf::filters {

/// A small set of category ids stored as a sorted-unique vector.
///
/// Real deployments assign a URL a handful of categories at most, so a flat
/// sorted vector beats a node-based std::set on every operation the lookup
/// fast path performs: iteration is a linear scan over contiguous ints, and
/// clear()+reuse keeps the capacity, making repeated lookups through one
/// scratch instance allocation-free after warm-up.
class CategorySet {
 public:
  CategorySet() = default;

  void insert(CategoryId id) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it != ids_.end() && *it == id) return;
    ids_.insert(it, id);
  }

  [[nodiscard]] bool contains(CategoryId id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  /// Retains capacity — the point of reusing one instance across lookups.
  void clear() { ids_.clear(); }

  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }

  [[nodiscard]] auto begin() const { return ids_.begin(); }
  [[nodiscard]] auto end() const { return ids_.end(); }

  /// The sorted id vector (useful for set algorithms over the raw range).
  [[nodiscard]] const std::vector<CategoryId>& ids() const { return ids_; }

  /// Adapter for the public std::set-based API.
  [[nodiscard]] std::set<CategoryId> toSet() const {
    return {ids_.begin(), ids_.end()};
  }

  bool operator==(const CategorySet&) const = default;

 private:
  std::vector<CategoryId> ids_;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_CATEGORY_SET_H
