#ifndef URLF_FILTERS_POLICY_H
#define URLF_FILTERS_POLICY_H

#include <cstdint>
#include <set>

#include "filters/category.h"
#include "filters/category_db.h"

namespace urlf::filters {

/// Per-deployment operator configuration.
///
/// A deployment is one installation of a product inside one ISP; the
/// operator chooses which vendor categories to block, may add custom local
/// categorizations, and (deliberately or not) controls the properties the
/// paper's identification method depends on.
struct FilterPolicy {
  /// Vendor categories this operator blocks (ids in the vendor's scheme).
  std::set<CategoryId> blockedCategories;

  /// Operator-maintained local categorizations layered over the vendor DB.
  CategoryDatabase customDb;

  /// Whether the installation's management/service surfaces are reachable
  /// from the global Internet. The paper's §3 method only finds visible
  /// installations (its stated limitation; Table 5 evasion #1).
  bool externallyVisible = true;

  /// Strip vendor branding/headers from block pages (Table 5 evasion #2 —
  /// "vendors obscure the use of their products", §2.2).
  bool stripBranding = false;

  /// Fraction of the vendor master DB present locally (update lag /
  /// incomplete sync). 1.0 = fully synced. Inclusion is per-host
  /// deterministic given `syncSalt`.
  double syncCoverage = 1.0;
  std::uint64_t syncSalt = 0;

  /// Hours between a vendor-side database addition and its arrival at
  /// this deployment (the subscription/update push of §2.1). 0 = instant.
  std::int64_t updateLagHours = 0;

  /// Whether the deployment still receives vendor DB updates. Websense
  /// withdrew update support from Yemen in 2009 [35]; a frozen deployment
  /// only sees the DB snapshot taken at freeze time.
  bool receivesUpdates = true;

  /// Probability that any given exchange passes unfiltered because the box
  /// is overloaded/over-license ("temporarily offline", Challenge 2 §4.4).
  double offlineProbability = 0.0;

  /// Netsweeper behaviour (§4.4): queue URLs accessed in-country that are
  /// not yet categorized, for later vendor categorization.
  bool queueAccessedUrls = false;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_POLICY_H
