#include "filters/bluecoat.h"

#include "filters/fixed_endpoint.h"
#include "http/html.h"
#include "util/base64.h"
#include "util/strings.h"

namespace urlf::filters {

BlueCoatProxySG::BlueCoatProxySG(std::string deploymentName, Vendor& vendor,
                                 FilterPolicy policy)
    : Deployment(std::move(deploymentName), vendor, std::move(policy)) {
  applianceHost_ =
      "proxysg." + util::toLower(util::replaceAll(name(), " ", "-")) + ".local";
}

std::string BlueCoatProxySG::cfauthRedirect(const net::Url& url) const {
  return "http://www.cfauth.com/?cfru=" + util::base64Encode(url.toString());
}

simnet::InterceptAction BlueCoatProxySG::buildBlockAction(
    const http::Request& request,
    const std::set<CategoryId>& /*blockedCategories*/,
    const simnet::InterceptContext& /*ctx*/) {
  if (policy().stripBranding) {
    return simnet::InterceptAction::respond(http::Response::make(
        http::Status::kForbidden,
        http::makePage("Access Denied",
                       "<h1>Access Denied</h1><p>This page cannot be "
                       "displayed.</p>")));
  }
  auto resp = http::Response::make(http::Status::kFound);
  resp.headers.add("Location", cfauthRedirect(request.url));
  resp.headers.add("Server", "Blue Coat ProxySG");
  return simnet::InterceptAction::respond(std::move(resp));
}

std::optional<simnet::InterceptAction> BlueCoatProxySG::intercept(
    http::Request& request, const simnet::InterceptContext& ctx) {
  if (engine_ != nullptr) {
    // Tandem mode (Challenge 3): the engine decides; our own Web Filter DB
    // and blocked-category policy are not consulted at all.
    return engine_->intercept(request, ctx);
  }
  return Deployment::intercept(request, ctx);
}

void BlueCoatProxySG::postProcess(const http::Request& /*request*/,
                                  http::Response& response,
                                  const simnet::InterceptContext& /*ctx*/) {
  // The appliance is a transparent proxy regardless of which engine filters;
  // it stamps proxy headers on forwarded traffic unless debranded.
  if (policy().stripBranding) return;
  response.headers.add("Via", "1.1 " + applianceHost_);
  response.headers.add("X-Cache", "MISS from " + applianceHost_);
}

void BlueCoatProxySG::installExternalSurfaces(simnet::World& world,
                                              std::uint32_t asn) {
  Deployment::installExternalSurfaces(world, asn);
  const bool visible = policy().externallyVisible;

  // Management console (port 8082).
  auto& console = world.makeEndpoint<FixedEndpoint>(
      "Blue Coat ProxySG console for " + name(),
      [](const http::Request&, util::SimTime) {
        auto resp = http::Response::make(
            http::Status::kOk,
            http::makePage("Blue Coat ProxySG - Management Console",
                           "<h1>ProxySG Appliance</h1>"
                           "<p>Authentication required.</p>"));
        resp.headers.add("Server", "Blue Coat ProxySG");
        return resp;
      });
  world.bind(serviceIp(), 8082, console, visible);

  // Unauthenticated requests straight at the appliance's port 80 bounce to
  // the cfauth.com authentication/notification service — the behaviour that
  // puts "cfru=" into scan banners.
  auto& bounce = world.makeEndpoint<FixedEndpoint>(
      "Blue Coat ProxySG cfauth bounce for " + name(),
      [this](const http::Request& req, util::SimTime) {
        auto resp = http::Response::make(http::Status::kFound);
        resp.headers.add("Location", cfauthRedirect(req.url));
        resp.headers.add("Server", "Blue Coat ProxySG");
        return resp;
      });
  world.bind(serviceIp(), 80, bounce, visible);
}

}  // namespace urlf::filters
