#include "filters/category.h"

#include <array>

#include "util/strings.h"

namespace urlf::filters {

CategoryScheme::CategoryScheme(std::vector<Category> categories)
    : categories_(std::move(categories)) {}

std::optional<Category> CategoryScheme::byId(CategoryId id) const {
  for (const auto& c : categories_)
    if (c.id == id) return c;
  return std::nullopt;
}

std::optional<Category> CategoryScheme::byName(std::string_view name) const {
  for (const auto& c : categories_)
    if (util::iequals(c.name, name)) return c;
  return std::nullopt;
}

std::string CategoryScheme::nameOf(CategoryId id) const {
  if (const auto c = byId(id)) return c->name;
  return "category-" + std::to_string(id);
}

std::string_view toString(ProductKind kind) {
  switch (kind) {
    case ProductKind::kBlueCoat: return "Blue Coat";
    case ProductKind::kSmartFilter: return "McAfee SmartFilter";
    case ProductKind::kNetsweeper: return "Netsweeper";
    case ProductKind::kWebsense: return "Websense";
  }
  return "unknown";
}

std::string_view vendorCompany(ProductKind kind) {
  switch (kind) {
    case ProductKind::kBlueCoat: return "Blue Coat";
    case ProductKind::kSmartFilter: return "McAfee";
    case ProductKind::kNetsweeper: return "Netsweeper";
    case ProductKind::kWebsense: return "Websense";
  }
  return "unknown";
}

std::string_view vendorHeadquarters(ProductKind kind) {
  switch (kind) {
    case ProductKind::kBlueCoat: return "Sunnyvale, CA, USA";
    case ProductKind::kSmartFilter: return "Santa Clara, CA, USA";
    case ProductKind::kNetsweeper: return "Guelph, ON, Canada";
    case ProductKind::kWebsense: return "San Diego, CA, USA";
  }
  return "unknown";
}

std::string_view productDescription(ProductKind kind) {
  switch (kind) {
    case ProductKind::kBlueCoat:
      return "Web proxy (ProxySG) and URL Filter (Web Filter)";
    case ProductKind::kSmartFilter:
      return "Filtering of Web content for enterprises";
    case ProductKind::kNetsweeper:
      return "Netsweeper Content Filtering";
    case ProductKind::kWebsense:
      return "Web proxy gateways including features to monitor for corporate "
             "data leakage";
  }
  return "unknown";
}

const std::vector<ProductKind>& allProducts() {
  static const std::vector<ProductKind> kAll{
      ProductKind::kBlueCoat, ProductKind::kSmartFilter,
      ProductKind::kNetsweeper, ProductKind::kWebsense};
  return kAll;
}

CategoryScheme blueCoatScheme() {
  return CategoryScheme{{
      {1, "Pornography"},
      {2, "Proxy Avoidance"},
      {3, "Gambling"},
      {4, "Hacking"},
      {5, "Illegal Drugs"},
      {6, "News/Media"},
      {7, "Political/Social Advocacy"},
      {8, "Religion"},
      {9, "LGBT"},
      {10, "Web Hosting"},
      {11, "Phishing"},
      {12, "Violence/Hate/Racism"},
      {13, "Adult/Mature Content"},
      {14, "Social Networking"},
      {15, "Custom"},
  }};
}

CategoryScheme smartFilterScheme() {
  return CategoryScheme{{
      {1, "Pornography"},
      {2, "Anonymizers"},
      {3, "Anonymizing Utilities"},
      {4, "Gambling"},
      {5, "Drugs"},
      {6, "Criminal Activities"},
      {7, "Dating/Social Networking"},
      {8, "General News"},
      {9, "Politics/Opinion"},
      {10, "Religion/Ideology"},
      {11, "Sexual Materials"},
      {12, "Phishing"},
      {13, "Malicious Sites"},
      {14, "Media Sharing"},
      {15, "Provocative Attire"},
      {16, "Custom"},
      {17, "Lifestyle"},
  }};
}

CategoryScheme netsweeperScheme() {
  // Netsweeper exposes numbered categories ("catno"); the paper shows catno
  // 23 = pornography via denypagetests.netsweeper.com/category/catno/23 and
  // reports 66 category-specific test URLs (§4.4). The five categories found
  // blocked in YemenNet were: adult images, phishing, pornography, proxy
  // anonymizers, and search keywords.
  std::vector<Category> cats;
  cats.reserve(66);
  const std::array<std::string_view, 66> names{
      "Abortion",             // 1
      "Adult Image",          // 2
      "Advertisements",       // 3
      "Alcohol",              // 4
      "Arts",                 // 5
      "Astrology",            // 6
      "Business",             // 7
      "Chat",                 // 8
      "Criminal Skills",      // 9
      "Cults",                // 10
      "Dating",               // 11
      "Drugs",                // 12
      "Education",            // 13
      "Entertainment",        // 14
      "Finance",              // 15
      "Gambling",             // 16
      "Games",                // 17
      "General News",         // 18
      "Government",           // 19
      "Hate Speech",          // 20
      "Health",               // 21
      "Hobbies",              // 22
      "Pornography",          // 23
      "Humor",                // 24
      "Intimate Apparel",     // 25
      "Job Search",           // 26
      "Journals and Blogs",   // 27
      "Kids Sites",           // 28
      "Lifestyle",            // 29
      "Matrimonial",          // 30
      "Military",             // 31
      "Mobile Phones",        // 32
      "Nudity",               // 33
      "Occult",               // 34
      "Online Auctions",      // 35
      "Online Storage",       // 36
      "Peer to Peer",         // 37
      "Personal Sites",       // 38
      "Phishing",             // 39
      "Politics",             // 40
      "Portals",              // 41
      "Profanity",            // 42
      "Proxy Anonymizer",     // 43
      "Real Estate",          // 44
      "Religion",             // 45
      "Search Engines",       // 46
      "Search Keywords",      // 47
      "Sex Education",        // 48
      "Shopping",             // 49
      "Social Networking",    // 50
      "Sports",               // 51
      "Streaming Media",      // 52
      "Substance Abuse",      // 53
      "Technology",           // 54
      "Tobacco",              // 55
      "Translation Sites",    // 56
      "Travel",               // 57
      "Viruses and Malware",  // 58
      "Weapons",              // 59
      "Web Mail",             // 60
      "Web Hosting",          // 61
      "Extreme",              // 62
      "New Domains",          // 63
      "Uncategorized",        // 64
      "Intolerance",          // 65
      "Custom",               // 66
  };
  for (std::size_t i = 0; i < names.size(); ++i)
    cats.push_back({static_cast<CategoryId>(i + 1), std::string(names[i])});
  return CategoryScheme{std::move(cats)};
}

CategoryScheme websenseScheme() {
  return CategoryScheme{{
      {1, "Adult Content"},
      {2, "Proxy Avoidance"},
      {3, "Gambling"},
      {4, "Illegal or Questionable"},
      {5, "Drugs"},
      {6, "News and Media"},
      {7, "Advocacy Groups"},
      {8, "Religion"},
      {9, "Gay or Lesbian or Bisexual Interest"},
      {10, "Hosted Business Applications"},
      {11, "Phishing and Other Frauds"},
      {12, "Racism and Hate"},
      {13, "Sex"},
      {14, "Social Web"},
      {15, "Custom"},
  }};
}

CategoryScheme schemeFor(ProductKind kind) {
  switch (kind) {
    case ProductKind::kBlueCoat: return blueCoatScheme();
    case ProductKind::kSmartFilter: return smartFilterScheme();
    case ProductKind::kNetsweeper: return netsweeperScheme();
    case ProductKind::kWebsense: return websenseScheme();
  }
  return {};
}

}  // namespace urlf::filters
