#include "filters/category_db.h"

#include <limits>

#include "util/strings.h"

namespace urlf::filters {

namespace {
constexpr util::SimTime kNoCutoff{std::numeric_limits<std::int64_t>::max()};
}

void CategoryDatabase::addHost(std::string_view host, CategoryId category,
                               util::SimTime addedAt) {
  auto& entry = byHost_[util::toLower(host)];
  const auto it = entry.find(category);
  // Keep the earliest time an entry appeared.
  if (it == entry.end() || addedAt < it->second) entry[category] = addedAt;
}

void CategoryDatabase::addUrl(const net::Url& url, CategoryId category,
                              util::SimTime addedAt) {
  auto& entry = byUrl_[url.toString()];
  const auto it = entry.find(category);
  if (it == entry.end() || addedAt < it->second) entry[category] = addedAt;
}

void CategoryDatabase::removeHost(std::string_view host) {
  byHost_.erase(util::toLower(host));
}

std::set<CategoryId> CategoryDatabase::categoriesOf(const Entry& entry,
                                                    util::SimTime cutoff) {
  std::set<CategoryId> out;
  for (const auto& [category, addedAt] : entry)
    if (addedAt <= cutoff) out.insert(category);
  return out;
}

std::set<CategoryId> CategoryDatabase::categorizeAsOf(
    const net::Url& url, util::SimTime cutoff) const {
  std::set<CategoryId> out;

  if (const auto it = byUrl_.find(url.toString()); it != byUrl_.end()) {
    const auto categories = categoriesOf(it->second, cutoff);
    out.insert(categories.begin(), categories.end());
  }

  if (const auto it = byHost_.find(url.host()); it != byHost_.end()) {
    const auto categories = categoriesOf(it->second, cutoff);
    out.insert(categories.begin(), categories.end());
  }

  // Registrable-domain fallback: categorizing "example.info" covers
  // "www.example.info" too.
  const std::string domain = net::registrableDomain(url.host());
  if (domain != url.host()) {
    if (const auto it = byHost_.find(domain); it != byHost_.end()) {
      const auto categories = categoriesOf(it->second, cutoff);
      out.insert(categories.begin(), categories.end());
    }
  }
  return out;
}

std::set<CategoryId> CategoryDatabase::categorize(const net::Url& url) const {
  return categorizeAsOf(url, kNoCutoff);
}

std::set<CategoryId> CategoryDatabase::hostCategories(
    std::string_view host) const {
  const auto it = byHost_.find(util::toLower(host));
  if (it == byHost_.end()) return {};
  return categoriesOf(it->second, kNoCutoff);
}

}  // namespace urlf::filters
