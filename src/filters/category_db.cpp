#include "filters/category_db.h"

#include <algorithm>
#include <limits>

#include "util/strings.h"

namespace urlf::filters {

namespace {
constexpr util::SimTime kNoCutoff{std::numeric_limits<std::int64_t>::max()};
}

void CategoryDatabase::addTo(Entry& entry, CategoryId category,
                             util::SimTime addedAt) {
  const auto it = std::lower_bound(
      entry.begin(), entry.end(), category,
      [](const TimedCategory& tc, CategoryId id) { return tc.category < id; });
  if (it != entry.end() && it->category == category) {
    // Keep the earliest time an entry appeared.
    if (addedAt < it->addedAt) it->addedAt = addedAt;
    return;
  }
  entry.insert(it, TimedCategory{category, addedAt});
}

void CategoryDatabase::addHost(std::string_view host, CategoryId category,
                               util::SimTime addedAt) {
  // Keys are interned lowercase at insert time so every lookup can compare
  // raw bytes against an already-normalized Url::host().
  addTo(byHost_.getOrInsert(util::toLower(host)), category, addedAt);
  ++mutationCount_;
}

void CategoryDatabase::addUrl(const net::Url& url, CategoryId category,
                              util::SimTime addedAt) {
  addTo(byUrl_.getOrInsert(url.toString()), category, addedAt);
  ++mutationCount_;
}

void CategoryDatabase::removeHost(std::string_view host) {
  byHost_.erase(util::toLower(host));
  ++mutationCount_;
}

void CategoryDatabase::collect(const Entry& entry, util::SimTime cutoff,
                               CategorySet& out) {
  for (const auto& tc : entry)
    if (tc.addedAt <= cutoff) out.insert(tc.category);
}

bool CategoryDatabase::anyVisible(const Entry& entry, util::SimTime cutoff) {
  for (const auto& tc : entry)
    if (tc.addedAt <= cutoff) return true;
  return false;
}

template <typename Fn>
void CategoryDatabase::forEachProbe(const net::Url& url, Fn&& fn) const {
  if (!byUrl_.empty()) {
    thread_local std::string urlKey;
    urlKey.clear();
    url.appendTo(urlKey);
    if (const Entry* entry = byUrl_.find(urlKey)) {
      if (fn(*entry)) return;
    }
  }

  if (const Entry* entry = byHost_.find(url.host())) {
    if (fn(*entry)) return;
  }

  // Registrable-domain fallback: categorizing "example.info" covers
  // "www.example.info" too. The domain is a suffix view of the (already
  // lowercase) host — no allocation.
  const std::string_view domain = net::registrableDomainView(url.host());
  if (domain != url.host()) {
    if (const Entry* entry = byHost_.find(domain)) {
      if (fn(*entry)) return;
    }
  }
}

void CategoryDatabase::categorizeAsOfInto(const net::Url& url,
                                          util::SimTime cutoff,
                                          CategorySet& out) const {
  forEachProbe(url, [&](const Entry& entry) {
    collect(entry, cutoff, out);
    return false;  // union all probes
  });
}

void CategoryDatabase::categorizeInto(const net::Url& url,
                                      CategorySet& out) const {
  categorizeAsOfInto(url, kNoCutoff, out);
}

bool CategoryDatabase::isCategorizedAsOf(const net::Url& url,
                                         util::SimTime cutoff) const {
  bool found = false;
  forEachProbe(url, [&](const Entry& entry) {
    found = anyVisible(entry, cutoff);
    return found;  // stop at the first visible entry
  });
  return found;
}

bool CategoryDatabase::isCategorized(const net::Url& url) const {
  return isCategorizedAsOf(url, kNoCutoff);
}

std::set<CategoryId> CategoryDatabase::categorizeAsOf(
    const net::Url& url, util::SimTime cutoff) const {
  CategorySet scratch;
  categorizeAsOfInto(url, cutoff, scratch);
  return scratch.toSet();
}

std::set<CategoryId> CategoryDatabase::categorize(const net::Url& url) const {
  return categorizeAsOf(url, kNoCutoff);
}

std::set<CategoryId> CategoryDatabase::hostCategories(
    std::string_view host) const {
  const Entry* entry = byHost_.find(util::toLower(host));
  if (entry == nullptr) return {};
  CategorySet scratch;
  collect(*entry, kNoCutoff, scratch);
  return scratch.toSet();
}

}  // namespace urlf::filters
