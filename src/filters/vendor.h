#ifndef URLF_FILTERS_VENDOR_H
#define URLF_FILTERS_VENDOR_H

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "filters/category.h"
#include "filters/category_db.h"
#include "net/url.h"
#include "simnet/world.h"
#include "util/clock.h"
#include "util/rng.h"

namespace urlf::filters {

/// One user-submitted URL awaiting (or past) vendor review.
struct Submission {
  int ticket = 0;
  net::Url url;
  CategoryId suggestedCategory = 0;
  std::string submitterId;  ///< the e-mail/IP identity used for the submission
  util::SimTime submittedAt;
  util::SimTime reviewAt;  ///< when the vendor's reviewers get to it (3-5 days)

  enum class State { kPending, kAccepted, kRejected };
  State state = State::kPending;
  std::string note;
};

/// Vendor-side behaviour knobs.
struct VendorConfig {
  /// Review latency window in hours — "After 3-5 days, we retest" (§4.2).
  std::int64_t reviewLatencyMinHours = 72;
  std::int64_t reviewLatencyMaxHours = 120;
  /// Verify submissions by crawling the site and classifying its content
  /// before accepting (vendors guard database quality).
  bool verifyByCrawl = true;
  /// Acceptance probability applied after (optional) content verification.
  double acceptProbability = 1.0;
  /// Netsweeper-style auto-categorization of URLs queued after in-country
  /// access (§4.4): latency and per-URL success probability. The latency is
  /// longer than submission review — the paper's Blue Coat control
  /// experiments in Ooredoo pre-tested proxy sites without them becoming
  /// blocked within the test window (Table 3: 0/3), yet "eventually may be
  /// blocked" (§4.4).
  std::int64_t queueLatencyHours = 240;
  double queueCategorizeProbability = 0.6;
};

/// A URL-filtering vendor: the company-side half of a product.
///
/// Owns the master category database (the product's key business asset,
/// §6.2), the public submission portal ("test-a-site"), the categorization
/// queue, and vendor-operated infrastructure (Blue Coat's cfauth.com block
/// service, Netsweeper's denypagetests.netsweeper.com).
class Vendor {
 public:
  Vendor(ProductKind kind, simnet::World& world, VendorConfig config = {});

  Vendor(const Vendor&) = delete;
  Vendor& operator=(const Vendor&) = delete;

  [[nodiscard]] ProductKind kind() const { return kind_; }
  [[nodiscard]] const CategoryScheme& scheme() const { return scheme_; }
  [[nodiscard]] CategoryDatabase& masterDb() { return masterDb_; }
  [[nodiscard]] const CategoryDatabase& masterDb() const { return masterDb_; }
  [[nodiscard]] const VendorConfig& config() const { return config_; }

  /// Stand up vendor-operated Internet infrastructure inside `asn`:
  /// Blue Coat registers www.cfauth.com; Netsweeper registers
  /// denypagetests.netsweeper.com with its 66 category test paths; every
  /// vendor registers its public submission portal (see portalUrl()).
  void installInfrastructure(std::uint32_t asn);

  /// URL of the vendor's Web submission portal ("test-a-site" [20] /
  /// SmartFilter URL submission), once installInfrastructure has run.
  /// Submissions arrive as GET /submit?url=..&category=..&submitter=..;
  /// the portal answers with the ticket id. Empty before installation.
  [[nodiscard]] const std::string& portalUrl() const { return portalUrl_; }

  // --- public submission portal -------------------------------------------

  /// Submit a site for categorization. Returns the ticket id.
  int submitUrl(const net::Url& url, CategoryId suggestedCategory,
                std::string submitterId);

  /// Netsweeper-style: queue a URL seen (uncategorized) inside a customer
  /// network for later automatic categorization.
  void queueForCategorization(const net::Url& url, util::SimTime now);

  /// Advance vendor-side processing (reviews, crawl queue) to `now`.
  /// Idempotent; deployments call this lazily before each decision.
  void processUntil(util::SimTime now);

  [[nodiscard]] const std::vector<Submission>& submissions() const {
    return submissions_;
  }
  [[nodiscard]] std::size_t pendingQueueSize() const { return queue_.size(); }

  // --- evasion tactics (Table 5, §6.2) --------------------------------------

  /// Disregard all submissions from this submitter identity.
  void disregardSubmitter(std::string submitterId);
  /// Disregard submissions whose site is hosted in this AS.
  void disregardHostingAsn(std::uint32_t asn);

  /// Classify fetched content the way a vendor's automated classifier would:
  /// inspect the body for known markers. Returns the vendor category, if any.
  [[nodiscard]] std::optional<CategoryId> classifyContent(
      const std::string& body) const;

 private:
  struct QueuedUrl {
    net::Url url;
    util::SimTime dueAt;
  };

  /// Crawl the URL from the vendor's own network and classify it.
  [[nodiscard]] std::optional<CategoryId> crawlAndClassify(const net::Url& url);

  void reviewSubmission(Submission& submission);

  ProductKind kind_;
  simnet::World* world_;
  VendorConfig config_;
  CategoryScheme scheme_;
  CategoryDatabase masterDb_;
  util::Rng rng_;
  simnet::VantagePoint vendorVantage_;
  std::vector<Submission> submissions_;
  std::vector<QueuedUrl> queue_;
  std::set<std::string> disregardedSubmitters_;
  std::set<std::uint32_t> disregardedAsns_;
  std::string portalUrl_;
  int nextTicket_ = 1;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_VENDOR_H
