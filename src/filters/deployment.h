#ifndef URLF_FILTERS_DEPLOYMENT_H
#define URLF_FILTERS_DEPLOYMENT_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "filters/policy.h"
#include "filters/vendor.h"
#include "net/ipv4.h"
#include "simnet/middlebox.h"
#include "simnet/world.h"

namespace urlf::filters {

/// One installation of a URL-filtering product inside an ISP.
///
/// A deployment is an in-path middlebox: it classifies every outbound
/// subscriber request against the vendor database (as locally synced) plus
/// the operator's custom database, and blocks per the operator's policy.
/// Concrete products override the block-page construction (their signature
/// behaviour, Table 2) and may expose external management surfaces.
class Deployment : public simnet::Middlebox {
 public:
  Deployment(std::string deploymentName, Vendor& vendor, FilterPolicy policy);

  [[nodiscard]] std::string name() const override { return deploymentName_; }
  [[nodiscard]] Vendor& vendor() { return *vendor_; }
  [[nodiscard]] const Vendor& vendor() const { return *vendor_; }
  [[nodiscard]] ProductKind kind() const { return vendor_->kind(); }
  [[nodiscard]] FilterPolicy& policy() { return policy_; }
  [[nodiscard]] const FilterPolicy& policy() const { return policy_; }

  /// The public IP the installation's service surfaces live on (set by
  /// installExternalSurfaces).
  [[nodiscard]] net::Ipv4Addr serviceIp() const { return serviceIp_; }

  /// Allocate a service IP in `asn` and bind this product's management /
  /// block-page endpoints. Visibility follows policy().externallyVisible.
  /// Default implementation allocates the IP only; products override to add
  /// their consoles and must call the base first.
  virtual void installExternalSurfaces(simnet::World& world, std::uint32_t asn);

  /// Stop receiving vendor updates: snapshot the master DB now and use the
  /// snapshot from here on (Websense/Yemen 2009 [35]).
  void freezeUpdates();

  std::optional<simnet::InterceptAction> intercept(
      http::Request& request, const simnet::InterceptContext& ctx) override;

  /// Covers every database whose mutation can change a verdict: the vendor
  /// master DB, the operator's custom DB, and the frozen snapshot (whose
  /// presence itself flips which DB is consulted).
  [[nodiscard]] std::uint64_t stateEpoch() const override;

  /// Queue-on-access deployments (§4.4) mutate the vendor crawl queue per
  /// fetch; their verdicts must not be shared across session worlds.
  [[nodiscard]] bool interceptHasSideEffects() const override {
    return policy().queueAccessedUrls;
  }

  /// False when this deployment rolls dice per exchange (offlineProbability)
  /// — its verdicts must be re-drawn, never memoized or replay-skipped.
  [[nodiscard]] bool deterministicIntercept() const override;

  // --- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t requestsSeen() const { return requestsSeen_; }
  [[nodiscard]] std::uint64_t requestsBlocked() const { return requestsBlocked_; }
  /// Blocks tallied by the category that triggered them (every category of
  /// a multi-category block is counted).
  [[nodiscard]] const std::map<CategoryId, std::uint64_t>& blocksByCategory()
      const {
    return blocksByCategory_;
  }

  /// The categories (vendor scheme) that apply to a URL under this
  /// deployment's view of the database at time `now` (honouring sync
  /// coverage, update lag, and frozen snapshots). Exposed for tests and
  /// benches.
  [[nodiscard]] std::set<CategoryId> effectiveCategories(
      const net::Url& url, util::SimTime now) const;

  /// Allocation-free variant: unions into `out` (does not clear). This is
  /// the per-request path intercept() runs.
  void effectiveCategoriesInto(const net::Url& url, util::SimTime now,
                               CategorySet& out) const;

 protected:
  /// Build this product's signature block behaviour for a request that
  /// matched `blockedCategories`.
  [[nodiscard]] virtual simnet::InterceptAction buildBlockAction(
      const http::Request& request, const std::set<CategoryId>& blockedCategories,
      const simnet::InterceptContext& ctx) = 0;

  /// Hook for products that annotate allowed traffic (proxy Via headers) or
  /// special-case certain hosts. Called when the standard path does not
  /// block. Default: let the request through untouched.
  [[nodiscard]] virtual std::optional<simnet::InterceptAction> onPassThrough(
      http::Request& request, const simnet::InterceptContext& ctx) {
    (void)request;
    (void)ctx;
    return std::nullopt;
  }

  /// Hook consulted before everything else; lets products claim a request
  /// outright (e.g. Netsweeper's denypagetests category probes).
  [[nodiscard]] virtual std::optional<simnet::InterceptAction> preIntercept(
      http::Request& request, const simnet::InterceptContext& ctx) {
    (void)request;
    (void)ctx;
    return std::nullopt;
  }

  /// Whether this exchange bypasses filtering (license overload, §4.4).
  /// Products with richer availability models (Websense's concurrent-user
  /// licenses) override this.
  [[nodiscard]] virtual bool isOffline(const simnet::InterceptContext& ctx) const;

  /// True when the master-DB entry for this host is present in the local
  /// sync (per-host deterministic under policy().syncCoverage).
  [[nodiscard]] bool syncedLocally(std::string_view host) const;

  void setServiceIp(net::Ipv4Addr ip) { serviceIp_ = ip; }

 private:
  /// Requests to the deployment's own service IP (deny pages, block pages)
  /// must never be filtered or they could not be delivered.
  [[nodiscard]] bool isOwnServiceTraffic(const http::Request& request) const;

  std::string deploymentName_;
  Vendor* vendor_;
  FilterPolicy policy_;
  net::Ipv4Addr serviceIp_{};
  std::optional<CategoryDatabase> frozenDb_;
  std::uint64_t requestsSeen_ = 0;
  std::uint64_t requestsBlocked_ = 0;
  std::map<CategoryId, std::uint64_t> blocksByCategory_;
};

}  // namespace urlf::filters

#endif  // URLF_FILTERS_DEPLOYMENT_H
