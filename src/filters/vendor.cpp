#include "filters/vendor.h"

#include <algorithm>

#include "http/html.h"
#include "filters/fixed_endpoint.h"
#include "simnet/origin_server.h"
#include "simnet/transport.h"
#include "util/strings.h"

namespace urlf::filters {

namespace {

/// Content-marker -> vendor category name. The vendor classifier looks for
/// these markers in the page body, the way commercial classifiers key on
/// page features (the Glype script, explicit imagery, ...).
struct Marker {
  std::string_view needle;        ///< body substring (case-insensitive)
  std::string_view categoryName;  ///< vendor-scheme category name
};

std::vector<Marker> markersFor(ProductKind kind) {
  switch (kind) {
    case ProductKind::kBlueCoat:
      return {{"glype", "Proxy Avoidance"},
              {"browse the web anonymously", "Proxy Avoidance"},
              {"adult content", "Pornography"},
              {"independent news", "News/Media"}};
    case ProductKind::kSmartFilter:
      return {{"glype", "Anonymizers"},
              {"browse the web anonymously", "Anonymizers"},
              {"adult content", "Pornography"},
              {"independent news", "General News"}};
    case ProductKind::kNetsweeper:
      return {{"glype", "Proxy Anonymizer"},
              {"browse the web anonymously", "Proxy Anonymizer"},
              {"adult content", "Pornography"},
              {"independent news", "General News"}};
    case ProductKind::kWebsense:
      return {{"glype", "Proxy Avoidance"},
              {"browse the web anonymously", "Proxy Avoidance"},
              {"adult content", "Adult Content"},
              {"independent news", "News and Media"}};
  }
  return {};
}

}  // namespace

Vendor::Vendor(ProductKind kind, simnet::World& world, VendorConfig config)
    : kind_(kind),
      world_(&world),
      config_(config),
      scheme_(schemeFor(kind)),
      rng_(world.rng().fork()) {
  vendorVantage_.name = std::string(toString(kind)) + "-hq";
  vendorVantage_.countryAlpha2 = "US";
  vendorVantage_.isp = nullptr;  // vendors crawl from unfiltered networks
}

namespace {

std::string portalHostFor(ProductKind kind) {
  switch (kind) {
    case ProductKind::kBlueCoat: return "sitereview.bluecoat.com";
    case ProductKind::kSmartFilter: return "trustedsource.mcafee.example";
    case ProductKind::kNetsweeper: return "testasite.netsweeper.com";
    case ProductKind::kWebsense: return "csi.websense.example";
  }
  return "portal.example";
}

}  // namespace

void Vendor::installInfrastructure(std::uint32_t asn) {
  // The public submission portal — the interface the methodology actually
  // exercises ("many of these products accept user-submitted sites for
  // blocking", abstract). GET /submit?url=..&category=..&submitter=..
  {
    const std::string host = portalHostFor(kind_);
    auto& portal = world_->makeEndpoint<FixedEndpoint>(
        std::string(toString(kind_)) + " submission portal",
        [this](const http::Request& req, util::SimTime) -> http::Response {
          if (req.url.path() != "/submit") {
            // Neutral landing page: real vendor portals are separate web
            // properties that do not carry the appliance's banner.
            return http::Response::make(
                http::Status::kOk,
                http::makePage("Site Review",
                               "<h1>Submit a site for categorization</h1>"
                               "<form action=\"/submit\">"
                               "<input name=\"url\"/><input name=\"category\"/>"
                               "<input name=\"submitter\"/></form>"));
          }
          const auto url = net::queryParam(req.url.query(), "url");
          const auto category = net::queryParam(req.url.query(), "category");
          const auto submitter = net::queryParam(req.url.query(), "submitter");
          if (!url || !category || !submitter)
            return http::Response::make(
                http::Status::kBadRequest,
                http::makePage("Bad Request", "<p>missing parameters</p>"));
          const auto parsedUrl = net::Url::parse(*url);
          CategoryId categoryId = 0;
          for (const char c : *category) {
            if (c < '0' || c > '9') {
              categoryId = -1;
              break;
            }
            categoryId = categoryId * 10 + (c - '0');
          }
          if (!parsedUrl || categoryId <= 0 || !scheme_.byId(categoryId))
            return http::Response::make(
                http::Status::kBadRequest,
                http::makePage("Bad Request", "<p>invalid url/category</p>"));
          const int ticket = submitUrl(*parsedUrl, categoryId, *submitter);
          return http::Response::make(
              http::Status::kOk,
              http::makePage("Submission received",
                             "<p>Thank you. Ticket #" + std::to_string(ticket) +
                                 ". Reviews typically take 3-5 days.</p>"));
        });
    const auto ip = world_->allocateAddress(asn);
    world_->bind(ip, 80, portal, /*externallyVisible=*/true);
    world_->registerHostname(host, ip);
    portalUrl_ = "http://" + host + "/submit";
  }

  if (kind_ == ProductKind::kBlueCoat) {
    // www.cfauth.com — the hosted service Blue Coat block redirects point at
    // ("Location header contains hostname www.cfauth.com", Table 2).
    auto& server = world_->makeEndpoint<simnet::OriginServer>(
        "www.cfauth.com", "BlueCoat-Security-Appliance");
    simnet::Page page;
    page.title = "Blue Coat Systems - Access Denied";
    page.body =
        "<h1>Access Denied</h1><p>Your request was denied by the network "
        "content policy.</p>";
    page.contentLabel = "block-service";
    server.setPage("/", page);
    server.setCatchAll(page);
    const auto ip = world_->allocateAddress(asn);
    world_->bind(ip, 80, server, /*externallyVisible=*/true);
    world_->registerHostname("www.cfauth.com", ip);
  }
  if (kind_ == ProductKind::kNetsweeper) {
    // denypagetests.netsweeper.com — operators request
    // /category/catno/<N> and a blocked category yields the deny page
    // (§4.4). When the category is NOT blocked the request reaches this
    // origin, which reports the category as unfiltered.
    auto& server = world_->makeEndpoint<simnet::OriginServer>(
        "denypagetests.netsweeper.com", "Apache");
    simnet::Page page;
    page.title = "Netsweeper Deny Page Tests";
    page.body =
        "<h1>Category test</h1><p>This category is not being filtered on "
        "your network.</p>";
    page.contentLabel = "vendor-tool";
    server.setPage("/", page);
    server.setCatchAll(page);
    const auto ip = world_->allocateAddress(asn);
    world_->bind(ip, 80, server, /*externallyVisible=*/true);
    world_->registerHostname("denypagetests.netsweeper.com", ip);
  }
}

int Vendor::submitUrl(const net::Url& url, CategoryId suggestedCategory,
                      std::string submitterId) {
  Submission s;
  s.ticket = nextTicket_++;
  s.url = url;
  s.suggestedCategory = suggestedCategory;
  s.submitterId = std::move(submitterId);
  s.submittedAt = world_->now();
  const auto latency = static_cast<std::int64_t>(
      rng_.uniform(static_cast<std::uint64_t>(config_.reviewLatencyMinHours),
                   static_cast<std::uint64_t>(config_.reviewLatencyMaxHours)));
  s.reviewAt = s.submittedAt + latency;
  submissions_.push_back(std::move(s));
  return submissions_.back().ticket;
}

void Vendor::queueForCategorization(const net::Url& url, util::SimTime now) {
  // De-duplicate: one pending crawl per host.
  const auto already =
      std::any_of(queue_.begin(), queue_.end(), [&](const QueuedUrl& q) {
        return q.url.host() == url.host();
      });
  if (already || masterDb_.isCategorized(url)) return;
  queue_.push_back({url, now + config_.queueLatencyHours});
}

void Vendor::processUntil(util::SimTime now) {
  for (auto& s : submissions_) {
    if (s.state == Submission::State::kPending && s.reviewAt <= now)
      reviewSubmission(s);
  }
  std::vector<QueuedUrl> remaining;
  for (auto& q : queue_) {
    if (q.dueAt > now) {
      remaining.push_back(q);
      continue;
    }
    if (!rng_.chance(config_.queueCategorizeProbability)) continue;  // dropped
    if (const auto category = crawlAndClassify(q.url))
      masterDb_.addHost(q.url.host(), *category, q.dueAt);
  }
  queue_ = std::move(remaining);
}

void Vendor::reviewSubmission(Submission& submission) {
  // Evasion tactic (§6.2): ignore known measurement submitters.
  if (disregardedSubmitters_.contains(submission.submitterId)) {
    submission.state = Submission::State::kRejected;
    submission.note = "submitter disregarded";
    return;
  }
  // Evasion tactic (§6.2): ignore sites hosted at suspicious providers.
  if (!disregardedAsns_.empty()) {
    if (const auto ip = world_->resolve(submission.url.host())) {
      const auto asnDb = world_->buildAsnDatabase();
      if (const auto rec = asnDb.lookup(*ip);
          rec && disregardedAsns_.contains(rec->asn)) {
        submission.state = Submission::State::kRejected;
        submission.note = "hosting provider disregarded";
        return;
      }
    }
  }

  if (config_.verifyByCrawl) {
    const auto category = crawlAndClassify(submission.url);
    if (!category) {
      submission.state = Submission::State::kRejected;
      submission.note = "content did not classify";
      return;
    }
    if (*category != submission.suggestedCategory) {
      // Reviewers trust their own classifier over the submitter's label.
      submission.suggestedCategory = *category;
    }
  }
  if (!rng_.chance(config_.acceptProbability)) {
    submission.state = Submission::State::kRejected;
    submission.note = "rejected by reviewer";
    return;
  }
  submission.state = Submission::State::kAccepted;
  submission.note = "added to database";
  masterDb_.addHost(submission.url.host(), submission.suggestedCategory,
                    submission.reviewAt);
}

std::optional<CategoryId> Vendor::crawlAndClassify(const net::Url& url) {
  simnet::Transport transport{*world_};
  // Professional review crawlers ride out transient substrate faults: a
  // submission must not silently fail categorization because one fetch hit
  // an injected DNS flap or timeout (the simulated-clock backoff is noise
  // at the review queue's day granularity).
  simnet::FetchOptions options;
  options.followRedirects = true;
  options.retry.maxAttempts = 4;
  options.retry.retryOnConnectFailure = true;
  const auto result =
      transport.fetch(vendorVantage_, http::Request::get(url), options);
  if (!result.ok() || !result.response->isSuccess()) return std::nullopt;
  return classifyContent(result.response->body);
}

std::optional<CategoryId> Vendor::classifyContent(
    const std::string& body) const {
  for (const auto& marker : markersFor(kind_)) {
    if (!util::icontains(body, marker.needle)) continue;
    if (const auto category = scheme_.byName(marker.categoryName))
      return category->id;
  }
  return std::nullopt;
}

void Vendor::disregardSubmitter(std::string submitterId) {
  disregardedSubmitters_.insert(std::move(submitterId));
}

void Vendor::disregardHostingAsn(std::uint32_t asn) {
  disregardedAsns_.insert(asn);
}

}  // namespace urlf::filters
