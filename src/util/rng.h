#ifndef URLF_UTIL_RNG_H
#define URLF_UTIL_RNG_H

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace urlf::util {

/// Deterministic pseudo-random generator (xoshiro256** seeded via splitmix64).
///
/// Every stochastic choice in the simulation flows through one of these so a
/// single 64-bit seed reproduces an entire experiment. Satisfies
/// UniformRandomBitGenerator so it can also drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Uniformly chosen index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Sample k distinct elements (order randomized). Requires k <= items.size().
  template <typename T>
  std::vector<T> sample(const std::vector<T>& items, std::size_t k) {
    if (k > items.size()) throw std::invalid_argument("Rng::sample: k too large");
    std::vector<T> pool = items;
    shuffle(pool);
    pool.resize(k);
    return pool;
  }

  /// Derive an independent child generator (stable given call order).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace urlf::util

#endif  // URLF_UTIL_RNG_H
