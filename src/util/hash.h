#ifndef URLF_UTIL_HASH_H
#define URLF_UTIL_HASH_H

#include <cstdint>
#include <string_view>

namespace urlf::util {

/// FNV-1a offset basis — the seed to start a fresh digest from.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;

/// FNV-1a over a byte string, continuing from `hash`. The shared digest
/// primitive: campaign report digests, journal record checksums, and the
/// fault/outage key schedules all fold text through this.
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::string_view text, std::uint64_t hash = kFnvOffsetBasis) noexcept {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x00000100000001B3ULL;
  }
  return hash;
}

/// One step of the splitmix64 sequence: advances `x` and returns the mixed
/// output. Used to derive keyed, order-independent random draws from a seed
/// plus hashed context (see simnet::FaultPlan / simnet::OutagePlan).
constexpr std::uint64_t splitmix64Next(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from a keyed splitmix64 draw — mirrors
/// Rng::uniform01 without consuming any shared stream state.
[[nodiscard]] inline double keyedUniform01(std::uint64_t key) noexcept {
  return static_cast<double>(splitmix64Next(key) >> 11) * 0x1.0p-53;
}

}  // namespace urlf::util

#endif  // URLF_UTIL_HASH_H
