#include "util/base64.h"

#include <array>
#include <cstdint>

namespace urlf::util {

namespace {

constexpr std::string_view kAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> buildReverse() {
  std::array<std::int8_t, 256> table{};
  for (auto& v : table) v = -1;
  for (std::size_t i = 0; i < kAlphabet.size(); ++i)
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  return table;
}

constexpr auto kReverse = buildReverse();

}  // namespace

std::string base64Encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t n = (static_cast<unsigned char>(data[i]) << 16) |
                            (static_cast<unsigned char>(data[i + 1]) << 8) |
                            static_cast<unsigned char>(data[i + 2]);
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += kAlphabet[n & 63];
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t n = static_cast<unsigned char>(data[i]) << 16;
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += "==";
  } else if (rest == 2) {
    const std::uint32_t n = (static_cast<unsigned char>(data[i]) << 16) |
                            (static_cast<unsigned char>(data[i + 1]) << 8);
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += '=';
  }
  return out;
}

std::optional<std::string> base64Decode(std::string_view text) {
  if (text.size() % 4 != 0) return std::nullopt;
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t n = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // '=' only allowed in the last two positions of the final group.
        if (i + 4 != text.size() || j < 2) return std::nullopt;
        ++pad;
        n <<= 6;
        continue;
      }
      if (pad > 0) return std::nullopt;  // data after padding
      const std::int8_t v = kReverse[static_cast<unsigned char>(c)];
      if (v < 0) return std::nullopt;
      n = (n << 6) | static_cast<std::uint32_t>(v);
    }
    out += static_cast<char>((n >> 16) & 0xFF);
    if (pad < 2) out += static_cast<char>((n >> 8) & 0xFF);
    if (pad < 1) out += static_cast<char>(n & 0xFF);
  }
  return out;
}

}  // namespace urlf::util
