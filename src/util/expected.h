#ifndef URLF_UTIL_EXPECTED_H
#define URLF_UTIL_EXPECTED_H

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace urlf::util {

/// Minimal expected/result type for recoverable failures where an
/// std::optional would lose the reason. (The toolchain's std::expected is
/// not relied upon; this is the tiny subset we need.)
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Construct the error state.
  static Expected failure(std::string message) {
    return Expected(Error{std::move(message)});
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  /// Value access; throws std::logic_error if in the error state.
  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Expected: value() on error: " + error());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Expected: value() on error: " + error());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::logic_error("Expected: value() on error: " + error());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  /// Error message; empty string when in the value state.
  [[nodiscard]] const std::string& error() const {
    static const std::string kEmpty;
    if (ok()) return kEmpty;
    return std::get<Error>(data_).message;
  }

 private:
  struct Error {
    std::string message;
  };
  explicit Expected(Error e) : data_(std::move(e)) {}

  std::variant<T, Error> data_;
};

}  // namespace urlf::util

#endif  // URLF_UTIL_EXPECTED_H
