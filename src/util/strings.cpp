#include "util/strings.h"

#include <algorithm>
#include <cctype>

namespace urlf::util {

namespace {
char lowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
char upperChar(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}
bool isSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), lowerChar);
  return out;
}

void toLowerInto(std::string_view s, std::string& out) {
  out.resize(s.size());
  std::transform(s.begin(), s.end(), out.begin(), lowerChar);
}

std::string toUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), upperChar);
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && isSpace(s.front())) s.remove_prefix(1);
  while (!s.empty() && isSpace(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(),
                    [](char x, char y) { return lowerChar(x) == lowerChar(y); });
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const auto it = std::search(
      haystack.begin(), haystack.end(), needle.begin(), needle.end(),
      [](char x, char y) { return lowerChar(x) == lowerChar(y); });
  return it != haystack.end();
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string replaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

}  // namespace urlf::util
