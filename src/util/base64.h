#ifndef URLF_UTIL_BASE64_H
#define URLF_UTIL_BASE64_H

#include <optional>
#include <string>
#include <string_view>

namespace urlf::util {

/// Standard base64 (RFC 4648) with padding.
[[nodiscard]] std::string base64Encode(std::string_view data);

/// Decode; nullopt on malformed input (bad alphabet, bad padding).
[[nodiscard]] std::optional<std::string> base64Decode(std::string_view text);

}  // namespace urlf::util

#endif  // URLF_UTIL_BASE64_H
