#include "util/regex.h"

#include <cctype>
#include <mutex>
#include <unordered_map>

namespace urlf::util {

std::shared_ptr<const std::regex> compileIcaseRegex(
    const std::string& pattern) {
  static std::mutex mutex;
  static std::unordered_map<std::string, std::shared_ptr<const std::regex>>
      cache;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    if (const auto it = cache.find(pattern); it != cache.end())
      return it->second;
  }
  // Compile outside the lock: construction may be slow (or throw), and two
  // threads racing on the same pattern just produce an identical object.
  auto compiled = std::make_shared<const std::regex>(
      pattern,
      std::regex::ECMAScript | std::regex::icase | std::regex::optimize);
  const std::lock_guard<std::mutex> lock(mutex);
  return cache.try_emplace(pattern, std::move(compiled)).first->second;
}

namespace {

bool isAsciiAlnum(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

char asciiLower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

/// True when `i` points at a quantifier that allows zero repetitions
/// (?, *, {0...}) — the quantified unit is optional and cannot be required.
bool isOptionalQuantifier(std::string_view p, std::size_t i) {
  if (i >= p.size()) return false;
  if (p[i] == '?' || p[i] == '*') return true;
  if (p[i] == '{') {
    ++i;
    if (i < p.size() && p[i] == '0') return true;
  }
  return false;
}

/// True when `i` points at any quantifier (?, *, +, {...}).
bool isQuantifier(std::string_view p, std::size_t i) {
  return i < p.size() &&
         (p[i] == '?' || p[i] == '*' || p[i] == '+' || p[i] == '{');
}

/// Advance past the quantifier at `i` (including a lazy '?' suffix).
std::size_t skipQuantifier(std::string_view p, std::size_t i) {
  if (i >= p.size()) return i;
  if (p[i] == '{') {
    while (i < p.size() && p[i] != '}') ++i;
    if (i < p.size()) ++i;  // '}'
  } else {
    ++i;  // '?', '*' or '+'
  }
  if (i < p.size() && p[i] == '?') ++i;  // lazy variant
  return i;
}

}  // namespace

std::string requiredLiteral(std::string_view pattern) {
  std::string best;
  std::string current;
  const auto flush = [&] {
    if (current.size() > best.size()) best = current;
    current.clear();
  };

  std::size_t i = 0;
  while (i < pattern.size()) {
    const char c = pattern[i];

    // Alternation or grouping: some branch (or an optional group) may match
    // without any literal we collected — give up entirely. Character-class
    // internals never reach here, so a '(' or '|' seen at this level is
    // structural.
    if (c == '|' || c == '(' || c == ')') return {};

    if (c == '[') {
      // Skip the character class; whatever it matches is not a fixed
      // literal. A leading ']' (possibly after '^') is a literal member.
      flush();
      ++i;
      if (i < pattern.size() && pattern[i] == '^') ++i;
      if (i < pattern.size() && pattern[i] == ']') ++i;
      while (i < pattern.size() && pattern[i] != ']') {
        if (pattern[i] == '\\') ++i;
        ++i;
      }
      if (i < pattern.size()) ++i;  // closing ']'
      i = skipQuantifier(pattern, i);
      continue;
    }

    if (c == '.' || c == '^' || c == '$') {
      flush();
      ++i;
      i = skipQuantifier(pattern, i);
      continue;
    }

    // A literal character, possibly escaped.
    char literal = c;
    std::size_t next = i + 1;
    if (c == '\\') {
      if (i + 1 >= pattern.size()) {
        flush();
        break;
      }
      const char escaped = pattern[i + 1];
      if (isAsciiAlnum(escaped)) {
        // \d \s \w \b \B \1 ... — a class, anchor, or backreference, never a
        // single fixed character.
        flush();
        i += 2;
        i = skipQuantifier(pattern, i);
        continue;
      }
      literal = escaped;  // escaped punctuation matches itself
      next = i + 2;
    }

    if (isOptionalQuantifier(pattern, next)) {
      // "x?" / "x*" / "x{0,n}": x may be absent entirely.
      flush();
      i = skipQuantifier(pattern, next);
      continue;
    }
    current += asciiLower(literal);
    if (isQuantifier(pattern, next)) {
      // "x+" / "x{2,}": at least one x occurs, but what follows it in the
      // subject is more x's, not the next pattern character — the run ends
      // after this one occurrence.
      flush();
      i = skipQuantifier(pattern, next);
      continue;
    }
    i = next;
  }
  flush();
  return best;
}

}  // namespace urlf::util
