#include "util/rng.h"

namespace urlf::util {

namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion as recommended by the xoshiro authors; guarantees a
  // non-zero state for any seed.
  for (auto& word : state_) word = splitmix64(seed);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const std::uint64_t range = hi - lo;
  if (range == max()) return (*this)();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = range + 1;
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + v % bound;
}

double Rng::uniform01() noexcept {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: empty range");
  return static_cast<std::size_t>(uniform(0, n - 1));
}

Rng Rng::fork() { return Rng{(*this)()}; }

}  // namespace urlf::util
