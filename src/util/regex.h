#ifndef URLF_UTIL_REGEX_H
#define URLF_UTIL_REGEX_H

#include <atomic>
#include <memory>
#include <regex>
#include <string>
#include <string_view>

namespace urlf::util {

/// Compile an ECMAScript, case-insensitive, optimized regex through a
/// process-wide cache keyed by pattern source. Every regex the pipeline
/// evaluates (block-page patterns, WhatWeb-style fingerprint rules) uses
/// exactly these flags, so block-page classification and fingerprinting
/// share one compile-once pool. Thread-safe. Throws std::regex_error on a
/// malformed pattern (on every call — failures are not cached).
[[nodiscard]] std::shared_ptr<const std::regex> compileIcaseRegex(
    const std::string& pattern);

/// A regex compiled exactly once, on first use, thread-safely.
///
/// std::regex construction builds an NFA and dominates the classify hot
/// path when done per call; LazyRegex amortizes it to once per pattern per
/// process (via the compileIcaseRegex cache) while keeping construction off
/// the startup path for libraries that are built but never matched.
class LazyRegex {
 public:
  explicit LazyRegex(std::string pattern) : pattern_(std::move(pattern)) {}

  LazyRegex(const LazyRegex& other)
      : pattern_(other.pattern_), compiled_(other.compiled_.load()) {}
  LazyRegex& operator=(const LazyRegex& other) {
    pattern_ = other.pattern_;
    compiled_.store(other.compiled_.load());
    return *this;
  }

  [[nodiscard]] const std::string& pattern() const { return pattern_; }

  /// The compiled regex; compiles (through the shared cache) on first call.
  /// Throws std::regex_error when the pattern is malformed.
  [[nodiscard]] const std::regex& get() const {
    const std::regex* re = compiled_.load(std::memory_order_acquire);
    if (re == nullptr) {
      // The cache owns the compiled object for the process lifetime, so the
      // raw pointer stays valid; racing initializers store the same value.
      re = compileIcaseRegex(pattern_).get();
      compiled_.store(re, std::memory_order_release);
    }
    return *re;
  }

 private:
  std::string pattern_;
  mutable std::atomic<const std::regex*> compiled_{nullptr};
};

/// A case-folded literal that must occur in every match of `pattern`, or ""
/// when no such literal can be proven. Used as a cheap prefilter: when the
/// literal does not occur in the case-folded subject, the (case-insensitive)
/// regex cannot match and need not run at all.
///
/// The extractor is conservative: it bails (returns "") on alternation or
/// groups, skips character classes and anchors, and drops a literal character
/// again when a following quantifier makes it optional. Whatever survives is
/// provably required.
[[nodiscard]] std::string requiredLiteral(std::string_view pattern);

}  // namespace urlf::util

#endif  // URLF_UTIL_REGEX_H
