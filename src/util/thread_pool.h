#ifndef URLF_UTIL_THREAD_POOL_H
#define URLF_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace urlf::util {

/// A fixed-size worker pool for data-parallel stages of the pipeline.
///
/// Determinism contract (DESIGN.md §4.1): the pool never decides *what* is
/// computed or *where* results land — callers partition work by index and
/// every job writes only its own pre-assigned slot, so the gathered output
/// is identical for any thread count, including 1.
class ThreadPool {
 public:
  /// `threadCount == 0` sizes the pool to the hardware concurrency.
  explicit ThreadPool(std::size_t threadCount = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t threadCount() const { return workers_.size(); }

  /// Enqueue one job. Jobs must not throw out of the pool; use `parallelFor`
  /// for exception-safe bulk work.
  void submit(std::function<void()> job);

  /// Process-wide pool shared by all parallel pipeline stages. Sized to the
  /// hardware concurrency (min 2 so concurrency is always exercised);
  /// override with the URLF_THREADS environment variable.
  static ThreadPool& shared();

  /// True when called from one of this pool's worker threads — used to run
  /// nested parallel sections inline instead of deadlocking on the queue.
  [[nodiscard]] bool onWorkerThread() const;

 private:
  void workerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Run `body(i)` for every `i` in `[0, n)` and block until all complete.
///
/// Work is split into contiguous index shards processed by the shared pool;
/// because each index owns its output slot, results are gathered in index
/// order and the outcome is byte-identical to the serial loop. The first
/// exception thrown by any `body(i)` is rethrown in the caller.
///
/// `threadLimit == 1` forces the plain serial loop (reference mode for
/// benchmarks and equivalence tests); `0` uses the full shared pool. Calls
/// from inside a pool worker run inline, so accidental nesting degrades to
/// serial instead of deadlocking.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t threadLimit = 0);

}  // namespace urlf::util

#endif  // URLF_UTIL_THREAD_POOL_H
