#ifndef URLF_UTIL_THREAD_POOL_H
#define URLF_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace urlf::util {

/// A fixed-size worker pool for data-parallel stages of the pipeline.
///
/// Determinism contract (DESIGN.md §4.1): the pool never decides *what* is
/// computed or *where* results land — callers partition work by index and
/// every job writes only its own pre-assigned slot, so the gathered output
/// is identical for any thread count, including 1.
class ThreadPool {
 public:
  /// `threadCount == 0` sizes the pool to the hardware concurrency.
  /// `widthForced` records that the width was chosen explicitly (see
  /// widthForced()).
  explicit ThreadPool(std::size_t threadCount = 0, bool widthForced = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t threadCount() const { return workers_.size(); }

  /// Enqueue one job. Jobs must not throw out of the pool; use `parallelFor`
  /// for exception-safe bulk work.
  void submit(std::function<void()> job);

  /// Process-wide pool shared by all parallel pipeline stages. Sized to the
  /// hardware concurrency (min 2 so concurrency is always exercised);
  /// override with the URLF_THREADS environment variable.
  static ThreadPool& shared();

  /// True when called from one of this pool's worker threads — used to run
  /// nested parallel sections inline instead of deadlocking on the queue.
  [[nodiscard]] bool onWorkerThread() const;

  /// True when the shared pool's width came from URLF_THREADS rather than
  /// the hardware. Fan-outs honor a forced width even on hosts where it
  /// oversubscribes the cores.
  [[nodiscard]] bool widthForced() const { return widthForced_; }

 private:
  void workerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  bool widthForced_ = false;
};

/// Run `body(i)` for every `i` in `[0, n)` and block until all complete.
///
/// Work is split into contiguous index shards processed by the shared pool;
/// because each index owns its output slot, results are gathered in index
/// order and the outcome is byte-identical to the serial loop. The first
/// exception thrown by any `body(i)` is rethrown in the caller (once a chunk
/// has thrown, remaining chunks may be skipped).
///
/// `threadLimit == 1` forces the plain serial loop (reference mode for
/// benchmarks and equivalence tests); `0` uses the full shared pool. Calls
/// from inside a pool worker run inline, so accidental nesting degrades to
/// serial instead of deadlocking.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t threadLimit = 0);

/// Run `body(begin, end)` over contiguous chunks that exactly cover [0, n)
/// and block until all complete.
///
/// This is the chunked engine behind `parallelFor`, exposed for hot loops
/// that want to hoist per-item work (scratch buffers, std::function calls)
/// out to once per chunk. Chunks are claimed from a shared atomic cursor; the
/// calling thread participates instead of blocking idle, so small fan-outs do
/// not pay a handoff to the pool just to wait for it. When `n <= minChunk`,
/// the pool has a single worker, or the caller is already a pool worker, the
/// whole range runs inline as one `body(0, n)` call — the serial fallback
/// that keeps tiny inputs off the queue entirely.
///
/// Determinism contract: chunk boundaries depend on pool width, so `body`
/// must treat every index identically (per-index output slots, no
/// chunk-spanning state other than scratch capacity). Under that contract the
/// result is byte-identical for any thread count, including the inline path.
/// The first exception thrown by any chunk is rethrown in the caller;
/// remaining chunks may be skipped once a chunk has thrown.
void parallelForChunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t threadLimit = 0, std::size_t minChunk = 256);

}  // namespace urlf::util

#endif  // URLF_UTIL_THREAD_POOL_H
