#ifndef URLF_UTIL_STRINGS_H
#define URLF_UTIL_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace urlf::util {

/// ASCII lowercase copy.
[[nodiscard]] std::string toLower(std::string_view s);

/// ASCII-lowercase `s` into `out`, replacing its contents. Reusing one
/// buffer keeps repeated case-folding allocation-free once the buffer has
/// grown to the largest subject seen (the classify hot path folds the whole
/// fetch trace once per classification).
void toLowerInto(std::string_view s, std::string& out);

/// ASCII uppercase copy.
[[nodiscard]] std::string toUpper(std::string_view s);

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Case-insensitive ASCII substring search.
[[nodiscard]] bool icontains(std::string_view haystack, std::string_view needle);

/// Case-sensitive prefix / suffix tests (thin wrappers for older call sites).
[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix);
[[nodiscard]] bool endsWith(std::string_view s, std::string_view suffix);

/// Replace every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replaceAll(std::string_view s, std::string_view from,
                                     std::string_view to);

}  // namespace urlf::util

#endif  // URLF_UTIL_STRINGS_H
