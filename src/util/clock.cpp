#include "util/clock.h"

#include <stdexcept>

namespace urlf::util {

namespace {

// Days from civil date to 1970-01-01 (Howard Hinnant's algorithm).
constexpr std::int64_t daysFromCivil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

constexpr CivilDate civilFromDays(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

// Simulation epoch: 2012-01-01.
constexpr std::int64_t kEpochDays = daysFromCivil(2012, 1, 1);

}  // namespace

std::string CivilDate::monthYear() const {
  return std::to_string(month) + "/" + std::to_string(year);
}

std::string CivilDate::iso() const {
  auto pad = [](int v) {
    std::string s = std::to_string(v);
    return v < 10 ? "0" + s : s;
  };
  return std::to_string(year) + "-" + pad(month) + "-" + pad(day);
}

CivilDate SimTime::date() const {
  std::int64_t d = hours_ / 24;
  if (hours_ < 0 && hours_ % 24 != 0) --d;  // floor division for pre-epoch times
  return civilFromDays(kEpochDays + d);
}

SimTime SimTime::fromDate(const CivilDate& d) {
  return SimTime{(daysFromCivil(d.year, d.month, d.day) - kEpochDays) * 24};
}

void SimClock::advanceHours(std::int64_t h) {
  if (h < 0) throw std::invalid_argument("SimClock: cannot advance backwards");
  now_ = now_ + h;
}

}  // namespace urlf::util
