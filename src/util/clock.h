#ifndef URLF_UTIL_CLOCK_H
#define URLF_UTIL_CLOCK_H

#include <compare>
#include <cstdint>
#include <string>

namespace urlf::util {

/// A calendar date in the proleptic Gregorian calendar.
struct CivilDate {
  int year = 2012;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  auto operator<=>(const CivilDate&) const = default;

  /// "9/2012" — the month/year form the paper's Table 3 uses.
  [[nodiscard]] std::string monthYear() const;
  /// ISO "2012-09-14".
  [[nodiscard]] std::string iso() const;
};

/// A point in simulated time, measured in whole hours since the simulation
/// epoch 2012-01-01 00:00. Hours are the natural granularity: vendor review
/// latencies are days, measurement runs minutes-to-hours.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t hours) : hours_(hours) {}

  [[nodiscard]] constexpr std::int64_t hours() const { return hours_; }
  [[nodiscard]] constexpr std::int64_t days() const { return hours_ / 24; }

  [[nodiscard]] CivilDate date() const;

  /// Construct a SimTime at 00:00 on the given calendar date.
  static SimTime fromDate(const CivilDate& d);

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(std::int64_t h) const { return SimTime{hours_ + h}; }
  constexpr SimTime operator-(std::int64_t h) const { return SimTime{hours_ - h}; }
  constexpr std::int64_t operator-(SimTime other) const { return hours_ - other.hours_; }

 private:
  std::int64_t hours_ = 0;
};

/// Number of hours in n days.
constexpr std::int64_t daysToHours(std::int64_t n) { return n * 24; }

/// The single advancing clock a simulation world owns.
///
/// Components hold a reference and read `now()`; only the experiment driver
/// advances it. Time never goes backwards.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimTime start) : now_(start) {}

  [[nodiscard]] SimTime now() const { return now_; }

  /// Advance by a non-negative number of hours.
  void advanceHours(std::int64_t h);
  void advanceDays(std::int64_t d) { advanceHours(daysToHours(d)); }

 private:
  SimTime now_{};
};

}  // namespace urlf::util

#endif  // URLF_UTIL_CLOCK_H
