#ifndef URLF_UTIL_FLAT_MAP_H
#define URLF_UTIL_FLAT_MAP_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace urlf::util {

/// Open-addressing hash map from interned string keys to values, tuned for
/// the lookup-heavy stores on the per-request fast path (CategoryDatabase).
///
/// Slots live in one contiguous array with the key's hash stored inline, so
/// a lookup is typically a single dependent cache miss: probe the home slot,
/// reject on the 64-bit hash without touching key bytes, and only compare
/// the key on a hash hit. Contrast std::unordered_map, whose bucket → node →
/// key-data chain costs ~3 dependent misses per find.
///
/// Linear probing over a power-of-two capacity; deletion uses Knuth's
/// backward-shift (Algorithm R), so there are no tombstones and probe
/// chains stay gap-free. Not thread-safe; iteration order is unspecified.
template <typename Value>
class FlatStringMap {
 public:
  FlatStringMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Value for `key`, default-constructing (and interning the key) when
  /// absent — the try_emplace idiom.
  Value& getOrInsert(std::string_view key) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    const std::uint64_t h = hashKey(key);
    std::size_t i = h & mask_;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.hash == kEmpty) {
        slot.hash = h;
        slot.key.assign(key);
        ++size_;
        return slot.value;
      }
      if (slot.hash == h && slot.key == key) return slot.value;
      i = (i + 1) & mask_;
    }
  }

  [[nodiscard]] const Value* find(std::string_view key) const {
    if (size_ == 0) return nullptr;
    const std::uint64_t h = hashKey(key);
    std::size_t i = h & mask_;
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.hash == kEmpty) return nullptr;
      if (slot.hash == h && slot.key == key) return &slot.value;
      i = (i + 1) & mask_;
    }
  }

  /// Remove `key`. Returns whether it was present.
  bool erase(std::string_view key) {
    if (size_ == 0) return false;
    const std::uint64_t h = hashKey(key);
    std::size_t i = h & mask_;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.hash == kEmpty) return false;
      if (slot.hash == h && slot.key == key) break;
      i = (i + 1) & mask_;
    }
    // Backward-shift deletion: pull each displaced successor into the hole
    // unless its home slot lies cyclically inside (hole, successor].
    std::size_t hole = i;
    std::size_t cur = (i + 1) & mask_;
    while (slots_[cur].hash != kEmpty) {
      const std::size_t probeDistance = (cur - (slots_[cur].hash & mask_)) & mask_;
      const std::size_t holeDistance = (cur - hole) & mask_;
      if (probeDistance >= holeDistance) {
        slots_[hole] = std::move(slots_[cur]);
        hole = cur;
      }
      cur = (cur + 1) & mask_;
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  /// Visit every (key, value) pair, in unspecified order.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (const Slot& slot : slots_)
      if (slot.hash != kEmpty) fn(slot.key, slot.value);
  }

 private:
  static constexpr std::uint64_t kEmpty = 0;

  struct Slot {
    std::uint64_t hash = kEmpty;
    std::string key;
    Value value{};
  };

  /// std::hash (Murmur on libstdc++) plus a splitmix64 finalizer so the low
  /// bits used by the power-of-two mask are well mixed; 0 is reserved for
  /// empty slots.
  static std::uint64_t hashKey(std::string_view key) {
    std::uint64_t h = std::hash<std::string_view>{}(key);
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return h == kEmpty ? 0x9E3779B97F4A7C15ULL : h;
  }

  void grow() {
    const std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    for (Slot& slot : old) {
      if (slot.hash == kEmpty) continue;
      std::size_t i = slot.hash & mask_;
      while (slots_[i].hash != kEmpty) i = (i + 1) & mask_;
      slots_[i] = std::move(slot);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace urlf::util

#endif  // URLF_UTIL_FLAT_MAP_H
