#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace urlf::util {

namespace {
thread_local const ThreadPool* currentPool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threadCount, bool widthForced)
    : widthForced_(widthForced) {
  if (threadCount == 0) {
    threadCount = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threadCount);
  for (std::size_t i = 0; i < threadCount; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

ThreadPool& ThreadPool::shared() {
  // URLF_THREADS overrides the width (CI, benchmarking). Otherwise use the
  // hardware concurrency, but never fewer than two workers: a single-core
  // host still interleaves the pool's scheduling, so the determinism
  // contract is exercised rather than silently degrading to inline loops.
  static const std::size_t forcedWidth = [] {
    if (const char* env = std::getenv("URLF_THREADS")) {
      const long n = std::atol(env);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{0};
  }();
  static ThreadPool pool(
      forcedWidth != 0
          ? forcedWidth
          : std::max<std::size_t>(2, std::thread::hardware_concurrency()),
      /*widthForced=*/forcedWidth != 0);
  return pool;
}

bool ThreadPool::onWorkerThread() const { return currentPool == this; }

void ThreadPool::workerLoop() {
  currentPool = this;
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

namespace {

/// Shared state of one chunked run: an atomic cursor every participating
/// thread (pool helpers and the caller) claims contiguous chunks from.
struct ChunkRun {
  std::atomic<std::size_t> cursor{0};
  std::size_t n = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<bool> failed{false};

  std::mutex mutex;
  std::condition_variable done;
  std::size_t pendingHelpers = 0;
  std::exception_ptr firstError;

  /// Claim and process chunks until the range is exhausted or a chunk threw
  /// somewhere. Records the first exception; never lets one escape.
  void drain() {
    try {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t begin =
            cursor.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) return;
        (*body)(begin, std::min(n, begin + grain));
      }
    } catch (...) {
      failed.store(true, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(mutex);
      if (!firstError) firstError = std::current_exception();
    }
  }
};

}  // namespace

void parallelForChunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t threadLimit, std::size_t minChunk) {
  if (n == 0) return;
  if (minChunk == 0) minChunk = 1;

  ThreadPool& pool = ThreadPool::shared();
  const std::size_t width =
      threadLimit == 0 ? pool.threadCount()
                       : std::min(threadLimit, pool.threadCount());
  // On a single-core host the pool still keeps two workers so scheduling
  // interleave is exercised by the test suite, but *fan-outs* run inline:
  // enlisting helpers there buys no concurrency and costs wakeups and
  // context switches on the one core. An explicit URLF_THREADS width is
  // honored as given.
  const bool soloHardware =
      !pool.widthForced() && std::thread::hardware_concurrency() <= 1;
  if (width <= 1 || n <= minChunk || pool.onWorkerThread() || soloHardware) {
    body(0, n);
    return;
  }

  ChunkRun run;
  run.n = n;
  run.body = &body;
  // A few chunks per participant so uneven chunks balance out, but never
  // below the cutoff that makes a chunk worth dispatching.
  run.grain = std::max(minChunk, (n + width * 4 - 1) / (width * 4));

  const std::size_t chunks = (n + run.grain - 1) / run.grain;
  const std::size_t helpers = std::min(width - 1, chunks - 1);
  {
    const std::lock_guard<std::mutex> lock(run.mutex);
    run.pendingHelpers = helpers;
  }
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([&run] {
      run.drain();
      {
        const std::lock_guard<std::mutex> lock(run.mutex);
        --run.pendingHelpers;
      }
      run.done.notify_one();
    });
  }

  // The caller is a participant, not a bystander: it claims chunks off the
  // same cursor, so the fan-out costs no handoff latency when the pool is
  // busy or the host has few cores.
  run.drain();

  std::unique_lock<std::mutex> lock(run.mutex);
  run.done.wait(lock, [&run] { return run.pendingHelpers == 0; });
  if (run.firstError) std::rethrow_exception(run.firstError);
}

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t threadLimit) {
  parallelForChunks(
      n,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      threadLimit, /*minChunk=*/1);
}

}  // namespace urlf::util
