#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

namespace urlf::util {

namespace {
thread_local const ThreadPool* currentPool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threadCount) {
  if (threadCount == 0) {
    threadCount = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threadCount);
  for (std::size_t i = 0; i < threadCount; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

ThreadPool& ThreadPool::shared() {
  // URLF_THREADS overrides the width (CI, benchmarking). Otherwise use the
  // hardware concurrency, but never fewer than two workers: a single-core
  // host still interleaves the pool's scheduling, so the determinism
  // contract is exercised rather than silently degrading to inline loops.
  static ThreadPool pool([] {
    if (const char* env = std::getenv("URLF_THREADS")) {
      const long n = std::atol(env);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::max<std::size_t>(2, std::thread::hardware_concurrency());
  }());
  return pool;
}

bool ThreadPool::onWorkerThread() const { return currentPool == this; }

void ThreadPool::workerLoop() {
  currentPool = this;
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t threadLimit) {
  if (n == 0) return;

  ThreadPool& pool = ThreadPool::shared();
  const std::size_t width =
      threadLimit == 0 ? pool.threadCount()
                       : std::min(threadLimit, pool.threadCount());
  if (width <= 1 || n == 1 || pool.onWorkerThread()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Contiguous shards, a few per worker so uneven jobs balance out. Each
  // index is processed exactly once; output slots are caller-owned, so the
  // gathered result is independent of scheduling.
  const std::size_t shardCount = std::min(n, width * 4);
  const std::size_t perShard = (n + shardCount - 1) / shardCount;

  std::mutex doneMutex;
  std::condition_variable doneSignal;
  std::size_t pending = 0;
  std::exception_ptr firstError;

  {
    const std::lock_guard<std::mutex> lock(doneMutex);
    pending = (n + perShard - 1) / perShard;
  }

  for (std::size_t begin = 0; begin < n; begin += perShard) {
    const std::size_t end = std::min(n, begin + perShard);
    pool.submit([&, begin, end] {
      std::exception_ptr error;
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(doneMutex);
        if (error && !firstError) firstError = error;
        --pending;
      }
      doneSignal.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(doneMutex);
  doneSignal.wait(lock, [&] { return pending == 0; });
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace urlf::util
