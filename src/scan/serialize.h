#ifndef URLF_SCAN_SERIALIZE_H
#define URLF_SCAN_SERIALIZE_H

#include <optional>
#include <string>
#include <vector>

#include "report/json.h"
#include "scan/banner_index.h"

namespace urlf::scan {

/// JSON export of scan data — the shape of a Shodan data dump: one object
/// per banner with ip, port, status, headers, body snippet, title, country,
/// and observation time (hours since the simulation epoch).
[[nodiscard]] report::Json toJson(const BannerRecord& record);
[[nodiscard]] std::string exportRecords(const std::vector<BannerRecord>& records,
                                        int indent = 0);

/// Inverse of exportRecords. Returns nullopt on malformed input (bad JSON,
/// wrong shape, invalid addresses).
[[nodiscard]] std::optional<BannerRecord> recordFromJson(
    const report::Json& json);
[[nodiscard]] std::optional<std::vector<BannerRecord>> importRecords(
    std::string_view text);

/// Binary export of a sharded index: magic "URLFSIDX1\n", varint-framed
/// surface tables, country buckets, and posting shards, then an fnv1a64
/// checksum of everything before it. Compact enough to ship a million-host
/// index as a few tens of megabytes; no banner text is included (records are
/// re-fetched on demand, see ShardedBannerIndex::RecordFetcher).
[[nodiscard]] std::string exportShardedIndex(const ShardedBannerIndex& index);

/// Inverse of exportShardedIndex. Returns nullopt on malformed input (bad
/// magic, truncation, checksum mismatch, inconsistent parts). The imported
/// index has no record fetcher attached.
[[nodiscard]] std::optional<ShardedBannerIndex> importShardedIndex(
    std::string_view data);

}  // namespace urlf::scan

#endif  // URLF_SCAN_SERIALIZE_H
