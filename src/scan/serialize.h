#ifndef URLF_SCAN_SERIALIZE_H
#define URLF_SCAN_SERIALIZE_H

#include <optional>
#include <string>
#include <vector>

#include "report/json.h"
#include "scan/banner_index.h"

namespace urlf::scan {

/// JSON export of scan data — the shape of a Shodan data dump: one object
/// per banner with ip, port, status, headers, body snippet, title, country,
/// and observation time (hours since the simulation epoch).
[[nodiscard]] report::Json toJson(const BannerRecord& record);
[[nodiscard]] std::string exportRecords(const std::vector<BannerRecord>& records,
                                        int indent = 0);

/// Inverse of exportRecords. Returns nullopt on malformed input (bad JSON,
/// wrong shape, invalid addresses).
[[nodiscard]] std::optional<BannerRecord> recordFromJson(
    const report::Json& json);
[[nodiscard]] std::optional<std::vector<BannerRecord>> importRecords(
    std::string_view text);

}  // namespace urlf::scan

#endif  // URLF_SCAN_SERIALIZE_H
