#include "scan/banner_index.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string_view>

#include "http/html.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace urlf::scan {

namespace {

/// Probe one reachable endpoint the way a banner crawler does: a plain GET /
/// addressed to the bare IP.
BannerRecord probeEndpoint(simnet::HttpEndpoint& endpoint, net::Ipv4Addr ip,
                           std::uint16_t port, const geo::GeoDatabase& geo,
                           util::SimTime now, std::size_t bodySnippetLimit) {
  net::Url url{"http", ip.toString(), port, "/", ""};
  const auto response = endpoint.handle(http::Request::get(url), now);

  BannerRecord record;
  record.ip = ip;
  record.port = port;
  record.statusCode = response.statusCode;
  record.headers = response.headers;
  record.body = response.body.substr(0, bodySnippetLimit);
  record.title = http::extractTitle(response.body);
  record.countryAlpha2 = geo.lookup(ip).value_or("");
  record.observedAt = now;
  return record;
}

bool isTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

/// Maximal alphanumeric runs of `text`. Both banners and keywords are
/// tokenized with the same character class, so a keyword with no separator
/// can only ever occur inside a single banner token.
std::vector<std::string_view> tokenize(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !isTokenChar(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && isTokenChar(text[i])) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

void mergeSortedUnique(std::vector<std::uint32_t>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

std::vector<std::uint32_t> intersectSorted(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

std::string BannerRecord::searchableText() const {
  std::string text = "HTTP/1.1 " + std::to_string(statusCode) + "\r\n";
  text += headers.serialize();
  text += title;
  text += "\r\n";
  text += body;
  return text;
}

const std::string& BannerRecord::searchableTextLower() const {
  if (!searchLowerReady_) {
    searchLower_ = util::toLower(searchableText());
    searchLowerReady_ = true;
  }
  return searchLower_;
}

void BannerIndex::crawl(simnet::World& world, const geo::GeoDatabase& geo,
                        std::size_t bodySnippetLimit,
                        std::size_t threadLimit) {
  const auto surfaces = world.externalSurfaces();
  const auto now = world.now();

  records_.clear();
  postings_.clear();
  countryBuckets_.clear();
  records_.resize(surfaces.size());

  // Each probe writes only its own slot, so the records land in binding
  // order — the same index a serial crawl builds.
  util::parallelFor(
      surfaces.size(),
      [&](std::size_t i) {
        const auto& surface = surfaces[i];
        records_[i] = probeEndpoint(*surface.endpoint, surface.ip,
                                    surface.port, geo, now, bodySnippetLimit);
        records_[i].primeSearchText();
      },
      threadLimit);

  indexRange(0);
}

BannerIndex BannerIndex::fromRecords(std::vector<BannerRecord> records) {
  BannerIndex index;
  index.addRecords(std::move(records));
  return index;
}

void BannerIndex::addRecords(std::vector<BannerRecord> records) {
  const std::size_t begin = records_.size();
  records_.insert(records_.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
  util::parallelFor(records_.size() - begin, [&](std::size_t i) {
    records_[begin + i].primeSearchText();
  });
  indexRange(begin);
}

void BannerIndex::indexRange(std::size_t begin) {
  // Ids are appended in ascending order, so every posting list and country
  // bucket stays sorted and unique without a final sort pass.
  for (std::size_t id = begin; id < records_.size(); ++id) {
    const auto& record = records_[id];
    auto tokens = tokenize(record.searchableTextLower());
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (const auto token : tokens)
      postings_[std::string(token)].push_back(static_cast<std::uint32_t>(id));
    countryBuckets_[util::toUpper(record.countryAlpha2)].push_back(
        static_cast<std::uint32_t>(id));
  }
}

std::vector<std::uint32_t> BannerIndex::keywordCandidates(
    const std::string& loweredKeyword) const {
  const auto keywordTokens = tokenize(loweredKeyword);

  std::vector<std::uint32_t> candidates;
  if (keywordTokens.empty()) {
    // No alphanumeric core (e.g. "=", whitespace, empty): substring-scan the
    // cached lowered text. An empty keyword matches every record, as the
    // reference `icontains` does.
    for (std::size_t id = 0; id < records_.size(); ++id) {
      if (records_[id].searchableTextLower().find(loweredKeyword) !=
          std::string::npos)
        candidates.push_back(static_cast<std::uint32_t>(id));
    }
    return candidates;
  }

  // Pre-filter on the keyword's longest token: any banner containing the
  // keyword must contain that token inside one of its own tokens, so the
  // union of posting lists over vocabulary tokens containing it is a
  // superset of the exact match set.
  const std::string_view longest = *std::max_element(
      keywordTokens.begin(), keywordTokens.end(),
      [](std::string_view a, std::string_view b) { return a.size() < b.size(); });
  for (const auto& [token, ids] : postings_) {
    if (token.find(longest) == std::string::npos) continue;
    candidates.insert(candidates.end(), ids.begin(), ids.end());
  }
  mergeSortedUnique(candidates);

  // A keyword that *is* its longest token (no separators) is exact already;
  // anything else ("cfru=", "mcafee web gateway", "8080/webadmin/") is
  // verified against the cached lowered text.
  if (loweredKeyword == longest) return candidates;
  std::vector<std::uint32_t> verified;
  verified.reserve(candidates.size());
  for (const auto id : candidates) {
    if (records_[id].searchableTextLower().find(loweredKeyword) !=
        std::string::npos)
      verified.push_back(id);
  }
  return verified;
}

std::vector<const BannerRecord*> BannerIndex::searchIndexed(
    const Query& query) const {
  std::vector<std::uint32_t> ids = keywordCandidates(util::toLower(query.keyword));
  if (query.countryAlpha2) {
    const auto bucket = countryBuckets_.find(util::toUpper(*query.countryAlpha2));
    if (bucket == countryBuckets_.end()) return {};
    ids = intersectSorted(ids, bucket->second);
  }
  std::vector<const BannerRecord*> out;
  out.reserve(ids.size());
  for (const auto id : ids) out.push_back(&records_[id]);
  return out;
}

std::vector<const BannerRecord*> BannerIndex::searchReference(
    const Query& query) const {
  const std::string loweredKeyword = util::toLower(query.keyword);
  std::vector<const BannerRecord*> out;
  for (const auto& record : records_) {
    if (query.countryAlpha2 &&
        !util::iequals(record.countryAlpha2, *query.countryAlpha2))
      continue;
    if (record.searchableTextLower().find(loweredKeyword) == std::string::npos)
      continue;
    out.push_back(&record);
  }
  return out;
}

std::vector<const BannerRecord*> BannerIndex::search(const Query& query) const {
  return mode_ == SearchMode::kIndexed ? searchIndexed(query)
                                       : searchReference(query);
}

std::vector<const BannerRecord*> BannerIndex::searchAll(
    const std::vector<Query>& queries) const {
  std::vector<std::vector<const BannerRecord*>> perQuery(queries.size());

  if (mode_ == SearchMode::kIndexed) {
    // The §3.1 fan-out repeats the same few keywords across every country
    // facet; resolve each distinct keyword once, in parallel, then apply
    // the country restriction per query.
    std::vector<std::string> keywords;
    std::unordered_map<std::string, std::size_t> keywordSlot;
    std::vector<std::size_t> querySlot(queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::string lowered = util::toLower(queries[q].keyword);
      const auto [it, inserted] = keywordSlot.emplace(lowered, keywords.size());
      if (inserted) keywords.push_back(lowered);
      querySlot[q] = it->second;
    }

    std::vector<std::vector<std::uint32_t>> perKeyword(keywords.size());
    util::parallelFor(keywords.size(), [&](std::size_t k) {
      perKeyword[k] = keywordCandidates(keywords[k]);
    });

    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::vector<std::uint32_t>* ids = &perKeyword[querySlot[q]];
      std::vector<std::uint32_t> restricted;
      if (queries[q].countryAlpha2) {
        const auto bucket =
            countryBuckets_.find(util::toUpper(*queries[q].countryAlpha2));
        restricted = bucket == countryBuckets_.end()
                         ? std::vector<std::uint32_t>{}
                         : intersectSorted(*ids, bucket->second);
        ids = &restricted;
      }
      perQuery[q].reserve(ids->size());
      for (const auto id : *ids) perQuery[q].push_back(&records_[id]);
    }
  } else {
    for (std::size_t q = 0; q < queries.size(); ++q)
      perQuery[q] = searchReference(queries[q]);
  }

  // Sequential merge in query order keeps the output identical across
  // modes and thread counts.
  std::vector<const BannerRecord*> out;
  std::set<std::uint64_t> seen;
  for (const auto& hits : perQuery) {
    for (const auto* record : hits) {
      const std::uint64_t key =
          (std::uint64_t{record->ip.value()} << 16) | record->port;
      if (seen.insert(key).second) out.push_back(record);
    }
  }
  return out;
}

std::vector<BannerRecord> CensusScanner::sweep(
    simnet::World& world, const geo::GeoDatabase& geo,
    std::uint64_t maxAddressesPerPrefix) const {
  std::vector<BannerRecord> out;
  for (const auto* as : world.allAses()) {
    for (const auto& prefix : as->prefixes()) {
      const std::uint64_t count = std::min(prefix.size(), maxAddressesPerPrefix);
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto ip = prefix.addressAt(i);
        for (const auto port : ports_) {
          auto* endpoint = world.externalEndpointAt(ip, port);
          if (endpoint == nullptr) continue;
          out.push_back(
              probeEndpoint(*endpoint, ip, port, geo, world.now(), 2048));
        }
      }
    }
  }
  return out;
}

}  // namespace urlf::scan
