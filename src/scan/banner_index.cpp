#include "scan/banner_index.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string_view>

#include "http/html.h"
#include "simnet/world_stream.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace urlf::scan {

BannerRecord probeEndpoint(simnet::HttpEndpoint& endpoint, net::Ipv4Addr ip,
                           std::uint16_t port, const geo::GeoDatabase& geo,
                           util::SimTime now, std::size_t bodySnippetLimit) {
  net::Url url{"http", ip.toString(), port, "/", ""};
  const auto response = endpoint.handle(http::Request::get(url), now);

  BannerRecord record;
  record.ip = ip;
  record.port = port;
  record.statusCode = response.statusCode;
  record.headers = response.headers;
  record.body = response.body.substr(0, bodySnippetLimit);
  record.title = http::extractTitle(response.body);
  record.countryAlpha2 = geo.lookup(ip).value_or("");
  record.observedAt = now;
  return record;
}

void probeEndpointInto(simnet::HttpEndpoint& endpoint, net::Ipv4Addr ip,
                       std::uint16_t port, const geo::GeoDatabase& geo,
                       util::SimTime now, std::size_t bodySnippetLimit,
                       BannerRecord& out) {
  net::Url url{"http", ip.toString(), port, "/", ""};
  auto response = endpoint.handle(http::Request::get(url), now);

  out.ip = ip;
  out.port = port;
  out.statusCode = response.statusCode;
  out.headers = std::move(response.headers);
  out.title = http::extractTitle(response.body);
  if (response.body.size() > bodySnippetLimit)
    response.body.resize(bodySnippetLimit);
  out.body = std::move(response.body);
  out.countryAlpha2 = geo.lookup(ip).value_or("");
  out.observedAt = now;
}

namespace {

void mergeSortedUnique(std::vector<std::uint32_t>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

std::vector<std::uint32_t> intersectSorted(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

void BannerRecord::appendSearchableText(std::string& out) const {
  out += "HTTP/1.1 ";
  out += std::to_string(statusCode);
  out += "\r\n";
  out += headers.serialize();
  out += title;
  out += "\r\n";
  out += body;
}

std::string BannerRecord::searchableText() const {
  std::string text;
  appendSearchableText(text);
  return text;
}

const std::string& BannerRecord::searchableTextLower() const {
  if (!searchLowerReady_) {
    searchLower_ = util::toLower(searchableText());
    searchLowerReady_ = true;
  }
  return searchLower_;
}

void BannerRecord::primeSearchText(std::string& scratch) const {
  if (searchLowerReady_) return;
  scratch.clear();
  appendSearchableText(scratch);
  util::toLowerInto(scratch, searchLower_);
  searchLowerReady_ = true;
}

void BannerIndex::crawl(simnet::World& world, const geo::GeoDatabase& geo,
                        std::size_t bodySnippetLimit,
                        std::size_t threadLimit) {
  const auto surfaces = world.externalSurfaces();
  const auto now = world.now();

  records_.clear();
  postings_.clear();
  countryBuckets_.clear();
  records_.resize(surfaces.size());

  if (threadLimit == 1) {
    // Reference serial crawl: one probe at a time, copying response storage.
    for (std::size_t i = 0; i < surfaces.size(); ++i) {
      const auto& surface = surfaces[i];
      records_[i] = probeEndpoint(*surface.endpoint, surface.ip, surface.port,
                                  geo, now, bodySnippetLimit);
      records_[i].primeSearchText();
    }
  } else {
    // Fast path: chunked dispatch over the surfaces. Each chunk moves
    // response storage into its slot and primes the lowered-text cache
    // through one reused staging buffer. Every probe writes only its own
    // slot, so the records land in binding order — byte-identical to the
    // serial crawl.
    util::parallelForChunks(
        surfaces.size(),
        [&](std::size_t begin, std::size_t end) {
          std::string scratch;
          for (std::size_t i = begin; i < end; ++i) {
            const auto& surface = surfaces[i];
            probeEndpointInto(*surface.endpoint, surface.ip, surface.port, geo,
                              now, bodySnippetLimit, records_[i]);
            records_[i].primeSearchText(scratch);
          }
        },
        threadLimit, 64);
  }

  if (threadLimit == 1)
    indexRange(0);
  else
    indexRangeLean(0);
}

BannerIndex BannerIndex::fromRecords(std::vector<BannerRecord> records) {
  BannerIndex index;
  index.addRecords(std::move(records));
  return index;
}

void BannerIndex::addRecords(std::vector<BannerRecord> records) {
  const std::size_t begin = records_.size();
  records_.insert(records_.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
  util::parallelForChunks(records_.size() - begin,
                          [&](std::size_t lo, std::size_t hi) {
                            std::string scratch;
                            for (std::size_t i = lo; i < hi; ++i)
                              records_[begin + i].primeSearchText(scratch);
                          });
  indexRangeLean(begin);
}

void BannerIndex::indexRange(std::size_t begin) {
  // Ids are appended in ascending order, so every posting list and country
  // bucket stays sorted and unique without a final sort pass. The token
  // scratch and the transparent map lookups keep the loop from allocating
  // per (record, token).
  std::vector<std::string_view> tokens;
  for (std::size_t id = begin; id < records_.size(); ++id) {
    const auto& record = records_[id];
    tokens.clear();
    tokenizeAlnum(record.searchableTextLower(), tokens);
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (const auto token : tokens) {
      auto it = postings_.find(token);
      if (it == postings_.end())
        it = postings_.emplace(std::string(token), std::vector<std::uint32_t>{})
                 .first;
      it->second.push_back(static_cast<std::uint32_t>(id));
    }
    countryBuckets_[util::toUpper(record.countryAlpha2)].push_back(
        static_cast<std::uint32_t>(id));
  }
}

void BannerIndex::indexRangeLean(std::size_t begin) {
  // Same output as indexRange, without the per-record sort+unique: ids only
  // ever append in ascending order, so a repeated token inside one record is
  // exactly the case where its list already ends in this id. The occasional
  // extra map probe for a repeated token costs less than sorting every
  // record's token views.
  std::vector<std::string_view> tokens;
  for (std::size_t id = begin; id < records_.size(); ++id) {
    const auto& record = records_[id];
    const auto doc = static_cast<std::uint32_t>(id);
    tokens.clear();
    tokenizeAlnum(record.searchableTextLower(), tokens);
    for (const auto token : tokens) {
      auto it = postings_.find(token);
      if (it == postings_.end())
        it = postings_.emplace(std::string(token), std::vector<std::uint32_t>{})
                 .first;
      auto& ids = it->second;
      if (ids.empty() || ids.back() != doc) ids.push_back(doc);
    }
    countryBuckets_[util::toUpper(record.countryAlpha2)].push_back(doc);
  }
}

std::vector<std::uint32_t> BannerIndex::keywordCandidates(
    const std::string& loweredKeyword) const {
  std::vector<std::string_view> keywordTokens;
  tokenizeAlnum(loweredKeyword, keywordTokens);

  std::vector<std::uint32_t> candidates;
  if (keywordTokens.empty()) {
    // No alphanumeric core (e.g. "=", whitespace, empty): substring-scan the
    // cached lowered text. An empty keyword matches every record, as the
    // reference `icontains` does.
    for (std::size_t id = 0; id < records_.size(); ++id) {
      if (records_[id].searchableTextLower().find(loweredKeyword) !=
          std::string::npos)
        candidates.push_back(static_cast<std::uint32_t>(id));
    }
    return candidates;
  }

  // Pre-filter on the keyword's longest token: any banner containing the
  // keyword must contain that token inside one of its own tokens, so the
  // union of posting lists over vocabulary tokens containing it is a
  // superset of the exact match set.
  const std::string_view longest = *std::max_element(
      keywordTokens.begin(), keywordTokens.end(),
      [](std::string_view a, std::string_view b) { return a.size() < b.size(); });
  for (const auto& [token, ids] : postings_) {
    if (token.find(longest) == std::string::npos) continue;
    candidates.insert(candidates.end(), ids.begin(), ids.end());
  }
  mergeSortedUnique(candidates);

  // A keyword that *is* its longest token (no separators) is exact already;
  // anything else ("cfru=", "mcafee web gateway", "8080/webadmin/") is
  // verified against the cached lowered text.
  if (loweredKeyword == longest) return candidates;
  std::vector<std::uint32_t> verified;
  verified.reserve(candidates.size());
  for (const auto id : candidates) {
    if (records_[id].searchableTextLower().find(loweredKeyword) !=
        std::string::npos)
      verified.push_back(id);
  }
  return verified;
}

std::vector<const BannerRecord*> BannerIndex::searchIndexed(
    const Query& query) const {
  std::vector<std::uint32_t> ids = keywordCandidates(util::toLower(query.keyword));
  if (query.countryAlpha2) {
    const auto bucket = countryBuckets_.find(util::toUpper(*query.countryAlpha2));
    if (bucket == countryBuckets_.end()) return {};
    ids = intersectSorted(ids, bucket->second);
  }
  std::vector<const BannerRecord*> out;
  out.reserve(ids.size());
  for (const auto id : ids) out.push_back(&records_[id]);
  return out;
}

std::vector<const BannerRecord*> BannerIndex::searchReference(
    const Query& query) const {
  const std::string loweredKeyword = util::toLower(query.keyword);
  std::vector<const BannerRecord*> out;
  for (const auto& record : records_) {
    if (query.countryAlpha2 &&
        !util::iequals(record.countryAlpha2, *query.countryAlpha2))
      continue;
    if (record.searchableTextLower().find(loweredKeyword) == std::string::npos)
      continue;
    out.push_back(&record);
  }
  return out;
}

std::vector<const BannerRecord*> BannerIndex::search(const Query& query) const {
  return mode_ == SearchMode::kIndexed ? searchIndexed(query)
                                       : searchReference(query);
}

std::vector<const BannerRecord*> BannerIndex::searchAll(
    const std::vector<Query>& queries) const {
  std::vector<std::vector<const BannerRecord*>> perQuery(queries.size());

  if (mode_ == SearchMode::kIndexed) {
    // The §3.1 fan-out repeats the same few keywords across every country
    // facet; resolve each distinct keyword once, in parallel, then apply
    // the country restriction per query.
    std::vector<std::string> keywords;
    std::unordered_map<std::string, std::size_t> keywordSlot;
    std::vector<std::size_t> querySlot(queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::string lowered = util::toLower(queries[q].keyword);
      const auto [it, inserted] = keywordSlot.emplace(lowered, keywords.size());
      if (inserted) keywords.push_back(lowered);
      querySlot[q] = it->second;
    }

    std::vector<std::vector<std::uint32_t>> perKeyword(keywords.size());
    util::parallelFor(keywords.size(), [&](std::size_t k) {
      perKeyword[k] = keywordCandidates(keywords[k]);
    });

    // Partition each keyword's candidates by record country in one pass.
    // The fan-out asks for the same keyword under every country facet, so
    // answering those from the partition replaces one sorted intersection
    // per (keyword, country) pair with a single walk per keyword; each
    // partition bucket is ascending because the candidate list is.
    std::vector<std::unordered_map<std::string, std::vector<std::uint32_t>>>
        byCountry(keywords.size());
    for (std::size_t k = 0; k < keywords.size(); ++k)
      for (const auto id : perKeyword[k])
        byCountry[k][util::toUpper(records_[id].countryAlpha2)].push_back(id);

    static const std::vector<std::uint32_t> kNoIds;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::vector<std::uint32_t>* ids = &perKeyword[querySlot[q]];
      if (queries[q].countryAlpha2) {
        const auto& partition = byCountry[querySlot[q]];
        const auto bucket =
            partition.find(util::toUpper(*queries[q].countryAlpha2));
        ids = bucket == partition.end() ? &kNoIds : &bucket->second;
      }
      perQuery[q].reserve(ids->size());
      for (const auto id : *ids) perQuery[q].push_back(&records_[id]);
    }
  } else {
    for (std::size_t q = 0; q < queries.size(); ++q)
      perQuery[q] = searchReference(queries[q]);
  }

  // Sequential merge in query order keeps the output identical across
  // modes and thread counts.
  std::vector<const BannerRecord*> out;
  std::set<std::uint64_t> seen;
  for (const auto& hits : perQuery) {
    for (const auto* record : hits) {
      const std::uint64_t key =
          (std::uint64_t{record->ip.value()} << 16) | record->port;
      if (seen.insert(key).second) out.push_back(record);
    }
  }
  return out;
}

// --- ShardedBannerIndex -----------------------------------------------------

void ShardedBannerIndex::beginShard(std::string label) {
  if (openShard_) throw std::logic_error("beginShard: shard already open");
  openShard_ = std::make_unique<PostingShard::Builder>(
      std::move(label), static_cast<std::uint32_t>(ips_.size()));
}

void ShardedBannerIndex::addRecord(const BannerRecord& record) {
  if (!openShard_) throw std::logic_error("addRecord: no open shard");
  const auto doc = static_cast<std::uint32_t>(ips_.size());
  textScratch_.clear();
  record.appendSearchableText(textScratch_);
  util::toLowerInto(textScratch_, loweredScratch_);
  openShard_->addDocument(loweredScratch_);
  ips_.push_back(record.ip.value());
  ports_.push_back(record.port);
  countryBuckets_[util::toUpper(record.countryAlpha2)].append(doc);
}

void ShardedBannerIndex::endShard() {
  if (!openShard_) throw std::logic_error("endShard: no open shard");
  shards_.push_back(std::move(*openShard_).finish());
  openShard_.reset();
}

ShardedBannerIndex ShardedBannerIndex::fromIndex(const BannerIndex& index,
                                                 std::size_t shardTargetDocs) {
  if (shardTargetDocs == 0) shardTargetDocs = 1;
  ShardedBannerIndex out;
  const auto& records = index.records();
  for (std::size_t begin = 0; begin < records.size();
       begin += shardTargetDocs) {
    const std::size_t end = std::min(records.size(), begin + shardTargetDocs);
    out.beginShard("mono#" + std::to_string(begin / shardTargetDocs));
    for (std::size_t i = begin; i < end; ++i) out.addRecord(records[i]);
    out.endShard();
  }
  if (records.empty()) {
    out.beginShard("mono#0");
    out.endShard();
  }
  out.setRecordFetcher(
      [&index](std::uint32_t doc) { return index.records()[doc]; });
  return out;
}

ShardedBannerIndex ShardedBannerIndex::fromRecords(
    std::vector<BannerRecord> records, std::size_t shardTargetDocs) {
  if (shardTargetDocs == 0) shardTargetDocs = 1;
  auto retained = std::make_shared<const std::vector<BannerRecord>>(
      std::move(records));
  ShardedBannerIndex out;
  const auto& source = *retained;
  for (std::size_t begin = 0; begin < source.size();
       begin += shardTargetDocs) {
    const std::size_t end = std::min(source.size(), begin + shardTargetDocs);
    out.beginShard("records#" + std::to_string(begin / shardTargetDocs));
    for (std::size_t i = begin; i < end; ++i) out.addRecord(source[i]);
    out.endShard();
  }
  if (source.empty()) {
    out.beginShard("records#0");
    out.endShard();
  }
  out.retained_ = retained;
  out.setRecordFetcher(
      [retained](std::uint32_t doc) { return (*retained)[doc]; });
  return out;
}

ShardedBannerIndex ShardedBannerIndex::fromParts(
    std::vector<std::uint32_t> ips, std::vector<std::uint16_t> ports,
    std::map<std::string, DeltaIdList> countryBuckets,
    std::vector<PostingShard> shards) {
  if (ips.size() != ports.size())
    throw std::invalid_argument("fromParts: ip/port table size mismatch");
  std::uint64_t running = 0;
  for (const auto& shard : shards) {
    if (shard.docBase() != running)
      throw std::invalid_argument("fromParts: shard doc ranges not contiguous");
    running += shard.docCount();
  }
  if (running != ips.size())
    throw std::invalid_argument("fromParts: shard doc count != table size");
  std::uint64_t bucketed = 0;
  for (const auto& [alpha2, bucket] : countryBuckets) bucketed += bucket.count();
  if (bucketed != ips.size())
    throw std::invalid_argument("fromParts: country buckets don't cover docs");

  ShardedBannerIndex out;
  out.ips_ = std::move(ips);
  out.ports_ = std::move(ports);
  out.countryBuckets_ = std::move(countryBuckets);
  out.shards_ = std::move(shards);
  return out;
}

BannerRecord ShardedBannerIndex::fetchRecord(std::uint32_t doc) const {
  if (!fetcher_)
    throw std::logic_error(
        "ShardedBannerIndex: record fetch required but no fetcher attached "
        "(separator/no-token keywords and passive identification need one)");
  return fetcher_(doc);
}

std::vector<std::uint32_t> ShardedBannerIndex::decodeCountryBucket(
    const std::string& upperAlpha2) const {
  std::vector<std::uint32_t> out;
  const auto bucket = countryBuckets_.find(upperAlpha2);
  if (bucket != countryBuckets_.end()) bucket->second.decodeInto(out);
  return out;
}

std::vector<std::uint32_t> ShardedBannerIndex::keywordCandidates(
    const std::string& loweredKeyword) const {
  std::vector<std::string_view> keywordTokens;
  tokenizeAlnum(loweredKeyword, keywordTokens);

  std::vector<std::uint32_t> candidates;
  if (keywordTokens.empty()) {
    // No alphanumeric core: the banners are not resident, so re-materialize
    // every document through the fetcher — the correctness path, not the
    // fast path (product keywords always have tokens).
    const auto docs = docCount();
    for (std::uint32_t doc = 0; doc < docs; ++doc) {
      if (fetchRecord(doc).searchableTextLower().find(loweredKeyword) !=
          std::string::npos)
        candidates.push_back(doc);
    }
    return candidates;
  }

  const std::string_view longest = *std::max_element(
      keywordTokens.begin(), keywordTokens.end(),
      [](std::string_view a, std::string_view b) { return a.size() < b.size(); });
  // Shard vocabularies are disjointly scanned; the union across shards is
  // exactly the monolithic vocabulary pre-filter.
  for (const auto& shard : shards_) shard.appendCandidates(longest, candidates);
  mergeSortedUnique(candidates);

  if (loweredKeyword == longest) return candidates;
  std::vector<std::uint32_t> verified;
  verified.reserve(candidates.size());
  for (const auto doc : candidates) {
    if (fetchRecord(doc).searchableTextLower().find(loweredKeyword) !=
        std::string::npos)
      verified.push_back(doc);
  }
  return verified;
}

std::vector<std::uint32_t> ShardedBannerIndex::search(
    const Query& query) const {
  std::vector<std::uint32_t> ids =
      keywordCandidates(util::toLower(query.keyword));
  if (query.countryAlpha2) {
    const auto bucket = decodeCountryBucket(util::toUpper(*query.countryAlpha2));
    ids = intersectSorted(ids, bucket);
  }
  return ids;
}

std::vector<std::uint32_t> ShardedBannerIndex::searchAll(
    const std::vector<Query>& queries) const {
  std::vector<std::string> keywords;
  std::unordered_map<std::string, std::size_t> keywordSlot;
  std::vector<std::size_t> querySlot(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::string lowered = util::toLower(queries[q].keyword);
    const auto [it, inserted] = keywordSlot.emplace(lowered, keywords.size());
    if (inserted) keywords.push_back(lowered);
    querySlot[q] = it->second;
  }

  std::vector<std::vector<std::uint32_t>> perKeyword(keywords.size());
  util::parallelFor(keywords.size(), [&](std::size_t k) {
    perKeyword[k] = keywordCandidates(keywords[k]);
  });

  // Decode each referenced country bucket once per searchAll, not once per
  // (keyword, country) combination.
  std::map<std::string, std::vector<std::uint32_t>> decoded;
  for (const auto& query : queries) {
    if (!query.countryAlpha2) continue;
    auto key = util::toUpper(*query.countryAlpha2);
    if (!decoded.contains(key))
      decoded.emplace(std::move(key), decodeCountryBucket(
                                          util::toUpper(*query.countryAlpha2)));
  }

  std::vector<std::uint32_t> out;
  std::set<std::uint64_t> seen;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::vector<std::uint32_t>* ids = &perKeyword[querySlot[q]];
    std::vector<std::uint32_t> restricted;
    if (queries[q].countryAlpha2) {
      restricted =
          intersectSorted(*ids, decoded.at(util::toUpper(*queries[q].countryAlpha2)));
      ids = &restricted;
    }
    for (const auto doc : *ids) {
      const auto s = surface(doc);
      const std::uint64_t key = (std::uint64_t{s.ip.value()} << 16) | s.port;
      if (seen.insert(key).second) out.push_back(doc);
    }
  }
  return out;
}

std::size_t ShardedBannerIndex::vocabularySize() const {
  std::size_t count = 0;
  forEachDistinctToken(
      shards_,
      [&count](std::string_view,
               std::span<const std::pair<std::uint32_t, std::uint32_t>>) {
        ++count;
      });
  return count;
}

std::size_t ShardedBannerIndex::memoryBytes() const {
  std::size_t total = ips_.capacity() * sizeof(std::uint32_t) +
                      ports_.capacity() * sizeof(std::uint16_t);
  for (const auto& shard : shards_) total += shard.memoryBytes();
  for (const auto& [alpha2, bucket] : countryBuckets_)
    total += alpha2.size() + bucket.byteSize() + sizeof(DeltaIdList);
  return total;
}

// --- crawlStream ------------------------------------------------------------

ShardedBannerIndex crawlStream(simnet::World& world,
                               const geo::GeoDatabase& geo,
                               StreamCrawlOptions options) {
  auto surfaces = world.externalSurfaces();
  const auto now = world.now();
  const auto* stream = world.hostStream();
  const auto eagerCount = static_cast<std::uint32_t>(surfaces.size());

  ShardedBannerIndex index;

  // Probe a batch of already-materialized work into per-slot records.
  const auto probeBatch = [&](std::size_t count, const auto& probeOne) {
    if (options.threadLimit == 1) {
      for (std::size_t i = 0; i < count; ++i) probeOne(i);
    } else {
      util::parallelForChunks(
          count,
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) probeOne(i);
          },
          options.threadLimit, 64);
    }
  };

  // Eagerly bound surfaces lead, in binding order, so doc ids line up with
  // BannerIndex::crawl over the fully materialized reference world.
  {
    std::vector<BannerRecord> batch(surfaces.size());
    probeBatch(surfaces.size(), [&](std::size_t i) {
      const auto& surface = surfaces[i];
      probeEndpointInto(*surface.endpoint, surface.ip, surface.port, geo, now,
                        options.bodySnippetLimit, batch[i]);
    });
    index.beginShard("eager/bindings");
    for (const auto& record : batch) index.addRecord(record);
    index.endShard();
  }

  // Stream shards: materialize, probe, index, discard — peak memory is one
  // shard's worth of banners, never the whole world.
  if (stream != nullptr) {
    const auto hostsPerShard =
        options.hostsPerShard == 0 ? std::uint64_t{8192} : options.hostsPerShard;
    std::vector<BannerRecord> batch;
    for (const auto& shard : stream->shards(hostsPerShard)) {
      const auto count = static_cast<std::size_t>(shard.end - shard.begin);
      batch.clear();
      batch.resize(count);  // fresh records: no stale lowered-text caches
      probeBatch(count, [&](std::size_t i) {
        const auto host = stream->host(shard.begin + i);
        const auto server = simnet::WorldStream::materializeEndpoint(host);
        probeEndpointInto(*server, host.ip, host.port, geo, now,
                          options.bodySnippetLimit, batch[i]);
      });
      index.beginShard(shard.label);
      for (const auto& record : batch) index.addRecord(record);
      index.endShard();
    }
  }

  // The fetcher re-probes on demand: eager docs through their bound
  // endpoints, streamed docs by re-materializing the pure host function —
  // byte-identical to what the crawl indexed.
  index.setRecordFetcher([&world, &geo, surfaces = std::move(surfaces), now,
                          limit = options.bodySnippetLimit,
                          eagerCount](std::uint32_t doc) {
    if (doc < eagerCount) {
      const auto& surface = surfaces[doc];
      return probeEndpoint(*surface.endpoint, surface.ip, surface.port, geo,
                           now, limit);
    }
    const auto* attached = world.hostStream();
    if (attached == nullptr)
      throw std::logic_error("crawlStream fetcher: host stream detached");
    const auto host = attached->host(doc - eagerCount);
    const auto server = simnet::WorldStream::materializeEndpoint(host);
    return probeEndpoint(*server, host.ip, host.port, geo, now, limit);
  });
  return index;
}

std::vector<BannerRecord> CensusScanner::sweep(
    simnet::World& world, const geo::GeoDatabase& geo,
    std::uint64_t maxAddressesPerPrefix) const {
  std::vector<BannerRecord> out;
  for (const auto* as : world.allAses()) {
    for (const auto& prefix : as->prefixes()) {
      const std::uint64_t count = std::min(prefix.size(), maxAddressesPerPrefix);
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto ip = prefix.addressAt(i);
        for (const auto port : ports_) {
          auto* endpoint = world.externalEndpointAt(ip, port);
          if (endpoint == nullptr) continue;
          out.push_back(
              probeEndpoint(*endpoint, ip, port, geo, world.now(), 2048));
        }
      }
    }
  }
  return out;
}

}  // namespace urlf::scan
