#include "scan/banner_index.h"

#include <set>

#include "http/html.h"
#include "util/strings.h"

namespace urlf::scan {

namespace {

/// Probe one reachable endpoint the way a banner crawler does: a plain GET /
/// addressed to the bare IP.
BannerRecord probeEndpoint(simnet::HttpEndpoint& endpoint, net::Ipv4Addr ip,
                           std::uint16_t port, const geo::GeoDatabase& geo,
                           util::SimTime now, std::size_t bodySnippetLimit) {
  net::Url url{"http", ip.toString(), port, "/", ""};
  const auto response = endpoint.handle(http::Request::get(url), now);

  BannerRecord record;
  record.ip = ip;
  record.port = port;
  record.statusCode = response.statusCode;
  record.headers = response.headers;
  record.body = response.body.substr(0, bodySnippetLimit);
  record.title = http::extractTitle(response.body);
  record.countryAlpha2 = geo.lookup(ip).value_or("");
  record.observedAt = now;
  return record;
}

}  // namespace

std::string BannerRecord::searchableText() const {
  std::string text = "HTTP/1.1 " + std::to_string(statusCode) + "\r\n";
  text += headers.serialize();
  text += title;
  text += "\r\n";
  text += body;
  return text;
}

void BannerIndex::crawl(simnet::World& world, const geo::GeoDatabase& geo,
                        std::size_t bodySnippetLimit) {
  records_.clear();
  for (const auto& surface : world.externalSurfaces()) {
    records_.push_back(probeEndpoint(*surface.endpoint, surface.ip,
                                     surface.port, geo, world.now(),
                                     bodySnippetLimit));
  }
}

BannerIndex BannerIndex::fromRecords(std::vector<BannerRecord> records) {
  BannerIndex index;
  index.records_ = std::move(records);
  return index;
}

void BannerIndex::addRecords(std::vector<BannerRecord> records) {
  records_.insert(records_.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
}

std::vector<const BannerRecord*> BannerIndex::search(const Query& query) const {
  std::vector<const BannerRecord*> out;
  for (const auto& record : records_) {
    if (query.countryAlpha2 &&
        !util::iequals(record.countryAlpha2, *query.countryAlpha2))
      continue;
    if (!util::icontains(record.searchableText(), query.keyword)) continue;
    out.push_back(&record);
  }
  return out;
}

std::vector<const BannerRecord*> BannerIndex::searchAll(
    const std::vector<Query>& queries) const {
  std::vector<const BannerRecord*> out;
  std::set<std::uint64_t> seen;
  for (const auto& query : queries) {
    for (const auto* record : search(query)) {
      const std::uint64_t key =
          (std::uint64_t{record->ip.value()} << 16) | record->port;
      if (seen.insert(key).second) out.push_back(record);
    }
  }
  return out;
}

std::vector<BannerRecord> CensusScanner::sweep(
    simnet::World& world, const geo::GeoDatabase& geo,
    std::uint64_t maxAddressesPerPrefix) const {
  std::vector<BannerRecord> out;
  for (const auto* as : world.allAses()) {
    for (const auto& prefix : as->prefixes()) {
      const std::uint64_t count = std::min(prefix.size(), maxAddressesPerPrefix);
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto ip = prefix.addressAt(i);
        for (const auto port : ports_) {
          auto* endpoint = world.externalEndpointAt(ip, port);
          if (endpoint == nullptr) continue;
          out.push_back(
              probeEndpoint(*endpoint, ip, port, geo, world.now(), 2048));
        }
      }
    }
  }
  return out;
}

}  // namespace urlf::scan
