#include "scan/postings.h"

#include <algorithm>
#include <cctype>
#include <queue>
#include <stdexcept>

namespace urlf::scan {

void appendVarint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

bool readVarint(std::span<const std::uint8_t> data, std::size_t& pos,
                std::uint64_t& value) {
  value = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (pos >= data.size()) return false;
    const std::uint8_t byte = data[pos++];
    value |= std::uint64_t{byte & 0x7F} << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // overlong
}

void DeltaIdList::append(std::uint32_t id) {
  if (count_ == 0) {
    appendVarint(bytes_, id);
  } else {
    if (id <= last_)
      throw std::invalid_argument("DeltaIdList::append: ids must ascend");
    appendVarint(bytes_, id - last_);
  }
  last_ = id;
  ++count_;
}

void DeltaIdList::decodeInto(std::vector<std::uint32_t>& out) const {
  std::size_t pos = 0;
  std::uint64_t value = 0;
  std::uint32_t id = 0;
  for (std::uint32_t i = 0; i < count_; ++i) {
    if (!readVarint(bytes_, pos, value))
      throw std::logic_error("DeltaIdList: corrupt encoding");
    id = i == 0 ? static_cast<std::uint32_t>(value)
                : id + static_cast<std::uint32_t>(value);
    out.push_back(id);
  }
}

DeltaIdList DeltaIdList::fromRaw(std::uint32_t count,
                                 std::vector<std::uint8_t> bytes) {
  DeltaIdList list;
  list.count_ = count;
  list.bytes_ = std::move(bytes);
  // Restore last_ so further appends keep ascending.
  std::vector<std::uint32_t> ids;
  ids.reserve(count);
  list.decodeInto(ids);
  list.last_ = ids.empty() ? 0 : ids.back();
  return list;
}

void tokenizeAlnum(std::string_view text, std::vector<std::string_view>& out) {
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isalnum(static_cast<unsigned char>(text[i])) == 0)
      ++i;
    const std::size_t start = i;
    while (i < text.size() &&
           std::isalnum(static_cast<unsigned char>(text[i])) != 0)
      ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
}

PostingShard::Builder::Builder(std::string label, std::uint32_t docBase)
    : label_(std::move(label)), docBase_(docBase) {}

void PostingShard::Builder::addDocument(std::string_view loweredText) {
  const std::uint32_t doc = docBase_ + docCount_;
  ++docCount_;

  // Documents arrive in ascending id order, so a repeated token inside one
  // document is exactly the case where its list already ends in `doc`. That
  // check dedups occurrences without sorting the token scratch — the sort
  // costs more than the extra map probes it would save, and the resulting
  // lists are identical either way (finish() sorts the vocabulary).
  tokenScratch_.clear();
  tokenizeAlnum(loweredText, tokenScratch_);
  for (const auto token : tokenScratch_) {
    const auto it = lists_.find(token);
    if (it != lists_.end()) {
      // Mapped lists are never empty (created by the append below), so a
      // list ending in `doc` means this token already occurred in this doc.
      if (it->second.lastId() != doc) it->second.append(doc);
    } else {
      lists_.emplace(std::string(token), DeltaIdList{}).first->second.append(
          doc);
    }
  }
}

PostingShard PostingShard::Builder::finish() && {
  PostingShard shard;
  shard.label_ = std::move(label_);
  shard.docBase_ = docBase_;
  shard.docCount_ = docCount_;

  // Sort the vocabulary once at seal time — the interned arena and the
  // k-way merge both rely on ascending byte order.
  std::vector<const std::pair<const std::string, DeltaIdList>*> entries;
  entries.reserve(lists_.size());
  for (const auto& entry : lists_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  shard.tokenOffsets_.reserve(entries.size() + 1);
  shard.postingOffsets_.reserve(entries.size() + 1);
  shard.tokenOffsets_.push_back(0);
  shard.postingOffsets_.push_back(0);
  for (const auto* entry : entries) {
    shard.arena_ += entry->first;
    shard.postings_.insert(shard.postings_.end(), entry->second.bytes().begin(),
                           entry->second.bytes().end());
    shard.tokenOffsets_.push_back(
        static_cast<std::uint32_t>(shard.arena_.size()));
    shard.postingOffsets_.push_back(
        static_cast<std::uint32_t>(shard.postings_.size()));
  }
  lists_.clear();
  return shard;
}

std::string_view PostingShard::token(std::size_t k) const {
  return std::string_view(arena_).substr(tokenOffsets_[k],
                                         tokenOffsets_[k + 1] - tokenOffsets_[k]);
}

void PostingShard::appendTokenPostings(std::size_t k,
                                       std::vector<std::uint32_t>& out) const {
  std::size_t pos = postingOffsets_[k];
  const std::size_t end = postingOffsets_[k + 1];
  std::uint64_t value = 0;
  std::uint32_t id = 0;
  bool first = true;
  while (pos < end) {
    if (!readVarint(postings_, pos, value))
      throw std::logic_error("PostingShard: corrupt posting bytes");
    id = first ? static_cast<std::uint32_t>(value)
               : id + static_cast<std::uint32_t>(value);
    first = false;
    out.push_back(id);
  }
}

void PostingShard::appendCandidates(std::string_view needle,
                                    std::vector<std::uint32_t>& out) const {
  const std::string_view arena(arena_);
  for (std::size_t k = 0; k < tokenCount(); ++k) {
    const auto tok = arena.substr(tokenOffsets_[k],
                                  tokenOffsets_[k + 1] - tokenOffsets_[k]);
    if (tok.find(needle) == std::string_view::npos) continue;
    appendTokenPostings(k, out);
  }
}

std::size_t PostingShard::memoryBytes() const {
  return arena_.capacity() + postings_.capacity() +
         (tokenOffsets_.capacity() + postingOffsets_.capacity()) *
             sizeof(std::uint32_t) +
         label_.capacity();
}

namespace {

void putVarintStr(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(value) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(value)));
}

bool getVarintStr(std::string_view data, std::size_t& pos,
                  std::uint64_t& value) {
  value = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (pos >= data.size()) return false;
    const auto byte = static_cast<std::uint8_t>(data[pos++]);
    value |= std::uint64_t{byte & 0x7F} << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;
}

/// Read ascending offsets stored as varint deltas; the final offset must
/// equal `total`.
bool getOffsets(std::string_view data, std::size_t& pos, std::size_t count,
                std::uint64_t total, std::vector<std::uint32_t>& out) {
  out.clear();
  out.reserve(count + 1);
  out.push_back(0);
  std::uint64_t offset = 0;
  for (std::size_t k = 0; k < count; ++k) {
    std::uint64_t delta = 0;
    if (!getVarintStr(data, pos, delta)) return false;
    offset += delta;
    if (offset > total) return false;
    out.push_back(static_cast<std::uint32_t>(offset));
  }
  return offset == total;
}

}  // namespace

void PostingShard::serializeTo(std::string& out) const {
  putVarintStr(out, label_.size());
  out += label_;
  putVarintStr(out, docBase_);
  putVarintStr(out, docCount_);
  putVarintStr(out, tokenCount());
  putVarintStr(out, arena_.size());
  out += arena_;
  putVarintStr(out, postings_.size());
  out.append(reinterpret_cast<const char*>(postings_.data()),
             postings_.size());
  for (std::size_t k = 0; k < tokenCount(); ++k)
    putVarintStr(out, tokenOffsets_[k + 1] - tokenOffsets_[k]);
  for (std::size_t k = 0; k < tokenCount(); ++k)
    putVarintStr(out, postingOffsets_[k + 1] - postingOffsets_[k]);
}

bool PostingShard::deserializeFrom(std::string_view data, std::size_t& pos,
                                   PostingShard& out) {
  std::uint64_t labelLen = 0, docBase = 0, docCount = 0, tokens = 0;
  if (!getVarintStr(data, pos, labelLen)) return false;
  if (pos + labelLen > data.size()) return false;
  out.label_ = std::string(data.substr(pos, labelLen));
  pos += labelLen;
  if (!getVarintStr(data, pos, docBase) ||
      !getVarintStr(data, pos, docCount) || !getVarintStr(data, pos, tokens))
    return false;
  out.docBase_ = static_cast<std::uint32_t>(docBase);
  out.docCount_ = static_cast<std::uint32_t>(docCount);

  std::uint64_t arenaLen = 0;
  if (!getVarintStr(data, pos, arenaLen)) return false;
  if (pos + arenaLen > data.size()) return false;
  out.arena_ = std::string(data.substr(pos, arenaLen));
  pos += arenaLen;

  std::uint64_t postingLen = 0;
  if (!getVarintStr(data, pos, postingLen)) return false;
  if (pos + postingLen > data.size()) return false;
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data()) + pos;
  out.postings_.assign(bytes, bytes + postingLen);
  pos += postingLen;

  if (!getOffsets(data, pos, tokens, arenaLen, out.tokenOffsets_))
    return false;
  if (!getOffsets(data, pos, tokens, postingLen, out.postingOffsets_))
    return false;
  // Vocabulary must be strictly ascending (sorted, unique).
  for (std::size_t k = 1; k < out.tokenCount(); ++k)
    if (out.token(k - 1) >= out.token(k)) return false;
  return true;
}

void forEachDistinctToken(
    std::span<const PostingShard> shards,
    const std::function<void(
        std::string_view token,
        std::span<const std::pair<std::uint32_t, std::uint32_t>> holders)>&
        visit) {
  struct Cursor {
    std::string_view token;
    std::uint32_t shard;
    std::uint32_t slot;
  };
  const auto later = [](const Cursor& a, const Cursor& b) {
    // Min-heap on (token, shard): ties group consecutively, shard order
    // keeps holder lists deterministic.
    return a.token > b.token || (a.token == b.token && a.shard > b.shard);
  };

  std::vector<Cursor> heap;
  heap.reserve(shards.size());
  for (std::uint32_t s = 0; s < shards.size(); ++s)
    if (shards[s].tokenCount() > 0)
      heap.push_back({shards[s].token(0), s, 0});
  std::make_heap(heap.begin(), heap.end(), later);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> holders;
  while (!heap.empty()) {
    const std::string_view current = heap.front().token;
    holders.clear();
    while (!heap.empty() && heap.front().token == current) {
      std::pop_heap(heap.begin(), heap.end(), later);
      Cursor cursor = heap.back();
      heap.pop_back();
      holders.emplace_back(cursor.shard, cursor.slot);
      const auto& shard = shards[cursor.shard];
      if (cursor.slot + 1 < shard.tokenCount()) {
        ++cursor.slot;
        cursor.token = shard.token(cursor.slot);
        heap.push_back(cursor);
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
    visit(current, holders);
  }
}

}  // namespace urlf::scan
