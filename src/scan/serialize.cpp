#include "scan/serialize.h"

namespace urlf::scan {

using report::Json;

Json toJson(const BannerRecord& record) {
  Json out = Json::object();
  out["ip"] = Json::string(record.ip.toString());
  out["port"] = Json::number(std::int64_t{record.port});
  out["status"] = Json::number(std::int64_t{record.statusCode});
  Json headers = Json::array();
  for (const auto& field : record.headers.fields()) {
    Json header = Json::object();
    header["name"] = Json::string(field.name);
    header["value"] = Json::string(field.value);
    headers.push(std::move(header));
  }
  out["headers"] = std::move(headers);
  out["body"] = Json::string(record.body);
  out["title"] = Json::string(record.title);
  out["country"] = Json::string(record.countryAlpha2);
  out["observed_at_hours"] = Json::number(record.observedAt.hours());
  return out;
}

std::string exportRecords(const std::vector<BannerRecord>& records,
                          int indent) {
  Json array = Json::array();
  for (const auto& record : records) array.push(toJson(record));
  return array.dump(indent);
}

std::optional<BannerRecord> recordFromJson(const Json& json) {
  const auto* object = json.asObject();
  if (object == nullptr) return std::nullopt;

  auto getString = [&](const char* key) -> std::optional<std::string> {
    const auto* value = json.find(key);
    if (value == nullptr) return std::nullopt;
    const auto* s = value->asString();
    if (s == nullptr) return std::nullopt;
    return *s;
  };
  auto getNumber = [&](const char* key) -> std::optional<double> {
    const auto* value = json.find(key);
    if (value == nullptr) return std::nullopt;
    const auto* n = value->asNumber();
    if (n == nullptr) return std::nullopt;
    return *n;
  };

  const auto ipText = getString("ip");
  const auto port = getNumber("port");
  const auto status = getNumber("status");
  if (!ipText || !port || !status) return std::nullopt;
  const auto ip = net::Ipv4Addr::parse(*ipText);
  if (!ip || *port < 0 || *port > 65535) return std::nullopt;

  BannerRecord record;
  record.ip = *ip;
  record.port = static_cast<std::uint16_t>(*port);
  record.statusCode = static_cast<int>(*status);
  record.body = getString("body").value_or("");
  record.title = getString("title").value_or("");
  record.countryAlpha2 = getString("country").value_or("");
  if (const auto hours = getNumber("observed_at_hours"))
    record.observedAt = util::SimTime{static_cast<std::int64_t>(*hours)};

  if (const auto* headers = json.find("headers")) {
    const auto* array = headers->asArray();
    if (array == nullptr) return std::nullopt;
    for (const auto& item : *array) {
      const auto* name = item.find("name");
      const auto* value = item.find("value");
      if (name == nullptr || value == nullptr || !name->asString() ||
          !value->asString())
        return std::nullopt;
      record.headers.add(*name->asString(), *value->asString());
    }
  }
  return record;
}

std::optional<std::vector<BannerRecord>> importRecords(std::string_view text) {
  const auto json = Json::parse(text);
  if (!json) return std::nullopt;
  const auto* array = json->asArray();
  if (array == nullptr) return std::nullopt;

  std::vector<BannerRecord> out;
  out.reserve(array->size());
  for (const auto& item : *array) {
    auto record = recordFromJson(item);
    if (!record) return std::nullopt;
    out.push_back(std::move(*record));
  }
  return out;
}

}  // namespace urlf::scan
