#include "scan/serialize.h"

#include "util/hash.h"

namespace urlf::scan {

using report::Json;

Json toJson(const BannerRecord& record) {
  Json out = Json::object();
  out["ip"] = Json::string(record.ip.toString());
  out["port"] = Json::number(std::int64_t{record.port});
  out["status"] = Json::number(std::int64_t{record.statusCode});
  Json headers = Json::array();
  for (const auto& field : record.headers.fields()) {
    Json header = Json::object();
    header["name"] = Json::string(field.name);
    header["value"] = Json::string(field.value);
    headers.push(std::move(header));
  }
  out["headers"] = std::move(headers);
  out["body"] = Json::string(record.body);
  out["title"] = Json::string(record.title);
  out["country"] = Json::string(record.countryAlpha2);
  out["observed_at_hours"] = Json::number(record.observedAt.hours());
  return out;
}

std::string exportRecords(const std::vector<BannerRecord>& records,
                          int indent) {
  Json array = Json::array();
  for (const auto& record : records) array.push(toJson(record));
  return array.dump(indent);
}

std::optional<BannerRecord> recordFromJson(const Json& json) {
  const auto* object = json.asObject();
  if (object == nullptr) return std::nullopt;

  auto getString = [&](const char* key) -> std::optional<std::string> {
    const auto* value = json.find(key);
    if (value == nullptr) return std::nullopt;
    const auto* s = value->asString();
    if (s == nullptr) return std::nullopt;
    return *s;
  };
  auto getNumber = [&](const char* key) -> std::optional<double> {
    const auto* value = json.find(key);
    if (value == nullptr) return std::nullopt;
    const auto* n = value->asNumber();
    if (n == nullptr) return std::nullopt;
    return *n;
  };

  const auto ipText = getString("ip");
  const auto port = getNumber("port");
  const auto status = getNumber("status");
  if (!ipText || !port || !status) return std::nullopt;
  const auto ip = net::Ipv4Addr::parse(*ipText);
  if (!ip || *port < 0 || *port > 65535) return std::nullopt;

  BannerRecord record;
  record.ip = *ip;
  record.port = static_cast<std::uint16_t>(*port);
  record.statusCode = static_cast<int>(*status);
  record.body = getString("body").value_or("");
  record.title = getString("title").value_or("");
  record.countryAlpha2 = getString("country").value_or("");
  if (const auto hours = getNumber("observed_at_hours"))
    record.observedAt = util::SimTime{static_cast<std::int64_t>(*hours)};

  if (const auto* headers = json.find("headers")) {
    const auto* array = headers->asArray();
    if (array == nullptr) return std::nullopt;
    for (const auto& item : *array) {
      const auto* name = item.find("name");
      const auto* value = item.find("value");
      if (name == nullptr || value == nullptr || !name->asString() ||
          !value->asString())
        return std::nullopt;
      record.headers.add(*name->asString(), *value->asString());
    }
  }
  return record;
}

std::optional<std::vector<BannerRecord>> importRecords(std::string_view text) {
  const auto json = Json::parse(text);
  if (!json) return std::nullopt;
  const auto* array = json->asArray();
  if (array == nullptr) return std::nullopt;

  std::vector<BannerRecord> out;
  out.reserve(array->size());
  for (const auto& item : *array) {
    auto record = recordFromJson(item);
    if (!record) return std::nullopt;
    out.push_back(std::move(*record));
  }
  return out;
}

namespace {

constexpr std::string_view kShardedIndexMagic = "URLFSIDX1\n";

void putVarint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>(0x80 | (value & 0x7F)));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

bool getVarint(std::string_view data, std::size_t& pos, std::uint64_t& value) {
  value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (pos >= data.size()) return false;
    const auto byte = static_cast<std::uint8_t>(data[pos++]);
    value |= std::uint64_t{byte & 0x7Fu} << shift;
    if ((byte & 0x80u) == 0) return true;
    shift += 7;
  }
  return false;
}

void putLe(std::string& out, std::uint64_t value, int bytes) {
  for (int i = 0; i < bytes; ++i)
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

bool getLe(std::string_view data, std::size_t& pos, std::uint64_t& value,
           int bytes) {
  if (pos + static_cast<std::size_t>(bytes) > data.size()) return false;
  value = 0;
  for (int i = 0; i < bytes; ++i)
    value |= std::uint64_t{static_cast<std::uint8_t>(data[pos + i])} << (8 * i);
  pos += static_cast<std::size_t>(bytes);
  return true;
}

}  // namespace

std::string exportShardedIndex(const ShardedBannerIndex& index) {
  std::string out{kShardedIndexMagic};

  const auto docs = index.docCount();
  putVarint(out, docs);
  for (std::uint32_t doc = 0; doc < docs; ++doc)
    putLe(out, index.ips()[doc], 4);
  for (std::uint32_t doc = 0; doc < docs; ++doc)
    putLe(out, index.ports()[doc], 2);

  const auto& buckets = index.countryBuckets();
  putVarint(out, buckets.size());
  for (const auto& [alpha2, bucket] : buckets) {
    putVarint(out, alpha2.size());
    out += alpha2;
    putVarint(out, bucket.count());
    putVarint(out, bucket.byteSize());
    out.append(reinterpret_cast<const char*>(bucket.bytes().data()),
               bucket.byteSize());
  }

  putVarint(out, index.shardCount());
  for (const auto& shard : index.shards()) shard.serializeTo(out);

  // Integrity trailer over everything before it.
  putLe(out, util::fnv1a64(out), 8);
  return out;
}

std::optional<ShardedBannerIndex> importShardedIndex(std::string_view data) {
  if (data.size() < kShardedIndexMagic.size() + 8) return std::nullopt;
  if (data.substr(0, kShardedIndexMagic.size()) != kShardedIndexMagic)
    return std::nullopt;

  const std::size_t payloadEnd = data.size() - 8;
  std::size_t trailerPos = payloadEnd;
  std::uint64_t checksum = 0;
  if (!getLe(data, trailerPos, checksum, 8)) return std::nullopt;
  if (util::fnv1a64(data.substr(0, payloadEnd)) != checksum)
    return std::nullopt;
  const std::string_view payload = data.substr(0, payloadEnd);

  std::size_t pos = kShardedIndexMagic.size();
  std::uint64_t docs = 0;
  if (!getVarint(payload, pos, docs)) return std::nullopt;
  if (docs > payload.size()) return std::nullopt;  // cheap sanity bound

  std::vector<std::uint32_t> ips;
  ips.reserve(docs);
  for (std::uint64_t doc = 0; doc < docs; ++doc) {
    std::uint64_t value = 0;
    if (!getLe(payload, pos, value, 4)) return std::nullopt;
    ips.push_back(static_cast<std::uint32_t>(value));
  }
  std::vector<std::uint16_t> ports;
  ports.reserve(docs);
  for (std::uint64_t doc = 0; doc < docs; ++doc) {
    std::uint64_t value = 0;
    if (!getLe(payload, pos, value, 2)) return std::nullopt;
    ports.push_back(static_cast<std::uint16_t>(value));
  }

  std::uint64_t bucketCount = 0;
  if (!getVarint(payload, pos, bucketCount)) return std::nullopt;
  std::map<std::string, DeltaIdList> buckets;
  for (std::uint64_t b = 0; b < bucketCount; ++b) {
    std::uint64_t keyLen = 0;
    if (!getVarint(payload, pos, keyLen)) return std::nullopt;
    if (pos + keyLen > payload.size()) return std::nullopt;
    std::string key{payload.substr(pos, keyLen)};
    pos += keyLen;
    std::uint64_t count = 0;
    std::uint64_t byteLen = 0;
    if (!getVarint(payload, pos, count)) return std::nullopt;
    if (!getVarint(payload, pos, byteLen)) return std::nullopt;
    if (pos + byteLen > payload.size()) return std::nullopt;
    std::vector<std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t*>(payload.data() + pos),
        reinterpret_cast<const std::uint8_t*>(payload.data() + pos + byteLen));
    pos += byteLen;
    buckets.emplace(std::move(key),
                    DeltaIdList::fromRaw(static_cast<std::uint32_t>(count),
                                         std::move(bytes)));
  }

  std::uint64_t shardCount = 0;
  if (!getVarint(payload, pos, shardCount)) return std::nullopt;
  std::vector<PostingShard> shards;
  shards.reserve(shardCount);
  for (std::uint64_t s = 0; s < shardCount; ++s) {
    PostingShard shard;
    if (!PostingShard::deserializeFrom(payload, pos, shard))
      return std::nullopt;
    shards.push_back(std::move(shard));
  }
  if (pos != payload.size()) return std::nullopt;

  try {
    return ShardedBannerIndex::fromParts(std::move(ips), std::move(ports),
                                         std::move(buckets),
                                         std::move(shards));
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

}  // namespace urlf::scan
