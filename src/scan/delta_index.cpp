#include "scan/delta_index.h"

#include <stdexcept>
#include <utility>

#include "simnet/world_stream.h"
#include "util/hash.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace urlf::scan {

IncrementalCrawler::IncrementalCrawler(simnet::World& world,
                                       const geo::GeoDatabase& geo,
                                       IncrementalCrawlOptions options)
    : world_(&world), geo_(&geo), options_(options) {
  if (options_.hostsPerShard == 0) options_.hostsPerShard = 8192;
}

std::uint64_t IncrementalCrawler::layoutSignature() const {
  std::uint64_t sig = util::kFnvOffsetBasis;
  const auto fold = [&sig](std::uint64_t value) {
    char bytes[8];
    for (int i = 0; i < 8; ++i)
      bytes[i] = static_cast<char>((value >> (i * 8)) & 0xFF);
    sig = util::fnv1a64(std::string_view(bytes, 8), sig);
  };
  for (const auto& surface : world_->externalSurfaces()) {
    fold(surface.ip.value());
    fold(surface.port);
  }
  fold(0xEA6E55ECU);  // eager/stream separator
  if (const auto* stream = world_->hostStream()) {
    for (const auto& shard : stream->shards(options_.hostsPerShard)) {
      sig = util::fnv1a64(shard.label, sig);
      fold(shard.begin);
      fold(shard.end);
    }
  }
  return sig;
}

void IncrementalCrawler::rebuildLayout() {
  cells_.clear();
  const auto eagerCount =
      static_cast<std::uint32_t>(world_->externalSurfaces().size());
  Cell eager;
  eager.label = "eager/bindings";
  eager.docBase = 0;
  cells_.push_back(std::move(eager));
  if (const auto* stream = world_->hostStream()) {
    for (const auto& shard : stream->shards(options_.hostsPerShard)) {
      Cell cell;
      cell.label = shard.label;
      cell.begin = shard.begin;
      cell.end = shard.end;
      cell.docBase = eagerCount + static_cast<std::uint32_t>(shard.begin);
      cells_.push_back(std::move(cell));
    }
  }
}

namespace {

/// Probe a batch of slots, mirroring crawlStream's fan-out (chunk 64,
/// serial when threadLimit == 1).
template <typename ProbeOne>
void probeBatch(std::size_t count, std::size_t threadLimit,
                const ProbeOne& probeOne) {
  if (threadLimit == 1) {
    for (std::size_t i = 0; i < count; ++i) probeOne(i);
    return;
  }
  util::parallelForChunks(
      count,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) probeOne(i);
      },
      threadLimit, 64);
}

}  // namespace

void IncrementalCrawler::rebuildEagerCell(Cell& cell) const {
  const auto surfaces = world_->externalSurfaces();
  const auto now = world_->now();
  std::vector<BannerRecord> batch(surfaces.size());
  probeBatch(surfaces.size(), options_.threadLimit, [&](std::size_t i) {
    const auto& surface = surfaces[i];
    probeEndpointInto(*surface.endpoint, surface.ip, surface.port, *geo_, now,
                      options_.bodySnippetLimit, batch[i]);
  });

  cell.ips.clear();
  cell.ports.clear();
  cell.countryDocs.clear();
  cell.ips.reserve(batch.size());
  cell.ports.reserve(batch.size());
  PostingShard::Builder builder(cell.label, cell.docBase);
  std::string text;
  std::string lowered;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& record = batch[i];
    text.clear();
    record.appendSearchableText(text);
    util::toLowerInto(text, lowered);
    builder.addDocument(lowered);
    cell.ips.push_back(record.ip.value());
    cell.ports.push_back(record.port);
    cell.countryDocs[util::toUpper(record.countryAlpha2)].push_back(
        cell.docBase + static_cast<std::uint32_t>(i));
  }
  cell.shard = std::move(builder).finish();
}

void IncrementalCrawler::rebuildStreamCell(Cell& cell) const {
  const auto* stream = world_->hostStream();
  if (stream == nullptr)
    throw std::logic_error("IncrementalCrawler: host stream detached");
  const auto now = world_->now();
  const auto count = static_cast<std::size_t>(cell.end - cell.begin);
  std::vector<BannerRecord> batch(count);
  probeBatch(count, options_.threadLimit, [&](std::size_t i) {
    const auto host = stream->host(cell.begin + i);
    const auto server = simnet::WorldStream::materializeEndpoint(host);
    probeEndpointInto(*server, host.ip, host.port, *geo_, now,
                      options_.bodySnippetLimit, batch[i]);
  });

  cell.ips.clear();
  cell.ports.clear();
  cell.countryDocs.clear();
  cell.ips.reserve(count);
  cell.ports.reserve(count);
  PostingShard::Builder builder(cell.label, cell.docBase);
  std::string text;
  std::string lowered;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& record = batch[i];
    text.clear();
    record.appendSearchableText(text);
    util::toLowerInto(text, lowered);
    builder.addDocument(lowered);
    cell.ips.push_back(record.ip.value());
    cell.ports.push_back(record.port);
    cell.countryDocs[util::toUpper(record.countryAlpha2)].push_back(
        cell.docBase + static_cast<std::uint32_t>(i));
  }
  cell.shard = std::move(builder).finish();
}

void IncrementalCrawler::refresh(const DirtyHostFn& dirtyHost) {
  const auto signature = layoutSignature();
  structural_ = !built_ || signature != signature_;
  signature_ = signature;

  if (structural_) rebuildLayout();

  std::vector<std::size_t> toRebuild;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    if (structural_ || c == 0) {
      // Cell 0 is the eager cell: bound surfaces answer live policy/binding
      // state the change feed cannot see, so it rebuilds every refresh. A
      // layout change rebuilds everything — stale doc bases are never kept.
      toRebuild.push_back(c);
      continue;
    }
    const auto& cell = cells_[c];
    bool dirty = false;
    if (dirtyHost) {
      for (std::uint64_t id = cell.begin; id < cell.end && !dirty; ++id)
        dirty = dirtyHost(id);
    }
    if (dirty) toRebuild.push_back(c);
  }

  for (const auto c : toRebuild) {
    if (c == 0) {
      rebuildEagerCell(cells_[c]);
    } else {
      rebuildStreamCell(cells_[c]);
    }
  }

  cellsRebuilt_ = toRebuild.size();
  built_ = true;
}

ShardedBannerIndex IncrementalCrawler::assemble() const {
  std::vector<std::uint32_t> ips;
  std::vector<std::uint16_t> ports;
  std::map<std::string, DeltaIdList> countryBuckets;
  std::vector<PostingShard> shards;
  shards.reserve(cells_.size());

  std::size_t docs = 0;
  for (const auto& cell : cells_) docs += cell.ips.size();
  ips.reserve(docs);
  ports.reserve(docs);

  for (const auto& cell : cells_) {
    ips.insert(ips.end(), cell.ips.begin(), cell.ips.end());
    ports.insert(ports.end(), cell.ports.begin(), cell.ports.end());
    // Cells are visited in ascending doc order, and each cell's per-country
    // lists ascend, so appends stay strictly ascending per bucket.
    for (const auto& [alpha2, cellDocs] : cell.countryDocs) {
      auto& bucket = countryBuckets[alpha2];
      for (const auto doc : cellDocs) bucket.append(doc);
    }
    shards.push_back(cell.shard);
  }

  auto index = ShardedBannerIndex::fromParts(
      std::move(ips), std::move(ports), std::move(countryBuckets),
      std::move(shards));

  // The fetcher mirrors crawlStream's: eager docs re-probe their bound
  // endpoints, streamed docs re-materialize the pure host function.
  auto surfaces = world_->externalSurfaces();
  const auto eagerCount = static_cast<std::uint32_t>(surfaces.size());
  index.setRecordFetcher([world = world_, geo = geo_,
                          surfaces = std::move(surfaces),
                          now = world_->now(),
                          limit = options_.bodySnippetLimit,
                          eagerCount](std::uint32_t doc) {
    if (doc < eagerCount) {
      const auto& surface = surfaces[doc];
      return probeEndpoint(*surface.endpoint, surface.ip, surface.port, *geo,
                           now, limit);
    }
    const auto* attached = world->hostStream();
    if (attached == nullptr)
      throw std::logic_error("IncrementalCrawler fetcher: stream detached");
    const auto host = attached->host(doc - eagerCount);
    const auto server = simnet::WorldStream::materializeEndpoint(host);
    return probeEndpoint(*server, host.ip, host.port, *geo, now, limit);
  });
  return index;
}

}  // namespace urlf::scan
