#ifndef URLF_SCAN_DELTA_INDEX_H
#define URLF_SCAN_DELTA_INDEX_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "scan/banner_index.h"

namespace urlf::scan {

/// Options for IncrementalCrawler (mirrors StreamCrawlOptions).
struct IncrementalCrawlOptions {
  std::size_t bodySnippetLimit = 2048;
  std::size_t threadLimit = 0;         ///< 1 forces the serial path
  std::uint64_t hostsPerShard = 8192;  ///< stream cell granularity
};

/// Delta-driven re-crawl: keeps one posting cell per crawlStream shard
/// (the eager-bindings cell plus one cell per stream shard) and rebuilds
/// only the cells a change feed marks dirty, then reassembles a
/// ShardedBannerIndex from the cell parts.
///
/// Equivalence contract (enforced by tests/monitor_incremental_property_test
/// and the monitor bench): after refresh(dirty) the assembled index is
/// semantically identical to a fresh crawlStream of the same world — same
/// doc-id layout (cells replicate crawlStream's shard order exactly), same
/// postings per cell, same country buckets, same fetcher behaviour. That
/// holds because
///   * the cell layout is pinned by a structural signature (the eager
///     surface list and the stream shard table); any layout change — a new
///     binding, an unbind, an attached/detached stream — forces a full
///     rebuild that tick, so doc ids baked into clean cells can never be
///     stale, and
///   * a clean cell's hosts are content-pure between rebuilds (the
///     WorldStream contract plus the churn feed's exactness), so re-probing
///     them would reproduce byte-identical records.
///
/// Dirty cells rebuild in parallel (cells are independent; output is
/// byte-identical at any thread count). Quiet ticks rebuild only the eager
/// cell — bound surfaces answer live policy state, which the feed cannot
/// see — so per-tick cost is O(bound surfaces + dirty hosts), not O(world).
class IncrementalCrawler {
 public:
  /// The change feed: true when the stream host's content may have changed
  /// since the previous refresh.
  using DirtyHostFn = std::function<bool(std::uint64_t)>;

  /// `world` and `geo` are captured by reference and must outlive the
  /// crawler and every index it assembles.
  IncrementalCrawler(simnet::World& world, const geo::GeoDatabase& geo,
                     IncrementalCrawlOptions options = {});

  /// Bring the cells up to date with the world: rebuild the eager cell,
  /// every cell containing a dirty host, and — on a structural change —
  /// everything. First call always builds everything.
  void refresh(const DirtyHostFn& dirtyHost);

  /// Assemble the current cells into a queryable index. The fetcher
  /// re-probes on demand, exactly like crawlStream's.
  [[nodiscard]] ShardedBannerIndex assemble() const;

  /// Diagnostics for the last refresh.
  [[nodiscard]] std::size_t cellsRebuilt() const { return cellsRebuilt_; }
  [[nodiscard]] std::size_t cellCount() const { return cells_.size(); }
  [[nodiscard]] bool lastRefreshStructural() const { return structural_; }

 private:
  struct Cell {
    std::string label;
    /// Stream host-id range [begin, end); 0/0 for the eager cell.
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::uint32_t docBase = 0;
    PostingShard shard;
    std::vector<std::uint32_t> ips;
    std::vector<std::uint16_t> ports;
    /// UPPERCASED alpha2 -> global doc ids (ascending within the cell).
    std::map<std::string, std::vector<std::uint32_t>> countryDocs;
  };

  [[nodiscard]] std::uint64_t layoutSignature() const;
  void rebuildLayout();
  void rebuildEagerCell(Cell& cell) const;
  void rebuildStreamCell(Cell& cell) const;

  simnet::World* world_;
  const geo::GeoDatabase* geo_;
  IncrementalCrawlOptions options_;
  std::vector<Cell> cells_;
  std::uint64_t signature_ = 0;
  bool built_ = false;
  std::size_t cellsRebuilt_ = 0;
  bool structural_ = false;
};

}  // namespace urlf::scan

#endif  // URLF_SCAN_DELTA_INDEX_H
