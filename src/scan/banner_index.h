#ifndef URLF_SCAN_BANNER_INDEX_H
#define URLF_SCAN_BANNER_INDEX_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/geodb.h"
#include "http/header_map.h"
#include "net/ipv4.h"
#include "simnet/world.h"
#include "util/clock.h"

namespace urlf::scan {

/// One indexed banner: what a Shodan-style crawler recorded when it probed
/// an (ip, port) — status line, headers, a body snippet, and location
/// metadata from the crawler's geolocation database.
struct BannerRecord {
  net::Ipv4Addr ip;
  std::uint16_t port = 80;
  int statusCode = 0;
  http::HeaderMap headers;
  std::string body;           ///< truncated body snippet
  std::string title;          ///< extracted HTML title
  std::string countryAlpha2;  ///< crawler-side geolocation (may be wrong)
  util::SimTime observedAt;

  /// The searchable text: status line + raw headers + title + body.
  [[nodiscard]] std::string searchableText() const;

  /// Lowercased searchable text, built once and cached so queries never
  /// re-materialize the banner. BannerIndex primes every record at insert
  /// time; prime before sharing a record across threads (the lazy fill is
  /// not synchronized). Treat records as immutable once primed.
  [[nodiscard]] const std::string& searchableTextLower() const;

  /// Build the lowered-text cache now (idempotent).
  void primeSearchText() const { (void)searchableTextLower(); }

 private:
  mutable std::string searchLower_;
  mutable bool searchLowerReady_ = false;
};

/// A Shodan-style query: a keyword plus an optional country facet. The
/// paper's method searches each product keyword combined with every
/// two-letter ccTLD / country to maximize coverage (§3.1).
struct Query {
  std::string keyword;
  std::optional<std::string> countryAlpha2;
};

/// The banner search engine (the Shodan stand-in [27]).
///
/// `crawl` probes every externally visible surface in the world — the same
/// epistemic position as a real Internet-wide scanner: it can only see what
/// is publicly reachable. `search` does case-insensitive keyword matching
/// over the stored banner text.
///
/// Two execution modes answer every query with identical results:
///  - `kIndexed` (default): per-country buckets plus a token posting-list
///    index (lowercased token -> sorted record ids). A keyword that is a
///    single alphanumeric token resolves through the posting lists (the
///    vocabulary is scanned for tokens containing the keyword, so matches
///    inside longer tokens are kept); keywords with separators use their
///    longest token as a pre-filter and are verified against the cached
///    lowered text; keywords with no tokens at all fall back to a substring
///    scan of the (bucketed) cached text.
///  - `kReference`: the original linear scan, retained for equivalence
///    testing and benchmarking (it still reuses the cached lowered text
///    instead of rebuilding each banner per probe).
class BannerIndex {
 public:
  enum class SearchMode { kIndexed, kReference };

  BannerIndex() = default;

  /// Probe all externally visible surfaces; `geo` supplies the crawler's
  /// country metadata. Body snippets are capped at `bodySnippetLimit`.
  /// Surfaces are probed concurrently on the shared thread pool; results
  /// land in binding order, so the index is byte-identical to a serial
  /// crawl. External-surface handlers must therefore be thread-safe for the
  /// crawler's anonymous `GET /` (all in-tree handlers are pure functions
  /// of the request). `threadLimit == 1` forces the serial crawl.
  void crawl(simnet::World& world, const geo::GeoDatabase& geo,
             std::size_t bodySnippetLimit = 2048, std::size_t threadLimit = 0);

  /// Build an index from pre-collected records (e.g. a CensusScanner sweep,
  /// the larger-scale data source §3.1 mentions as ongoing work).
  static BannerIndex fromRecords(std::vector<BannerRecord> records);

  /// Append records to the index (merging multiple scan sources).
  void addRecords(std::vector<BannerRecord> records);

  void setSearchMode(SearchMode mode) { mode_ = mode; }
  [[nodiscard]] SearchMode searchMode() const { return mode_; }

  /// All records matching the query, in index order.
  [[nodiscard]] std::vector<const BannerRecord*> search(const Query& query) const;

  /// Union of results across many queries, de-duplicated by (ip, port),
  /// ordered by first match (query order, then index order). In indexed
  /// mode the per-keyword candidate sets are computed once per distinct
  /// keyword — not once per (keyword, country) combination — and in
  /// parallel on the shared pool; the merge is sequential in query order,
  /// so results are identical across modes and thread counts.
  [[nodiscard]] std::vector<const BannerRecord*> searchAll(
      const std::vector<Query>& queries) const;

  [[nodiscard]] const std::vector<BannerRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Distinct lowercased tokens in the posting-list index (diagnostics).
  [[nodiscard]] std::size_t vocabularySize() const { return postings_.size(); }

 private:
  /// Ids of records whose banner contains `loweredKeyword`, ascending. Uses
  /// the posting lists when the keyword has at least one alphanumeric token,
  /// otherwise scans the cached lowered text.
  [[nodiscard]] std::vector<std::uint32_t> keywordCandidates(
      const std::string& loweredKeyword) const;

  [[nodiscard]] std::vector<const BannerRecord*> searchIndexed(
      const Query& query) const;
  [[nodiscard]] std::vector<const BannerRecord*> searchReference(
      const Query& query) const;

  /// Tokenize + bucket records_[begin..end) into the index structures.
  void indexRange(std::size_t begin);

  SearchMode mode_ = SearchMode::kIndexed;
  std::vector<BannerRecord> records_;
  /// lowercased token -> record ids (ascending, unique).
  std::unordered_map<std::string, std::vector<std::uint32_t>> postings_;
  /// UPPERCASED alpha2 -> record ids (ascending, unique).
  std::unordered_map<std::string, std::vector<std::uint32_t>> countryBuckets_;
};

/// Internet Census-style exhaustive scanner [10]: probes *every address* in
/// every announced prefix on a port list, not just known-visible surfaces.
/// Finds the same surfaces as BannerIndex::crawl but demonstrates the
/// larger-scale approach §3.1 mentions as ongoing work.
class CensusScanner {
 public:
  explicit CensusScanner(std::vector<std::uint16_t> ports)
      : ports_(std::move(ports)) {}

  /// Sweep the world's announced address space. Returns records for every
  /// (address, port) that answered. `maxAddressesPerPrefix` caps very large
  /// prefixes to keep sweeps bounded.
  [[nodiscard]] std::vector<BannerRecord> sweep(
      simnet::World& world, const geo::GeoDatabase& geo,
      std::uint64_t maxAddressesPerPrefix = 4096) const;

 private:
  std::vector<std::uint16_t> ports_;
};

}  // namespace urlf::scan

#endif  // URLF_SCAN_BANNER_INDEX_H
