#ifndef URLF_SCAN_BANNER_INDEX_H
#define URLF_SCAN_BANNER_INDEX_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/geodb.h"
#include "http/header_map.h"
#include "net/ipv4.h"
#include "simnet/world.h"
#include "util/clock.h"

namespace urlf::scan {

/// One indexed banner: what a Shodan-style crawler recorded when it probed
/// an (ip, port) — status line, headers, a body snippet, and location
/// metadata from the crawler's geolocation database.
struct BannerRecord {
  net::Ipv4Addr ip;
  std::uint16_t port = 80;
  int statusCode = 0;
  http::HeaderMap headers;
  std::string body;           ///< truncated body snippet
  std::string title;          ///< extracted HTML title
  std::string countryAlpha2;  ///< crawler-side geolocation (may be wrong)
  util::SimTime observedAt;

  /// The searchable text: status line + raw headers + title + body.
  [[nodiscard]] std::string searchableText() const;
};

/// A Shodan-style query: a keyword plus an optional country facet. The
/// paper's method searches each product keyword combined with every
/// two-letter ccTLD / country to maximize coverage (§3.1).
struct Query {
  std::string keyword;
  std::optional<std::string> countryAlpha2;
};

/// The banner search engine (the Shodan stand-in [27]).
///
/// `crawl` probes every externally visible surface in the world — the same
/// epistemic position as a real Internet-wide scanner: it can only see what
/// is publicly reachable. `search` does case-insensitive keyword matching
/// over the stored banner text.
class BannerIndex {
 public:
  BannerIndex() = default;

  /// Probe all externally visible surfaces; `geo` supplies the crawler's
  /// country metadata. Body snippets are capped at `bodySnippetLimit`.
  void crawl(simnet::World& world, const geo::GeoDatabase& geo,
             std::size_t bodySnippetLimit = 2048);

  /// Build an index from pre-collected records (e.g. a CensusScanner sweep,
  /// the larger-scale data source §3.1 mentions as ongoing work).
  static BannerIndex fromRecords(std::vector<BannerRecord> records);

  /// Append records to the index (merging multiple scan sources).
  void addRecords(std::vector<BannerRecord> records);

  /// All records matching the query, in index order.
  [[nodiscard]] std::vector<const BannerRecord*> search(const Query& query) const;

  /// Union of results across many queries, de-duplicated by (ip, port).
  [[nodiscard]] std::vector<const BannerRecord*> searchAll(
      const std::vector<Query>& queries) const;

  [[nodiscard]] const std::vector<BannerRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

 private:
  std::vector<BannerRecord> records_;
};

/// Internet Census-style exhaustive scanner [10]: probes *every address* in
/// every announced prefix on a port list, not just known-visible surfaces.
/// Finds the same surfaces as BannerIndex::crawl but demonstrates the
/// larger-scale approach §3.1 mentions as ongoing work.
class CensusScanner {
 public:
  explicit CensusScanner(std::vector<std::uint16_t> ports)
      : ports_(std::move(ports)) {}

  /// Sweep the world's announced address space. Returns records for every
  /// (address, port) that answered. `maxAddressesPerPrefix` caps very large
  /// prefixes to keep sweeps bounded.
  [[nodiscard]] std::vector<BannerRecord> sweep(
      simnet::World& world, const geo::GeoDatabase& geo,
      std::uint64_t maxAddressesPerPrefix = 4096) const;

 private:
  std::vector<std::uint16_t> ports_;
};

}  // namespace urlf::scan

#endif  // URLF_SCAN_BANNER_INDEX_H
