#ifndef URLF_SCAN_BANNER_INDEX_H
#define URLF_SCAN_BANNER_INDEX_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/geodb.h"
#include "http/header_map.h"
#include "net/ipv4.h"
#include "scan/postings.h"
#include "simnet/world.h"
#include "util/clock.h"

namespace urlf::scan {

/// One indexed banner: what a Shodan-style crawler recorded when it probed
/// an (ip, port) — status line, headers, a body snippet, and location
/// metadata from the crawler's geolocation database.
struct BannerRecord {
  net::Ipv4Addr ip;
  std::uint16_t port = 80;
  int statusCode = 0;
  http::HeaderMap headers;
  std::string body;           ///< truncated body snippet
  std::string title;          ///< extracted HTML title
  std::string countryAlpha2;  ///< crawler-side geolocation (may be wrong)
  util::SimTime observedAt;

  /// The searchable text: status line + raw headers + title + body.
  [[nodiscard]] std::string searchableText() const;

  /// Lowercased searchable text, built once and cached so queries never
  /// re-materialize the banner. BannerIndex primes every record at insert
  /// time; prime before sharing a record across threads (the lazy fill is
  /// not synchronized). Treat records as immutable once primed.
  [[nodiscard]] const std::string& searchableTextLower() const;

  /// Build the lowered-text cache now (idempotent).
  void primeSearchText() const { (void)searchableTextLower(); }

  /// primeSearchText through a caller-owned scratch buffer, so bulk crawls
  /// reuse one staging allocation per worker instead of one per record.
  void primeSearchText(std::string& scratch) const;

  /// Append the searchable text to `out` without clearing it.
  void appendSearchableText(std::string& out) const;

 private:
  mutable std::string searchLower_;
  mutable bool searchLowerReady_ = false;
};

/// A Shodan-style query: a keyword plus an optional country facet. The
/// paper's method searches each product keyword combined with every
/// two-letter ccTLD / country to maximize coverage (§3.1).
struct Query {
  std::string keyword;
  std::optional<std::string> countryAlpha2;
};

/// The banner search engine (the Shodan stand-in [27]).
///
/// `crawl` probes every externally visible surface in the world — the same
/// epistemic position as a real Internet-wide scanner: it can only see what
/// is publicly reachable. `search` does case-insensitive keyword matching
/// over the stored banner text.
///
/// Two execution modes answer every query with identical results:
///  - `kIndexed` (default): per-country buckets plus a token posting-list
///    index (lowercased token -> sorted record ids). A keyword that is a
///    single alphanumeric token resolves through the posting lists (the
///    vocabulary is scanned for tokens containing the keyword, so matches
///    inside longer tokens are kept); keywords with separators use their
///    longest token as a pre-filter and are verified against the cached
///    lowered text; keywords with no tokens at all fall back to a substring
///    scan of the (bucketed) cached text.
///  - `kReference`: the original linear scan, retained for equivalence
///    testing and benchmarking (it still reuses the cached lowered text
///    instead of rebuilding each banner per probe).
class BannerIndex {
 public:
  enum class SearchMode { kIndexed, kReference };

  BannerIndex() = default;

  /// Probe all externally visible surfaces; `geo` supplies the crawler's
  /// country metadata. Body snippets are capped at `bodySnippetLimit`.
  /// Surfaces are probed concurrently on the shared thread pool; results
  /// land in binding order, so the index is byte-identical to a serial
  /// crawl. External-surface handlers must therefore be thread-safe for the
  /// crawler's anonymous `GET /` (all in-tree handlers are pure functions
  /// of the request). `threadLimit == 1` forces the serial crawl.
  void crawl(simnet::World& world, const geo::GeoDatabase& geo,
             std::size_t bodySnippetLimit = 2048, std::size_t threadLimit = 0);

  /// Build an index from pre-collected records (e.g. a CensusScanner sweep,
  /// the larger-scale data source §3.1 mentions as ongoing work).
  static BannerIndex fromRecords(std::vector<BannerRecord> records);

  /// Append records to the index (merging multiple scan sources).
  void addRecords(std::vector<BannerRecord> records);

  void setSearchMode(SearchMode mode) { mode_ = mode; }
  [[nodiscard]] SearchMode searchMode() const { return mode_; }

  /// All records matching the query, in index order.
  [[nodiscard]] std::vector<const BannerRecord*> search(const Query& query) const;

  /// Union of results across many queries, de-duplicated by (ip, port),
  /// ordered by first match (query order, then index order). In indexed
  /// mode the per-keyword candidate sets are computed once per distinct
  /// keyword — not once per (keyword, country) combination — and in
  /// parallel on the shared pool; the merge is sequential in query order,
  /// so results are identical across modes and thread counts.
  [[nodiscard]] std::vector<const BannerRecord*> searchAll(
      const std::vector<Query>& queries) const;

  [[nodiscard]] const std::vector<BannerRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Distinct lowercased tokens in the posting-list index (diagnostics).
  [[nodiscard]] std::size_t vocabularySize() const { return postings_.size(); }

 private:
  /// Ids of records whose banner contains `loweredKeyword`, ascending. Uses
  /// the posting lists when the keyword has at least one alphanumeric token,
  /// otherwise scans the cached lowered text.
  [[nodiscard]] std::vector<std::uint32_t> keywordCandidates(
      const std::string& loweredKeyword) const;

  [[nodiscard]] std::vector<const BannerRecord*> searchIndexed(
      const Query& query) const;
  [[nodiscard]] std::vector<const BannerRecord*> searchReference(
      const Query& query) const;

  /// Tokenize + bucket records_[begin..end) into the index structures —
  /// reference form: sort + unique the token scratch per record, then append
  /// each distinct token's id.
  void indexRange(std::size_t begin);
  /// indexRange without the per-record sort: ids append in ascending order,
  /// so a posting list already ending in the current id marks a repeated
  /// token. Identical postings, measurably cheaper; the fast crawl path and
  /// bulk addRecords use this form.
  void indexRangeLean(std::size_t begin);

  SearchMode mode_ = SearchMode::kIndexed;
  std::vector<BannerRecord> records_;
  /// lowercased token -> record ids (ascending, unique). Transparent hashing
  /// keeps the indexing loop from allocating a key string per (doc, token).
  std::unordered_map<std::string, std::vector<std::uint32_t>, TokenHash,
                     std::equal_to<>>
      postings_;
  /// UPPERCASED alpha2 -> record ids (ascending, unique).
  std::unordered_map<std::string, std::vector<std::uint32_t>> countryBuckets_;
};

/// The million-host banner index: country/prefix shards of compressed
/// posting lists over an interned vocabulary (scan::PostingShard), plus
/// per-document (ip, port) tables and delta-coded country buckets.
///
/// Documents are identified by dense uint32 doc ids in insertion order; the
/// banners themselves are NOT stored. Queries that must look at full banner
/// text (separator keywords, keywords with no alphanumeric token, passive
/// identification) re-materialize records through the attached
/// RecordFetcher — for a streamed crawl that is a deterministic re-probe of
/// the pure host function, so fetched records are byte-identical to what the
/// crawl saw.
///
/// Search semantics mirror BannerIndex::searchIndexed exactly (the property
/// tests enforce sharded ≡ monolithic ≡ reference); shards are built one at
/// a time so peak build memory is O(shard), and cross-shard results merge by
/// concatenation because shard doc ranges are ascending and disjoint (the
/// degenerate k-way merge; the token-level k-way merge drives
/// vocabularySize() and other cross-shard vocabulary consumers).
class ShardedBannerIndex {
 public:
  /// Re-materialize one document's full banner record.
  using RecordFetcher = std::function<BannerRecord(std::uint32_t)>;

  ShardedBannerIndex() = default;
  ShardedBannerIndex(ShardedBannerIndex&&) = default;
  ShardedBannerIndex& operator=(ShardedBannerIndex&&) = default;
  ShardedBannerIndex(const ShardedBannerIndex&) = delete;
  ShardedBannerIndex& operator=(const ShardedBannerIndex&) = delete;

  // --- streaming build ----------------------------------------------------

  /// Open a new shard; records added until endShard() belong to it. Doc ids
  /// keep ascending across shards.
  void beginShard(std::string label);
  /// Index one record into the open shard (tokens, country bucket, surface
  /// tables). The record itself is not retained.
  void addRecord(const BannerRecord& record);
  /// Seal the open shard (empty shards are kept — they serialize and query
  /// as no-ops).
  void endShard();

  /// Shard an existing monolithic index (docs in record order, chunked at
  /// `shardTargetDocs`). The fetcher reads from `index`, which must outlive
  /// the returned sharded view.
  [[nodiscard]] static ShardedBannerIndex fromIndex(
      const BannerIndex& index, std::size_t shardTargetDocs = 8192);

  /// Build from owned records (retained internally as the fetch source).
  [[nodiscard]] static ShardedBannerIndex fromRecords(
      std::vector<BannerRecord> records, std::size_t shardTargetDocs = 8192);

  /// Reassemble from serialized parts (see scan/serialize.h). Throws
  /// std::invalid_argument when the parts are inconsistent.
  [[nodiscard]] static ShardedBannerIndex fromParts(
      std::vector<std::uint32_t> ips, std::vector<std::uint16_t> ports,
      std::map<std::string, DeltaIdList> countryBuckets,
      std::vector<PostingShard> shards);

  void setRecordFetcher(RecordFetcher fetcher) { fetcher_ = std::move(fetcher); }
  [[nodiscard]] bool hasRecordFetcher() const { return fetcher_ != nullptr; }
  /// Fetch one document's record; throws std::logic_error without a fetcher.
  [[nodiscard]] BannerRecord fetchRecord(std::uint32_t doc) const;

  // --- queries ------------------------------------------------------------

  struct DocSurface {
    net::Ipv4Addr ip;
    std::uint16_t port = 80;
  };
  [[nodiscard]] DocSurface surface(std::uint32_t doc) const {
    return {net::Ipv4Addr{ips_[doc]}, ports_[doc]};
  }

  /// Doc ids matching the query, ascending — the same set
  /// BannerIndex::search returns for the same corpus.
  [[nodiscard]] std::vector<std::uint32_t> search(const Query& query) const;

  /// Union across queries, de-duplicated by (ip, port), ordered by first
  /// match — BannerIndex::searchAll semantics on doc ids. Distinct keywords
  /// resolve once, in parallel; country buckets decode once per searchAll.
  [[nodiscard]] std::vector<std::uint32_t> searchAll(
      const std::vector<Query>& queries) const;

  [[nodiscard]] std::uint32_t docCount() const {
    return static_cast<std::uint32_t>(ips_.size());
  }
  [[nodiscard]] std::size_t shardCount() const { return shards_.size(); }
  [[nodiscard]] const std::vector<PostingShard>& shards() const {
    return shards_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& ips() const { return ips_; }
  [[nodiscard]] const std::vector<std::uint16_t>& ports() const {
    return ports_;
  }
  [[nodiscard]] const std::map<std::string, DeltaIdList>& countryBuckets()
      const {
    return countryBuckets_;
  }

  /// Distinct tokens across all shards (k-way merged, so shared vocabulary
  /// is counted once — comparable to BannerIndex::vocabularySize()).
  [[nodiscard]] std::size_t vocabularySize() const;

  /// Approximate resident footprint of the index structures, in bytes.
  [[nodiscard]] std::size_t memoryBytes() const;

 private:
  [[nodiscard]] std::vector<std::uint32_t> keywordCandidates(
      const std::string& loweredKeyword) const;
  [[nodiscard]] std::vector<std::uint32_t> decodeCountryBucket(
      const std::string& upperAlpha2) const;

  std::vector<PostingShard> shards_;
  std::unique_ptr<PostingShard::Builder> openShard_;
  std::vector<std::uint32_t> ips_;
  std::vector<std::uint16_t> ports_;
  /// UPPERCASED alpha2 -> delta-coded doc ids (std::map: deterministic
  /// serialization order).
  std::map<std::string, DeltaIdList> countryBuckets_;
  RecordFetcher fetcher_;
  /// fromRecords keeps its source here so the default fetcher stays valid
  /// across moves.
  std::shared_ptr<const std::vector<BannerRecord>> retained_;
  /// Staging buffers reused across addRecord calls (build is single-writer).
  std::string textScratch_;
  std::string loweredScratch_;
};

/// Probe one reachable endpoint the way a banner crawler does: a plain GET /
/// addressed to the bare IP. This is the single probe primitive every crawl
/// flavour (eager, streamed, incremental) shares, so their records are
/// field-for-field identical for the same endpoint state.
[[nodiscard]] BannerRecord probeEndpoint(simnet::HttpEndpoint& endpoint,
                                         net::Ipv4Addr ip, std::uint16_t port,
                                         const geo::GeoDatabase& geo,
                                         util::SimTime now,
                                         std::size_t bodySnippetLimit);

/// probeEndpoint into a reused record: response storage is moved, not
/// copied, and the body is truncated in place. Field-for-field identical to
/// probeEndpoint (the title is extracted from the full body first).
void probeEndpointInto(simnet::HttpEndpoint& endpoint, net::Ipv4Addr ip,
                       std::uint16_t port, const geo::GeoDatabase& geo,
                       util::SimTime now, std::size_t bodySnippetLimit,
                       BannerRecord& out);

/// Options for crawlStream.
struct StreamCrawlOptions {
  std::size_t bodySnippetLimit = 2048;
  std::size_t threadLimit = 0;     ///< 1 forces serial probing
  std::uint64_t hostsPerShard = 8192;  ///< stream shard granularity
};

/// Crawl a world that may carry an attached host stream, building a
/// ShardedBannerIndex within O(shard) memory: eagerly bound surfaces form
/// the leading shard (binding order), then each stream shard is
/// materialized, probed, indexed, and discarded. Doc order equals the
/// binding order of the eager reference world (materializeInto), so the
/// result is byte-identical to crawling that world with BannerIndex::crawl.
/// The returned index's fetcher re-probes on demand and captures `world` and
/// `geo` by reference — both must outlive the index.
[[nodiscard]] ShardedBannerIndex crawlStream(simnet::World& world,
                                             const geo::GeoDatabase& geo,
                                             StreamCrawlOptions options = {});

/// Internet Census-style exhaustive scanner [10]: probes *every address* in
/// every announced prefix on a port list, not just known-visible surfaces.
/// Finds the same surfaces as BannerIndex::crawl but demonstrates the
/// larger-scale approach §3.1 mentions as ongoing work.
class CensusScanner {
 public:
  explicit CensusScanner(std::vector<std::uint16_t> ports)
      : ports_(std::move(ports)) {}

  /// Sweep the world's announced address space. Returns records for every
  /// (address, port) that answered. `maxAddressesPerPrefix` caps very large
  /// prefixes to keep sweeps bounded.
  [[nodiscard]] std::vector<BannerRecord> sweep(
      simnet::World& world, const geo::GeoDatabase& geo,
      std::uint64_t maxAddressesPerPrefix = 4096) const;

 private:
  std::vector<std::uint16_t> ports_;
};

}  // namespace urlf::scan

#endif  // URLF_SCAN_BANNER_INDEX_H
