#ifndef URLF_SCAN_POSTINGS_H
#define URLF_SCAN_POSTINGS_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace urlf::scan {

/// Transparent string hasher: lets unordered maps keyed by std::string be
/// probed with a string_view, so hot indexing loops only materialize a key
/// string on first sight of a token.
struct TokenHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

// --- varint codec -----------------------------------------------------------

/// LEB128-style little-endian base-128 varint append (7 payload bits per
/// byte, high bit = continuation). The codec behind every compressed id
/// stream in the sharded index.
void appendVarint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Decode one varint at `pos`; advances `pos` past it. Returns false on
/// truncated or overlong (> 10 byte) input, leaving `pos` unspecified.
[[nodiscard]] bool readVarint(std::span<const std::uint8_t> data,
                              std::size_t& pos, std::uint64_t& value);

// --- delta-coded id lists ---------------------------------------------------

/// A strictly ascending uint32 id list stored as varint deltas: the first id
/// verbatim, every subsequent id as (id - previous). Ascending ids make
/// every delta >= 1, so a dense list costs ~1 byte per id instead of 4 — the
/// compact posting-list and country-bucket representation.
class DeltaIdList {
 public:
  DeltaIdList() = default;

  /// Append `id`; must be strictly greater than the last appended id.
  void append(std::uint32_t id);

  /// Append the decoded ids to `out` (does not clear it).
  void decodeInto(std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::uint32_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// The last appended id; meaningful only when !empty().
  [[nodiscard]] std::uint32_t lastId() const { return last_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::size_t byteSize() const { return bytes_.size(); }

  /// Reconstruct from serialized parts (import path). The bytes are trusted
  /// to be a valid encoding of `count` ascending ids.
  static DeltaIdList fromRaw(std::uint32_t count,
                             std::vector<std::uint8_t> bytes);

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint32_t count_ = 0;
  std::uint32_t last_ = 0;
};

/// Shared tokenizer of the scan layer: maximal alphanumeric runs, appended
/// to `out` as views into `text`. Both banner text and query keywords use
/// the same character class, so a keyword with no separator can only ever
/// occur inside a single banner token.
void tokenizeAlnum(std::string_view text,
                   std::vector<std::string_view>& out);

// --- posting shards ---------------------------------------------------------

/// An immutable posting-list shard over a contiguous range of documents
/// [docBase, docBase + docCount): an interned, sorted vocabulary (one byte
/// arena plus offsets) and one delta-coded ascending id list per token.
/// Built shard-by-shard so peak build memory is O(shard), not O(corpus) —
/// the Posdb/RdbBase idea from open-source-search-engine, scaled down to
/// this simulator.
class PostingShard {
 public:
  /// Streaming builder: feed lowered document text in ascending doc order,
  /// then `finish()`. Postings are delta-compressed as they are appended, so
  /// even the builder never holds uncompressed id lists.
  class Builder {
   public:
    Builder(std::string label, std::uint32_t docBase);

    /// Index the next document (its id is docBase + documents added so far).
    void addDocument(std::string_view loweredText);

    [[nodiscard]] std::uint32_t docCount() const { return docCount_; }

    /// Seal the shard: sort the vocabulary, intern it into the arena, and
    /// concatenate the posting bytes.
    [[nodiscard]] PostingShard finish() &&;

   private:
    std::string label_;
    std::uint32_t docBase_ = 0;
    std::uint32_t docCount_ = 0;
    std::unordered_map<std::string, DeltaIdList, TokenHash, std::equal_to<>>
        lists_;
    std::vector<std::string_view> tokenScratch_;
  };

  PostingShard() = default;

  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] std::uint32_t docBase() const { return docBase_; }
  [[nodiscard]] std::uint32_t docCount() const { return docCount_; }
  [[nodiscard]] std::size_t tokenCount() const {
    return tokenOffsets_.empty() ? 0 : tokenOffsets_.size() - 1;
  }

  /// The k-th vocabulary token (ascending byte order).
  [[nodiscard]] std::string_view token(std::size_t k) const;

  /// Append the (global) doc ids of token k to `out`, ascending.
  void appendTokenPostings(std::size_t k, std::vector<std::uint32_t>& out) const;

  /// Append the doc ids of every document whose vocabulary contains a token
  /// with `needle` as a substring — the shard-local half of the monolithic
  /// index's vocabulary pre-filter. Appended ids may repeat across tokens;
  /// the caller sorts/uniques the union.
  void appendCandidates(std::string_view needle,
                        std::vector<std::uint32_t>& out) const;

  /// Heap + arena footprint in bytes (diagnostics / RSS accounting).
  [[nodiscard]] std::size_t memoryBytes() const;

  /// Binary serialization (appended to `out`); see scan/serialize.cpp for
  /// the framing that wraps whole indexes.
  void serializeTo(std::string& out) const;

  /// Parse one shard at `pos`, advancing it. Returns false on malformed
  /// input (truncation, non-monotone offsets).
  [[nodiscard]] static bool deserializeFrom(std::string_view data,
                                            std::size_t& pos,
                                            PostingShard& out);

 private:
  std::string label_;
  std::uint32_t docBase_ = 0;
  std::uint32_t docCount_ = 0;
  std::string arena_;                          ///< concatenated sorted tokens
  std::vector<std::uint32_t> tokenOffsets_;    ///< tokenCount()+1 bounds
  std::vector<std::uint32_t> postingOffsets_;  ///< tokenCount()+1 bounds
  std::vector<std::uint8_t> postings_;         ///< delta varints per token
};

/// Visit every distinct token across `shards` exactly once, ascending, with
/// the (shard, slot) pairs that hold it — a k-way merge over the shards'
/// sorted vocabularies (the RdbMerge pattern). Cross-shard consumers
/// (vocabulary statistics, index compaction) pay one visit per distinct
/// token instead of one per (token, shard).
void forEachDistinctToken(
    std::span<const PostingShard> shards,
    const std::function<void(
        std::string_view token,
        std::span<const std::pair<std::uint32_t, std::uint32_t>> holders)>&
        visit);

}  // namespace urlf::scan

#endif  // URLF_SCAN_POSTINGS_H
