#ifndef URLF_SCENARIOS_MONITOR_H
#define URLF_SCENARIOS_MONITOR_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/identifier.h"
#include "core/monitor.h"
#include "measure/client.h"
#include "measure/health.h"
#include "measure/journal.h"
#include "report/json.h"
#include "scan/delta_index.h"
#include "scenarios/paper_world.h"
#include "simnet/churn_stream.h"
#include "util/expected.h"

namespace urlf::scenarios {

/// How each tick's scan → identify → test pipeline is executed. The mode is
/// a performance knob only: both modes produce byte-identical tick digests
/// (the property the monitor tests and bench enforce).
enum class MonitorMode {
  kFull,         ///< reference: rebuild the index, revalidate, retest all
  kIncremental,  ///< delta-driven: dirty cells, cached validation, reused
                 ///< verdicts
};

[[nodiscard]] std::string_view toString(MonitorMode mode);

/// World churn between ticks, all deterministic in the monitor seed.
struct MonitorChurn {
  /// Per-host per-tick content redraw probability (streamed hosts).
  double rebrandRate = 0.02;
  /// Per-host per-tick parking-page probability (streamed hosts).
  double parkRate = 0.005;
  /// Vendor master-DB mutations applied per tick (addHost / addUrl /
  /// removeHost drawn from the global list).
  int dbMutationsPerTick = 3;
};

/// Everything that determines a monitoring campaign's observable output,
/// plus the performance knobs that provably do not (mode / threads — the
/// incremental ≡ full digest equivalence).
struct MonitorOptions {
  std::uint64_t seed = kPaperSeed;
  PaperWorldOptions world;

  /// Streamed background population (0 = none attached). The stream rides
  /// under the churn overlay, so host content evolves tick to tick while
  /// addresses and shard layout stay fixed.
  std::uint64_t streamHosts = 0;
  std::uint64_t hostsPerShard = 8192;
  int streamCountries = 8;
  double baitFraction = 0.01;

  /// Number of churn ticks to run after the tick-0 baseline. Not part of
  /// the checkpoint header: a resumed campaign may be continued for any
  /// number of further ticks.
  int ticks = 6;
  /// Simulated hours between ticks (default: a monthly re-scan cadence).
  std::int64_t tickHours = 720;

  MonitorChurn churn;

  /// Fire the three scripted deployment events — an installation hidden
  /// behind a firewall, a brand-new deployment in a fresh AS, a vendor
  /// branding strip — at fixed ticks 2, 4, and 6 (whichever the run
  /// reaches). Fixed so a resumed run fires them at the same ticks no
  /// matter how many further ticks it is continued for.
  bool scriptedEvents = true;

  /// Per-vantage circuit breakers (off by default).
  bool healthEnabled = false;
  measure::BreakerPolicy breaker;

  // Performance knobs. NOT part of the checkpoint header: any combination
  // reproduces the same digests, so a campaign checkpointed in one mode may
  // be resumed in another.
  MonitorMode mode = MonitorMode::kIncremental;
  std::size_t threads = 0;

  /// The checkpoint header: every field that affects observable output.
  [[nodiscard]] report::Json headerJson() const;
  /// Rebuild options from a checkpoint header (fails on unknown version or
  /// malformed fields). Performance knobs and `ticks` keep their defaults.
  [[nodiscard]] static util::Expected<MonitorOptions> fromHeaderJson(
      const report::Json& header);
};

/// One URL's verdict at one vantage in one tick — the unit the monitor
/// digests, caches across ticks, and checkpoints.
struct VerdictRow {
  std::string vantage;
  std::string url;
  measure::Verdict verdict = measure::Verdict::kError;
  measure::Provenance provenance = measure::Provenance::kConfirmed;
  std::string blockProduct = "-";  ///< "-" when no vendor pattern matched
  std::string patternName = "-";
  int fieldOutcome = 0;  ///< simnet::FetchOutcome of the field fetch
  int fieldStatus = 0;   ///< HTTP status of the field response (0 = none)
};

/// The differential report of one tick: what changed since the previous
/// identification + test pass, plus the digest and perf counters.
struct TickReport {
  int tick = 0;
  std::int64_t atHours = 0;  ///< simulated clock at the end of the tick

  // Differential view (built on core::diffAll + verdict comparison).
  int newlyConfirmed = 0;   ///< installations appeared vs previous tick
  int decommissioned = 0;   ///< installations vanished
  int relocated = 0;        ///< installations that changed country
  int verdictFlips = 0;     ///< URLs whose verdict changed ("category drift")
  std::vector<std::string> notes;  ///< human-readable change lines

  /// fnv1a64 over the canonical installation + verdict listing of this
  /// tick. Byte-identical between kFull and kIncremental at any thread
  /// count — the monitor's correctness contract.
  std::uint64_t digest = 0;

  // Perf counters (incremental mode; zero under kFull where not shared).
  std::size_t cellsRebuilt = 0;
  std::size_t cellCount = 0;
  std::size_t validationHits = 0;    ///< candidate validations reused
  std::size_t validationMisses = 0;  ///< candidate validations executed
  std::size_t urlsTested = 0;        ///< URLs fetched this tick
  std::size_t urlsReused = 0;        ///< verdicts reused from the cache
  double scanMs = 0.0;
  double identifyMs = 0.0;
  double testMs = 0.0;

  [[nodiscard]] std::string digestHex() const;
  [[nodiscard]] report::Json toJson() const;
};

/// A full monitoring run: one report per executed tick plus the digest
/// chain folding every tick digest in order.
struct MonitorReport {
  std::vector<TickReport> ticks;
  std::uint64_t chainDigest = 0;

  [[nodiscard]] std::string chainDigestHex() const;
};

/// A resident longitudinal monitoring campaign (DESIGN.md §4.7): owns the
/// world, the churn feed, and every cross-tick cache, and advances one tick
/// at a time through scan → identify → re-test.
///
/// Tick 0 is the baseline (no churn; everything scanned, validated, and
/// tested). Each later tick advances the clock, applies the deterministic
/// churn (stream content redraws, vendor DB mutations, scripted deployment
/// events), then re-runs the pipeline — under kIncremental touching only
/// what the change feed proves dirty:
///   * re-scan: IncrementalCrawler rebuilds only cells holding dirty hosts,
///   * re-identify: Identifier::ValidationCache reuses validations whose
///     surface epoch (the churn feed's lastContentChange) is unchanged,
///   * re-test: verdicts are reused for URLs no DB mutation window touched,
///     unless a scripted event / epoch tripwire / non-cacheable chain /
///     open breaker forces the vantage to retest everything.
///
/// A checkpoint (writeCheckpoint) folds the whole history into O(state):
/// one urlfj1 container holding the config header and a single
/// monitor-state record (installations + verdict rows + breaker state +
/// digest chain). resume() rebuilds the world by re-evolving it tick by
/// tick (no scanning or testing — O(ticks) clock/DB work, not O(ticks)
/// pipeline work), restores the caches from the snapshot, and continues.
class MonitorSession {
 public:
  /// Build a fresh session at tick -1 (no tick has run). The first
  /// runTick() executes the tick-0 baseline.
  [[nodiscard]] static std::unique_ptr<MonitorSession> create(
      const MonitorOptions& options);

  /// Resume from a checkpoint file. Fails with a one-line reason when the
  /// file is missing, its header is corrupt, its state record was lost to
  /// truncation or bit rot, or the snapshot does not match the world the
  /// header rebuilds. `mode` and `threads` are the resumed run's
  /// performance knobs (checkpoints are mode-agnostic).
  [[nodiscard]] static util::Expected<std::unique_ptr<MonitorSession>> resume(
      const std::string& checkpointPath,
      MonitorMode mode = MonitorMode::kIncremental, std::size_t threads = 0);

  /// resume() on an already-opened journal (tests use
  /// CampaignJournal::fromText to exercise corruption without files).
  [[nodiscard]] static util::Expected<std::unique_ptr<MonitorSession>>
  resumeFromJournal(measure::CampaignJournal journal, MonitorMode mode,
                    std::size_t threads);

  /// Execute the next tick and return its report.
  TickReport runTick();

  /// Snapshot the campaign into `path` (truncates; the checkpoint is a
  /// compaction, not a log — its size is O(state) regardless of how many
  /// ticks have run).
  void writeCheckpoint(const std::string& path) const;

  /// Last completed tick (-1 before the baseline has run).
  [[nodiscard]] int tick() const { return tick_; }
  /// Digest chain over every completed tick.
  [[nodiscard]] std::uint64_t chainDigest() const { return chain_; }
  [[nodiscard]] const MonitorOptions& options() const { return options_; }

  MonitorSession(const MonitorSession&) = delete;
  MonitorSession& operator=(const MonitorSession&) = delete;

 private:
  MonitorSession() = default;

  struct PlanUrl {
    std::string url;
    std::string host;       ///< lowercased
    std::string regDomain;  ///< lowercased registrable domain
  };
  struct VantagePlan {
    std::string name;
    std::vector<std::size_t> urlIndices;  ///< into urls_, test order
  };
  /// One applied DB mutation and the window in which it can still flip a
  /// verdict somewhere (update lag).
  struct Mutation {
    std::string urlText;  ///< exact-URL mutations; empty for host ones
    std::string host;     ///< host mutations; empty for exact-URL ones
    std::int64_t addedAtHours = 0;
    std::int64_t lagHours = 0;
  };

  void buildWorld();
  void buildTestPlan();
  /// Returns true when a scripted event fired at this tick.
  bool applyScriptedEvent(int tick);
  void applyDbChurn(int tick);
  void refreshMaxLag();
  [[nodiscard]] bool urlDirty(const PlanUrl& url, std::int64_t prevNowHours,
                              std::int64_t nowHours) const;
  [[nodiscard]] static std::uint64_t rowKey(std::size_t vantage,
                                            std::size_t url) {
    return (static_cast<std::uint64_t>(vantage) << 32) | url;
  }

  MonitorOptions options_;
  std::unique_ptr<PaperWorld> paper_;
  std::shared_ptr<simnet::ChurnHostStream> churn_;  ///< null when no stream
  geo::GeoDatabase geo_;      ///< rebuilt per tick; stable address
  geo::AsnDatabase whois_;
  std::unique_ptr<scan::IncrementalCrawler> crawler_;  ///< kIncremental
  scan::ShardedBannerIndex index_;  ///< last assembled index
  core::Identifier::ValidationCache validationCache_;
  measure::HealthRegistry health_;

  std::vector<PlanUrl> urls_;
  std::unordered_map<std::string, std::size_t> urlIndex_;
  std::vector<VantagePlan> vantages_;
  std::string labVantage_;

  std::vector<Mutation> mutations_;
  std::int64_t maxLagHours_ = 0;
  std::uint64_t expectedEpoch_ = 0;
  /// Validation epoch for eager (bound) surfaces: bumps when a scripted
  /// event or epoch tripwire may have changed deployment-served content.
  /// Not checkpointed — a resumed session starts with an empty validation
  /// cache, so any starting value is sound.
  std::uint64_t eagerGen_ = 0;
  /// geo_/whois_ are built lazily on the first tick and rebuilt only when
  /// the AS layout can have moved (scripted event / epoch tripwire).
  bool geoBuilt_ = false;

  int tick_ = -1;
  std::map<filters::ProductKind, std::vector<core::Installation>> installs_;
  std::vector<VerdictRow> rows_;  ///< vantage-major, plan order
  std::unordered_map<std::uint64_t, VerdictRow> verdictCache_;
  std::uint64_t chain_ = 0;
};

/// Run a complete monitoring campaign: the tick-0 baseline plus
/// `options.ticks` churn ticks. When `checkpointPath` is non-empty the
/// session checkpoints after every tick (each write replaces the previous
/// snapshot — crash-and-resume loses at most the tick in flight).
[[nodiscard]] MonitorReport runMonitor(const MonitorOptions& options,
                                       const std::string& checkpointPath = "");

}  // namespace urlf::scenarios

#endif  // URLF_SCENARIOS_MONITOR_H
