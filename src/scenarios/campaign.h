#ifndef URLF_SCENARIOS_CAMPAIGN_H
#define URLF_SCENARIOS_CAMPAIGN_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "measure/health.h"
#include "measure/journal.h"
#include "report/json.h"
#include "scenarios/paper_world.h"
#include "simnet/outage.h"
#include "util/expected.h"

namespace urlf::measure {
class SharedVerdictStore;
}

namespace urlf::scenarios {

/// Parse "YYYY-MM-DD". Returns nullopt on malformed input.
[[nodiscard]] std::optional<util::CivilDate> parseCivilDate(
    std::string_view text);

/// Declarative persistent-failure schedule for a campaign, in calendar
/// dates; compiled into a simnet::OutagePlan at world-build time.
struct OutageSpec {
  struct VantageDeath {
    std::string vantage;
    util::CivilDate date;
  };
  struct MiddleboxStop {
    std::string box;  ///< Middlebox::name(), e.g. "Ooredoo Netsweeper"
    util::CivilDate date;
  };
  struct DbRollback {
    util::CivilDate from;
    util::CivilDate until;
    util::CivilDate rollbackTo;
  };

  std::vector<VantageDeath> vantageDeaths;
  std::vector<MiddleboxStop> middleboxStops;
  std::vector<DbRollback> rollbacks;

  [[nodiscard]] bool empty() const {
    return vantageDeaths.empty() && middleboxStops.empty() &&
           rollbacks.empty();
  }
  [[nodiscard]] simnet::OutagePlan toPlan(std::uint64_t seed) const;
  [[nodiscard]] report::Json toJson() const;
  [[nodiscard]] static std::optional<OutageSpec> fromJson(
      const report::Json& json);
};

/// Everything that determines a paper campaign's observable output, plus
/// the performance knobs that provably do not (classify mode / threads /
/// memo — the campaign_e2e digest equivalence).
struct CampaignOptions {
  std::uint64_t seed = kPaperSeed;
  PaperWorldOptions world;

  // Fetch→classify fast-path knobs. NOT part of the journal header: any
  // combination reproduces the same bytes, so a campaign journaled at one
  // thread count may be resumed at another.
  measure::ClassifyMode classifyMode = measure::ClassifyMode::kCompiled;
  std::size_t classifyThreads = 0;
  bool memoizeVerdicts = true;

  /// Per-vantage circuit breakers (off by default — identical to the
  /// historical pipeline).
  bool healthEnabled = false;
  measure::BreakerPolicy breaker;

  /// Persistent failures to inject (empty = none).
  OutageSpec outages;

  /// Cross-vantage quorum size for the Table 4 characterizations. >= 2
  /// switches them to the RobustConfirmer over the primary vantage plus
  /// its "-q<i>" clones (requires world.quorumVantages >= quorum - 1).
  /// 1 = historical single-vantage behaviour.
  int quorum = 1;
  /// Arm the tarpit defenses on the quorum path: per-attempt deadlines,
  /// slow-drip hedging, and token-bucket pacing against the simulated
  /// clock. Only meaningful with quorum >= 2.
  bool hedge = false;

  /// The journal header: every field that affects observable output. A
  /// resumed campaign adopts this wholesale, so a journal is self-contained.
  [[nodiscard]] report::Json headerJson() const;
  /// Rebuild options from a journal header (fails on unknown version or
  /// malformed fields). Performance knobs keep their defaults.
  [[nodiscard]] static util::Expected<CampaignOptions> fromHeaderJson(
      const report::Json& header);
};

/// The observable outcome of one full paper campaign (Table 3 + §4.4 probe
/// + Table 4), digested the same way bench/campaign_e2e does.
struct CampaignReport {
  std::uint64_t digest = 0;
  int confirmedCaseStudies = 0;
  int probeBlockedCategories = 0;
  int table4Blocked = 0;
  /// Rows recorded without a fetch (vantage quarantined) across all case
  /// studies and characterizations.
  int degradedRows = 0;
  /// Final breaker state per vantage (empty when health tracking is off).
  std::vector<std::pair<std::string, measure::BreakerState>> vantageHealth;

  [[nodiscard]] std::string digestHex() const;
  [[nodiscard]] report::Json toJson() const;
};

/// Run the full paper campaign: the ten Table 3 case studies in
/// chronological order with the §4.4 Netsweeper category probe interleaved
/// (January 2013), then the four Table 4 characterizations.
///
/// With a journal attached, every stage boundary and verdict is sync()ed:
/// appended on a fresh run, verified on resume. Because the world is
/// deterministic in `options`, resuming after a crash at ANY record
/// boundary re-executes into an identical report (bit-for-bit digest) — the
/// journal's record stream is the proof, and JournalDivergence the alarm.
[[nodiscard]] CampaignReport runPaperCampaign(
    const CampaignOptions& options,
    measure::CampaignJournal* journal = nullptr);

/// Cross-cutting services a resident server threads into a session's
/// campaign run. All pointers optional and non-owning; a default-constructed
/// context reproduces the standalone behavior.
struct CampaignRunContext {
  measure::CampaignJournal* journal = nullptr;
  /// Cross-session verdict store + its scope key (serve::WorldSnapshot
  /// derives the scope from snapshot name, config header, and epoch).
  measure::SharedVerdictStore* sharedMemo = nullptr;
  std::uint64_t memoScope = 0;
};

/// Run the campaign against a caller-owned world replica (the resident
/// server materializes one PaperWorld per session from a shared snapshot
/// spec). The world must be freshly built from `options.seed` /
/// `options.world` — the campaign mutates it (clock, RNG, vendor queues) and
/// is deterministic only from that initial state. Outage plans from
/// `options` are applied here, exactly as the standalone entry point does.
[[nodiscard]] CampaignReport runPaperCampaign(PaperWorld& paper,
                                              const CampaignOptions& options,
                                              const CampaignRunContext& run);

}  // namespace urlf::scenarios

#endif  // URLF_SCENARIOS_CAMPAIGN_H
