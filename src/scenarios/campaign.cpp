#include "scenarios/campaign.h"

#include <cstdio>
#include <sstream>

#include "core/characterizer.h"
#include "core/confirmer.h"
#include "util/hash.h"

namespace urlf::scenarios {

namespace {

using measure::CampaignJournal;
using report::Json;

Json dateJson(const util::CivilDate& date) { return Json::string(date.iso()); }

std::optional<util::CivilDate> dateFromJson(const Json* json) {
  if (json == nullptr || !json->asString()) return std::nullopt;
  return parseCivilDate(*json->asString());
}

Json u64Json(std::uint64_t v) {
  // Stored as a decimal string: Json numbers are doubles and would round
  // seeds above 2^53.
  return Json::string(std::to_string(v));
}

std::optional<std::uint64_t> u64FromJson(const Json* json) {
  if (json == nullptr || !json->asString()) return std::nullopt;
  const std::string& text = *json->asString();
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Digest of one per-URL result — byte-identical to bench/campaign_e2e for
/// confirmed rows; degraded rows carry an explicit marker so "untestable"
/// can never collide with a tested verdict.
void digestResult(std::ostringstream& digest,
                  const measure::UrlTestResult& result) {
  digest << result.url << '|' << static_cast<int>(result.verdict) << '|';
  if (result.blockPage)
    digest << filters::toString(result.blockPage->product) << '/'
           << result.blockPage->patternName;
  else
    digest << '-';
  if (result.provenance == measure::Provenance::kDegraded) digest << "|degraded";
  digest << '\n';
}

}  // namespace

std::optional<util::CivilDate> parseCivilDate(std::string_view text) {
  int year = 0, month = 0, day = 0;
  char extra = 0;
  const std::string owned(text);
  if (std::sscanf(owned.c_str(), "%d-%d-%d%c", &year, &month, &day, &extra) !=
      3)
    return std::nullopt;
  if (year < 1970 || year > 9999 || month < 1 || month > 12 || day < 1 ||
      day > 31)
    return std::nullopt;
  return util::CivilDate{year, month, day};
}

simnet::OutagePlan OutageSpec::toPlan(std::uint64_t seed) const {
  simnet::OutagePlan plan(seed);
  for (const auto& death : vantageDeaths)
    plan.killVantage(death.vantage, util::SimTime::fromDate(death.date));
  for (const auto& stop : middleboxStops)
    plan.stopMiddlebox(stop.box, util::SimTime::fromDate(stop.date));
  for (const auto& rollback : rollbacks)
    plan.addDbRollback(util::SimTime::fromDate(rollback.from),
                       util::SimTime::fromDate(rollback.until),
                       util::SimTime::fromDate(rollback.rollbackTo));
  return plan;
}

Json OutageSpec::toJson() const {
  Json out = Json::object();
  Json deaths = Json::array();
  for (const auto& death : vantageDeaths) {
    Json e = Json::object();
    e["vantage"] = Json::string(death.vantage);
    e["date"] = dateJson(death.date);
    deaths.push(std::move(e));
  }
  out["vantage_deaths"] = std::move(deaths);
  Json stops = Json::array();
  for (const auto& stop : middleboxStops) {
    Json e = Json::object();
    e["box"] = Json::string(stop.box);
    e["date"] = dateJson(stop.date);
    stops.push(std::move(e));
  }
  out["middlebox_stops"] = std::move(stops);
  Json windows = Json::array();
  for (const auto& rollback : rollbacks) {
    Json e = Json::object();
    e["from"] = dateJson(rollback.from);
    e["until"] = dateJson(rollback.until);
    e["rollback_to"] = dateJson(rollback.rollbackTo);
    windows.push(std::move(e));
  }
  out["rollbacks"] = std::move(windows);
  return out;
}

std::optional<OutageSpec> OutageSpec::fromJson(const Json& json) {
  if (!json.isObject()) return std::nullopt;
  OutageSpec spec;
  if (const auto* deaths = json.find("vantage_deaths");
      deaths && deaths->asArray()) {
    for (const auto& entry : *deaths->asArray()) {
      const auto* vantage = entry.find("vantage");
      const auto date = dateFromJson(entry.find("date"));
      if (vantage == nullptr || !vantage->asString() || !date)
        return std::nullopt;
      spec.vantageDeaths.push_back({*vantage->asString(), *date});
    }
  }
  if (const auto* stops = json.find("middlebox_stops");
      stops && stops->asArray()) {
    for (const auto& entry : *stops->asArray()) {
      const auto* box = entry.find("box");
      const auto date = dateFromJson(entry.find("date"));
      if (box == nullptr || !box->asString() || !date) return std::nullopt;
      spec.middleboxStops.push_back({*box->asString(), *date});
    }
  }
  if (const auto* windows = json.find("rollbacks");
      windows && windows->asArray()) {
    for (const auto& entry : *windows->asArray()) {
      const auto from = dateFromJson(entry.find("from"));
      const auto until = dateFromJson(entry.find("until"));
      const auto to = dateFromJson(entry.find("rollback_to"));
      if (!from || !until || !to) return std::nullopt;
      spec.rollbacks.push_back({*from, *until, *to});
    }
  }
  return spec;
}

Json CampaignOptions::headerJson() const {
  Json out = Json::object();
  out["type"] = Json::string("campaign-config");
  out["version"] = Json::number(std::int64_t{1});
  out["seed"] = u64Json(seed);

  Json worldJson = Json::object();
  worldJson["hide_external_surfaces"] = Json::boolean(world.hideExternalSurfaces);
  worldJson["strip_branding"] = Json::boolean(world.stripBranding);
  worldJson["disregard_submitter"] = Json::boolean(world.disregardSubmitter);
  worldJson["geo_error_rate"] = Json::number(world.geoErrorRate);
  worldJson["fault_rate"] = Json::number(world.faultRate);
  worldJson["fault_seed"] = u64Json(world.faultSeed);
  worldJson["packet_mechanisms"] = Json::boolean(world.packetMechanisms);
  worldJson["rst_hold_down_hours"] =
      Json::number(std::int64_t{world.rstHoldDownHours});
  worldJson["interference_rate"] = Json::number(world.interferenceRate);
  worldJson["interference_seed"] = u64Json(world.interferenceSeed);
  worldJson["quorum_vantages"] =
      Json::number(std::int64_t{world.quorumVantages});
  out["world"] = std::move(worldJson);

  out["quorum"] = Json::number(std::int64_t{quorum});
  out["hedge"] = Json::boolean(hedge);

  Json healthJson = Json::object();
  healthJson["enabled"] = Json::boolean(healthEnabled);
  healthJson["failure_threshold"] =
      Json::number(std::int64_t{breaker.failureThreshold});
  healthJson["cooldown_hours"] = Json::number(breaker.cooldownHours);
  out["health"] = std::move(healthJson);

  out["outages"] = outages.toJson();
  return out;
}

util::Expected<CampaignOptions> CampaignOptions::fromHeaderJson(
    const Json& header) {
  using Result = util::Expected<CampaignOptions>;
  if (!header.isObject())
    return Result::failure("journal header is not an object");
  const auto* type = header.find("type");
  if (type == nullptr || !type->asString() ||
      *type->asString() != "campaign-config")
    return Result::failure("journal header is not a campaign-config record");
  const auto* version = header.find("version");
  if (version == nullptr || !version->asNumber() ||
      *version->asNumber() != 1.0)
    return Result::failure("unsupported campaign-config version");

  CampaignOptions options;
  if (const auto seed = u64FromJson(header.find("seed")))
    options.seed = *seed;
  else
    return Result::failure("journal header has no valid seed");

  if (const auto* worldJson = header.find("world");
      worldJson && worldJson->isObject()) {
    const auto boolean = [&](const char* key, bool& out) {
      if (const auto* v = worldJson->find(key); v && v->asBool())
        out = *v->asBool();
    };
    boolean("hide_external_surfaces", options.world.hideExternalSurfaces);
    boolean("strip_branding", options.world.stripBranding);
    boolean("disregard_submitter", options.world.disregardSubmitter);
    if (const auto* v = worldJson->find("geo_error_rate");
        v && v->asNumber())
      options.world.geoErrorRate = *v->asNumber();
    if (const auto* v = worldJson->find("fault_rate"); v && v->asNumber())
      options.world.faultRate = *v->asNumber();
    if (const auto seed = u64FromJson(worldJson->find("fault_seed")))
      options.world.faultSeed = *seed;
    boolean("packet_mechanisms", options.world.packetMechanisms);
    if (const auto* v = worldJson->find("rst_hold_down_hours");
        v && v->asNumber())
      options.world.rstHoldDownHours = static_cast<int>(*v->asNumber());
    if (const auto* v = worldJson->find("interference_rate");
        v && v->asNumber())
      options.world.interferenceRate = *v->asNumber();
    if (const auto seed = u64FromJson(worldJson->find("interference_seed")))
      options.world.interferenceSeed = *seed;
    if (const auto* v = worldJson->find("quorum_vantages"); v && v->asNumber())
      options.world.quorumVantages = static_cast<int>(*v->asNumber());
  }

  if (const auto* v = header.find("quorum"); v && v->asNumber())
    options.quorum = static_cast<int>(*v->asNumber());
  if (const auto* v = header.find("hedge"); v && v->asBool())
    options.hedge = *v->asBool();

  if (const auto* healthJson = header.find("health");
      healthJson && healthJson->isObject()) {
    if (const auto* v = healthJson->find("enabled"); v && v->asBool())
      options.healthEnabled = *v->asBool();
    if (const auto* v = healthJson->find("failure_threshold");
        v && v->asNumber())
      options.breaker.failureThreshold = static_cast<int>(*v->asNumber());
    if (const auto* v = healthJson->find("cooldown_hours"); v && v->asNumber())
      options.breaker.cooldownHours =
          static_cast<std::int64_t>(*v->asNumber());
  }

  if (const auto* outagesJson = header.find("outages")) {
    auto spec = OutageSpec::fromJson(*outagesJson);
    if (!spec) return Result::failure("journal header has malformed outages");
    options.outages = std::move(*spec);
  }
  return options;
}

std::string CampaignReport::digestHex() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

Json CampaignReport::toJson() const {
  Json out = Json::object();
  out["digest"] = Json::string(digestHex());
  out["confirmed_case_studies"] =
      Json::number(std::int64_t{confirmedCaseStudies});
  out["probe_blocked_categories"] =
      Json::number(std::int64_t{probeBlockedCategories});
  out["table4_blocked"] = Json::number(std::int64_t{table4Blocked});
  out["degraded_rows"] = Json::number(std::int64_t{degradedRows});
  if (!vantageHealth.empty()) {
    Json health = Json::object();
    for (const auto& [name, state] : vantageHealth)
      health[name] = Json::string(measure::toString(state));
    out["vantage_health"] = std::move(health);
  }
  return out;
}

CampaignReport runPaperCampaign(const CampaignOptions& options,
                                measure::CampaignJournal* journal) {
  PaperWorld paper(options.seed, options.world);
  CampaignRunContext run;
  run.journal = journal;
  return runPaperCampaign(paper, options, run);
}

CampaignReport runPaperCampaign(PaperWorld& paper,
                                const CampaignOptions& options,
                                const CampaignRunContext& run) {
  std::ostringstream digest;

  auto& world = paper.world();
  if (!options.outages.empty())
    world.setOutagePlan(options.outages.toPlan(options.seed));

  std::optional<measure::HealthRegistry> health;
  if (options.healthEnabled) health.emplace(options.breaker);

  core::CampaignContext ctx;
  ctx.journal = run.journal;
  ctx.health = health ? &*health : nullptr;
  ctx.sharedMemo = run.sharedMemo;
  ctx.memoScope = run.memoScope;

  core::Confirmer confirmer(world, paper.hosting(), paper.vendorSet());

  // --- Table 3: the ten case studies, chronologically, with the §4.4
  // Netsweeper probe interleaved in January 2013.
  CampaignReport report;
  bool categoryProbeDone = false;
  for (const auto& caseStudy : paper.caseStudies()) {
    if (!categoryProbeDone &&
        caseStudy.startDate >= util::CivilDate{2013, 1, 1}) {
      advanceClockTo(world, {2013, 1, 14});
      const auto probe = confirmer.probeNetsweeperCategories(
          "field-yemennet", "lab-toronto", {}, ctx);
      digest << "probe:";
      for (const auto& p : probe) {
        digest << p.category << '=' << (p.blocked ? '1' : '0') << ';';
        if (p.blocked) ++report.probeBlockedCategories;
      }
      digest << '\n';
      categoryProbeDone = true;
    }
    advanceClockTo(world, caseStudy.startDate);

    auto config = caseStudy.config;
    config.classifyMode = options.classifyMode;
    config.classifyThreads = options.classifyThreads;
    config.memoizeVerdicts = options.memoizeVerdicts;
    const auto result = confirmer.run(config, ctx);
    if (result.confirmed) ++report.confirmedCaseStudies;
    report.degradedRows += result.degradedSubmitted + result.degradedControl;

    digest << "case:" << filters::toString(config.product) << '|'
           << config.ispName << '|' << result.dateLabel << '|'
           << result.submittedRatio() << '|' << result.blockedRatio() << '|'
           << (result.confirmed ? 'y' : 'n') << '|'
           << result.pretestAccessibleCount << '|'
           << result.attributedToProduct << '|' << result.controlBlocked
           << '|' << result.notes << '\n';
    for (const auto& r : result.finalResults) digestResult(digest, r);
  }

  // --- Table 4: characterize the four confirmed networks.
  struct Network {
    const char* vantage;
    const char* alpha2;
    util::CivilDate date;
    int runs;
  };
  const std::vector<Network> networks{
      {"field-etisalat", "AE", {2013, 5, 6}, 1},
      {"field-yemennet", "YE", {2013, 4, 1}, 3},
      {"field-du", "AE", {2013, 4, 1}, 1},
      {"field-ooredoo", "QA", {2013, 8, 26}, 1},
  };
  core::Characterizer characterizer(world);
  for (const auto& network : networks) {
    advanceClockTo(world, network.date);
    core::CharacterizeOptions characterizeOptions;
    characterizeOptions.runs = network.runs;
    characterizeOptions.classifyMode = options.classifyMode;
    characterizeOptions.classifyThreads = options.classifyThreads;
    characterizeOptions.memoizeVerdicts = options.memoizeVerdicts;
    characterizeOptions.journal = ctx.journal;
    characterizeOptions.health = ctx.health;
    characterizeOptions.sharedMemo = ctx.sharedMemo;
    characterizeOptions.memoScope = ctx.memoScope;
    if (options.quorum >= 2) {
      // Quorum confirmation replaces per-URL repeats as the inconsistency
      // defense: every URL is fetched from the primary vantage plus its
      // "-q<i>" clones and combined k-of-n (RobustConfirmer).
      characterizeOptions.runs = 1;
      for (int i = 1; i < options.quorum; ++i)
        characterizeOptions.quorumVantages.push_back(
            std::string(network.vantage) + "-q" + std::to_string(i));
      characterizeOptions.robust.quorum = options.quorum;
      if (options.hedge) {
        characterizeOptions.robust.attemptDeadlineHours = 6;
        characterizeOptions.robust.hedgeAttempts = 2;
        characterizeOptions.robust.paceBurst = 4;
        characterizeOptions.robust.paceRefillPerHour = 2.0;
      }
    }
    const auto result = characterizer.characterize(
        network.vantage, "lab-toronto", paper.globalList(),
        paper.localList(network.alpha2), characterizeOptions);

    digest << "network:" << network.vantage << '|'
           << (result.attributedProduct
                   ? filters::toString(*result.attributedProduct)
                   : "(none)");
    for (const auto& [category, cell] : result.cells) {
      digest << '|' << category << '=' << cell.tested << '/' << cell.blocked;
      if (cell.untestable > 0) digest << "/u" << cell.untestable;
      if (cell.contested > 0) digest << "/c" << cell.contested;
      report.table4Blocked += cell.blocked;
    }
    digest << '\n';
    for (const auto& r : result.results) {
      digestResult(digest, r);
      if (r.provenance == measure::Provenance::kDegraded)
        ++report.degradedRows;
    }
  }

  report.digest = util::fnv1a64(digest.str());
  if (health) report.vantageHealth = health->snapshot();

  if (run.journal != nullptr) {
    Json e = CampaignJournal::event("campaign-end", world.now());
    e["digest"] = Json::string(report.digestHex());
    e["confirmed"] = Json::number(std::int64_t{report.confirmedCaseStudies});
    e["degraded_rows"] = Json::number(std::int64_t{report.degradedRows});
    run.journal->sync(e);
  }
  return report;
}

}  // namespace urlf::scenarios
