#include "scenarios/monitor.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>

#include "filters/smartfilter.h"
#include "net/url.h"
#include "util/hash.h"
#include "util/strings.h"

namespace urlf::scenarios {

namespace {

using measure::CampaignJournal;
using report::Json;

/// Seeds the churn overlay / DB-mutation draws apart from each other and
/// from the base stream.
constexpr std::uint64_t kStreamSeedSalt = 0x57EA4D5EEDULL;
constexpr std::uint64_t kChurnSeedSalt = 0xC0417BEA7ULL;
constexpr std::uint64_t kDbSalt = 0xDBC4A97E11ULL;

/// The scripted deployment events fire at these fixed ticks (see
/// MonitorOptions::scriptedEvents).
constexpr int kHideEventTick = 2;
constexpr int kNewDeploymentEventTick = 4;
constexpr int kStripBrandingEventTick = 6;

Json u64Json(std::uint64_t v) {
  // Stored as a decimal string: Json numbers are doubles and would round
  // values above 2^53 (seeds, digests, bit-cast certainties).
  return Json::string(std::to_string(v));
}

std::optional<std::uint64_t> u64FromJson(const Json* json) {
  if (json == nullptr || !json->asString()) return std::nullopt;
  const std::string& text = *json->asString();
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::optional<std::uint64_t> hex16FromJson(const Json* json) {
  if (json == nullptr || !json->asString()) return std::nullopt;
  const std::string& text = *json->asString();
  if (text.size() != 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else
      return std::nullopt;
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

std::optional<std::int64_t> i64FromJson(const Json* json) {
  if (json == nullptr || !json->asNumber()) return std::nullopt;
  return static_cast<std::int64_t>(*json->asNumber());
}

std::optional<filters::ProductKind> productFromString(std::string_view name) {
  for (const auto product : filters::allProducts())
    if (filters::toString(product) == name) return product;
  return std::nullopt;
}

double millisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::string_view toString(MonitorMode mode) {
  switch (mode) {
    case MonitorMode::kFull:
      return "full";
    case MonitorMode::kIncremental:
      return "incremental";
  }
  return "?";
}

// --------------------------------------------------------- options --------

Json MonitorOptions::headerJson() const {
  Json out = Json::object();
  out["type"] = Json::string("monitor-config");
  out["version"] = Json::number(std::int64_t{1});
  out["seed"] = u64Json(seed);

  Json worldJson = Json::object();
  worldJson["hide_external_surfaces"] = Json::boolean(world.hideExternalSurfaces);
  worldJson["strip_branding"] = Json::boolean(world.stripBranding);
  worldJson["disregard_submitter"] = Json::boolean(world.disregardSubmitter);
  worldJson["geo_error_rate"] = Json::number(world.geoErrorRate);
  out["world"] = std::move(worldJson);

  Json streamJson = Json::object();
  streamJson["hosts"] = u64Json(streamHosts);
  streamJson["hosts_per_shard"] = u64Json(hostsPerShard);
  streamJson["countries"] = Json::number(std::int64_t{streamCountries});
  streamJson["bait_fraction"] = Json::number(baitFraction);
  out["stream"] = std::move(streamJson);

  Json churnJson = Json::object();
  churnJson["rebrand_rate"] = Json::number(churn.rebrandRate);
  churnJson["park_rate"] = Json::number(churn.parkRate);
  churnJson["db_mutations_per_tick"] =
      Json::number(std::int64_t{churn.dbMutationsPerTick});
  out["churn"] = std::move(churnJson);

  out["tick_hours"] = Json::number(tickHours);
  out["scripted_events"] = Json::boolean(scriptedEvents);

  Json healthJson = Json::object();
  healthJson["enabled"] = Json::boolean(healthEnabled);
  healthJson["failure_threshold"] =
      Json::number(std::int64_t{breaker.failureThreshold});
  healthJson["cooldown_hours"] = Json::number(breaker.cooldownHours);
  out["health"] = std::move(healthJson);
  return out;
}

util::Expected<MonitorOptions> MonitorOptions::fromHeaderJson(
    const Json& header) {
  using Result = util::Expected<MonitorOptions>;
  if (!header.isObject())
    return Result::failure("checkpoint header is not an object");
  const auto* type = header.find("type");
  if (type == nullptr || !type->asString() ||
      *type->asString() != "monitor-config")
    return Result::failure("checkpoint header is not a monitor-config record");
  const auto* version = header.find("version");
  if (version == nullptr || !version->asNumber() || *version->asNumber() != 1.0)
    return Result::failure("unsupported monitor-config version");

  MonitorOptions options;
  if (const auto seed = u64FromJson(header.find("seed")))
    options.seed = *seed;
  else
    return Result::failure("checkpoint header has no valid seed");

  if (const auto* worldJson = header.find("world");
      worldJson && worldJson->isObject()) {
    const auto boolean = [&](const char* key, bool& out) {
      if (const auto* v = worldJson->find(key); v && v->asBool())
        out = *v->asBool();
    };
    boolean("hide_external_surfaces", options.world.hideExternalSurfaces);
    boolean("strip_branding", options.world.stripBranding);
    boolean("disregard_submitter", options.world.disregardSubmitter);
    if (const auto* v = worldJson->find("geo_error_rate"); v && v->asNumber())
      options.world.geoErrorRate = *v->asNumber();
  }

  if (const auto* streamJson = header.find("stream");
      streamJson && streamJson->isObject()) {
    if (const auto hosts = u64FromJson(streamJson->find("hosts")))
      options.streamHosts = *hosts;
    if (const auto per = u64FromJson(streamJson->find("hosts_per_shard")))
      options.hostsPerShard = *per;
    if (const auto c = i64FromJson(streamJson->find("countries")))
      options.streamCountries = static_cast<int>(*c);
    if (const auto* v = streamJson->find("bait_fraction"); v && v->asNumber())
      options.baitFraction = *v->asNumber();
  }

  if (const auto* churnJson = header.find("churn");
      churnJson && churnJson->isObject()) {
    if (const auto* v = churnJson->find("rebrand_rate"); v && v->asNumber())
      options.churn.rebrandRate = *v->asNumber();
    if (const auto* v = churnJson->find("park_rate"); v && v->asNumber())
      options.churn.parkRate = *v->asNumber();
    if (const auto m = i64FromJson(churnJson->find("db_mutations_per_tick")))
      options.churn.dbMutationsPerTick = static_cast<int>(*m);
  }

  if (const auto h = i64FromJson(header.find("tick_hours")))
    options.tickHours = *h;
  else
    return Result::failure("checkpoint header has no valid tick_hours");
  if (const auto* v = header.find("scripted_events"); v && v->asBool())
    options.scriptedEvents = *v->asBool();
  else
    options.scriptedEvents = false;

  if (const auto* healthJson = header.find("health");
      healthJson && healthJson->isObject()) {
    if (const auto* v = healthJson->find("enabled"); v && v->asBool())
      options.healthEnabled = *v->asBool();
    if (const auto t = i64FromJson(healthJson->find("failure_threshold")))
      options.breaker.failureThreshold = static_cast<int>(*t);
    if (const auto c = i64FromJson(healthJson->find("cooldown_hours")))
      options.breaker.cooldownHours = *c;
  }
  return options;
}

// --------------------------------------------------------- reports --------

std::string TickReport::digestHex() const { return hex16(digest); }

Json TickReport::toJson() const {
  Json out = Json::object();
  out["tick"] = Json::number(std::int64_t{tick});
  out["at_hours"] = Json::number(atHours);
  out["newly_confirmed"] = Json::number(std::int64_t{newlyConfirmed});
  out["decommissioned"] = Json::number(std::int64_t{decommissioned});
  out["relocated"] = Json::number(std::int64_t{relocated});
  out["verdict_flips"] = Json::number(std::int64_t{verdictFlips});
  out["digest"] = Json::string(digestHex());
  out["cells_rebuilt"] = Json::number(static_cast<std::int64_t>(cellsRebuilt));
  out["cell_count"] = Json::number(static_cast<std::int64_t>(cellCount));
  out["validation_hits"] =
      Json::number(static_cast<std::int64_t>(validationHits));
  out["validation_misses"] =
      Json::number(static_cast<std::int64_t>(validationMisses));
  out["urls_tested"] = Json::number(static_cast<std::int64_t>(urlsTested));
  out["urls_reused"] = Json::number(static_cast<std::int64_t>(urlsReused));
  out["scan_ms"] = Json::number(scanMs);
  out["identify_ms"] = Json::number(identifyMs);
  out["test_ms"] = Json::number(testMs);
  return out;
}

std::string MonitorReport::chainDigestHex() const { return hex16(chainDigest); }

// --------------------------------------------------------- session --------

std::unique_ptr<MonitorSession> MonitorSession::create(
    const MonitorOptions& options) {
  auto session = std::unique_ptr<MonitorSession>(new MonitorSession());
  session->options_ = options;
  session->chain_ = util::kFnvOffsetBasis;
  session->buildWorld();
  session->buildTestPlan();
  return session;
}

void MonitorSession::buildWorld() {
  paper_ = std::make_unique<PaperWorld>(options_.seed, options_.world);
  auto& world = paper_->world();

  // Passive normalization: the monitor's re-use guarantees require fetches
  // to be pure functions of (world content, clock). Strip every source of
  // per-exchange dice or fetch side effects — fault plans, outage plans,
  // license-overload rolls, queue-on-access — so the full and incremental
  // modes stay in lockstep and checkpoints need no RNG or queue state.
  world.clearFaultPlan();
  world.clearOutagePlan();
  for (const auto& box : world.middleboxes()) {
    if (auto* deployment = dynamic_cast<filters::Deployment*>(box.get())) {
      deployment->policy().queueAccessedUrls = false;
      deployment->policy().offlineProbability = 0.0;
    }
  }

  if (options_.streamHosts > 0) {
    simnet::ProceduralHostConfig streamConfig;
    streamConfig.hosts = options_.streamHosts;
    streamConfig.countries = options_.streamCountries;
    streamConfig.baitFraction = options_.baitFraction;
    auto base = std::make_shared<simnet::ProceduralHostStream>(
        options_.seed ^ kStreamSeedSalt, streamConfig);
    simnet::ChurnConfig churnConfig;
    churnConfig.rebrandRate = options_.churn.rebrandRate;
    churnConfig.parkRate = options_.churn.parkRate;
    churnConfig.baitFraction = options_.baitFraction;
    churn_ = std::make_shared<simnet::ChurnHostStream>(
        std::move(base), options_.seed ^ kChurnSeedSalt, churnConfig);
    churn_->announceInto(world);
    world.attachHostStream(churn_);
  }

  health_ = measure::HealthRegistry(options_.breaker);
  refreshMaxLag();
  expectedEpoch_ = world.middleboxStateEpoch();
}

void MonitorSession::buildTestPlan() {
  auto& world = paper_->world();
  const auto intern = [&](const std::string& url) -> std::size_t {
    if (const auto it = urlIndex_.find(url); it != urlIndex_.end())
      return it->second;
    PlanUrl plan;
    plan.url = url;
    if (const auto parsed = net::Url::parse(url)) {
      plan.host = util::toLower(parsed->host());
      plan.regDomain = util::toLower(net::registrableDomain(plan.host));
    }
    urls_.push_back(std::move(plan));
    urlIndex_.emplace(url, urls_.size() - 1);
    return urls_.size() - 1;
  };

  for (const auto& vantage : world.vantages()) {
    if (vantage->isLab()) {
      labVantage_ = vantage->name;
      continue;
    }
    VantagePlan plan;
    plan.name = vantage->name;
    std::set<std::size_t> seen;
    const auto add = [&](const measure::TestList& list) {
      for (const auto& entry : list.entries) {
        const std::size_t index = intern(entry.url);
        if (seen.insert(index).second) plan.urlIndices.push_back(index);
      }
    };
    add(paper_->globalList());
    add(paper_->localList(vantage->countryAlpha2));
    vantages_.push_back(std::move(plan));
  }
}

void MonitorSession::refreshMaxLag() {
  std::int64_t lag = 0;
  for (const auto& box : paper_->world().middleboxes())
    if (const auto* deployment =
            dynamic_cast<const filters::Deployment*>(box.get()))
      if (deployment->policy().receivesUpdates)
        lag = std::max(lag, deployment->policy().updateLagHours);
  maxLagHours_ = lag;
}

bool MonitorSession::applyScriptedEvent(int tick) {
  if (!options_.scriptedEvents) return false;
  auto& world = paper_->world();
  if (tick == kHideEventTick) {
    // The Syrian operator firewalls its Blue Coat consoles between scans
    // (Table 5 evasion #1 in motion).
    for (const auto& truth : paper_->groundTruth()) {
      if (truth.product != filters::ProductKind::kBlueCoat ||
          truth.countryAlpha2 != "SY")
        continue;
      for (const std::uint16_t port : {std::uint16_t{8082}, std::uint16_t{80}})
        if (world.endpointAt(truth.serviceIp, port) != nullptr)
          world.unbind(truth.serviceIp, port);
      break;
    }
    return true;
  }
  if (tick == kNewDeploymentEventTick) {
    // A brand-new SmartFilter turns up in a Pakistani university network.
    world.createAs(45595, "PKU-NET", "Pakistani university network", "PK",
                   {net::IpPrefix::parse("111.68.0.0/16").value()});
    filters::FilterPolicy policy;
    policy.blockedCategories = {1};
    auto& deployment = world.makeMiddlebox<filters::SmartFilterDeployment>(
        "PKU SmartFilter", paper_->vendor(filters::ProductKind::kSmartFilter),
        policy);
    deployment.installExternalSurfaces(world, 45595);
    return true;
  }
  if (tick == kStripBrandingEventTick) {
    // YemenNet strips vendor branding from its block pages (evasion #2).
    paper_->yemenNetsweeper().policy().stripBranding = true;
    return true;
  }
  return false;
}

void MonitorSession::applyDbChurn(int tick) {
  if (options_.churn.dbMutationsPerTick <= 0) return;
  auto& world = paper_->world();
  const auto& entries = paper_->globalList().entries;
  if (entries.empty()) return;
  const auto now = world.now();

  for (int i = 0; i < options_.churn.dbMutationsPerTick; ++i) {
    std::uint64_t key =
        options_.seed ^
        (kDbSalt + static_cast<std::uint64_t>(tick) * 0x9E3779B97F4A7C15ULL +
         static_cast<std::uint64_t>(i) * 0xBF58476D1CE4E5B9ULL);
    const auto vendorDraw = util::splitmix64Next(key);
    const auto urlDraw = util::splitmix64Next(key);
    const auto opDraw = util::splitmix64Next(key);
    const auto categoryDraw = util::splitmix64Next(key);

    const auto& products = filters::allProducts();
    const auto kind = products[vendorDraw % products.size()];
    const auto url = net::Url::parse(entries[urlDraw % entries.size()].url);
    if (!url) continue;

    // Draw the category from what deployments of this product actually
    // block, so mutations can flip verdicts rather than land inert.
    std::vector<filters::CategoryId> pool;
    for (const auto& box : world.middleboxes())
      if (const auto* deployment =
              dynamic_cast<const filters::Deployment*>(box.get()))
        if (deployment->kind() == kind)
          for (const auto category : deployment->policy().blockedCategories)
            pool.push_back(category);
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    if (pool.empty()) pool.push_back(1);
    const auto category = pool[categoryDraw % pool.size()];

    auto& db = paper_->vendor(kind).masterDb();
    const std::string host = util::toLower(url->host());
    const unsigned op = static_cast<unsigned>(opDraw % 100);
    if (op < 70) {
      db.addHost(host, category, now);
      mutations_.push_back({"", host, now.hours(), maxLagHours_});
    } else if (op < 90) {
      db.addUrl(*url, category, now);
      mutations_.push_back({url->toString(), "", now.hours(), maxLagHours_});
    } else {
      // Removals are visible to every deployment immediately (entries are
      // deleted, not tombstoned), so their dirty window is just this tick.
      db.removeHost(host);
      mutations_.push_back({"", host, now.hours(), 0});
    }
  }
}

bool MonitorSession::urlDirty(const PlanUrl& url, std::int64_t prevNowHours,
                              std::int64_t nowHours) const {
  for (const auto& mutation : mutations_) {
    if (mutation.addedAtHours > nowHours) continue;
    if (mutation.addedAtHours + mutation.lagHours <= prevNowHours) continue;
    if (!mutation.host.empty()) {
      if (url.host == mutation.host || url.regDomain == mutation.host)
        return true;
    } else if (!mutation.urlText.empty() && url.url == mutation.urlText) {
      return true;
    }
  }
  return false;
}

TickReport MonitorSession::runTick() {
  TickReport report;
  const int t = tick_ + 1;
  report.tick = t;
  auto& world = paper_->world();

  // --- evolve the world ----------------------------------------------------
  bool eventTick = false;
  bool epochTrip = false;
  if (t > 0) {
    world.clock().advanceHours(options_.tickHours);
    eventTick = applyScriptedEvent(t);
    // Tripwire: someone mutated filtering state behind the monitor's back
    // (an epoch move we neither scripted nor churned). Retest everything.
    epochTrip = !eventTick && world.middleboxStateEpoch() != expectedEpoch_;
    if (eventTick || epochTrip) ++eagerGen_;
    refreshMaxLag();
    applyDbChurn(t);
  }
  expectedEpoch_ = world.middleboxStateEpoch();
  if (churn_) churn_->setTick(static_cast<std::uint64_t>(t));
  report.atHours = world.now().hours();

  // The AS/prefix layout only moves on scripted events (or out-of-band
  // mutation caught by the tripwire); DB and content churn never touch it.
  // geo_ is a stable-address member, so the incremental crawler's reference
  // stays valid across rebuilds.
  if (!geoBuilt_ || eventTick || epochTrip) {
    geo_ = world.buildGeoDatabase(options_.world.geoErrorRate);
    whois_ = world.buildAsnDatabase();
    geoBuilt_ = true;
  }

  // --- re-scan -------------------------------------------------------------
  const auto scanStart = std::chrono::steady_clock::now();
  if (options_.mode == MonitorMode::kFull) {
    scan::StreamCrawlOptions crawlOptions;
    crawlOptions.threadLimit = options_.threads;
    crawlOptions.hostsPerShard = options_.hostsPerShard;
    index_ = scan::crawlStream(world, geo_, crawlOptions);
  } else {
    if (!crawler_) {
      scan::IncrementalCrawlOptions crawlOptions;
      crawlOptions.threadLimit = options_.threads;
      crawlOptions.hostsPerShard = options_.hostsPerShard;
      crawler_ =
          std::make_unique<scan::IncrementalCrawler>(world, geo_, crawlOptions);
    }
    const auto tickU = static_cast<std::uint64_t>(t);
    crawler_->refresh([&](std::uint64_t id) {
      return churn_ != nullptr && churn_->dirtyAt(id, tickU);
    });
    index_ = crawler_->assemble();
    report.cellsRebuilt = crawler_->cellsRebuilt();
    report.cellCount = crawler_->cellCount();
  }
  report.scanMs = millisSince(scanStart);

  // --- re-identify ---------------------------------------------------------
  const auto identifyStart = std::chrono::steady_clock::now();
  core::IdentifierConfig identifierConfig;
  identifierConfig.threads = options_.threads;
  core::Identifier identifier(world, index_,
                              fingerprint::Engine::withBuiltinSignatures(),
                              geo_, whois_, identifierConfig);
  std::map<filters::ProductKind, std::vector<core::Installation>> fresh;
  if (options_.mode == MonitorMode::kFull) {
    fresh = identifier.identifyAll();
  } else {
    const auto hitsBefore = validationCache_.hits();
    const auto missesBefore = validationCache_.misses();
    fresh = identifier.identifyAllCached(
        validationCache_,
        [&](net::Ipv4Addr ip, std::uint16_t port) -> std::uint64_t {
          if (churn_)
            if (const auto id = churn_->hostAt(ip, port))
              return churn_->lastContentChange(*id);
          // Bound (eager) surfaces answer live deployment state the churn
          // feed cannot see. In a normalized monitor world that state moves
          // only on scripted events or an epoch tripwire, so eagerGen_ —
          // bumped exactly then — is a sound validation epoch for them.
          return eagerGen_ | (1ULL << 63);
        });
    report.validationHits = validationCache_.hits() - hitsBefore;
    report.validationMisses = validationCache_.misses() - missesBefore;
  }
  report.identifyMs = millisSince(identifyStart);

  // --- differential view ---------------------------------------------------
  const auto diffs = core::diffAll(installs_, fresh);
  for (const auto& [product, diff] : diffs) {
    report.newlyConfirmed += static_cast<int>(diff.appeared.size());
    report.decommissioned += static_cast<int>(diff.vanished.size());
    report.relocated += static_cast<int>(diff.relocated.size());
    const auto note = [&](char sign, const core::Installation& installation) {
      if (report.notes.size() >= 16) return;
      std::string line;
      line += sign;
      line += ' ';
      line += filters::toString(product);
      line += ' ';
      line += installation.ip.toString();
      line += " (";
      line += installation.countryAlpha2;
      line += ')';
      report.notes.push_back(std::move(line));
    };
    for (const auto& installation : diff.appeared) note('+', installation);
    for (const auto& installation : diff.vanished) note('-', installation);
    for (const auto& [before, after] : diff.relocated) {
      if (report.notes.size() >= 16) break;
      report.notes.push_back("~ " + std::string(filters::toString(product)) +
                             ' ' + after->ip.toString() + " (" +
                             before->countryAlpha2 + " -> " +
                             after->countryAlpha2 + ')');
    }
  }
  installs_ = std::move(fresh);

  // --- re-test -------------------------------------------------------------
  const auto testStart = std::chrono::steady_clock::now();
  // The full reference re-tests everything every tick; incremental reuse
  // must be indistinguishable from that in the digest.
  const bool allDirty = t == 0 || eventTick || epochTrip ||
                        options_.mode == MonitorMode::kFull;
  const std::int64_t nowHours = world.now().hours();
  const std::int64_t prevNowHours = nowHours - options_.tickHours;
  std::vector<VerdictRow> rows;
  const auto* lab = world.findVantage(labVantage_);

  for (std::size_t v = 0; v < vantages_.size(); ++v) {
    const auto& plan = vantages_[v];
    const auto* field = world.findVantage(plan.name);
    measure::Client client(world, *field, *lab);
    if (options_.healthEnabled) client.setHealthRegistry(&health_);

    const bool vantageAllDirty =
        allDirty || !client.cacheableChains() ||
        (options_.healthEnabled &&
         health_.of(plan.name).state() != measure::BreakerState::kClosed);

    std::vector<std::size_t> dirtyIndices;
    std::vector<std::string> dirtyUrls;
    dirtyIndices.reserve(plan.urlIndices.size());
    for (const std::size_t index : plan.urlIndices) {
      const bool dirty = vantageAllDirty || urlDirty(urls_[index], prevNowHours, nowHours) ||
                         !verdictCache_.contains(rowKey(v, index));
      if (!dirty) continue;
      dirtyIndices.push_back(index);
      dirtyUrls.push_back(urls_[index].url);
    }
    report.urlsTested += dirtyUrls.size();
    report.urlsReused += plan.urlIndices.size() - dirtyUrls.size();

    const auto results = client.testListBatched(dirtyUrls, options_.threads);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& result = results[i];
      VerdictRow row;
      row.vantage = plan.name;
      row.url = result.url;
      row.verdict = result.verdict;
      row.provenance = result.provenance;
      if (result.blockPage) {
        row.blockProduct = filters::toString(result.blockPage->product);
        row.patternName = result.blockPage->patternName;
      }
      row.fieldOutcome = static_cast<int>(result.field.outcome);
      row.fieldStatus =
          result.field.response ? result.field.response->statusCode : 0;

      auto& slot = verdictCache_[rowKey(v, dirtyIndices[i])];
      if (t > 0 && !slot.url.empty() && slot.verdict != row.verdict)
        ++report.verdictFlips;
      slot = std::move(row);
    }
    for (const std::size_t index : plan.urlIndices)
      rows.push_back(verdictCache_.at(rowKey(v, index)));
  }
  rows_ = std::move(rows);
  report.testMs = millisSince(testStart);

  // --- digest --------------------------------------------------------------
  std::ostringstream canon;
  for (const auto& [product, installations] : installs_) {
    for (const auto& installation : installations) {
      char certainty[32];
      std::snprintf(certainty, sizeof certainty, "%.6f",
                    installation.certainty);
      canon << filters::toString(product) << '|'
            << installation.ip.toString() << '|' << installation.port << '|'
            << installation.countryAlpha2 << '|' << certainty << '|';
      for (std::size_t i = 0; i < installation.evidence.size(); ++i) {
        if (i > 0) canon << ',';
        canon << installation.evidence[i];
      }
      canon << '\n';
    }
  }
  for (const auto& row : rows_)
    canon << row.vantage << '|' << row.url << '|'
          << static_cast<int>(row.verdict) << '|'
          << static_cast<int>(row.provenance) << '|' << row.blockProduct
          << '|' << row.patternName << '|' << row.fieldOutcome << '|'
          << row.fieldStatus << '\n';
  const std::string text = canon.str();
  report.digest = util::fnv1a64(text);
  chain_ = util::fnv1a64(text, chain_);

  tick_ = t;
  return report;
}

// ------------------------------------------------------- checkpoint --------

void MonitorSession::writeCheckpoint(const std::string& path) const {
  auto journal = CampaignJournal::start(path, options_.headerJson());
  Json state = CampaignJournal::event("monitor-state", paper_->world().now());
  state["tick"] = Json::number(std::int64_t{tick_});
  state["chain"] = Json::string(hex16(chain_));

  Json installations = Json::array();
  for (const auto& [product, list] : installs_) {
    for (const auto& installation : list) {
      Json entry = Json::object();
      entry["product"] = Json::string(filters::toString(product));
      entry["ip"] = Json::string(installation.ip.toString());
      entry["port"] = Json::number(std::int64_t{installation.port});
      entry["country"] = Json::string(installation.countryAlpha2);
      // Bit pattern, not decimal text: the restored certainty must compare
      // exactly equal in the next tick's digest.
      entry["certainty_bits"] =
          u64Json(std::bit_cast<std::uint64_t>(installation.certainty));
      Json evidence = Json::array();
      for (const auto& line : installation.evidence)
        evidence.push(Json::string(line));
      entry["evidence"] = std::move(evidence);
      installations.push(std::move(entry));
    }
  }
  state["installations"] = std::move(installations);

  Json verdicts = Json::array();
  for (const auto& row : rows_) {
    Json entry = Json::object();
    entry["vantage"] = Json::string(row.vantage);
    entry["url"] = Json::string(row.url);
    entry["verdict"] = Json::number(std::int64_t{static_cast<int>(row.verdict)});
    entry["provenance"] =
        Json::number(std::int64_t{static_cast<int>(row.provenance)});
    entry["block_product"] = Json::string(row.blockProduct);
    entry["pattern"] = Json::string(row.patternName);
    entry["field_outcome"] = Json::number(std::int64_t{row.fieldOutcome});
    entry["field_status"] = Json::number(std::int64_t{row.fieldStatus});
    verdicts.push(std::move(entry));
  }
  state["verdicts"] = std::move(verdicts);

  Json healthEntries = Json::array();
  if (options_.healthEnabled) {
    for (const auto& [name, vantage] : health_.entries()) {
      Json entry = Json::object();
      entry["vantage"] = Json::string(name);
      entry["state"] =
          Json::number(std::int64_t{static_cast<int>(vantage.state())});
      entry["failures"] =
          Json::number(std::int64_t{vantage.consecutiveFailures()});
      entry["opened_at"] = Json::number(vantage.openedAt().hours());
      entry["allowed"] = u64Json(vantage.requestsAllowed());
      entry["quarantined"] = u64Json(vantage.requestsQuarantined());
      entry["times_opened"] = u64Json(vantage.timesOpened());
      healthEntries.push(std::move(entry));
    }
  }
  state["health"] = std::move(healthEntries);

  journal.sync(state);
}

util::Expected<std::unique_ptr<MonitorSession>> MonitorSession::resume(
    const std::string& checkpointPath, MonitorMode mode, std::size_t threads) {
  using Result = util::Expected<std::unique_ptr<MonitorSession>>;
  auto journal = CampaignJournal::open(checkpointPath);
  if (!journal) return Result::failure("monitor resume: " + journal.error());
  return resumeFromJournal(std::move(journal.value()), mode, threads);
}

util::Expected<std::unique_ptr<MonitorSession>>
MonitorSession::resumeFromJournal(CampaignJournal journal, MonitorMode mode,
                                  std::size_t threads) {
  using Result = util::Expected<std::unique_ptr<MonitorSession>>;
  auto optionsResult = MonitorOptions::fromHeaderJson(journal.header());
  if (!optionsResult)
    return Result::failure("monitor resume: " + optionsResult.error());
  MonitorOptions options = std::move(optionsResult.value());
  options.mode = mode;
  options.threads = threads;

  if (journal.recordCount() == 0)
    return Result::failure(
        "monitor resume: checkpoint has no intact state record");
  const Json& state = journal.records().back();
  const auto* type = state.find("type");
  if (type == nullptr || !type->asString() ||
      *type->asString() != "monitor-state")
    return Result::failure("monitor resume: last record is not monitor-state");
  const auto tickValue = i64FromJson(state.find("tick"));
  if (!tickValue || *tickValue < 0)
    return Result::failure("monitor resume: state record has no valid tick");
  const int tick = static_cast<int>(*tickValue);
  const auto chain = hex16FromJson(state.find("chain"));
  if (!chain)
    return Result::failure("monitor resume: state record has no digest chain");

  auto session = create(options);

  // Re-evolve the world to the checkpoint tick: clock, scripted events, and
  // DB churn only — no scanning or testing. This is O(ticks) bookkeeping,
  // independent of world size and pipeline cost.
  auto& world = session->paper_->world();
  for (int t = 1; t <= tick; ++t) {
    world.clock().advanceHours(options.tickHours);
    session->applyScriptedEvent(t);
    session->refreshMaxLag();
    session->applyDbChurn(t);
  }
  session->expectedEpoch_ = world.middleboxStateEpoch();
  if (session->churn_)
    session->churn_->setTick(static_cast<std::uint64_t>(tick));
  const auto atHours = i64FromJson(state.find("t"));
  if (!atHours || *atHours != world.now().hours())
    return Result::failure(
        "monitor resume: checkpoint clock does not match the replayed world");

  // Restore the snapshotted caches.
  const auto* installations = state.find("installations");
  if (installations == nullptr || !installations->isArray())
    return Result::failure("monitor resume: state record has no installations");
  for (const auto& entry : *installations->asArray()) {
    const auto* productName = entry.find("product");
    const auto* ipText = entry.find("ip");
    const auto port = i64FromJson(entry.find("port"));
    const auto* country = entry.find("country");
    const auto certaintyBits = u64FromJson(entry.find("certainty_bits"));
    if (productName == nullptr || !productName->asString() ||
        ipText == nullptr || !ipText->asString() || !port ||
        country == nullptr || !country->asString() || !certaintyBits)
      return Result::failure("monitor resume: malformed installation record");
    const auto product = productFromString(*productName->asString());
    const auto ip = net::Ipv4Addr::parse(*ipText->asString());
    if (!product || !ip)
      return Result::failure("monitor resume: malformed installation record");
    core::Installation installation;
    installation.product = *product;
    installation.ip = *ip;
    installation.port = static_cast<std::uint16_t>(*port);
    installation.countryAlpha2 = *country->asString();
    installation.certainty = std::bit_cast<double>(*certaintyBits);
    if (const auto* evidence = entry.find("evidence");
        evidence && evidence->isArray())
      for (const auto& line : *evidence->asArray())
        if (line.asString())
          installation.evidence.push_back(*line.asString());
    session->installs_[*product].push_back(std::move(installation));
  }

  const auto* verdicts = state.find("verdicts");
  if (verdicts == nullptr || !verdicts->isArray())
    return Result::failure("monitor resume: state record has no verdicts");
  std::unordered_map<std::string, std::size_t> vantageIndex;
  for (std::size_t v = 0; v < session->vantages_.size(); ++v)
    vantageIndex.emplace(session->vantages_[v].name, v);
  for (const auto& entry : *verdicts->asArray()) {
    const auto* vantage = entry.find("vantage");
    const auto* url = entry.find("url");
    const auto verdict = i64FromJson(entry.find("verdict"));
    const auto provenance = i64FromJson(entry.find("provenance"));
    const auto* blockProduct = entry.find("block_product");
    const auto* pattern = entry.find("pattern");
    const auto outcome = i64FromJson(entry.find("field_outcome"));
    const auto status = i64FromJson(entry.find("field_status"));
    if (vantage == nullptr || !vantage->asString() || url == nullptr ||
        !url->asString() || !verdict || !provenance ||
        blockProduct == nullptr || !blockProduct->asString() ||
        pattern == nullptr || !pattern->asString() || !outcome || !status)
      return Result::failure("monitor resume: malformed verdict record");
    const auto vIt = vantageIndex.find(*vantage->asString());
    const auto uIt = session->urlIndex_.find(*url->asString());
    if (vIt == vantageIndex.end() || uIt == session->urlIndex_.end())
      return Result::failure(
          "monitor resume: checkpoint does not match the world's test plan");
    VerdictRow row;
    row.vantage = *vantage->asString();
    row.url = *url->asString();
    row.verdict = static_cast<measure::Verdict>(*verdict);
    row.provenance = static_cast<measure::Provenance>(*provenance);
    row.blockProduct = *blockProduct->asString();
    row.patternName = *pattern->asString();
    row.fieldOutcome = static_cast<int>(*outcome);
    row.fieldStatus = static_cast<int>(*status);
    session->rows_.push_back(row);
    session->verdictCache_[rowKey(vIt->second, uIt->second)] = std::move(row);
  }

  if (const auto* healthEntries = state.find("health");
      healthEntries && healthEntries->isArray()) {
    for (const auto& entry : *healthEntries->asArray()) {
      const auto* name = entry.find("vantage");
      const auto breakerState = i64FromJson(entry.find("state"));
      const auto failures = i64FromJson(entry.find("failures"));
      const auto openedAt = i64FromJson(entry.find("opened_at"));
      const auto allowed = u64FromJson(entry.find("allowed"));
      const auto quarantined = u64FromJson(entry.find("quarantined"));
      const auto timesOpened = u64FromJson(entry.find("times_opened"));
      if (name == nullptr || !name->asString() || !breakerState ||
          *breakerState < 0 || *breakerState > 2 || !failures || !openedAt ||
          !allowed || !quarantined || !timesOpened)
        return Result::failure("monitor resume: malformed health record");
      session->health_.of(*name->asString())
          .restore(static_cast<measure::BreakerState>(*breakerState),
                   static_cast<int>(*failures), util::SimTime(*openedAt),
                   *allowed, *quarantined, *timesOpened);
    }
  }

  session->chain_ = *chain;
  session->tick_ = tick;
  return Result(std::move(session));
}

MonitorReport runMonitor(const MonitorOptions& options,
                         const std::string& checkpointPath) {
  MonitorReport report;
  auto session = MonitorSession::create(options);
  for (int t = 0; t <= options.ticks; ++t) {
    report.ticks.push_back(session->runTick());
    if (!checkpointPath.empty()) session->writeCheckpoint(checkpointPath);
  }
  report.chainDigest = session->chainDigest();
  return report;
}

}  // namespace urlf::scenarios
