#include "scenarios/paper_world.h"

#include <stdexcept>

#include "http/html.h"
#include "simnet/echo_server.h"
#include "simnet/origin_server.h"
#include "util/strings.h"

namespace urlf::scenarios {

using filters::FilterPolicy;
using filters::ProductKind;

namespace {

/// The submitter identity the confirmation methodology uses by default
/// (must match CaseStudyConfig::submitterId).
constexpr std::string_view kSubmitterId = "citizenlab-tester@webmail.example";

/// Tuned so the Du deployment's partial sync misses exactly one of the six
/// domains submitted in the 3/2013 Netsweeper case study (Table 3: 5/6).
constexpr std::uint64_t kDuSyncSalt = 0x3E;

}  // namespace

PaperWorld::PaperWorld(std::uint64_t seed, PaperWorldOptions options)
    : options_(options), world_(seed) {
  if (options_.faultRate > 0.0) {
    const std::uint64_t faultSeed =
        options_.faultSeed != 0 ? options_.faultSeed : seed ^ 0xFA017FA017ULL;
    world_.setFaultPlan(simnet::FaultPlan(
        faultSeed, simnet::FaultRates::uniform(options_.faultRate)));
  }
  if (options_.interferenceRate > 0.0) {
    const std::uint64_t interferenceSeed =
        options_.interferenceSeed != 0 ? options_.interferenceSeed
                                       : seed ^ 0x1F7E12FE9EULL;
    simnet::InterferencePlan plan(interferenceSeed);
    using MT = simnet::MimicTemplate;
    const auto profileWithPool = [&](std::vector<MT> pool) {
      simnet::InterferenceProfile profile;
      profile.tarpitRate = options_.interferenceRate;
      profile.flakyRate = options_.interferenceRate;
      profile.mimicryRate = options_.interferenceRate;
      profile.mimicPool = std::move(pool);
      return profile;
    };
    plan.setDefaultProfile(profileWithPool(
        {MT::kSmartFilter, MT::kBlueCoat, MT::kNetsweeper, MT::kWebsense}));
    // Each case-study ISP mimics only vendors it does NOT deploy, so every
    // mimicked blockpage is a misattribution bait (Table 3 arrangements).
    plan.setIspProfile("Etisalat",
                       profileWithPool({MT::kNetsweeper, MT::kWebsense}));
    plan.setIspProfile("Du", profileWithPool({MT::kSmartFilter, MT::kBlueCoat,
                                              MT::kWebsense}));
    plan.setIspProfile("Ooredoo",
                       profileWithPool({MT::kSmartFilter, MT::kWebsense}));
    plan.setIspProfile("YemenNet",
                       profileWithPool({MT::kSmartFilter, MT::kBlueCoat,
                                        MT::kWebsense}));
    plan.setIspProfile("Bayanat Al-Oula", profileWithPool({MT::kBlueCoat,
                                                           MT::kNetsweeper,
                                                           MT::kWebsense}));
    plan.setIspProfile("Nournet", profileWithPool({MT::kBlueCoat,
                                                   MT::kNetsweeper,
                                                   MT::kWebsense}));
    world_.setInterferencePlan(std::move(plan));
  }
  buildBackbone();
  buildVendors();
  buildCaseStudyIsps();
  buildFigure1Installations();
  buildDecoys();
  buildContentSites();
  buildPacketMechanisms();
  buildCaseStudies();

  if (options_.quorumVantages > 0) {
    // Clone every field vantage ("<name>-q<i>", same ISP and country) so a
    // RobustConfirmer can form a cross-vantage quorum. Vantage creation
    // draws no randomness and the knob defaults to 0, so stock campaign
    // digests cannot move.
    std::vector<const simnet::VantagePoint*> fieldVantages;
    for (const auto& vantage : world_.vantages())
      if (vantage->isp != nullptr) fieldVantages.push_back(vantage.get());
    for (const auto* vantage : fieldVantages)
      for (int i = 1; i <= options_.quorumVantages; ++i)
        world_.createVantage(vantage->name + "-q" + std::to_string(i),
                             vantage->countryAlpha2, vantage->isp);
  }
}

net::IpPrefix PaperWorld::nextPrefix() {
  const std::uint32_t a = 60 + prefixCursor_ / 200;
  const std::uint32_t b = prefixCursor_ % 200;
  ++prefixCursor_;
  return net::IpPrefix{net::Ipv4Addr{(a << 24) | (b << 16)}, 16};
}

core::VendorSet PaperWorld::vendorSet() const {
  core::VendorSet set;
  set.add(*blueCoatVendor_);
  set.add(*smartFilterVendor_);
  set.add(*netsweeperVendor_);
  set.add(*websenseVendor_);
  return set;
}

filters::Vendor& PaperWorld::vendor(ProductKind kind) {
  switch (kind) {
    case ProductKind::kBlueCoat: return *blueCoatVendor_;
    case ProductKind::kSmartFilter: return *smartFilterVendor_;
    case ProductKind::kNetsweeper: return *netsweeperVendor_;
    case ProductKind::kWebsense: return *websenseVendor_;
  }
  throw std::invalid_argument("PaperWorld::vendor: unknown kind");
}

const measure::TestList& PaperWorld::localList(const std::string& alpha2) const {
  static const measure::TestList kEmpty{"empty", {}};
  const auto it = localLists_.find(util::toUpper(alpha2));
  return it == localLists_.end() ? kEmpty : it->second;
}

void PaperWorld::buildBackbone() {
  // Networks the measurement apparatus itself depends on.
  world_.createAs(15169, "WEBCORP", "WebCorp content hosting", "US",
                  {nextPrefix()});
  world_.createAs(3561, "VENDORNET", "Vendor-operated infrastructure", "US",
                  {nextPrefix()});
  world_.createAs(kHostingAsn, "HOSTCO",
                  "Commodity cloud hosting (fresh test domains)", "US",
                  {nextPrefix()});

  // The uncensored lab at the University of Toronto (§4.1).
  world_.createVantage("lab-toronto", "CA", nullptr);

  // Request-echo origin for transparent-proxy detection (§7).
  auto& echo =
      world_.makeEndpoint<simnet::RequestEchoServer>("echo.mlab-test.org");
  const auto echoIp = world_.allocateAddress(15169);
  world_.bind(echoIp, 80, echo, /*externallyVisible=*/true);
  world_.registerHostname("echo.mlab-test.org", echoIp);
  echoUrl_ = "http://echo.mlab-test.org/";
}

std::vector<core::ReferenceSite> PaperWorld::referenceSites(
    ProductKind kind) const {
  // Long-standing public sites whose vendor categorization is well known —
  // what the paper leaned on when working out which categories an ISP
  // blocks (Challenge 1, §4.3).
  struct Mapping {
    const char* url;
    const char* categoryName;
  };
  std::vector<Mapping> mappings;
  switch (kind) {
    case ProductKind::kSmartFilter:
      mappings = {{"http://freeproxyhub.com/", "Anonymizers"},
                  {"http://anonbrowse.net/", "Anonymizers"},
                  {"http://adultvideosite.com/", "Pornography"},
                  {"http://casinoroyalegames.com/", "Gambling"}};
      break;
    case ProductKind::kNetsweeper:
      mappings = {{"http://freeproxyhub.com/", "Proxy Anonymizer"},
                  {"http://anonbrowse.net/", "Proxy Anonymizer"},
                  {"http://adultvideosite.com/", "Pornography"},
                  {"http://casinoroyalegames.com/", "Gambling"}};
      break;
    case ProductKind::kBlueCoat:
      mappings = {{"http://freeproxyhub.com/", "Proxy Avoidance"},
                  {"http://adultvideosite.com/", "Pornography"}};
      break;
    case ProductKind::kWebsense:
      mappings = {{"http://freeproxyhub.com/", "Proxy Avoidance"},
                  {"http://adultvideosite.com/", "Adult Content"}};
      break;
  }

  const auto scheme = filters::schemeFor(kind);
  std::vector<core::ReferenceSite> out;
  out.reserve(mappings.size());
  for (const auto& mapping : mappings) {
    const auto category = scheme.byName(mapping.categoryName);
    out.push_back({mapping.url, category ? category->id : 0,
                   mapping.categoryName});
  }
  return out;
}

void PaperWorld::buildVendors() {
  // McAfee reviewed the paper's submissions within a few days; the Saudi
  // experiment saw blocking "after four days", so its review window is
  // 72-96h. Netsweeper/Blue Coat/Websense keep the broader 72-120h window.
  filters::VendorConfig sfConfig;
  sfConfig.reviewLatencyMinHours = 72;
  sfConfig.reviewLatencyMaxHours = 96;

  blueCoatVendor_ =
      std::make_unique<filters::Vendor>(ProductKind::kBlueCoat, world_);
  smartFilterVendor_ = std::make_unique<filters::Vendor>(
      ProductKind::kSmartFilter, world_, sfConfig);
  netsweeperVendor_ =
      std::make_unique<filters::Vendor>(ProductKind::kNetsweeper, world_);
  websenseVendor_ =
      std::make_unique<filters::Vendor>(ProductKind::kWebsense, world_);

  blueCoatVendor_->installInfrastructure(3561);
  smartFilterVendor_->installInfrastructure(3561);
  netsweeperVendor_->installInfrastructure(3561);
  websenseVendor_->installInfrastructure(3561);

  if (options_.disregardSubmitter) {
    for (auto* v : {blueCoatVendor_.get(), smartFilterVendor_.get(),
                    netsweeperVendor_.get(), websenseVendor_.get()})
      v->disregardSubmitter(std::string(kSubmitterId));
  }

  hosting_ = std::make_unique<simnet::HostingProvider>(world_, kHostingAsn);
}

void PaperWorld::buildCaseStudyIsps() {
  const bool visible = !options_.hideExternalSurfaces;
  const bool strip = options_.stripBranding;

  auto basePolicy = [&](std::set<filters::CategoryId> blocked) {
    FilterPolicy policy;
    policy.blockedCategories = std::move(blocked);
    policy.externallyVisible = visible;
    policy.stripBranding = strip;
    return policy;
  };

  // ---- UAE: Etisalat (AS 5384) — Blue Coat ProxySG with SmartFilter as the
  // filtering engine (Challenge 3, §4.5). SmartFilter ids: 1 Pornography,
  // 2 Anonymizers, 8 General News, 9 Politics/Opinion, 10 Religion/Ideology,
  // 17 Lifestyle.
  world_.createAs(5384, "EMIRATES-INTERNET", "Etisalat", "AE", {nextPrefix()});
  auto& etisalat = world_.createIsp("Etisalat", "AE", {5384});

  etisalatSmartFilter_ = &world_.makeMiddlebox<filters::SmartFilterDeployment>(
      "Etisalat SmartFilter", *smartFilterVendor_,
      basePolicy({1, 2, 8, 9, 10, 17}));
  etisalatSmartFilter_->installExternalSurfaces(world_, 5384);

  // The ProxySG's own Web Filter policy is irrelevant once the engine is
  // set; submissions to Blue Coat therefore have no effect in Etisalat.
  etisalatProxySG_ = &world_.makeMiddlebox<filters::BlueCoatProxySG>(
      "Etisalat ProxySG", *blueCoatVendor_, basePolicy({}));
  etisalatProxySG_->installExternalSurfaces(world_, 5384);
  etisalatProxySG_->setFilteringEngine(*etisalatSmartFilter_);
  etisalat.attachMiddlebox(*etisalatProxySG_);
  world_.createVantage("field-etisalat", "AE", &etisalat);

  groundTruth_.push_back({ProductKind::kSmartFilter,
                          etisalatSmartFilter_->serviceIp(), "AE", 5384,
                          "Etisalat", visible});
  groundTruth_.push_back({ProductKind::kBlueCoat, etisalatProxySG_->serviceIp(),
                          "AE", 5384, "Etisalat", visible});

  // ---- UAE: Du (AS 15802) — Netsweeper. Netsweeper ids: 43 Proxy
  // Anonymizer, 19 Government, 29 Lifestyle, 45 Religion, 10 Cults.
  // Partial DB sync yields the 5/6 Table 3 row.
  world_.createAs(15802, "DU-AS", "Emirates Integrated Telecommunications (du)",
                  "AE", {nextPrefix()});
  auto& du = world_.createIsp("Du", "AE", {15802});
  {
    auto policy = basePolicy({43, 19, 29, 45, 10});
    policy.queueAccessedUrls = true;
    policy.syncCoverage = 0.85;
    policy.syncSalt = kDuSyncSalt;
    duNetsweeper_ = &world_.makeMiddlebox<filters::NetsweeperDeployment>(
        "Du Netsweeper", *netsweeperVendor_, std::move(policy));
  }
  duNetsweeper_->installExternalSurfaces(world_, 15802);
  du.attachMiddlebox(*duNetsweeper_);
  world_.createVantage("field-du", "AE", &du);
  groundTruth_.push_back({ProductKind::kNetsweeper, duNetsweeper_->serviceIp(),
                          "AE", 15802, "Du", visible});

  // ---- Qatar: Ooredoo (AS 42298) — Netsweeper for URL filtering, with a
  // Blue Coat proxy present but not filtering (the Table 3 negative rows).
  world_.createAs(42298, "OOREDOO-AS", "Ooredoo Q.S.C.", "QA", {nextPrefix()});
  auto& ooredoo = world_.createIsp("Ooredoo", "QA", {42298});

  ooredooProxySG_ = &world_.makeMiddlebox<filters::BlueCoatProxySG>(
      "Ooredoo ProxySG", *blueCoatVendor_, basePolicy({}));
  ooredooProxySG_->installExternalSurfaces(world_, 42298);
  ooredoo.attachMiddlebox(*ooredooProxySG_);
  {
    auto policy = basePolicy({43, 29, 45});
    policy.queueAccessedUrls = true;
    ooredooNetsweeper_ = &world_.makeMiddlebox<filters::NetsweeperDeployment>(
        "Ooredoo Netsweeper", *netsweeperVendor_, std::move(policy));
  }
  ooredooNetsweeper_->installExternalSurfaces(world_, 42298);
  ooredoo.attachMiddlebox(*ooredooNetsweeper_);
  world_.createVantage("field-ooredoo", "QA", &ooredoo);
  groundTruth_.push_back({ProductKind::kBlueCoat, ooredooProxySG_->serviceIp(),
                          "QA", 42298, "Ooredoo", visible});
  groundTruth_.push_back({ProductKind::kNetsweeper,
                          ooredooNetsweeper_->serviceIp(), "QA", 42298,
                          "Ooredoo", visible});

  // ---- Yemen: YemenNet (AS 12486) — Netsweeper with exactly the five §4.4
  // categories blocked (2 Adult Image, 39 Phishing, 23 Pornography, 43
  // Proxy Anonymizer, 47 Search Keywords) plus an operator custom category
  // (66) that carries the political blocking of Table 4; inconsistent
  // blocking from overload (Challenge 2).
  world_.createAs(12486, "YEMEN-NET", "Public Telecommunication Corporation",
                  "YE", {nextPrefix()});
  auto& yemenNet = world_.createIsp("YemenNet", "YE", {12486});
  {
    auto policy = basePolicy({2, 23, 39, 43, 47, 66});
    policy.queueAccessedUrls = true;
    policy.offlineProbability = 0.25;
    yemenNetsweeper_ = &world_.makeMiddlebox<filters::NetsweeperDeployment>(
        "YemenNet Netsweeper", *netsweeperVendor_, std::move(policy));
  }
  yemenNetsweeper_->installExternalSurfaces(world_, 12486);
  yemenNet.attachMiddlebox(*yemenNetsweeper_);
  world_.createVantage("field-yemennet", "YE", &yemenNet);
  groundTruth_.push_back({ProductKind::kNetsweeper,
                          yemenNetsweeper_->serviceIp(), "YE", 12486,
                          "YemenNet", visible});

  // ---- Saudi Arabia: centralized SmartFilter "effectively used for all
  // ISPs" (§4.3) — one national deployment in the KACST network shared by
  // the chains of Bayanat Al-Oula (AS 48237) and Nournet (AS 29684). Only
  // pornography is blocked: sites classified as proxies stay accessible
  // (Challenge 1).
  world_.createAs(25019, "SAUDINET", "KACST Internet Services Unit", "SA",
                  {nextPrefix()});
  world_.createAs(48237, "BAYANAT-AL-OULA", "Bayanat Al-Oula", "SA",
                  {nextPrefix()});
  world_.createAs(29684, "NOURNET", "Nour Communication Co.", "SA",
                  {nextPrefix()});

  saudiSmartFilter_ = &world_.makeMiddlebox<filters::SmartFilterDeployment>(
      "Saudi national SmartFilter", *smartFilterVendor_, basePolicy({1}));
  saudiSmartFilter_->installExternalSurfaces(world_, 25019);
  groundTruth_.push_back({ProductKind::kSmartFilter,
                          saudiSmartFilter_->serviceIp(), "SA", 25019,
                          "KACST (national)", visible});

  auto& bayanat = world_.createIsp("Bayanat Al-Oula", "SA", {48237});
  bayanat.attachMiddlebox(*saudiSmartFilter_);
  world_.createVantage("field-bayanat", "SA", &bayanat);

  auto& nournet = world_.createIsp("Nournet", "SA", {29684});
  nournet.attachMiddlebox(*saudiSmartFilter_);
  world_.createVantage("field-nournet", "SA", &nournet);
}

filters::Deployment& PaperWorld::addInstallation(
    ProductKind kind, std::uint32_t asn, const std::string& asName,
    const std::string& ispName, const std::string& countryAlpha2,
    FilterPolicy policy) {
  world_.createAs(asn, asName, ispName, countryAlpha2, {nextPrefix()});
  auto& isp = world_.createIsp(ispName, countryAlpha2, {asn});
  policy.externallyVisible = !options_.hideExternalSurfaces;
  policy.stripBranding = options_.stripBranding;

  filters::Deployment* deployment = nullptr;
  switch (kind) {
    case ProductKind::kBlueCoat:
      deployment = &world_.makeMiddlebox<filters::BlueCoatProxySG>(
          ispName + " ProxySG", *blueCoatVendor_, std::move(policy));
      break;
    case ProductKind::kSmartFilter:
      deployment = &world_.makeMiddlebox<filters::SmartFilterDeployment>(
          ispName + " SmartFilter", *smartFilterVendor_, std::move(policy));
      break;
    case ProductKind::kNetsweeper:
      deployment = &world_.makeMiddlebox<filters::NetsweeperDeployment>(
          ispName + " Netsweeper", *netsweeperVendor_, std::move(policy));
      break;
    case ProductKind::kWebsense:
      deployment = &world_.makeMiddlebox<filters::WebsenseDeployment>(
          ispName + " Websense", *websenseVendor_, std::move(policy));
      break;
  }
  deployment->installExternalSurfaces(world_, asn);
  isp.attachMiddlebox(*deployment);
  groundTruth_.push_back({kind, deployment->serviceIp(), countryAlpha2, asn,
                          ispName, !options_.hideExternalSurfaces});
  return *deployment;
}

void PaperWorld::buildFigure1Installations() {
  // Default policies for installations used for ordinary network management.
  auto policyBlocking = [](filters::CategoryId category) {
    FilterPolicy policy;
    policy.blockedCategories = {category};
    return policy;
  };
  const FilterPolicy bcPolicy = policyBlocking(1);   // Pornography
  const FilterPolicy sfPolicy = policyBlocking(1);   // Pornography
  const FilterPolicy nsPolicy = policyBlocking(23);  // Pornography
  const FilterPolicy wsPolicy = policyBlocking(1);   // Adult Content

  // Blue Coat: the new countries §3.2 reports (South America, Europe, Asia,
  // Middle East) plus previously observed ones and the US ISPs named there.
  addInstallation(ProductKind::kBlueCoat, 7303, "TELECOM-ARGENTINA",
                  "Telecom Argentina", "AR", bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 6429, "VTR-BANDA-ANCHA", "VTR", "CL",
                  bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 6667, "ELISA-AS", "Elisa", "FI",
                  bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 3301, "TELIANET", "TeliaSonera", "SE",
                  bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 9299, "IPG-AS", "PLDT", "PH",
                  bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 23969, "TOT-NET", "TOT Public Co.",
                  "TH", bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 3462, "HINET", "Chunghwa Telecom",
                  "TW", bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 8551, "BEZEQ-INTERNATIONAL",
                  "Bezeq International", "IL", bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 42003, "OGERO", "Ogero Telecom", "LB",
                  bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 29256, "STE-AS",
                  "Syrian Telecommunications Establishment", "SY", bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 8452, "TE-AS", "TE Data", "EG",
                  bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 9988, "MPT-MM", "Myanma Posts and "
                  "Telecommunications", "MM", bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 9155, "QUALITYNET", "Qualitynet",
                  "KW", bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 7922, "COMCAST-7922", "Comcast", "US",
                  bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 1239, "SPRINTLINK", "Sprint", "US",
                  bcPolicy);
  addInstallation(ProductKind::kBlueCoat, 306, "USAISC",
                  "United States Information Systems Command", "US", bcPolicy);

  // McAfee SmartFilter: Pakistan (the one previously known scan hit), a US
  // enterprise network, and the previously observed MENA deployments of
  // Table 1 (Kuwait, Bahrain, Iran, Oman, Tunisia).
  addInstallation(ProductKind::kSmartFilter, 17557, "PKTELECOM-AS-PK", "PTCL",
                  "PK", sfPolicy);
  addInstallation(ProductKind::kSmartFilter, 14265, "ENTERPRISE-NET",
                  "US Enterprise Network", "US", sfPolicy);
  addInstallation(ProductKind::kSmartFilter, 21050, "FASTTELCO", "FASTtelco",
                  "KW", sfPolicy);
  addInstallation(ProductKind::kSmartFilter, 5416, "BATELCO-BH", "Batelco",
                  "BH", sfPolicy);
  addInstallation(ProductKind::kSmartFilter, 12880, "DCI-AS",
                  "Iran Telecommunication Company", "IR", sfPolicy);
  addInstallation(ProductKind::kSmartFilter, 28885, "OMANTEL-NAP", "Omantel",
                  "OM", sfPolicy);
  addInstallation(ProductKind::kSmartFilter, 2609, "ATI-TN",
                  "Agence Tunisienne Internet", "TN", sfPolicy);

  // Netsweeper: US educational networks in West Virginia, Oklahoma and
  // Missouri, and the large US ISPs §3.2 names.
  addInstallation(ProductKind::kNetsweeper, 14077, "WVNET",
                  "West Virginia Network", "US", nsPolicy);
  addInstallation(ProductKind::kNetsweeper, 5078, "ONENET", "OneNet Oklahoma",
                  "US", nsPolicy);
  addInstallation(ProductKind::kNetsweeper, 2572, "MORENET",
                  "Missouri Research and Education Network", "US", nsPolicy);
  addInstallation(ProductKind::kNetsweeper, 3549, "GBLX", "Global Crossing",
                  "US", nsPolicy);
  addInstallation(ProductKind::kNetsweeper, 7018, "ATT-INTERNET4", "AT&T", "US",
                  nsPolicy);
  addInstallation(ProductKind::kNetsweeper, 701, "UUNET", "Verizon", "US",
                  nsPolicy);
  addInstallation(ProductKind::kNetsweeper, 6389, "BELLSOUTH-NET-BLK",
                  "BellSouth", "US", nsPolicy);

  // Websense: two Texas utilities' networks (§3.2).
  auto& utility1 = addInstallation(ProductKind::kWebsense, 54201,
                                   "TX-UTILITY-1", "Texas Utility One", "US",
                                   wsPolicy);
  auto& utility2 = addInstallation(ProductKind::kWebsense, 54202,
                                   "TX-UTILITY-2", "Texas Utility Two", "US",
                                   wsPolicy);
  static_cast<filters::WebsenseDeployment&>(utility1).setLicenseModel(
      filters::LicenseModel{.licenses = 5000, .baseUsers = 1000,
                            .peakExtraUsers = 1500, .jitter = 200});
  static_cast<filters::WebsenseDeployment&>(utility2).setLicenseModel(
      filters::LicenseModel{.licenses = 5000, .baseUsers = 800,
                            .peakExtraUsers = 1200, .jitter = 200});
}

void PaperWorld::buildDecoys() {
  struct Decoy {
    std::uint32_t asn;
    const char* asName;
    const char* country;
    const char* hostname;
    const char* title;
    const char* body;
  };
  // Ordinary Web servers across countries, including keyword bait: banners
  // that match Shodan keywords ("webadmin", "proxysg", "url blocked",
  // "blockpage.cgi") but are NOT the products — the validation step must
  // reject them (§3.1: "we are not conservative" at the locate step).
  const Decoy decoys[] = {
      {64501, "DE-HOSTING", "DE", "blog.techtips.de",
       "Tech Tips - sysadmin blog",
       "<h1>Running your own webadmin panel</h1><p>A tutorial about webadmin "
       "tools for small networks.</p>"},
      {64502, "RU-HOSTING", "RU", "reviews.network.ru",
       "Network appliance reviews",
       "<h1>Review: Blue Coat ProxySG appliance</h1><p>We benchmarked the "
       "proxysg against open-source proxies.</p>"},
      {64503, "FR-HOSTING", "FR", "forum.websecurite.fr",
       "Forum - securite web",
       "<h1>Why was this url blocked?</h1><p>Discussion of corporate "
       "filtering false positives.</p>"},
      {64504, "BR-HOSTING", "BR", "www.padaria.br", "Padaria do Centro",
       "<h1>Fresh bread daily</h1>"},
      {64505, "IN-HOSTING", "IN", "cricketnews.in", "Cricket News",
       "<h1>Latest scores</h1>"},
      {64506, "JP-HOSTING", "JP", "ramenguide.jp", "Ramen Guide",
       "<h1>Best ramen in Tokyo</h1>"},
      {64507, "GB-HOSTING", "GB", "weather.uk.example", "UK Weather",
       "<h1>Rain expected</h1>"},
      {64508, "CN-HOSTING", "CN", "shop.example.cn", "Online Shop",
       "<h1>Specials</h1>"},
      {64509, "US-DEVNET", "US", "dev.blockpagetools.example",
       "Blockpage.cgi open-source clone",
       "<h1>blockpage.cgi</h1><p>An open-source block page generator "
       "unrelated to any commercial gateway.</p>"},
      {64510, "AU-HOSTING", "AU", "surfreport.au", "Surf Report",
       "<h1>Swell charts</h1>"},
  };

  for (const auto& d : decoys) {
    world_.createAs(d.asn, d.asName, d.asName, d.country, {nextPrefix()});
    auto& server = world_.makeEndpoint<simnet::OriginServer>(d.hostname);
    simnet::Page page;
    page.title = d.title;
    page.body = d.body;
    page.contentLabel = "benign";
    server.setPage("/", std::move(page));
    const auto ip = world_.allocateAddress(d.asn);
    world_.bind(ip, 80, server, /*externallyVisible=*/true);
    world_.registerHostname(d.hostname, ip);
  }
}

void PaperWorld::addContentSite(
    const std::string& hostname, const std::string& oniCategory,
    const std::string& pageMarker,
    const std::map<ProductKind, std::string>& vendorCategoryNames) {
  auto& server = world_.makeEndpoint<simnet::OriginServer>(hostname);
  simnet::Page page;
  page.title = hostname;
  page.body = "<h1>" + http::escape(hostname) + "</h1><p>" + pageMarker +
              "</p>";
  page.contentLabel = util::toLower(oniCategory);
  server.setPage("/", std::move(page));
  const auto ip = world_.allocateAddress(15169);
  world_.bind(ip, 80, server, /*externallyVisible=*/true);
  world_.registerHostname(hostname, ip);

  for (const auto& [kind, categoryName] : vendorCategoryNames) {
    auto& v = vendor(kind);
    const auto category = v.scheme().byName(categoryName);
    if (!category)
      throw std::logic_error("addContentSite: unknown vendor category " +
                             categoryName);
    v.masterDb().addHost(hostname, category->id);
  }
}

void PaperWorld::buildContentSites() {
  using PK = ProductKind;

  auto addGlobal = [&](const std::string& host, const std::string& oniCategory,
                       const std::string& marker,
                       const std::map<PK, std::string>& cats) {
    addContentSite(host, oniCategory, marker, cats);
    globalList_.entries.push_back({"http://" + host + "/", oniCategory});
  };
  auto addLocal = [&](const std::string& alpha2, const std::string& host,
                      const std::string& oniCategory, const std::string& marker,
                      const std::map<PK, std::string>& cats) {
    addContentSite(host, oniCategory, marker, cats);
    auto& list = localLists_[alpha2];
    if (list.name.empty()) list.name = "local-" + util::toLower(alpha2);
    list.entries.push_back({"http://" + host + "/", oniCategory});
  };

  globalList_.name = "global";

  // --- Global list (§5): constant across countries. Vendor categorization
  // chosen per product so each deployment's category policy induces the
  // Table 4 pattern.
  addGlobal("mediafreedomwatch.org", "Media Freedom",
            "Reporting on press freedom violations worldwide.",
            {{PK::kSmartFilter, "General News"},
             {PK::kNetsweeper, "Journals and Blogs"}});
  addGlobal("pressfreedomdaily.org", "Media Freedom",
            "Independent journalism on media censorship.",
            {{PK::kSmartFilter, "General News"},
             {PK::kNetsweeper, "Journals and Blogs"}});
  addGlobal("humanrightsmonitor.org", "Human Rights",
            "Documenting human rights abuses.",
            {{PK::kNetsweeper, "Politics"}});
  addGlobal("rightswatch.org", "Human Rights",
            "International human rights advocacy.",
            {{PK::kNetsweeper, "Politics"}});
  addGlobal("reformnow.org", "Political Reform",
            "Advocacy for democratic political reform.",
            {{PK::kSmartFilter, "Politics/Opinion"},
             {PK::kNetsweeper, "Government"}});
  addGlobal("democraticchange.org", "Political Reform",
            "Opposition commentary and reform proposals.",
            {{PK::kSmartFilter, "Politics/Opinion"},
             {PK::kNetsweeper, "Government"}});
  addGlobal("lgbtvoices.org", "LGBT",
            "Non-pornographic gay and lesbian community resources.",
            {{PK::kSmartFilter, "Lifestyle"}, {PK::kNetsweeper, "Lifestyle"}});
  addGlobal("rainbowcommunity.org", "LGBT",
            "LGBT support groups and news.",
            {{PK::kSmartFilter, "Lifestyle"}, {PK::kNetsweeper, "Lifestyle"}});
  addGlobal("religioncritique.org", "Religious Criticism",
            "Critical discussion of organized religion.",
            {{PK::kSmartFilter, "Religion/Ideology"},
             {PK::kNetsweeper, "Religion"}});
  addGlobal("secularforum.org", "Religious Criticism",
            "Forum for secularism and free thought.",
            {{PK::kSmartFilter, "Religion/Ideology"},
             {PK::kNetsweeper, "Religion"}});
  addGlobal("minorityfaiths.org", "Minority Groups and Religions",
            "Resources for minority religious communities.",
            {{PK::kNetsweeper, "Cults"}});
  addGlobal("shiacommunity.org", "Minority Groups and Religions",
            "Community site for a minority religious group.",
            {{PK::kNetsweeper, "Cults"}});
  addGlobal("freeproxyhub.com", "Anonymizers and Proxies",
            "Browse the web anonymously with our free Glype mirrors.",
            {{PK::kSmartFilter, "Anonymizers"},
             {PK::kNetsweeper, "Proxy Anonymizer"},
             {PK::kBlueCoat, "Proxy Avoidance"},
             {PK::kWebsense, "Proxy Avoidance"}});
  addGlobal("anonbrowse.net", "Anonymizers and Proxies",
            "Anonymous browsing gateway (Glype).",
            {{PK::kSmartFilter, "Anonymizers"},
             {PK::kNetsweeper, "Proxy Anonymizer"},
             {PK::kBlueCoat, "Proxy Avoidance"},
             {PK::kWebsense, "Proxy Avoidance"}});
  addGlobal("adultvideosite.com", "Pornography",
            "Explicit adult content site.",
            {{PK::kSmartFilter, "Pornography"},
             {PK::kNetsweeper, "Pornography"},
             {PK::kBlueCoat, "Pornography"},
             {PK::kWebsense, "Adult Content"}});
  addGlobal("casinoroyalegames.com", "Gambling", "Online casino games.",
            {{PK::kSmartFilter, "Gambling"}, {PK::kNetsweeper, "Gambling"}});
  addGlobal("worldsportsnews.com", "Popular Culture",
            "Sports scores and highlights.", {});
  addGlobal("searchportal.com", "Search Engines", "Web search portal.", {});
  addGlobal("travelguides.org", "Popular Culture", "Travel guides.", {});
  addGlobal("onlinerecipes.org", "Popular Culture", "Recipe collection.", {});

  // Remaining ONI categories (§5: 40 categories under four themes) — one
  // representative site each, so the global list exercises the whole
  // taxonomy. Vendor categorizations only where the products plausibly
  // carry them; none affect the Table 4 columns.
  addGlobal("oppositionparty.org", "Opposition Parties",
            "Platform of an opposition political party.",
            {{PK::kNetsweeper, "Politics"}});
  addGlobal("govcriticism.net", "Criticism of Government",
            "Commentary critical of government policy.",
            {{PK::kNetsweeper, "Politics"}});
  addGlobal("electionwatch.org", "Elections",
            "Election monitoring and results.", {});
  addGlobal("corruptionleaks.org", "Corruption Reporting",
            "Investigations into official corruption.", {});
  addGlobal("womensrightsnow.org", "Women's Rights",
            "Advocacy for women's rights.", {});
  addGlobal("laborunionvoice.org", "Labor Rights",
            "Union organizing and labor rights news.", {});
  addGlobal("foreignpolicyforum.org", "Foreign Relations",
            "Analysis of foreign relations.", {});
  addGlobal("swimwearcatalog.com", "Provocative Attire",
            "Swimwear catalogue.",
            {{PK::kSmartFilter, "Provocative Attire"},
             {PK::kNetsweeper, "Intimate Apparel"}});
  addGlobal("liquorcellar.com", "Alcohol and Drugs", "Online liquor store.",
            {{PK::kSmartFilter, "Drugs"}, {PK::kNetsweeper, "Alcohol"}});
  addGlobal("datingworld.net", "Dating", "Online dating community.",
            {{PK::kSmartFilter, "Dating/Social Networking"},
             {PK::kNetsweeper, "Dating"}});
  addGlobal("sexedresource.org", "Sex Education",
            "Clinical sex-education resources.",
            {{PK::kNetsweeper, "Sex Education"}});
  addGlobal("translatenow.net", "Translation Tools",
            "Online translation service.",
            {{PK::kNetsweeper, "Translation Sites"}});
  addGlobal("voipcalls.net", "VoIP", "Internet telephony service.", {});
  addGlobal("torrenttracker.net", "Peer to Peer", "Torrent tracker.",
            {{PK::kNetsweeper, "Peer to Peer"}});
  addGlobal("freewebmail.net", "Free Email", "Free webmail provider.",
            {{PK::kNetsweeper, "Web Mail"}});
  addGlobal("cheaphosting.net", "Web Hosting", "Shared Web hosting.",
            {{PK::kNetsweeper, "Web Hosting"}});
  addGlobal("blogplatform.net", "Blogging Platforms",
            "Free blog hosting platform.",
            {{PK::kNetsweeper, "Journals and Blogs"}});
  addGlobal("friendcircle.net", "Social Networking", "Social network.",
            {{PK::kSmartFilter, "Dating/Social Networking"},
             {PK::kNetsweeper, "Social Networking"}});
  addGlobal("videoshare.net", "Multimedia Sharing", "Video sharing site.",
            {{PK::kNetsweeper, "Streaming Media"}});
  addGlobal("warreports.org", "Armed Conflict",
            "Reporting on armed conflicts.", {});
  addGlobal("extremismmonitor.org", "Extremism",
            "Research on extremist movements.", {});
  addGlobal("militantprofiles.org", "Militant Groups",
            "Profiles of militant organizations.", {});
  addGlobal("separatistvoice.org", "Separatist Movements",
            "Separatist movement publications.", {});
  addGlobal("borderdisputes.org", "Border Disputes",
            "Coverage of territorial disputes.", {});
  addGlobal("outdoorarms.com", "Weapons", "Firearms retailer.",
            {{PK::kNetsweeper, "Weapons"}});
  addGlobal("pentestkits.net", "Hacking Tools",
            "Security and penetration-testing tools.",
            {{PK::kSmartFilter, "Criminal Activities"},
             {PK::kNetsweeper, "Criminal Skills"}});
  addGlobal("terrorismcoverage.org", "Terrorism Coverage",
            "News coverage of terrorism.", {});
  addGlobal("defensereview.org", "Military Affairs",
            "Military affairs analysis.", {});
  addGlobal("securitywatchdog.org", "Security Services Criticism",
            "Monitoring of security services abuses.", {});

  // --- Local lists (§5): curated per country by regional experts.
  addLocal("AE", "uaeoppositionvoice.org", "Political Reform",
           "Opposition voices from the Emirates.",
           {{PK::kSmartFilter, "Politics/Opinion"},
            {PK::kNetsweeper, "Government"}});
  addLocal("AE", "gulfmediafreedom.org", "Media Freedom",
           "Gulf media freedom monitor.",
           {{PK::kSmartFilter, "General News"},
            {PK::kNetsweeper, "Journals and Blogs"}});
  addLocal("AE", "emiratisecular.org", "Religious Criticism",
           "Secularist commentary from the region.",
           {{PK::kSmartFilter, "Religion/Ideology"},
            {PK::kNetsweeper, "Religion"}});

  addLocal("QA", "qatarlgbtforum.org", "LGBT",
           "Qatari LGBT community forum.",
           {{PK::kNetsweeper, "Lifestyle"}});
  addLocal("QA", "dohacritique.org", "Religious Criticism",
           "Religious criticism from Doha.", {{PK::kNetsweeper, "Religion"}});
  addLocal("QA", "qatarreform.org", "Political Reform",
           "Political reform advocacy in Qatar.",
           {{PK::kNetsweeper, "Government"}});

  addLocal("SA", "saudireformmovement.org", "Political Reform",
           "Saudi reform movement site.",
           {{PK::kSmartFilter, "Politics/Opinion"}});
  addLocal("SA", "saudiwomenrights.org", "Human Rights",
           "Saudi women's rights campaign.", {});

  addLocal("YE", "yemenpressfreedom.org", "Media Freedom",
           "Yemeni press freedom monitor.",
           {{PK::kNetsweeper, "Journals and Blogs"}});
  addLocal("YE", "yemenhumanrights.org", "Human Rights",
           "Yemeni human rights documentation.", {{PK::kNetsweeper, "Politics"}});
  addLocal("YE", "yemenreform.org", "Political Reform",
           "Political reform discussion in Yemen.",
           {{PK::kNetsweeper, "Government"}});

  // YemenNet's political blocking lives in the operator's custom category
  // (66), so the §4.4 denypagetests probe reports only the five vendor
  // categories the paper found.
  for (const std::string host :
       {"mediafreedomwatch.org", "pressfreedomdaily.org",
        "humanrightsmonitor.org", "rightswatch.org", "reformnow.org",
        "democraticchange.org", "yemenpressfreedom.org",
        "yemenhumanrights.org", "yemenreform.org"})
    yemenNetsweeper_->policy().customDb.addHost(host, 66);
}

void PaperWorld::buildPacketMechanisms() {
  if (!options_.packetMechanisms) return;

  // YemenNet answers NXDOMAIN for its local political zones before the
  // query ever reaches a resolver.
  yemenDnsPoisoner_ = &world_.makePacketFilter<simnet::DnsPoisoner>(
      "YemenNet DNS poisoner", simnet::DnsTamper::Kind::kNxdomain);
  yemenDnsPoisoner_->poisonZone("yemenpressfreedom.org");
  yemenDnsPoisoner_->poisonZone("yemenhumanrights.org");
  world_.findIsp("YemenNet")->attachPacketFilter(*yemenDnsPoisoner_);

  // Ooredoo injects RSTs on matching requests and keeps killing every flow
  // to the same destination for a hold-down window (stateful residual
  // blocking).
  ooredooRstInjector_ = &world_.makePacketFilter<simnet::RstInjector>(
      "Ooredoo RST injector",
      std::vector<std::string>{"qatarlgbtforum.org", "dohacritique.org"},
      options_.rstHoldDownHours);
  world_.findIsp("Ooredoo")->attachPacketFilter(*ooredooRstInjector_);

  // Du blackholes the route: flows neither complete nor fail, they time out.
  duNullRoute_ = &world_.makePacketFilter<simnet::NullRouteFilter>(
      "Du null-route", std::vector<std::string>{"uaeoppositionvoice.org"});
  world_.findIsp("Du")->attachPacketFilter(*duNullRoute_);

  // Etisalat kills TLS handshakes whose hello names a filtered server. The
  // HTTPS origin it acts on only exists in this variant, so default worlds
  // keep their historical shape (and digests) exactly.
  {
    auto& server =
        world_.makeEndpoint<simnet::OriginServer>("securegulfnews.org");
    simnet::Page page;
    page.title = "securegulfnews.org";
    page.body = "<h1>securegulfnews.org</h1><p>Encrypted Gulf news and "
                "commentary.</p>";
    page.contentLabel = "media freedom";
    server.setPage("/", std::move(page));
    const auto ip = world_.allocateAddress(15169);
    world_.bind(ip, 443, server, /*externallyVisible=*/true);
    world_.registerHostname("securegulfnews.org", ip);
    auto& list = localLists_["AE"];
    if (list.name.empty()) list.name = "local-ae";
    list.entries.push_back({"https://securegulfnews.org/", "Media Freedom"});
  }
  etisalatSniFilter_ = &world_.makePacketFilter<simnet::SniFilter>(
      "Etisalat SNI filter", std::vector<std::string>{"securegulfnews.org"});
  world_.findIsp("Etisalat")->attachPacketFilter(*etisalatSniFilter_);
}

void PaperWorld::buildCaseStudies() {
  using PK = ProductKind;
  using CP = simnet::ContentProfile;

  auto makeConfig = [](PK product, std::string country, std::string isp,
                       std::string vantage, std::string category,
                       std::string label, CP profile, int total, int submit) {
    core::CaseStudyConfig config;
    config.product = product;
    config.countryAlpha2 = std::move(country);
    config.ispName = std::move(isp);
    config.fieldVantage = std::move(vantage);
    config.categoryName = std::move(category);
    config.categoryLabel = std::move(label);
    config.profile = profile;
    config.totalSites = total;
    config.sitesToSubmit = submit;
    config.submitterId = std::string(kSubmitterId);
    return config;
  };

  // Chronological order of Table 3.

  // 9/2012 — SmartFilter, Saudi Arabia, Bayanat Al-Oula: 10 adult-image
  // domains, 5 submitted, blocked after four days.
  {
    auto config = makeConfig(PK::kSmartFilter, "SA", "Bayanat Al-Oula",
                             "field-bayanat", "Pornography", "Pornography",
                             CP::kAdultImage, 10, 5);
    config.waitDays = 4;
    caseStudies_.push_back({config, {2012, 9, 3}});
  }
  // 9/2012 — SmartFilter, UAE, Etisalat: 10 Glype proxy domains, 5 submitted
  // under Anonymizers.
  {
    auto config = makeConfig(PK::kSmartFilter, "AE", "Etisalat",
                             "field-etisalat", "Anonymizers", "Anonymizers",
                             CP::kGlypeProxy, 10, 5);
    config.waitDays = 4;
    caseStudies_.push_back({config, {2012, 9, 17}});
  }
  // 3/2013 — Netsweeper, UAE, Du: 12 proxy domains, 6 submitted to
  // test-a-site; no pre-test (access would queue categorization).
  {
    auto config = makeConfig(PK::kNetsweeper, "AE", "Du", "field-du",
                             "Proxy Anonymizer", "Proxy anonymizer",
                             CP::kGlypeProxy, 12, 6);
    config.pretestAccessible = false;
    config.waitDays = 5;
    config.retestRuns = 2;
    caseStudies_.push_back({config, {2013, 3, 4}});
  }
  // 3/2013 — Netsweeper, Yemen, YemenNet: inconsistent blocking; repeated
  // retests (Challenge 2).
  {
    auto config = makeConfig(PK::kNetsweeper, "YE", "YemenNet",
                             "field-yemennet", "Proxy Anonymizer",
                             "Proxy anonymizer", CP::kGlypeProxy, 12, 6);
    config.pretestAccessible = false;
    config.waitDays = 5;
    config.retestRuns = 4;
    caseStudies_.push_back({config, {2013, 3, 11}});
  }
  // 4/2013 — Blue Coat, UAE, Etisalat: 6 proxy domains, 3 submitted to the
  // Proxy Avoidance category; none blocked (SmartFilter does the filtering).
  {
    auto config = makeConfig(PK::kBlueCoat, "AE", "Etisalat", "field-etisalat",
                             "Proxy Avoidance", "Proxy Avoidance",
                             CP::kGlypeProxy, 6, 3);
    config.waitDays = 5;  // Blue Coat's review window runs to 5 days
    caseStudies_.push_back({config, {2013, 4, 1}});
  }
  // 4/2013 — Blue Coat, Qatar, Ooredoo: same, none blocked (Netsweeper does
  // the filtering).
  {
    auto config = makeConfig(PK::kBlueCoat, "QA", "Ooredoo", "field-ooredoo",
                             "Proxy Avoidance", "Proxy Avoidance",
                             CP::kGlypeProxy, 6, 3);
    config.waitDays = 5;
    caseStudies_.push_back({config, {2013, 4, 8}});
  }
  // 4/2013 — SmartFilter, Qatar, Ooredoo: pornography submissions have no
  // effect — SmartFilter is not deployed there.
  caseStudies_.push_back({makeConfig(PK::kSmartFilter, "QA", "Ooredoo",
                                     "field-ooredoo", "Pornography",
                                     "Pornography", CP::kAdultImage, 10, 5),
                          {2013, 4, 15}});
  // 4/2013 — SmartFilter, UAE, Etisalat: pornography, 5/5 blocked.
  {
    auto config = makeConfig(PK::kSmartFilter, "AE", "Etisalat",
                             "field-etisalat", "Pornography", "Pornography",
                             CP::kAdultImage, 10, 5);
    config.waitDays = 4;
    caseStudies_.push_back({config, {2013, 4, 22}});
  }
  // 5/2013 — SmartFilter, Saudi Arabia, Nournet: repeats the Bayanat
  // methodology on a second Saudi ISP.
  {
    auto config = makeConfig(PK::kSmartFilter, "SA", "Nournet", "field-nournet",
                             "Pornography", "Pornography", CP::kAdultImage, 10,
                             5);
    config.waitDays = 4;
    caseStudies_.push_back({config, {2013, 5, 6}});
  }
  // 8/2013 — Netsweeper, Qatar, Ooredoo: 12 proxy domains, 6 submitted, all
  // six blocked.
  {
    auto config = makeConfig(PK::kNetsweeper, "QA", "Ooredoo", "field-ooredoo",
                             "Proxy Anonymizer", "Proxy anonymizer",
                             CP::kGlypeProxy, 12, 6);
    config.pretestAccessible = false;
    config.waitDays = 5;
    caseStudies_.push_back({config, {2013, 8, 5}});
  }
}

}  // namespace urlf::scenarios
