#ifndef URLF_SCENARIOS_RANDOM_WORLD_H
#define URLF_SCENARIOS_RANDOM_WORLD_H

#include <memory>
#include <string>
#include <vector>

#include "core/confirmer.h"
#include "filters/deployment.h"
#include "filters/vendor.h"
#include "simnet/hosting.h"
#include "simnet/world.h"

namespace urlf::scenarios {

/// Knobs for procedural world generation.
struct RandomWorldConfig {
  int countries = 8;                  ///< sampled from the ccTLD registry
  double deploymentProbability = 0.6; ///< chance an ISP runs a URL filter
  double hiddenProbability = 0.2;     ///< deployment not externally visible
  int decoys = 6;                     ///< plain servers (some keyword bait)
  int contentSites = 10;              ///< random pre-categorized sites
  /// Substrate fault preset: when > 0, installs a simnet::FaultPlan with
  /// each fault process at this per-attempt rate (seed derived from the
  /// world seed).
  double faultRate = 0.0;
};

/// A procedurally generated world for property-style testing: random
/// countries, one ISP per country with a field vantage point, random
/// product deployments (some hidden), decoy servers, and content sites.
/// Ground truth about every deployment is recorded so tests can assert the
/// pipeline's recall/precision on topologies nobody hand-crafted.
class RandomWorld {
 public:
  struct DeploymentInfo {
    filters::ProductKind kind = filters::ProductKind::kBlueCoat;
    std::string ispName;
    std::string countryAlpha2;
    std::uint32_t asn = 0;
    std::string fieldVantage;
    net::Ipv4Addr serviceIp;
    bool externallyVisible = true;
    /// The vendor-scheme category name for proxy content in this product.
    std::string proxyCategoryName;
    filters::Deployment* deployment = nullptr;
  };

  explicit RandomWorld(std::uint64_t seed, RandomWorldConfig config = {});

  RandomWorld(const RandomWorld&) = delete;
  RandomWorld& operator=(const RandomWorld&) = delete;

  [[nodiscard]] simnet::World& world() { return world_; }
  [[nodiscard]] simnet::HostingProvider& hosting() { return *hosting_; }
  [[nodiscard]] core::VendorSet vendorSet() const;
  [[nodiscard]] filters::Vendor& vendor(filters::ProductKind kind);

  /// Every deployment created, visible or not.
  [[nodiscard]] const std::vector<DeploymentInfo>& deployments() const {
    return deployments_;
  }

  /// Names of all field vantage points (one per generated country).
  [[nodiscard]] const std::vector<std::string>& fieldVantages() const {
    return fieldVantages_;
  }

  static constexpr const char* kLabVantage = "lab";

 private:
  simnet::World world_;
  std::vector<std::unique_ptr<filters::Vendor>> vendors_;
  std::unique_ptr<simnet::HostingProvider> hosting_;
  std::vector<DeploymentInfo> deployments_;
  std::vector<std::string> fieldVantages_;
};

}  // namespace urlf::scenarios

#endif  // URLF_SCENARIOS_RANDOM_WORLD_H
