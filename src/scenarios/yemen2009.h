#ifndef URLF_SCENARIOS_YEMEN2009_H
#define URLF_SCENARIOS_YEMEN2009_H

#include <memory>

#include "core/confirmer.h"
#include "filters/websense.h"
#include "simnet/hosting.h"
#include "simnet/world.h"

namespace urlf::scenarios {

/// The historical Yemen scenario behind two of the paper's anecdotes:
///
///  * §2.2/§4.4 [25]: YemenNet ran Websense with a limited number of
///    concurrent user licenses — "when the number of users exceeded the
///    number of licenses no content would be filtered" — the original
///    source of the inconsistent-blocking challenge;
///  * §2.2 [35]: after the ONI identified the deployment in 2009, Websense
///    "barred Yemen's government from further software updates" — modeled
///    as freezing the deployment's database snapshot.
///
/// The scenario lets the methodology be exercised against a pre-2013
/// configuration and demonstrates the policy impact: after the update
/// withdrawal, newly categorized sites are never blocked.
class Yemen2009 {
 public:
  explicit Yemen2009(std::uint64_t seed = 2009);

  Yemen2009(const Yemen2009&) = delete;
  Yemen2009& operator=(const Yemen2009&) = delete;

  [[nodiscard]] simnet::World& world() { return world_; }
  [[nodiscard]] filters::Vendor& websense() { return *websense_; }
  [[nodiscard]] filters::WebsenseDeployment& deployment() {
    return *deployment_;
  }
  [[nodiscard]] simnet::HostingProvider& hosting() { return *hosting_; }
  [[nodiscard]] core::VendorSet vendorSet() const;

  /// The §4 case-study configuration for this network (repeated retests to
  /// ride out the license-driven inconsistency).
  [[nodiscard]] core::CaseStudyConfig caseStudyConfig() const;

  /// The vendor's 2009 policy response [35]: no further updates for the
  /// deployment. The master DB keeps growing; the box stops seeing it.
  void websenseWithdrawsSupport();

 private:
  simnet::World world_;
  std::unique_ptr<filters::Vendor> websense_;
  filters::WebsenseDeployment* deployment_ = nullptr;
  std::unique_ptr<simnet::HostingProvider> hosting_;
};

}  // namespace urlf::scenarios

#endif  // URLF_SCENARIOS_YEMEN2009_H
