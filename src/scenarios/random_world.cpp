#include "scenarios/random_world.h"

#include <algorithm>

#include "filters/registry.h"
#include "net/cctld.h"
#include "simnet/origin_server.h"
#include "util/strings.h"

namespace urlf::scenarios {

using filters::ProductKind;

namespace {

std::string proxyCategoryFor(ProductKind kind) {
  switch (kind) {
    case ProductKind::kBlueCoat: return "Proxy Avoidance";
    case ProductKind::kSmartFilter: return "Anonymizers";
    case ProductKind::kNetsweeper: return "Proxy Anonymizer";
    case ProductKind::kWebsense: return "Proxy Avoidance";
  }
  return "";
}

std::string pornCategoryFor(ProductKind kind) {
  switch (kind) {
    case ProductKind::kBlueCoat: return "Pornography";
    case ProductKind::kSmartFilter: return "Pornography";
    case ProductKind::kNetsweeper: return "Pornography";
    case ProductKind::kWebsense: return "Adult Content";
  }
  return "";
}

}  // namespace

RandomWorld::RandomWorld(std::uint64_t seed, RandomWorldConfig config)
    : world_(seed) {
  if (config.faultRate > 0.0)
    world_.setFaultPlan(simnet::FaultPlan(
        seed ^ 0xFA017FA017ULL, simnet::FaultRates::uniform(config.faultRate)));
  auto rng = world_.rng().fork();

  // Backbone: hosting, vendor infra, lab.
  std::uint32_t nextAsn = 70000;
  std::uint32_t nextPrefixIndex = 0;
  auto nextPrefix = [&]() {
    const std::uint32_t a = 70 + nextPrefixIndex / 200;
    const std::uint32_t b = nextPrefixIndex % 200;
    ++nextPrefixIndex;
    return net::IpPrefix{net::Ipv4Addr{(a << 24) | (b << 16)}, 16};
  };

  const std::uint32_t hostingAsn = nextAsn++;
  world_.createAs(hostingAsn, "RAND-HOSTING", "Hosting provider", "US",
                  {nextPrefix()});
  const std::uint32_t infraAsn = nextAsn++;
  world_.createAs(infraAsn, "RAND-INFRA", "Vendor infrastructure", "US",
                  {nextPrefix()});
  world_.createVantage(kLabVantage, "CA", nullptr);

  for (const auto kind :
       {ProductKind::kBlueCoat, ProductKind::kSmartFilter,
        ProductKind::kNetsweeper, ProductKind::kWebsense}) {
    vendors_.push_back(std::make_unique<filters::Vendor>(kind, world_));
    vendors_.back()->installInfrastructure(infraAsn);
  }
  hosting_ = std::make_unique<simnet::HostingProvider>(world_, hostingAsn);

  // Countries: a random sample of the registry.
  const auto registry = net::allCountries();
  std::vector<std::size_t> order(registry.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const int countryCount =
      std::min<int>(config.countries, static_cast<int>(order.size()));

  for (int c = 0; c < countryCount; ++c) {
    const auto& country = registry[order[static_cast<std::size_t>(c)]];
    const std::string alpha2(country.alpha2);
    const std::uint32_t asn = nextAsn++;
    world_.createAs(asn, "RAND-AS-" + alpha2, "ISP of " + alpha2, alpha2,
                    {nextPrefix()});
    auto& isp = world_.createIsp("ISP-" + alpha2, alpha2, {asn});
    const std::string vantage = "field-" + util::toLower(alpha2);
    world_.createVantage(vantage, alpha2, &isp);
    fieldVantages_.push_back(vantage);

    if (!rng.chance(config.deploymentProbability)) continue;

    const auto kind =
        static_cast<ProductKind>(rng.uniform(0, 3));
    auto& vendor = this->vendor(kind);
    filters::FilterPolicy policy;
    policy.blockedCategories = {
        vendor.scheme().byName(proxyCategoryFor(kind))->id,
        vendor.scheme().byName(pornCategoryFor(kind))->id,
    };
    policy.externallyVisible = !rng.chance(config.hiddenProbability);

    auto& deployment = filters::makeDeployment(
        world_, kind, "ISP-" + alpha2 + " " + std::string(toString(kind)),
        vendor, policy);
    deployment.installExternalSurfaces(world_, asn);
    isp.attachMiddlebox(deployment);

    deployments_.push_back({kind, isp.name(), alpha2, asn, vantage,
                            deployment.serviceIp(),
                            policy.externallyVisible,
                            proxyCategoryFor(kind), &deployment});
  }

  // Decoys, some with keyword bait the validation step must reject.
  const char* baits[] = {"webadmin tutorial", "proxysg review",
                         "url blocked faq", "blockpage.cgi clone",
                         "gardening tips", "weather report"};
  for (int d = 0; d < config.decoys; ++d) {
    const std::string host = "decoy" + std::to_string(d) + ".example";
    auto& server = world_.makeEndpoint<simnet::OriginServer>(host);
    simnet::Page page;
    page.title = "Decoy " + std::to_string(d);
    page.body = std::string("<h1>") + baits[d % std::size(baits)] + "</h1>";
    server.setPage("/", std::move(page));
    const auto ip = world_.allocateAddress(hostingAsn);
    world_.bind(ip, 80, server, /*externallyVisible=*/true);
    world_.registerHostname(host, ip);
  }

  // Content sites, randomly pre-categorized in a random vendor.
  for (int s = 0; s < config.contentSites; ++s) {
    const auto profile = static_cast<simnet::ContentProfile>(rng.uniform(0, 3));
    const auto domain = hosting_->createFreshDomain(profile);
    if (rng.chance(0.5)) {
      auto& vendor = *vendors_[rng.index(vendors_.size())];
      const auto category =
          vendor.scheme().byName(pornCategoryFor(vendor.kind()));
      if (category) vendor.masterDb().addHost(domain.hostname, category->id);
    }
  }
}

core::VendorSet RandomWorld::vendorSet() const {
  core::VendorSet set;
  for (const auto& vendor : vendors_) set.add(*vendor);
  return set;
}

filters::Vendor& RandomWorld::vendor(ProductKind kind) {
  for (const auto& vendor : vendors_)
    if (vendor->kind() == kind) return *vendor;
  throw std::logic_error("RandomWorld: vendor not found");
}

}  // namespace urlf::scenarios
