#include "scenarios/yemen2009.h"

namespace urlf::scenarios {

Yemen2009::Yemen2009(std::uint64_t seed) : world_(seed) {
  world_.createAs(12486, "YEMEN-NET", "Public Telecommunication Corporation",
                  "YE", {net::IpPrefix::parse("82.114.0.0/16").value()});
  world_.createAs(14618, "HOSTCO", "Commodity hosting", "US",
                  {net::IpPrefix::parse("54.224.0.0/16").value()});
  auto& yemenNet = world_.createIsp("YemenNet", "YE", {12486});
  world_.createVantage("field-yemennet-2009", "YE", &yemenNet);
  world_.createVantage("lab-toronto", "CA", nullptr);

  websense_ = std::make_unique<filters::Vendor>(
      filters::ProductKind::kWebsense, world_);

  filters::FilterPolicy policy;
  policy.blockedCategories = {
      websense_->scheme().byName("Proxy Avoidance")->id,
      websense_->scheme().byName("Adult Content")->id,
  };
  deployment_ = &world_.makeMiddlebox<filters::WebsenseDeployment>(
      "YemenNet Websense (2009)", *websense_, policy);
  deployment_->installExternalSurfaces(world_, 12486);
  yemenNet.attachMiddlebox(*deployment_);

  // The under-provisioned license pool [25]: at peak load the box exceeds
  // its licenses and filtering lapses.
  deployment_->setLicenseModel(filters::LicenseModel{
      .licenses = 1200, .baseUsers = 900, .peakExtraUsers = 700, .jitter = 150});

  hosting_ = std::make_unique<simnet::HostingProvider>(world_, 14618);
}

core::VendorSet Yemen2009::vendorSet() const {
  core::VendorSet vendors;
  vendors.add(*websense_);
  return vendors;
}

core::CaseStudyConfig Yemen2009::caseStudyConfig() const {
  core::CaseStudyConfig config;
  config.product = filters::ProductKind::kWebsense;
  config.countryAlpha2 = "YE";
  config.ispName = "YemenNet";
  config.fieldVantage = "field-yemennet-2009";
  config.labVantage = "lab-toronto";
  config.categoryName = "Proxy Avoidance";
  config.categoryLabel = "Proxy avoidance";
  config.profile = simnet::ContentProfile::kGlypeProxy;
  config.totalSites = 12;
  config.sitesToSubmit = 6;
  config.waitDays = 5;
  // Inconsistent blocking: repeat the retest across different hours of the
  // day so at least one pass lands while the box is under-license.
  config.retestRuns = 6;
  config.hoursBetweenRuns = 4;
  return config;
}

void Yemen2009::websenseWithdrawsSupport() { deployment_->freezeUpdates(); }

}  // namespace urlf::scenarios
