#ifndef URLF_SCENARIOS_PAPER_WORLD_H
#define URLF_SCENARIOS_PAPER_WORLD_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/confirmer.h"
#include "core/scout.h"
#include "filters/bluecoat.h"
#include "filters/netsweeper.h"
#include "filters/smartfilter.h"
#include "filters/vendor.h"
#include "filters/websense.h"
#include "measure/testlist.h"
#include "simnet/hosting.h"
#include "simnet/world.h"
#include "util/clock.h"

namespace urlf::scenarios {

/// Default deterministic seed for the paper world (IMC'13 dates).
inline constexpr std::uint64_t kPaperSeed = 20131023;

/// Ground truth about one deployed installation, recorded at build time so
/// benches can score the identification pipeline (Table 2 / Figure 1).
struct GroundTruthInstallation {
  filters::ProductKind product = filters::ProductKind::kBlueCoat;
  net::Ipv4Addr serviceIp;
  std::string countryAlpha2;
  std::uint32_t asn = 0;
  std::string ispName;
  bool externallyVisible = true;
};

/// One Table 3 case study with the calendar date it started.
struct CaseStudy {
  core::CaseStudyConfig config;
  util::CivilDate startDate;
};

/// Options for variants of the world (used by the Table 5 evasion bench).
struct PaperWorldOptions {
  /// Hide every filter's external surfaces (Table 5 evasion #1).
  bool hideExternalSurfaces = false;
  /// Strip vendor branding from block pages and consoles (evasion #2).
  bool stripBranding = false;
  /// Vendors disregard the research submitter identity (evasion #3).
  bool disregardSubmitter = false;
  /// Geolocation error rate for the scanner's MaxMind-style database.
  double geoErrorRate = 0.0;
  /// Substrate fault preset: when > 0, a simnet::FaultPlan is installed with
  /// each of the four fault processes firing at this per-attempt rate
  /// (ONI-style field measurement noise — Challenge 2, §4.4).
  double faultRate = 0.0;
  /// Seed of that plan; 0 derives one from the world seed.
  std::uint64_t faultSeed = 0;
  /// Attach packet-level blocking mechanisms under the HTTP chains
  /// (DESIGN.md §4.8): YemenNet poisons DNS for its local political zones,
  /// Ooredoo runs a stateful RST injector, Du null-routes, Etisalat filters
  /// TLS handshakes by SNI (an extra HTTPS content site appears on the AE
  /// local list for it to act on). Off by default — historical campaign
  /// digests must not move.
  bool packetMechanisms = false;
  /// Hold-down window (hours) of Ooredoo's stateful injector.
  int rstHoldDownHours = 24;
  /// Adversarial measurement interference (DESIGN.md §4.9): when > 0, a
  /// simnet::InterferencePlan is installed with tarpitting, flaky
  /// enforcement, and blockpage mimicry each firing at this per-fetch rate.
  /// Each case-study ISP's mimic pool excludes its own deployed vendor(s),
  /// so every mimicked blockpage is a misattribution bait. Probe-detection
  /// and lockout thresholds stay off in the paper world (the interference
  /// ablation bench arms them in its own world). Off by default — historical
  /// campaign digests must not move.
  double interferenceRate = 0.0;
  /// Seed of that plan; 0 derives one from the world seed.
  std::uint64_t interferenceSeed = 0;
  /// Extra measurement vantages per field vantage (named "<name>-q<i>",
  /// same ISP) for cross-vantage quorum confirmation. 0 = none.
  int quorumVantages = 0;
};

/// The fully wired simulated Internet of the paper:
///  * the six case-study ISPs with in-country vantage points and the exact
///    product arrangements of Table 3 (including Etisalat's Blue Coat +
///    SmartFilter tandem and YemenNet's inconsistent Netsweeper),
///  * the wider set of installations behind Figure 1,
///  * decoy Web servers (some with keyword bait) to exercise validation,
///  * the four vendors with their submission portals and infrastructure,
///  * a hosting provider for fresh test domains,
///  * the §5 global and per-country local URL lists with seeded vendor
///    categorizations.
class PaperWorld {
 public:
  explicit PaperWorld(std::uint64_t seed = kPaperSeed,
                      PaperWorldOptions options = {});

  PaperWorld(const PaperWorld&) = delete;
  PaperWorld& operator=(const PaperWorld&) = delete;

  [[nodiscard]] simnet::World& world() { return world_; }
  [[nodiscard]] simnet::HostingProvider& hosting() { return *hosting_; }
  [[nodiscard]] core::VendorSet vendorSet() const;
  [[nodiscard]] filters::Vendor& vendor(filters::ProductKind kind);

  /// Ground truth of every installation created (for scoring only).
  [[nodiscard]] const std::vector<GroundTruthInstallation>& groundTruth() const {
    return groundTruth_;
  }

  /// The ten Table 3 case studies, in chronological order.
  [[nodiscard]] const std::vector<CaseStudy>& caseStudies() const {
    return caseStudies_;
  }

  /// §5 URL lists.
  [[nodiscard]] const measure::TestList& globalList() const {
    return globalList_;
  }
  /// Local list for a country; empty list when none is curated.
  [[nodiscard]] const measure::TestList& localList(
      const std::string& alpha2) const;

  /// Named deployments of the case-study ISPs.
  [[nodiscard]] filters::SmartFilterDeployment& etisalatSmartFilter() {
    return *etisalatSmartFilter_;
  }
  [[nodiscard]] filters::BlueCoatProxySG& etisalatProxySG() {
    return *etisalatProxySG_;
  }
  [[nodiscard]] filters::SmartFilterDeployment& saudiNationalSmartFilter() {
    return *saudiSmartFilter_;
  }
  [[nodiscard]] filters::NetsweeperDeployment& ooredooNetsweeper() {
    return *ooredooNetsweeper_;
  }
  [[nodiscard]] filters::NetsweeperDeployment& duNetsweeper() {
    return *duNetsweeper_;
  }
  [[nodiscard]] filters::NetsweeperDeployment& yemenNetsweeper() {
    return *yemenNetsweeper_;
  }

  /// Packet-level mechanisms (only when options.packetMechanisms is set;
  /// nullptr otherwise).
  [[nodiscard]] simnet::DnsPoisoner* yemenDnsPoisoner() {
    return yemenDnsPoisoner_;
  }
  [[nodiscard]] simnet::RstInjector* ooredooRstInjector() {
    return ooredooRstInjector_;
  }
  [[nodiscard]] simnet::NullRouteFilter* duNullRoute() { return duNullRoute_; }
  [[nodiscard]] simnet::SniFilter* etisalatSniFilter() {
    return etisalatSniFilter_;
  }

  [[nodiscard]] const PaperWorldOptions& options() const { return options_; }

  /// ASN of the hosting provider used for fresh test domains.
  [[nodiscard]] std::uint32_t hostingAsn() const { return kHostingAsn; }

  /// URL of the request-echo origin used for Netalyzr-style transparent
  /// proxy detection (§7).
  [[nodiscard]] const std::string& echoUrl() const { return echoUrl_; }

  /// Reference sites of known vendor categorization for the CategoryScout
  /// (automating Challenge 1: which categories does an ISP enforce?).
  [[nodiscard]] std::vector<core::ReferenceSite> referenceSites(
      filters::ProductKind kind) const;

  static constexpr std::uint32_t kHostingAsn = 14618;

 private:
  void buildBackbone();
  void buildVendors();
  void buildCaseStudyIsps();
  void buildFigure1Installations();
  void buildDecoys();
  void buildContentSites();
  void buildPacketMechanisms();
  void buildCaseStudies();

  /// Create AS + ISP + one externally surfaced deployment, record ground
  /// truth, and return the deployment.
  filters::Deployment& addInstallation(filters::ProductKind kind,
                                       std::uint32_t asn,
                                       const std::string& asName,
                                       const std::string& ispName,
                                       const std::string& countryAlpha2,
                                       filters::FilterPolicy policy);

  /// Create one content origin with a label and register it in vendor DBs.
  void addContentSite(const std::string& hostname, const std::string& oniCategory,
                      const std::string& pageMarker,
                      const std::map<filters::ProductKind, std::string>&
                          vendorCategoryNames);

  /// Sequential /16 allocator for synthetic AS prefixes.
  net::IpPrefix nextPrefix();

  PaperWorldOptions options_;
  simnet::World world_;
  std::unique_ptr<filters::Vendor> blueCoatVendor_;
  std::unique_ptr<filters::Vendor> smartFilterVendor_;
  std::unique_ptr<filters::Vendor> netsweeperVendor_;
  std::unique_ptr<filters::Vendor> websenseVendor_;
  std::unique_ptr<simnet::HostingProvider> hosting_;

  filters::SmartFilterDeployment* etisalatSmartFilter_ = nullptr;
  filters::BlueCoatProxySG* etisalatProxySG_ = nullptr;
  filters::SmartFilterDeployment* saudiSmartFilter_ = nullptr;
  filters::BlueCoatProxySG* ooredooProxySG_ = nullptr;
  filters::NetsweeperDeployment* ooredooNetsweeper_ = nullptr;
  filters::NetsweeperDeployment* duNetsweeper_ = nullptr;
  filters::NetsweeperDeployment* yemenNetsweeper_ = nullptr;

  simnet::DnsPoisoner* yemenDnsPoisoner_ = nullptr;
  simnet::RstInjector* ooredooRstInjector_ = nullptr;
  simnet::NullRouteFilter* duNullRoute_ = nullptr;
  simnet::SniFilter* etisalatSniFilter_ = nullptr;

  std::vector<GroundTruthInstallation> groundTruth_;
  std::vector<CaseStudy> caseStudies_;
  std::string echoUrl_;
  measure::TestList globalList_;
  std::map<std::string, measure::TestList> localLists_;
  std::uint32_t prefixCursor_ = 0;
};

/// Advance the world clock to 00:00 on `date` (no-op if already past it).
inline void advanceClockTo(simnet::World& world, const util::CivilDate& date) {
  const auto target = util::SimTime::fromDate(date);
  if (target > world.now()) world.clock().advanceHours(target - world.now());
}

}  // namespace urlf::scenarios

#endif  // URLF_SCENARIOS_PAPER_WORLD_H
