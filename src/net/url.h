#ifndef URLF_NET_URL_H
#define URLF_NET_URL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace urlf::net {

/// A parsed absolute http/https URL.
///
/// This is the subset the measurement pipeline needs: scheme, host, optional
/// explicit port, path and query. Fragments are parsed and dropped (they are
/// never sent on the wire). Hosts are normalized to lowercase.
class Url {
 public:
  Url() = default;
  Url(std::string scheme, std::string host, std::optional<std::uint16_t> port,
      std::string path, std::string query);

  /// Parse an absolute URL. Returns nullopt for anything that is not a
  /// well-formed http:// or https:// URL.
  static std::optional<Url> parse(std::string_view s);

  [[nodiscard]] const std::string& scheme() const { return scheme_; }
  [[nodiscard]] const std::string& host() const { return host_; }
  /// Explicit port if present in the URL text.
  [[nodiscard]] std::optional<std::uint16_t> explicitPort() const { return port_; }
  /// Explicit port, or the scheme default (80/443).
  [[nodiscard]] std::uint16_t effectivePort() const;
  /// Path, always beginning with '/'.
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Query string without the leading '?'; empty if absent.
  [[nodiscard]] const std::string& query() const { return query_; }

  /// Path plus "?query" if a query is present — the HTTP request target.
  [[nodiscard]] std::string requestTarget() const;

  /// Canonical string form.
  [[nodiscard]] std::string toString() const;

  /// Append the canonical string form to `out` — key-building hot paths
  /// reuse one buffer instead of allocating a fresh string per lookup.
  void appendTo(std::string& out) const;

  bool operator==(const Url&) const = default;

 private:
  std::string scheme_ = "http";
  std::string host_;
  std::optional<std::uint16_t> port_;
  std::string path_ = "/";
  std::string query_;
};

/// Value of `key` in a query string ("a=1&b=2"); nullopt when absent.
/// No percent-decoding (the simulation never needs it).
[[nodiscard]] std::optional<std::string> queryParam(std::string_view query,
                                                    std::string_view key);

/// True if `s` is a plausible DNS hostname (letters/digits/hyphens, dot
/// separated, no empty labels, <= 253 chars).
[[nodiscard]] bool isValidHostname(std::string_view s);

/// The rightmost DNS label (e.g. "info" for "starwasher.info"), lowercased.
/// Empty if the host has no dot or is an IP literal.
[[nodiscard]] std::string topLevelDomain(std::string_view host);

/// Registrable domain: last two labels ("foo.info" for "www.foo.info").
/// Falls back to the whole host when it has fewer than two labels.
[[nodiscard]] std::string registrableDomain(std::string_view host);

/// Zero-allocation variant: the registrable domain as a suffix view into
/// `host`. The caller must pass an already-lowercased host (Url::host() is
/// normalized at parse time), since a view cannot case-fold.
[[nodiscard]] std::string_view registrableDomainView(std::string_view host);

}  // namespace urlf::net

#endif  // URLF_NET_URL_H
