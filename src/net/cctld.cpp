#include "net/cctld.h"

#include <array>

#include "util/strings.h"

namespace urlf::net {

namespace {

// Countries the paper mentions (Table 1, Table 3, Figure 1, §3.2) plus a set
// of additional countries so scans and decoys have realistic diversity.
constexpr std::array<CountryCode, 49> kCountries{{
    {"AE", "ae", "United Arab Emirates"},
    {"AR", "ar", "Argentina"},
    {"AT", "at", "Austria"},
    {"AU", "au", "Australia"},
    {"BH", "bh", "Bahrain"},
    {"BR", "br", "Brazil"},
    {"CA", "ca", "Canada"},
    {"CH", "ch", "Switzerland"},
    {"CL", "cl", "Chile"},
    {"CN", "cn", "China"},
    {"CO", "co", "Colombia"},
    {"CU", "cu", "Cuba"},
    {"CZ", "cz", "Czech Republic"},
    {"DE", "de", "Germany"},
    {"DK", "dk", "Denmark"},
    {"EG", "eg", "Egypt"},
    {"ES", "es", "Spain"},
    {"FI", "fi", "Finland"},
    {"FR", "fr", "France"},
    {"GB", "uk", "United Kingdom"},
    {"GR", "gr", "Greece"},
    {"ID", "id", "Indonesia"},
    {"IL", "il", "Israel"},
    {"IN", "in", "India"},
    {"IR", "ir", "Iran"},
    {"IT", "it", "Italy"},
    {"JP", "jp", "Japan"},
    {"KE", "ke", "Kenya"},
    {"KP", "kp", "North Korea"},
    {"KR", "kr", "South Korea"},
    {"KW", "kw", "Kuwait"},
    {"LB", "lb", "Lebanon"},
    {"MM", "mm", "Burma"},
    {"MX", "mx", "Mexico"},
    {"NL", "nl", "Netherlands"},
    {"NO", "no", "Norway"},
    {"OM", "om", "Oman"},
    {"PH", "ph", "Philippines"},
    {"PK", "pk", "Pakistan"},
    {"QA", "qa", "Qatar"},
    {"RU", "ru", "Russia"},
    {"SA", "sa", "Saudi Arabia"},
    {"SE", "se", "Sweden"},
    {"SY", "sy", "Syria"},
    {"TH", "th", "Thailand"},
    {"TN", "tn", "Tunisia"},
    {"TW", "tw", "Taiwan"},
    {"US", "us", "United States"},
    {"YE", "ye", "Yemen"},
}};

}  // namespace

std::span<const CountryCode> allCountries() { return kCountries; }

std::optional<CountryCode> countryByAlpha2(std::string_view alpha2) {
  for (const auto& c : kCountries)
    if (util::iequals(c.alpha2, alpha2)) return c;
  return std::nullopt;
}

std::optional<CountryCode> countryByName(std::string_view name) {
  for (const auto& c : kCountries)
    if (util::iequals(c.name, name)) return c;
  return std::nullopt;
}

}  // namespace urlf::net
