#include "net/ipv4.h"

#include <cctype>
#include <stdexcept>

#include "util/strings.h"

namespace urlf::net {

namespace {

std::optional<std::uint32_t> parseOctet(std::string_view s) {
  if (s.empty() || s.size() > 3) return std::nullopt;
  // Reject leading zeros ("01") which some parsers read as octal.
  if (s.size() > 1 && s.front() == '0') return std::nullopt;
  std::uint32_t v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    v = v * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (v > 255) return std::nullopt;
  return v;
}

constexpr std::uint32_t maskForLength(int length) {
  return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  const auto parts = util::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    const auto octet = parseOctet(part);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  return Ipv4Addr{value};
}

std::string Ipv4Addr::toString() const {
  return std::to_string((value_ >> 24) & 0xFF) + "." +
         std::to_string((value_ >> 16) & 0xFF) + "." +
         std::to_string((value_ >> 8) & 0xFF) + "." +
         std::to_string(value_ & 0xFF);
}

IpPrefix::IpPrefix(Ipv4Addr base, int length) : length_(length) {
  if (length < 0 || length > 32)
    throw std::invalid_argument("IpPrefix: bad length");
  base_ = Ipv4Addr{base.value() & maskForLength(length)};
}

std::optional<IpPrefix> IpPrefix::parse(std::string_view s) {
  const std::size_t slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view lenStr = s.substr(slash + 1);
  if (lenStr.empty() || lenStr.size() > 2) return std::nullopt;
  int len = 0;
  for (char c : lenStr) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    len = len * 10 + (c - '0');
  }
  if (len > 32) return std::nullopt;
  return IpPrefix{*addr, len};
}

bool IpPrefix::contains(Ipv4Addr addr) const {
  return (addr.value() & maskForLength(length_)) == base_.value();
}

std::uint64_t IpPrefix::size() const {
  return std::uint64_t{1} << (32 - length_);
}

Ipv4Addr IpPrefix::addressAt(std::uint64_t i) const {
  if (i >= size()) throw std::out_of_range("IpPrefix::addressAt");
  return Ipv4Addr{base_.value() + static_cast<std::uint32_t>(i)};
}

std::string IpPrefix::toString() const {
  return base_.toString() + "/" + std::to_string(length_);
}

}  // namespace urlf::net
