#ifndef URLF_NET_CCTLD_H
#define URLF_NET_CCTLD_H

#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace urlf::net {

/// A country with its ISO 3166-1 alpha-2 code and ccTLD.
///
/// The identification pipeline (§3.1 of the paper) searches the banner index
/// for each product keyword combined with every two-letter ccTLD to maximize
/// coverage; this registry supplies that ccTLD list.
struct CountryCode {
  std::string_view alpha2;  ///< e.g. "SA"
  std::string_view cctld;   ///< e.g. "sa"
  std::string_view name;    ///< e.g. "Saudi Arabia"
};

/// All countries known to the registry (a superset of every country that
/// appears in the paper, plus enough others for realistic decoys).
[[nodiscard]] std::span<const CountryCode> allCountries();

/// Look up by ISO alpha-2 code (case-insensitive).
[[nodiscard]] std::optional<CountryCode> countryByAlpha2(std::string_view alpha2);

/// Look up by full English name (case-insensitive).
[[nodiscard]] std::optional<CountryCode> countryByName(std::string_view name);

}  // namespace urlf::net

#endif  // URLF_NET_CCTLD_H
