#include "net/url.h"

#include <cctype>
#include <stdexcept>

#include "net/ipv4.h"
#include "util/strings.h"

namespace urlf::net {

namespace {

bool isAlnum(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0; }

std::optional<std::uint16_t> parsePort(std::string_view s) {
  if (s.empty() || s.size() > 5) return std::nullopt;
  std::uint32_t v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    v = v * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (v == 0 || v > 65535) return std::nullopt;
  return static_cast<std::uint16_t>(v);
}

}  // namespace

Url::Url(std::string scheme, std::string host, std::optional<std::uint16_t> port,
         std::string path, std::string query)
    : scheme_(util::toLower(scheme)),
      host_(util::toLower(host)),
      port_(port),
      path_(std::move(path)),
      query_(std::move(query)) {
  if (scheme_ != "http" && scheme_ != "https")
    throw std::invalid_argument("Url: unsupported scheme " + scheme_);
  if (host_.empty()) throw std::invalid_argument("Url: empty host");
  if (path_.empty()) path_ = "/";
  if (path_.front() != '/') path_.insert(path_.begin(), '/');
}

std::optional<Url> Url::parse(std::string_view s) {
  s = util::trim(s);
  std::string scheme;
  if (util::startsWith(util::toLower(std::string(s)), "https://")) {
    scheme = "https";
    s.remove_prefix(8);
  } else if (util::startsWith(util::toLower(std::string(s)), "http://")) {
    scheme = "http";
    s.remove_prefix(7);
  } else {
    return std::nullopt;
  }

  // authority ends at the first '/', '?' or '#'
  std::size_t authorityEnd = s.find_first_of("/?#");
  const std::string_view authority =
      authorityEnd == std::string_view::npos ? s : s.substr(0, authorityEnd);
  if (authority.empty()) return std::nullopt;
  if (authority.find('@') != std::string_view::npos) return std::nullopt;

  std::string host;
  std::optional<std::uint16_t> port;
  const std::size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    port = parsePort(authority.substr(colon + 1));
    if (!port) return std::nullopt;
    host = std::string(authority.substr(0, colon));
  } else {
    host = std::string(authority);
  }
  if (host.empty()) return std::nullopt;
  if (!isValidHostname(host) && !Ipv4Addr::parse(host)) return std::nullopt;

  std::string path = "/";
  std::string query;
  if (authorityEnd != std::string_view::npos) {
    std::string_view rest = s.substr(authorityEnd);
    // Drop any fragment.
    const std::size_t hash = rest.find('#');
    if (hash != std::string_view::npos) rest = rest.substr(0, hash);
    const std::size_t qmark = rest.find('?');
    if (qmark != std::string_view::npos) {
      query = std::string(rest.substr(qmark + 1));
      rest = rest.substr(0, qmark);
    }
    if (!rest.empty()) path = std::string(rest);
    if (path.empty() || path.front() != '/') path.insert(path.begin(), '/');
  }

  return Url{std::move(scheme), std::move(host), port, std::move(path),
             std::move(query)};
}

std::uint16_t Url::effectivePort() const {
  if (port_) return *port_;
  return scheme_ == "https" ? 443 : 80;
}

std::string Url::requestTarget() const {
  return query_.empty() ? path_ : path_ + "?" + query_;
}

std::string Url::toString() const {
  std::string out;
  appendTo(out);
  return out;
}

void Url::appendTo(std::string& out) const {
  out += scheme_;
  out += "://";
  out += host_;
  if (port_) {
    out += ':';
    out += std::to_string(*port_);
  }
  out += path_;
  if (!query_.empty()) {
    out += '?';
    out += query_;
  }
}

std::optional<std::string> queryParam(std::string_view query,
                                      std::string_view key) {
  for (const auto& pair : util::split(query, '&')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (pair == key) return std::string{};
      continue;
    }
    if (std::string_view(pair).substr(0, eq) == key) return pair.substr(eq + 1);
  }
  return std::nullopt;
}

bool isValidHostname(std::string_view s) {
  if (s.empty() || s.size() > 253) return false;
  if (Ipv4Addr::parse(s)) return false;  // IP literals are not hostnames
  bool lastWasDot = true;  // treat start-of-string like a label boundary
  std::size_t labelLen = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '.') {
      if (lastWasDot || labelLen == 0) return false;
      if (s[i - 1] == '-') return false;
      lastWasDot = true;
      labelLen = 0;
      continue;
    }
    if (!isAlnum(c) && c != '-') return false;
    if (lastWasDot && c == '-') return false;  // label can't start with '-'
    lastWasDot = false;
    if (++labelLen > 63) return false;
  }
  return !lastWasDot && s.back() != '-';
}

std::string topLevelDomain(std::string_view host) {
  if (Ipv4Addr::parse(host)) return {};
  const std::size_t dot = host.rfind('.');
  if (dot == std::string_view::npos) return {};
  return util::toLower(host.substr(dot + 1));
}

std::string registrableDomain(std::string_view host) {
  const std::size_t last = host.rfind('.');
  if (last == std::string_view::npos) return util::toLower(host);
  const std::size_t prev = host.rfind('.', last - 1);
  if (prev == std::string_view::npos) return util::toLower(host);
  return util::toLower(host.substr(prev + 1));
}

std::string_view registrableDomainView(std::string_view host) {
  const std::size_t last = host.rfind('.');
  if (last == std::string_view::npos) return host;
  const std::size_t prev = host.rfind('.', last - 1);
  if (prev == std::string_view::npos) return host;
  return host.substr(prev + 1);
}

}  // namespace urlf::net
