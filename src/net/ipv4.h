#ifndef URLF_NET_IPV4_H
#define URLF_NET_IPV4_H

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace urlf::net {

/// An IPv4 address as a host-order 32-bit integer.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// Parse dotted-quad notation ("192.0.2.7"); rejects anything else.
  static std::optional<Ipv4Addr> parse(std::string_view s);

  [[nodiscard]] std::string toString() const;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  /// Successor address (wraps at 255.255.255.255).
  [[nodiscard]] constexpr Ipv4Addr next() const { return Ipv4Addr{value_ + 1}; }

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix, e.g. 192.0.2.0/24.
class IpPrefix {
 public:
  constexpr IpPrefix() = default;
  /// Requires length <= 32; the base address is masked to the prefix.
  IpPrefix(Ipv4Addr base, int length);

  /// Parse "a.b.c.d/len".
  static std::optional<IpPrefix> parse(std::string_view s);

  [[nodiscard]] Ipv4Addr base() const { return base_; }
  [[nodiscard]] int length() const { return length_; }

  [[nodiscard]] bool contains(Ipv4Addr addr) const;
  /// Number of addresses covered (2^(32-length)).
  [[nodiscard]] std::uint64_t size() const;
  /// The i-th address inside the prefix. Requires i < size().
  [[nodiscard]] Ipv4Addr addressAt(std::uint64_t i) const;

  [[nodiscard]] std::string toString() const;

  auto operator<=>(const IpPrefix&) const = default;

 private:
  Ipv4Addr base_{};
  int length_ = 0;
};

}  // namespace urlf::net

#endif  // URLF_NET_IPV4_H
