#include "core/monitor.h"

#include <algorithm>

namespace urlf::core {
namespace {

/// Pointers into `run`, IP-ascending, one per distinct IP (first occurrence
/// in run order wins, matching the identifier's own per-IP dedup).
std::vector<const Installation*> sortedUniqueByIp(
    const std::vector<Installation>& run) {
  std::vector<const Installation*> out;
  out.reserve(run.size());
  for (const auto& installation : run) out.push_back(&installation);
  std::stable_sort(out.begin(), out.end(),
                   [](const Installation* a, const Installation* b) {
                     return a->ip.value() < b->ip.value();
                   });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Installation* a, const Installation* b) {
                          return a->ip.value() == b->ip.value();
                        }),
            out.end());
  return out;
}

}  // namespace

InstallationDiff diffInstallations(const std::vector<Installation>& baseline,
                                   const std::vector<Installation>& current) {
  InstallationDiff diff;
  const auto base = sortedUniqueByIp(baseline);
  const auto now = sortedUniqueByIp(current);

  diff.appeared.reserve(now.size());
  diff.vanished.reserve(base.size());
  diff.persisted.reserve(std::min(base.size(), now.size()));

  std::size_t b = 0;
  std::size_t c = 0;
  while (b < base.size() && c < now.size()) {
    const std::uint32_t baseIp = base[b]->ip.value();
    const std::uint32_t nowIp = now[c]->ip.value();
    if (baseIp < nowIp) {
      diff.vanished.push_back(*base[b++]);
    } else if (nowIp < baseIp) {
      diff.appeared.push_back(*now[c++]);
    } else {
      if (base[b]->countryAlpha2 != now[c]->countryAlpha2)
        diff.relocated.emplace_back(base[b], now[c]);
      else
        diff.persisted.push_back(now[c]);
      ++b;
      ++c;
    }
  }
  for (; b < base.size(); ++b) diff.vanished.push_back(*base[b]);
  for (; c < now.size(); ++c) diff.appeared.push_back(*now[c]);
  return diff;
}

std::map<filters::ProductKind, InstallationDiff> diffAll(
    const std::map<filters::ProductKind, std::vector<Installation>>& baseline,
    const std::map<filters::ProductKind, std::vector<Installation>>& current) {
  std::map<filters::ProductKind, InstallationDiff> out;
  static const std::vector<Installation> kEmpty;

  for (const auto& product : filters::allProducts()) {
    const auto baseIt = baseline.find(product);
    const auto currentIt = current.find(product);
    const auto& base = baseIt == baseline.end() ? kEmpty : baseIt->second;
    const auto& now = currentIt == current.end() ? kEmpty : currentIt->second;
    if (base.empty() && now.empty()) continue;
    out.emplace(product, diffInstallations(base, now));
  }
  return out;
}

}  // namespace urlf::core
