#include "core/monitor.h"

#include <set>

namespace urlf::core {

InstallationDiff diffInstallations(const std::vector<Installation>& baseline,
                                   const std::vector<Installation>& current) {
  InstallationDiff diff;

  std::map<std::uint32_t, const Installation*> baselineByIp;
  for (const auto& installation : baseline)
    baselineByIp.emplace(installation.ip.value(), &installation);

  std::set<std::uint32_t> seen;
  for (const auto& installation : current) {
    if (!seen.insert(installation.ip.value()).second) continue;
    const auto it = baselineByIp.find(installation.ip.value());
    if (it == baselineByIp.end()) {
      diff.appeared.push_back(installation);
    } else if (it->second->countryAlpha2 != installation.countryAlpha2) {
      diff.relocated.emplace_back(*it->second, installation);
    } else {
      diff.persisted.push_back(installation);
    }
  }
  for (const auto& installation : baseline)
    if (!seen.contains(installation.ip.value()))
      diff.vanished.push_back(installation);
  return diff;
}

std::map<filters::ProductKind, InstallationDiff> diffAll(
    const std::map<filters::ProductKind, std::vector<Installation>>& baseline,
    const std::map<filters::ProductKind, std::vector<Installation>>& current) {
  std::map<filters::ProductKind, InstallationDiff> out;
  static const std::vector<Installation> kEmpty;

  for (const auto& product : filters::allProducts()) {
    const auto baseIt = baseline.find(product);
    const auto currentIt = current.find(product);
    const auto& base = baseIt == baseline.end() ? kEmpty : baseIt->second;
    const auto& now = currentIt == current.end() ? kEmpty : currentIt->second;
    if (base.empty() && now.empty()) continue;
    out.emplace(product, diffInstallations(base, now));
  }
  return out;
}

}  // namespace urlf::core
