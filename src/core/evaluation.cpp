#include "core/evaluation.h"

namespace urlf::core {

Confusion scoreIdentification(const std::vector<Installation>& reported,
                              const std::set<std::uint32_t>& truthIps) {
  Confusion confusion;
  std::set<std::uint32_t> found;
  for (const auto& installation : reported) {
    if (!found.insert(installation.ip.value()).second) continue;  // dedupe
    if (truthIps.contains(installation.ip.value()))
      ++confusion.truePositives;
    else
      ++confusion.falsePositives;
  }
  for (const auto ip : truthIps)
    if (!found.contains(ip)) ++confusion.falseNegatives;
  return confusion;
}

}  // namespace urlf::core
