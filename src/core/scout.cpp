#include "core/scout.h"

#include <map>
#include <stdexcept>

#include "util/strings.h"

namespace urlf::core {

std::vector<CategoryUse> CategoryScout::scout(
    const std::string& fieldVantage, const std::string& labVantage,
    const std::vector<ReferenceSite>& referenceSites) {
  auto* field = world_->findVantage(fieldVantage);
  auto* lab = world_->findVantage(labVantage);
  if (field == nullptr || lab == nullptr)
    throw std::invalid_argument("CategoryScout: unknown vantage point");

  measure::Client client(*world_, *field, *lab);

  std::map<filters::CategoryId, CategoryUse> byCategory;
  for (const auto& site : referenceSites) {
    auto& use = byCategory[site.category];
    use.category = site.category;
    use.categoryName = site.categoryName;

    const auto result = client.testUrl(site.url);
    if (result.verdict == measure::Verdict::kError) continue;  // site down
    ++use.tested;
    if (result.blocked()) ++use.blocked;
  }

  std::vector<CategoryUse> out;
  out.reserve(byCategory.size());
  for (auto& [id, use] : byCategory) out.push_back(std::move(use));
  return out;
}

std::optional<std::string> CategoryScout::pickEnforcedCategory(
    const std::vector<CategoryUse>& uses,
    const std::vector<std::string>& candidates) {
  for (const auto& candidate : candidates) {
    for (const auto& use : uses) {
      if (util::iequals(use.categoryName, candidate) && use.inUse())
        return use.categoryName;
    }
  }
  return std::nullopt;
}

}  // namespace urlf::core
