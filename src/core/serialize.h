#ifndef URLF_CORE_SERIALIZE_H
#define URLF_CORE_SERIALIZE_H

#include "core/characterizer.h"
#include "core/confirmer.h"
#include "core/identifier.h"
#include "core/proxy_detect.h"
#include "core/scout.h"
#include "report/json.h"

namespace urlf::core {

/// JSON exports of the methodology's result types, for downstream analysis
/// pipelines (the paper published its measurement data; a faithful
/// open-source release needs machine-readable output too).
[[nodiscard]] report::Json toJson(const Installation& installation);
[[nodiscard]] report::Json toJson(const CaseStudyResult& result);
[[nodiscard]] report::Json toJson(const CharacterizationResult& result);
[[nodiscard]] report::Json toJson(const CategoryUse& use);
[[nodiscard]] report::Json toJson(const ProxyEvidence& evidence);

/// A whole identification run: product -> array of installations.
[[nodiscard]] report::Json toJson(
    const std::map<filters::ProductKind, std::vector<Installation>>& all);

}  // namespace urlf::core

#endif  // URLF_CORE_SERIALIZE_H
