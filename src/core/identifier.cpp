#include "core/identifier.h"

#include <algorithm>

#include "net/cctld.h"
#include "util/thread_pool.h"

namespace urlf::core {

using filters::ProductKind;

Identifier::Identifier(simnet::World& world, const scan::BannerIndex& index,
                       fingerprint::Engine engine, geo::GeoDatabase geo,
                       geo::AsnDatabase whois, IdentifierConfig config)
    : world_(&world),
      index_(&index),
      engine_(std::move(engine)),
      geo_(std::move(geo)),
      whois_(std::move(whois)),
      config_(config) {}

std::vector<std::string> Identifier::shodanKeywords(ProductKind product) {
  // Verbatim from Table 2.
  switch (product) {
    case ProductKind::kBlueCoat:
      return {"proxysg", "cfru="};
    case ProductKind::kSmartFilter:
      return {"mcafee web gateway", "url blocked"};
    case ProductKind::kNetsweeper:
      return {"netsweeper", "webadmin", "webadmin/deny", "8080/webadmin/"};
    case ProductKind::kWebsense:
      return {"blockpage.cgi", "gateway websense"};
  }
  return {};
}

std::vector<const scan::BannerRecord*> Identifier::locateCandidates(
    ProductKind product) const {
  std::vector<scan::Query> queries;
  for (const auto& keyword : shodanKeywords(product)) {
    queries.push_back({keyword, std::nullopt});
    if (config_.expandByCountry) {
      for (const auto& country : net::allCountries())
        queries.push_back({keyword, std::string(country.alpha2)});
    }
  }
  return index_->searchAll(queries);
}

namespace {

/// View a stored banner as a fingerprint observation (passive mode).
fingerprint::Observation toObservation(const scan::BannerRecord& record) {
  fingerprint::Observation obs;
  obs.ip = record.ip;
  obs.port = record.port;
  obs.statusCode = record.statusCode;
  obs.headers = record.headers;
  obs.body = record.body;
  obs.title = record.title;
  return obs;
}

}  // namespace

Identifier::ValidateFn Identifier::activeValidator() const {
  return [this](const scan::BannerRecord& candidate) {
    return engine_.probe(*world_, candidate.ip, candidate.port);
  };
}

Identifier::ValidateFn Identifier::passiveValidator() const {
  return [this](const scan::BannerRecord& candidate) {
    return engine_.evaluate(toObservation(candidate));
  };
}

std::vector<Installation> Identifier::selectInstallations(
    ProductKind product,
    const std::vector<const scan::BannerRecord*>& candidates,
    const std::vector<std::vector<fingerprint::Match>>& matches) const {
  std::vector<Installation> out;
  std::set<std::uint32_t> seenIps;

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto* candidate = candidates[i];
    // One installation per IP: validate each scanned port but report the IP
    // once, keeping the strongest validation.
    const auto hit = std::find_if(
        matches[i].begin(), matches[i].end(), [&](const auto& m) {
          return m.product == product && m.certainty >= config_.minCertainty;
        });
    if (hit == matches[i].end()) continue;
    if (!seenIps.insert(candidate->ip.value()).second) continue;

    Installation inst;
    inst.product = product;
    inst.ip = candidate->ip;
    inst.port = candidate->port;
    inst.certainty = hit->certainty;
    inst.evidence = hit->evidence;
    inst.countryAlpha2 = geo_.lookup(candidate->ip).value_or("??");
    inst.asn = whois_.lookup(candidate->ip);
    out.push_back(std::move(inst));
  }
  return out;
}

std::vector<Installation> Identifier::identifyWith(
    ProductKind product, const ValidateFn& validate) const {
  const auto candidates = locateCandidates(product);
  std::vector<std::vector<fingerprint::Match>> matches(candidates.size());
  util::parallelFor(
      candidates.size(),
      [&](std::size_t i) { matches[i] = validate(*candidates[i]); },
      config_.threads);
  return selectInstallations(product, candidates, matches);
}

std::map<ProductKind, std::vector<Installation>> Identifier::identifyAllWith(
    const ValidateFn& validate) const {
  const auto& products = filters::allProducts();

  // Locate every product's candidates first (fast: indexed search), then
  // validate the whole flattened (product, candidate) set in one parallel
  // wave — wider than four sequential per-product fan-outs.
  std::vector<std::vector<const scan::BannerRecord*>> candidates(
      products.size());
  for (std::size_t p = 0; p < products.size(); ++p)
    candidates[p] = locateCandidates(products[p]);

  std::vector<std::pair<std::size_t, std::size_t>> jobs;  // (product, slot)
  for (std::size_t p = 0; p < products.size(); ++p)
    for (std::size_t i = 0; i < candidates[p].size(); ++i)
      jobs.emplace_back(p, i);

  std::vector<std::vector<std::vector<fingerprint::Match>>> matches(
      products.size());
  for (std::size_t p = 0; p < products.size(); ++p)
    matches[p].resize(candidates[p].size());

  util::parallelFor(
      jobs.size(),
      [&](std::size_t j) {
        const auto [p, i] = jobs[j];
        matches[p][i] = validate(*candidates[p][i]);
      },
      config_.threads);

  std::map<ProductKind, std::vector<Installation>> out;
  for (std::size_t p = 0; p < products.size(); ++p)
    out.emplace(products[p],
                selectInstallations(products[p], candidates[p], matches[p]));
  return out;
}

std::vector<Installation> Identifier::identify(ProductKind product) const {
  return identifyWith(product, activeValidator());
}

std::vector<Installation> Identifier::identifyPassive(
    ProductKind product) const {
  return identifyWith(product, passiveValidator());
}

std::map<ProductKind, std::vector<Installation>> Identifier::identifyAllPassive()
    const {
  return identifyAllWith(passiveValidator());
}

std::map<ProductKind, std::vector<Installation>> Identifier::identifyAll()
    const {
  return identifyAllWith(activeValidator());
}

std::map<ProductKind, std::set<std::string>> Identifier::countriesByProduct(
    const std::map<ProductKind, std::vector<Installation>>& all) {
  std::map<ProductKind, std::set<std::string>> out;
  for (const auto& [product, installations] : all) {
    auto& countries = out[product];
    for (const auto& inst : installations) countries.insert(inst.countryAlpha2);
  }
  return out;
}

}  // namespace urlf::core
