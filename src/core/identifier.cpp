#include "core/identifier.h"

#include <algorithm>

#include "net/cctld.h"

namespace urlf::core {

using filters::ProductKind;

Identifier::Identifier(simnet::World& world, const scan::BannerIndex& index,
                       fingerprint::Engine engine, geo::GeoDatabase geo,
                       geo::AsnDatabase whois, IdentifierConfig config)
    : world_(&world),
      index_(&index),
      engine_(std::move(engine)),
      geo_(std::move(geo)),
      whois_(std::move(whois)),
      config_(config) {}

std::vector<std::string> Identifier::shodanKeywords(ProductKind product) {
  // Verbatim from Table 2.
  switch (product) {
    case ProductKind::kBlueCoat:
      return {"proxysg", "cfru="};
    case ProductKind::kSmartFilter:
      return {"mcafee web gateway", "url blocked"};
    case ProductKind::kNetsweeper:
      return {"netsweeper", "webadmin", "webadmin/deny", "8080/webadmin/"};
    case ProductKind::kWebsense:
      return {"blockpage.cgi", "gateway websense"};
  }
  return {};
}

std::vector<const scan::BannerRecord*> Identifier::locateCandidates(
    ProductKind product) const {
  std::vector<scan::Query> queries;
  for (const auto& keyword : shodanKeywords(product)) {
    queries.push_back({keyword, std::nullopt});
    if (config_.expandByCountry) {
      for (const auto& country : net::allCountries())
        queries.push_back({keyword, std::string(country.alpha2)});
    }
  }
  return index_->searchAll(queries);
}

namespace {

/// View a stored banner as a fingerprint observation (passive mode).
fingerprint::Observation toObservation(const scan::BannerRecord& record) {
  fingerprint::Observation obs;
  obs.ip = record.ip;
  obs.port = record.port;
  obs.statusCode = record.statusCode;
  obs.headers = record.headers;
  obs.body = record.body;
  obs.title = record.title;
  return obs;
}

}  // namespace

template <typename Validate>
std::vector<Installation> Identifier::identifyWith(ProductKind product,
                                                   Validate&& validate) const {
  std::vector<Installation> out;
  std::set<std::uint32_t> seenIps;

  for (const auto* candidate : locateCandidates(product)) {
    // One installation per IP: validate each scanned port but report the IP
    // once, keeping the strongest validation.
    const std::vector<fingerprint::Match> matches = validate(*candidate);
    const auto hit =
        std::find_if(matches.begin(), matches.end(), [&](const auto& m) {
          return m.product == product && m.certainty >= config_.minCertainty;
        });
    if (hit == matches.end()) continue;
    if (!seenIps.insert(candidate->ip.value()).second) continue;

    Installation inst;
    inst.product = product;
    inst.ip = candidate->ip;
    inst.port = candidate->port;
    inst.certainty = hit->certainty;
    inst.evidence = hit->evidence;
    inst.countryAlpha2 = geo_.lookup(candidate->ip).value_or("??");
    inst.asn = whois_.lookup(candidate->ip);
    out.push_back(std::move(inst));
  }
  return out;
}

std::vector<Installation> Identifier::identify(ProductKind product) const {
  return identifyWith(product, [&](const scan::BannerRecord& candidate) {
    return engine_.probe(*world_, candidate.ip, candidate.port);
  });
}

std::vector<Installation> Identifier::identifyPassive(
    ProductKind product) const {
  return identifyWith(product, [&](const scan::BannerRecord& candidate) {
    return engine_.evaluate(toObservation(candidate));
  });
}

std::map<ProductKind, std::vector<Installation>> Identifier::identifyAllPassive()
    const {
  std::map<ProductKind, std::vector<Installation>> out;
  for (const auto product : filters::allProducts())
    out.emplace(product, identifyPassive(product));
  return out;
}

std::map<ProductKind, std::vector<Installation>> Identifier::identifyAll()
    const {
  std::map<ProductKind, std::vector<Installation>> out;
  for (const auto product : filters::allProducts())
    out.emplace(product, identify(product));
  return out;
}

std::map<ProductKind, std::set<std::string>> Identifier::countriesByProduct(
    const std::map<ProductKind, std::vector<Installation>>& all) {
  std::map<ProductKind, std::set<std::string>> out;
  for (const auto& [product, installations] : all) {
    auto& countries = out[product];
    for (const auto& inst : installations) countries.insert(inst.countryAlpha2);
  }
  return out;
}

}  // namespace urlf::core
