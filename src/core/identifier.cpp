#include "core/identifier.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "net/cctld.h"
#include "util/thread_pool.h"

namespace urlf::core {

using filters::ProductKind;

Identifier::Identifier(simnet::World& world, const scan::BannerIndex& index,
                       fingerprint::Engine engine, geo::GeoDatabase geo,
                       geo::AsnDatabase whois, IdentifierConfig config)
    : world_(&world),
      index_(&index),
      engine_(std::move(engine)),
      geo_(std::move(geo)),
      whois_(std::move(whois)),
      config_(config) {}

Identifier::Identifier(simnet::World& world,
                       const scan::ShardedBannerIndex& index,
                       fingerprint::Engine engine, geo::GeoDatabase geo,
                       geo::AsnDatabase whois, IdentifierConfig config)
    : world_(&world),
      sharded_(&index),
      engine_(std::move(engine)),
      geo_(std::move(geo)),
      whois_(std::move(whois)),
      config_(config) {}

std::vector<std::string> Identifier::shodanKeywords(ProductKind product) {
  // Verbatim from Table 2.
  switch (product) {
    case ProductKind::kBlueCoat:
      return {"proxysg", "cfru="};
    case ProductKind::kSmartFilter:
      return {"mcafee web gateway", "url blocked"};
    case ProductKind::kNetsweeper:
      return {"netsweeper", "webadmin", "webadmin/deny", "8080/webadmin/"};
    case ProductKind::kWebsense:
      return {"blockpage.cgi", "gateway websense"};
  }
  return {};
}

std::vector<scan::Query> Identifier::productQueries(ProductKind product) const {
  std::vector<scan::Query> queries;
  for (const auto& keyword : shodanKeywords(product)) {
    queries.push_back({keyword, std::nullopt});
    if (config_.expandByCountry) {
      for (const auto& country : net::allCountries())
        queries.push_back({keyword, std::string(country.alpha2)});
    }
  }
  return queries;
}

std::vector<const scan::BannerRecord*> Identifier::locateCandidates(
    ProductKind product) const {
  if (index_ == nullptr)
    throw std::logic_error(
        "locateCandidates: sharded source holds no records; use "
        "locateCandidateDocs");
  return index_->searchAll(productQueries(product));
}

std::vector<std::uint32_t> Identifier::locateCandidateDocs(
    ProductKind product) const {
  if (sharded_ == nullptr)
    throw std::logic_error(
        "locateCandidateDocs: monolithic source; use locateCandidates");
  return sharded_->searchAll(productQueries(product));
}

std::vector<Identifier::Candidate> Identifier::locate(
    ProductKind product) const {
  std::vector<Candidate> out;
  if (index_ != nullptr) {
    const auto records = index_->searchAll(productQueries(product));
    out.reserve(records.size());
    for (const auto* record : records)
      out.push_back({record->ip, record->port, record, 0});
  } else {
    const auto docs = sharded_->searchAll(productQueries(product));
    out.reserve(docs.size());
    for (const auto doc : docs) {
      const auto surface = sharded_->surface(doc);
      out.push_back({surface.ip, surface.port, nullptr, doc});
    }
  }
  return out;
}

namespace {

/// View a stored banner as a fingerprint observation (passive mode).
fingerprint::Observation toObservation(const scan::BannerRecord& record) {
  fingerprint::Observation obs;
  obs.ip = record.ip;
  obs.port = record.port;
  obs.statusCode = record.statusCode;
  obs.headers = record.headers;
  obs.body = record.body;
  obs.title = record.title;
  return obs;
}

/// toObservation into a reused observation: string/field capacity kept.
void observationInto(const scan::BannerRecord& record,
                     fingerprint::Observation& out) {
  out.ip = record.ip;
  out.port = record.port;
  out.statusCode = record.statusCode;
  out.headers = record.headers;
  out.body = record.body;
  out.title = record.title;
}

}  // namespace

void Identifier::validateReference(const Candidate& candidate,
                                   ValidationMode mode,
                                   std::vector<fingerprint::Match>& out) const {
  if (mode == ValidationMode::kActive) {
    out = engine_.probe(*world_, candidate.ip, candidate.port);
    return;
  }
  const scan::BannerRecord* record = candidate.record;
  scan::BannerRecord fetched;
  if (record == nullptr) {
    fetched = sharded_->fetchRecord(candidate.doc);
    record = &fetched;
  }
  out = engine_.evaluate(toObservation(*record));
}

void Identifier::validateLean(const Candidate& candidate, ValidationMode mode,
                              fingerprint::EvalScratch& scratch,
                              std::vector<fingerprint::Match>& out) const {
  if (mode == ValidationMode::kActive) {
    engine_.probeInto(*world_, candidate.ip, candidate.port, scratch, out);
    return;
  }
  if (candidate.record != nullptr) {
    observationInto(*candidate.record, scratch.observation);
  } else {
    auto fetched = sharded_->fetchRecord(candidate.doc);
    scratch.observation.ip = fetched.ip;
    scratch.observation.port = fetched.port;
    scratch.observation.statusCode = fetched.statusCode;
    scratch.observation.headers = std::move(fetched.headers);
    scratch.observation.body = std::move(fetched.body);
    scratch.observation.title = std::move(fetched.title);
  }
  engine_.evaluateInto(scratch.observation, scratch.view, out);
}

Identifier::ValidationWave Identifier::validateWave(
    const std::vector<std::vector<Candidate>>& perProduct,
    ValidationMode mode) const {
  ValidationWave wave;
  wave.slot.resize(perProduct.size());

  if (config_.threads == 1) {
    // Reference serial path: every (product, candidate) pair validated in
    // order through the allocating entry points — no dedup, no scratch.
    std::size_t next = 0;
    for (std::size_t p = 0; p < perProduct.size(); ++p) {
      wave.slot[p].resize(perProduct[p].size());
      for (std::size_t i = 0; i < perProduct[p].size(); ++i) {
        wave.results.emplace_back();
        validateReference(perProduct[p][i], mode, wave.results.back());
        wave.slot[p][i] = next++;
      }
    }
    return wave;
  }

  // Fast path. Validation depends only on the candidate surface, never on
  // the product whose keywords located it, so each distinct candidate
  // (record pointer / doc id identity) is validated exactly once and its
  // verdict shared across products. Jobs run in chunked waves; each chunk
  // reuses one scratch observation, so steady-state validation allocates
  // only for evidence on actual hits.
  std::unordered_map<std::uint64_t, std::size_t> slotOf;
  std::vector<const Candidate*> distinct;
  for (std::size_t p = 0; p < perProduct.size(); ++p) {
    wave.slot[p].resize(perProduct[p].size());
    for (std::size_t i = 0; i < perProduct[p].size(); ++i) {
      const auto& candidate = perProduct[p][i];
      const std::uint64_t key =
          candidate.record != nullptr
              ? static_cast<std::uint64_t>(
                    reinterpret_cast<std::uintptr_t>(candidate.record))
              : candidate.doc;
      const auto [it, inserted] = slotOf.emplace(key, distinct.size());
      if (inserted) distinct.push_back(&candidate);
      wave.slot[p][i] = it->second;
    }
  }

  wave.results.resize(distinct.size());
  util::parallelForChunks(
      distinct.size(),
      [&](std::size_t begin, std::size_t end) {
        fingerprint::EvalScratch scratch;
        for (std::size_t k = begin; k < end; ++k)
          validateLean(*distinct[k], mode, scratch, wave.results[k]);
      },
      config_.threads, 8);
  return wave;
}

std::vector<Installation> Identifier::selectInstallations(
    ProductKind product, const std::vector<Candidate>& candidates,
    const std::vector<std::vector<fingerprint::Match>>& results,
    const std::vector<std::size_t>& slot) const {
  std::vector<Installation> out;
  std::set<std::uint32_t> seenIps;

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& candidate = candidates[i];
    const auto& matches = results[slot[i]];
    // One installation per IP: validate each scanned port but report the IP
    // once, keeping the strongest validation.
    const auto hit =
        std::find_if(matches.begin(), matches.end(), [&](const auto& m) {
          return m.product == product && m.certainty >= config_.minCertainty;
        });
    if (hit == matches.end()) continue;
    if (!seenIps.insert(candidate.ip.value()).second) continue;

    Installation inst;
    inst.product = product;
    inst.ip = candidate.ip;
    inst.port = candidate.port;
    inst.certainty = hit->certainty;
    inst.evidence = hit->evidence;
    inst.countryAlpha2 = geo_.lookup(candidate.ip).value_or("??");
    inst.asn = whois_.lookup(candidate.ip);
    out.push_back(std::move(inst));
  }
  return out;
}

std::vector<Installation> Identifier::identifyWith(ProductKind product,
                                                   ValidationMode mode) const {
  std::vector<std::vector<Candidate>> perProduct(1);
  perProduct[0] = locate(product);
  const auto wave = validateWave(perProduct, mode);
  return selectInstallations(product, perProduct[0], wave.results,
                             wave.slot[0]);
}

std::map<ProductKind, std::vector<Installation>> Identifier::identifyAllWith(
    ValidationMode mode) const {
  const auto& products = filters::allProducts();

  // Locate every product's candidates first (fast: indexed search), then
  // validate the flattened candidate set in one wave — wider than four
  // sequential per-product fan-outs, and deduplicated across products on
  // the fast path.
  std::vector<std::vector<Candidate>> candidates(products.size());
  for (std::size_t p = 0; p < products.size(); ++p)
    candidates[p] = locate(products[p]);

  const auto wave = validateWave(candidates, mode);

  std::map<ProductKind, std::vector<Installation>> out;
  for (std::size_t p = 0; p < products.size(); ++p)
    out.emplace(products[p],
                selectInstallations(products[p], candidates[p], wave.results,
                                    wave.slot[p]));
  return out;
}

std::map<ProductKind, std::vector<Installation>> Identifier::identifyAllCached(
    ValidationCache& cache, const SurfaceEpochFn& surfaceEpoch) const {
  const auto& products = filters::allProducts();

  std::vector<std::vector<Candidate>> candidates(products.size());
  for (std::size_t p = 0; p < products.size(); ++p)
    candidates[p] = locate(products[p]);

  // Dedup across products by surface identity — validation is a pure
  // function of (ip, port) content in active mode, so the cache key and the
  // dedup key coincide.
  std::unordered_map<std::uint64_t, std::size_t> slotOf;
  std::vector<const Candidate*> distinct;
  std::vector<std::vector<std::size_t>> slot(products.size());
  for (std::size_t p = 0; p < products.size(); ++p) {
    slot[p].resize(candidates[p].size());
    for (std::size_t i = 0; i < candidates[p].size(); ++i) {
      const auto& candidate = candidates[p][i];
      const std::uint64_t key =
          (std::uint64_t{candidate.ip.value()} << 16) | candidate.port;
      const auto [it, inserted] = slotOf.emplace(key, distinct.size());
      if (inserted) distinct.push_back(&candidate);
      slot[p][i] = it->second;
    }
  }

  std::vector<std::vector<fingerprint::Match>> results(distinct.size());
  std::vector<std::uint64_t> epochs(distinct.size());
  std::vector<std::size_t> misses;
  for (std::size_t k = 0; k < distinct.size(); ++k) {
    const auto& candidate = *distinct[k];
    epochs[k] = surfaceEpoch(candidate.ip, candidate.port);
    const auto* entry = cache.find(candidate.ip, candidate.port);
    if (entry != nullptr && entry->epoch == epochs[k]) {
      results[k] = entry->matches;
      cache.tallyHit();
    } else {
      misses.push_back(k);
      cache.tallyMiss();
    }
  }

  // Validate the misses in the same chunked wave identifyAll uses; slot
  // writes are per-index, so output is byte-identical at any thread count.
  if (config_.threads == 1) {
    for (const auto k : misses)
      validateReference(*distinct[k], ValidationMode::kActive, results[k]);
  } else {
    util::parallelForChunks(
        misses.size(),
        [&](std::size_t begin, std::size_t end) {
          fingerprint::EvalScratch scratch;
          for (std::size_t j = begin; j < end; ++j) {
            const auto k = misses[j];
            validateLean(*distinct[k], ValidationMode::kActive, scratch,
                         results[k]);
          }
        },
        config_.threads, 8);
  }
  for (const auto k : misses)
    cache.store(distinct[k]->ip, distinct[k]->port, epochs[k], results[k]);

  std::map<ProductKind, std::vector<Installation>> out;
  for (std::size_t p = 0; p < products.size(); ++p)
    out.emplace(products[p], selectInstallations(products[p], candidates[p],
                                                 results, slot[p]));
  return out;
}

std::vector<Installation> Identifier::identify(ProductKind product) const {
  return identifyWith(product, ValidationMode::kActive);
}

std::vector<Installation> Identifier::identifyPassive(
    ProductKind product) const {
  return identifyWith(product, ValidationMode::kPassive);
}

std::map<ProductKind, std::vector<Installation>> Identifier::identifyAllPassive()
    const {
  return identifyAllWith(ValidationMode::kPassive);
}

std::map<ProductKind, std::vector<Installation>> Identifier::identifyAll()
    const {
  return identifyAllWith(ValidationMode::kActive);
}

std::map<ProductKind, std::set<std::string>> Identifier::countriesByProduct(
    const std::map<ProductKind, std::vector<Installation>>& all) {
  std::map<ProductKind, std::set<std::string>> out;
  for (const auto& [product, installations] : all) {
    auto& countries = out[product];
    for (const auto& inst : installations) countries.insert(inst.countryAlpha2);
  }
  return out;
}

}  // namespace urlf::core
