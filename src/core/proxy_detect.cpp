#include "core/proxy_detect.h"

#include <algorithm>
#include <stdexcept>

#include "simnet/transport.h"
#include "util/strings.h"

namespace urlf::core {

namespace {

/// Header lines ("Name: value") of a response, normalized for comparison.
std::vector<std::string> responseHeaderLines(const http::Response& response) {
  std::vector<std::string> out;
  for (const auto& field : response.headers.fields())
    out.push_back(field.name + ": " + field.value);
  return out;
}

/// The echoed request lines extracted from the echo page body (between the
/// <pre> markers, unescaped enough for our needs).
std::vector<std::string> echoedRequestLines(const std::string& body) {
  std::vector<std::string> out;
  const auto open = body.find("<pre>");
  const auto close = body.find("</pre>");
  if (open == std::string::npos || close == std::string::npos) return out;
  const std::string inner = body.substr(open + 5, close - open - 5);
  for (const auto& line : util::split(inner, '\n')) {
    const auto trimmed = util::trim(line);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

/// Lines present in `field` but absent from `lab`.
std::vector<std::string> addedLines(const std::vector<std::string>& field,
                                    const std::vector<std::string>& lab) {
  std::vector<std::string> out;
  for (const auto& line : field) {
    if (std::find(lab.begin(), lab.end(), line) == lab.end())
      out.push_back(line);
  }
  return out;
}

std::optional<std::string> sniffProduct(const std::vector<std::string>& lines) {
  struct Marker {
    std::string_view needle;
    std::string_view product;
  };
  static constexpr Marker kMarkers[] = {
      {"proxysg", "Blue Coat ProxySG"},
      {"mcafee web gateway", "McAfee Web Gateway"},
      {"netsweeper", "Netsweeper"},
      {"websense", "Websense"},
  };
  for (const auto& line : lines) {
    for (const auto& marker : kMarkers) {
      if (util::icontains(line, marker.needle))
        return std::string(marker.product);
    }
  }
  return std::nullopt;
}

}  // namespace

ProxyEvidence ProxyDetector::detect(const std::string& fieldVantage,
                                    const std::string& labVantage,
                                    const std::string& echoUrl) {
  auto* field = world_->findVantage(fieldVantage);
  auto* lab = world_->findVantage(labVantage);
  if (field == nullptr || lab == nullptr)
    throw std::invalid_argument("ProxyDetector: unknown vantage point");

  simnet::Transport transport(*world_);
  const auto fieldFetch = transport.fetchUrl(*field, echoUrl);
  const auto labFetch = transport.fetchUrl(*lab, echoUrl);

  ProxyEvidence evidence;
  if (!fieldFetch.ok() || !labFetch.ok()) return evidence;

  evidence.addedResponseHeaders =
      addedLines(responseHeaderLines(*fieldFetch.response),
                 responseHeaderLines(*labFetch.response));
  evidence.addedRequestHeaders =
      addedLines(echoedRequestLines(fieldFetch.response->body),
                 echoedRequestLines(labFetch.response->body));

  auto all = evidence.addedResponseHeaders;
  all.insert(all.end(), evidence.addedRequestHeaders.begin(),
             evidence.addedRequestHeaders.end());
  evidence.productHint = sniffProduct(all);
  return evidence;
}

}  // namespace urlf::core
