#ifndef URLF_CORE_CONFIRMER_H
#define URLF_CORE_CONFIRMER_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "filters/vendor.h"
#include "measure/client.h"
#include "measure/health.h"
#include "measure/journal.h"
#include "simnet/hosting.h"
#include "simnet/world.h"

namespace urlf::core {

/// Campaign-wide crash-tolerance plumbing, threaded through every stage that
/// does network work. Both pointers are optional and non-owning; a
/// default-constructed context reproduces the historical behavior exactly.
struct CampaignContext {
  /// Write-ahead journal: every verdict, submission, clock wait, and state
  /// transition is sync()ed — appended on a fresh run, verified on resume.
  measure::CampaignJournal* journal = nullptr;
  /// Per-vantage circuit breakers shared across the whole campaign.
  measure::HealthRegistry* health = nullptr;
  /// Cross-session verdict store (nullptr = per-client memo only). Attached
  /// to every Client under `memoScope`; the client itself re-checks the
  /// determinism and side-effect gates per vantage pair.
  measure::SharedVerdictStore* sharedMemo = nullptr;
  std::uint64_t memoScope = 0;
};

/// The set of vendors reachable for submissions — the methodology submits
/// to the vendor matching the product under test.
class VendorSet {
 public:
  void add(filters::Vendor& vendor) { vendors_[vendor.kind()] = &vendor; }
  [[nodiscard]] filters::Vendor& get(filters::ProductKind kind) const;
  [[nodiscard]] bool has(filters::ProductKind kind) const {
    return vendors_.contains(kind);
  }

 private:
  std::map<filters::ProductKind, filters::Vendor*> vendors_;
};

/// One §4 case-study configuration (a row of Table 3 before it is run).
struct CaseStudyConfig {
  filters::ProductKind product = filters::ProductKind::kSmartFilter;
  std::string countryAlpha2;   ///< reporting only
  std::string ispName;         ///< reporting only (vantage implies the ISP)
  std::string fieldVantage;    ///< name of the in-country vantage point
  std::string labVantage = "lab-toronto";
  /// Vendor-scheme category name to submit under (the paper first worked
  /// out which categories the ISP blocks — Challenge 1).
  std::string categoryName;
  /// Reporting label for the category (Table 3 uses e.g. "Pornography",
  /// "Proxy anonymizer"). Defaults to categoryName when empty.
  std::string categoryLabel;
  simnet::ContentProfile profile = simnet::ContentProfile::kGlypeProxy;
  int totalSites = 10;   ///< domains created
  int sitesToSubmit = 5; ///< subset submitted to the vendor
  /// Verify the fresh domains are reachable in-country before submitting.
  /// Disabled for Netsweeper: accessing them would queue them for
  /// categorization (§4.4), so "we operate on the assumption that none of
  /// our sites will be blocked prior to submission".
  bool pretestAccessible = true;
  /// Number of retest passes; >1 copes with inconsistent blocking
  /// (Challenge 2) — a URL counts as blocked if any pass blocked it.
  int retestRuns = 1;
  int hoursBetweenRuns = 6;
  /// Wait between submission and retest ("After 3-5 days", §4.2).
  int waitDays = 4;
  std::string submitterId = "citizenlab-tester@webmail.example";
  /// Counter-evasion (§6.2): when non-empty, submissions rotate through
  /// these identities ("easy for us to evade using proxy services or Tor
  /// and many e-mail addresses from free Webmail providers") instead of
  /// using submitterId.
  std::vector<std::string> submitterPool;
  /// Submit through the vendor's Web portal over (simulated) HTTP from the
  /// lab, like the real campaign did, instead of calling the vendor API
  /// directly. Requires the vendor's infrastructure to be installed.
  bool submitViaHttpPortal = false;
  /// Transport behaviour for every fetch in the study (pre-test, portal
  /// submission, retests): redirect limits plus the RetryPolicy that rides
  /// out injected transient faults before a verdict is derived.
  simnet::FetchOptions fetchOptions;
  /// Fetch→classify fast-path knobs. Defaults run the compiled pattern
  /// library with the shared pool; the reference combination
  /// (kReference / classifyThreads=1 / memoizeVerdicts=false) reproduces
  /// the original serial pipeline for equivalence checks.
  measure::ClassifyMode classifyMode = measure::ClassifyMode::kCompiled;
  std::size_t classifyThreads = 0;  ///< util::parallelFor semantics
  bool memoizeVerdicts = true;      ///< auto-disabled on dice-rolling chains
};

/// The outcome of one case study (a completed Table 3 row).
struct CaseStudyResult {
  CaseStudyConfig config;
  std::string dateLabel;  ///< month/year at retest time, as Table 3 reports
  std::vector<std::string> submittedUrls;
  std::vector<std::string> controlUrls;
  /// Pre-test: how many of the created sites were reachable in-country
  /// (== totalSites expected; -1 when the pre-test was skipped).
  int pretestAccessibleCount = -1;
  int submittedBlocked = 0;  ///< submitted sites blocked at retest
  int controlBlocked = 0;    ///< unsubmitted sites blocked at retest
  /// Rows from the final retest pass that were never actually fetched
  /// because the field vantage was quarantined (Provenance::kDegraded).
  /// They count as untestable, never as accessible or blocked.
  int degradedSubmitted = 0;
  int degradedControl = 0;
  /// How many blocked submitted sites carried a block page attributed to
  /// the product under test.
  int attributedToProduct = 0;
  bool confirmed = false;
  std::string notes;
  /// Final per-URL results of the last retest pass (diagnostics).
  std::vector<measure::UrlTestResult> finalResults;

  /// "5/10"-style strings for Table 3.
  [[nodiscard]] std::string submittedRatio() const;
  [[nodiscard]] std::string blockedRatio() const;

  /// Blocking-mechanism mix across the final retest rows, annotated purely
  /// from the recorded exchanges (measure::mechanismOf) — reporting only,
  /// no extra fetches, so campaign digests cannot move.
  [[nodiscard]] std::map<std::string, int> mechanismTally() const;
  /// Dominant non-trivial mechanism for the Table-3 "Mechanism" column.
  [[nodiscard]] std::string dominantMechanism() const;
};

/// §4.4's alternative validation: one Netsweeper category-test probe result.
struct CategoryProbeResult {
  filters::CategoryId category = 0;
  std::string categoryName;
  bool blocked = false;
};

/// The §4 confirmation methodology.
///
/// "The basic idea is to test sites (under our control) that are not
/// blocked within the ISP, and then submit a subset of these sites to the
/// appropriate URL filter vendor. After 3-5 days, we retest the sites and
/// observe whether or not the submitted sites are blocked." (§4.2)
class Confirmer {
 public:
  Confirmer(simnet::World& world, simnet::HostingProvider& hosting,
            VendorSet vendors);

  /// Run one case study end-to-end. Throws std::invalid_argument when the
  /// config names unknown vantages/categories. With a journal in `ctx`,
  /// every stage boundary and verdict is synced (append on a fresh run,
  /// verify on resume); with a health registry, fetches are gated by the
  /// field vantage's circuit breaker.
  [[nodiscard]] CaseStudyResult run(const CaseStudyConfig& config,
                                    const CampaignContext& ctx);
  [[nodiscard]] CaseStudyResult run(const CaseStudyConfig& config) {
    return run(config, CampaignContext{});
  }

  /// Probe all 66 Netsweeper category-test URLs from a field vantage
  /// (denypagetests.netsweeper.com/category/catno/N, §4.4).
  [[nodiscard]] std::vector<CategoryProbeResult> probeNetsweeperCategories(
      const std::string& fieldVantage, const std::string& labVantage,
      const simnet::FetchOptions& fetchOptions, const CampaignContext& ctx);
  [[nodiscard]] std::vector<CategoryProbeResult> probeNetsweeperCategories(
      const std::string& fieldVantage, const std::string& labVantage,
      const simnet::FetchOptions& fetchOptions = {}) {
    return probeNetsweeperCategories(fieldVantage, labVantage, fetchOptions,
                                     CampaignContext{});
  }

  /// The decision rule (§4.2): confirmed ⇔ at least two-thirds of the
  /// `sitesSubmitted` sites are blocked AND attributable to the product.
  /// (Table 3's confirmed rows are 5/5, 5/6, 6/6; unconfirmed are 0/x.)
  [[nodiscard]] static bool decide(int submittedBlocked, int attributedToProduct,
                                   int sitesSubmitted);

 private:
  simnet::World* world_;
  simnet::HostingProvider* hosting_;
  VendorSet vendors_;
};

}  // namespace urlf::core

#endif  // URLF_CORE_CONFIRMER_H
