#include "core/confirmer.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "filters/netsweeper.h"
#include "measure/blockpage.h"
#include "measure/mechanism.h"

namespace urlf::core {

namespace {

using measure::CampaignJournal;
using report::Json;

/// sync() an event if a journal is attached; no-op otherwise.
void emit(const CampaignContext& ctx, Json event) {
  if (ctx.journal != nullptr) ctx.journal->sync(event);
}

/// One journal record per URL verdict, in list order.
void emitVerdicts(const CampaignContext& ctx, simnet::World& world,
                  std::string_view stage,
                  const std::vector<measure::UrlTestResult>& results) {
  if (ctx.journal == nullptr) return;
  for (const auto& r : results) {
    Json e = CampaignJournal::event("verdict", world.now());
    e["stage"] = Json::string(stage);
    e["url"] = Json::string(r.url);
    e["verdict"] = Json::string(toString(r.verdict));
    if (r.provenance != measure::Provenance::kConfirmed)
      e["provenance"] = Json::string(toString(r.provenance));
    // Failed field fetches journal their wire signature and ground-truth
    // cause so a resumed campaign can never misattribute an injected
    // transient to a middlebox (or the other way around).
    if (r.field.signature != simnet::FailureSignature::kNone)
      e["signature"] = Json::string(simnet::toString(r.field.signature));
    if (r.field.cause != simnet::FailureCause::kNone)
      e["cause"] = Json::string(simnet::toString(r.field.cause));
    ctx.journal->sync(e);
  }
}

}  // namespace

filters::Vendor& VendorSet::get(filters::ProductKind kind) const {
  const auto it = vendors_.find(kind);
  if (it == vendors_.end())
    throw std::invalid_argument("VendorSet: no vendor for " +
                                std::string(filters::toString(kind)));
  return *it->second;
}

std::string CaseStudyResult::submittedRatio() const {
  return std::to_string(submittedUrls.size()) + "/" +
         std::to_string(submittedUrls.size() + controlUrls.size());
}

std::string CaseStudyResult::blockedRatio() const {
  return std::to_string(submittedBlocked) + "/" +
         std::to_string(submittedUrls.size());
}

std::map<std::string, int> CaseStudyResult::mechanismTally() const {
  return measure::tallyMechanisms(finalResults);
}

std::string CaseStudyResult::dominantMechanism() const {
  return measure::dominantMechanism(mechanismTally());
}

Confirmer::Confirmer(simnet::World& world, simnet::HostingProvider& hosting,
                     VendorSet vendors)
    : world_(&world), hosting_(&hosting), vendors_(std::move(vendors)) {}

CaseStudyResult Confirmer::run(const CaseStudyConfig& config,
                               const CampaignContext& ctx) {
  if (config.sitesToSubmit <= 0 || config.sitesToSubmit > config.totalSites)
    throw std::invalid_argument("Confirmer: sitesToSubmit out of range");

  auto* field = world_->findVantage(config.fieldVantage);
  auto* lab = world_->findVantage(config.labVantage);
  if (field == nullptr || lab == nullptr)
    throw std::invalid_argument("Confirmer: unknown vantage point");

  auto& vendor = vendors_.get(config.product);
  const auto category = vendor.scheme().byName(config.categoryName);
  if (!category)
    throw std::invalid_argument("Confirmer: unknown category \"" +
                                config.categoryName + "\" for " +
                                std::string(filters::toString(config.product)));

  CaseStudyResult result;
  result.config = config;

  {
    Json e = CampaignJournal::event("case-begin", world_->now());
    e["product"] = Json::string(filters::toString(config.product));
    e["vantage"] = Json::string(config.fieldVantage);
    e["category"] = Json::string(config.categoryName);
    e["total_sites"] = Json::number(std::int64_t{config.totalSites});
    e["sites_to_submit"] = Json::number(std::int64_t{config.sitesToSubmit});
    emit(ctx, std::move(e));
  }

  // 1. Create fresh, never-categorized domains under our control.
  std::vector<simnet::HostedDomain> domains;
  domains.reserve(static_cast<std::size_t>(config.totalSites));
  for (int i = 0; i < config.totalSites; ++i)
    domains.push_back(hosting_->createFreshDomain(config.profile));
  if (ctx.journal != nullptr) {
    // Domain names come from the world RNG; journaling them makes a resume
    // that drifted out of RNG sync fail loudly at the earliest boundary.
    Json e = CampaignJournal::event("domains", world_->now());
    Json hosts = Json::array();
    for (const auto& d : domains) hosts.push(Json::string(d.hostname));
    e["hosts"] = std::move(hosts);
    ctx.journal->sync(e);
  }

  // What we hand the vendor is the site root (their reviewers crawl the
  // index page); what the in-country testers fetch is, for the adult-image
  // profile, the benign file on the host (§4.6) — host-granularity blocking
  // makes the verdict identical.
  std::vector<std::string> submitUrls;
  std::vector<std::string> testUrls;
  submitUrls.reserve(domains.size());
  testUrls.reserve(domains.size());
  for (const auto& d : domains) {
    submitUrls.push_back("http://" + d.hostname + "/");
    const std::string testPath =
        config.profile == simnet::ContentProfile::kAdultImage ? "/benign.jpg"
                                                              : "/";
    testUrls.push_back("http://" + d.hostname + testPath);
  }
  const std::vector<std::string>& urls = testUrls;

  measure::Client client(*world_, *field, *lab, config.fetchOptions);
  client.setClassifyMode(config.classifyMode);
  client.enableVerdictMemo(config.memoizeVerdicts);
  client.setHealthRegistry(ctx.health);
  client.attachSharedMemo(ctx.sharedMemo, ctx.memoScope);

  // 2. Pre-test: the methodology requires sites that are NOT already
  //    blocked. Skipped for Netsweeper (§4.4): the access itself queues the
  //    URL for categorization.
  if (config.pretestAccessible) {
    result.pretestAccessibleCount = 0;
    const auto pretest = client.testListBatched(urls, config.classifyThreads);
    emitVerdicts(ctx, *world_, "pretest", pretest);
    for (const auto& r : pretest) {
      if (r.verdict == measure::Verdict::kAccessible)
        ++result.pretestAccessibleCount;
    }
    {
      Json e = CampaignJournal::event("pretest-done", world_->now());
      e["accessible"] =
          Json::number(std::int64_t{result.pretestAccessibleCount});
      emit(ctx, std::move(e));
    }
    if (result.pretestAccessibleCount < config.totalSites)
      result.notes += "pre-test: " +
                      std::to_string(config.totalSites -
                                     result.pretestAccessibleCount) +
                      " site(s) not cleanly accessible before submission; ";
  }

  // 3. Submit a subset to the vendor. Submitted/control membership is
  //    tracked by the URLs the testers fetch so retest verdicts map back.
  for (std::size_t i = 0; i < urls.size(); ++i) {
    if (i < static_cast<std::size_t>(config.sitesToSubmit)) {
      const std::string& identity =
          config.submitterPool.empty()
              ? config.submitterId
              : config.submitterPool[i % config.submitterPool.size()];
      bool submissionOk = true;
      if (config.submitViaHttpPortal && !vendor.portalUrl().empty()) {
        // Over the wire, as the campaign did: GET the vendor's portal from
        // the (uncensored) lab network.
        simnet::Transport transport(*world_);
        const auto response = transport.fetchUrl(
            *lab,
            vendor.portalUrl() + "?url=" + submitUrls[i] +
                "&category=" + std::to_string(category->id) +
                "&submitter=" + identity,
            config.fetchOptions);
        if (!response.ok() || !response.response->isSuccess()) {
          submissionOk = false;
          result.notes += "portal submission failed for " + submitUrls[i] +
                          " (" + response.error + "); ";
        }
      } else {
        const auto url = net::Url::parse(submitUrls[i]);
        vendor.submitUrl(*url, category->id, identity);
      }
      {
        Json e = CampaignJournal::event("submit", world_->now());
        e["url"] = Json::string(submitUrls[i]);
        e["category"] = Json::number(std::int64_t{category->id});
        e["submitter"] = Json::string(identity);
        if (!submissionOk) e["failed"] = Json::boolean(true);
        emit(ctx, std::move(e));
      }
      result.submittedUrls.push_back(testUrls[i]);
    } else {
      result.controlUrls.push_back(testUrls[i]);
    }
  }

  // 4. Wait out the vendor review latency ("After 3-5 days").
  world_->clock().advanceDays(config.waitDays);
  {
    Json e = CampaignJournal::event("wait", world_->now());
    e["days"] = Json::number(std::int64_t{config.waitDays});
    emit(ctx, std::move(e));
  }

  // 5. Retest, possibly across several passes (Challenge 2: inconsistent
  //    blocking) — a URL counts as blocked if any pass blocked it.
  std::set<std::string> blockedUrls;
  std::set<std::string> attributedUrls;
  for (int run = 0; run < std::max(1, config.retestRuns); ++run) {
    if (run > 0) world_->clock().advanceHours(config.hoursBetweenRuns);
    {
      Json e = CampaignJournal::event("retest", world_->now());
      e["run"] = Json::number(std::int64_t{run});
      emit(ctx, std::move(e));
    }
    result.finalResults = client.testListBatched(urls, config.classifyThreads);
    emitVerdicts(ctx, *world_, "retest", result.finalResults);
    for (const auto& r : result.finalResults) {
      if (!r.blocked()) continue;
      blockedUrls.insert(r.url);
      if (r.blockPage && r.blockPage->product == config.product)
        attributedUrls.insert(r.url);
    }
  }

  // Degraded rows in the final pass were never fetched; surface them so a
  // report can tell "tested and accessible" apart from "untestable".
  for (const auto& r : result.finalResults) {
    if (r.provenance != measure::Provenance::kDegraded) continue;
    if (std::find(result.submittedUrls.begin(), result.submittedUrls.end(),
                  r.url) != result.submittedUrls.end())
      ++result.degradedSubmitted;
    else
      ++result.degradedControl;
  }
  if (result.degradedSubmitted + result.degradedControl > 0)
    result.notes += "untestable (vantage quarantined): " +
                    std::to_string(result.degradedSubmitted) +
                    " submitted / " + std::to_string(result.degradedControl) +
                    " control site(s); ";

  for (const auto& url : result.submittedUrls) {
    if (blockedUrls.contains(url)) ++result.submittedBlocked;
    if (attributedUrls.contains(url)) ++result.attributedToProduct;
  }
  for (const auto& url : result.controlUrls)
    if (blockedUrls.contains(url)) ++result.controlBlocked;

  // 6. Decision rule (§4.2).
  result.confirmed = decide(result.submittedBlocked, result.attributedToProduct,
                            config.sitesToSubmit);
  if (result.controlBlocked > 0)
    result.notes += "control sites blocked: " +
                    std::to_string(result.controlBlocked) +
                    " (consistent with access-queue categorization); ";

  result.dateLabel = world_->now().date().monthYear();

  // 7. Ethics (§4.6): remove offensive content promptly after the test.
  if (config.profile == simnet::ContentProfile::kAdultImage)
    for (const auto& d : domains) hosting_->sanitizeDomain(d);

  {
    Json e = CampaignJournal::event("case-end", world_->now());
    e["confirmed"] = Json::boolean(result.confirmed);
    e["submitted_blocked"] = Json::number(std::int64_t{result.submittedBlocked});
    e["attributed"] = Json::number(std::int64_t{result.attributedToProduct});
    e["control_blocked"] = Json::number(std::int64_t{result.controlBlocked});
    if (result.degradedSubmitted + result.degradedControl > 0) {
      e["degraded_submitted"] =
          Json::number(std::int64_t{result.degradedSubmitted});
      e["degraded_control"] = Json::number(std::int64_t{result.degradedControl});
    }
    emit(ctx, std::move(e));
  }

  return result;
}

bool Confirmer::decide(int submittedBlocked, int attributedToProduct,
                       int sitesSubmitted) {
  if (sitesSubmitted <= 0) return false;
  const int needed = (2 * sitesSubmitted + 2) / 3;
  return submittedBlocked >= needed && attributedToProduct >= needed;
}

std::vector<CategoryProbeResult> Confirmer::probeNetsweeperCategories(
    const std::string& fieldVantage, const std::string& labVantage,
    const simnet::FetchOptions& fetchOptions, const CampaignContext& ctx) {
  auto* field = world_->findVantage(fieldVantage);
  auto* lab = world_->findVantage(labVantage);
  if (field == nullptr || lab == nullptr)
    throw std::invalid_argument("Confirmer: unknown vantage point");

  const auto scheme = filters::netsweeperScheme();
  measure::Client client(*world_, *field, *lab, fetchOptions);
  client.setHealthRegistry(ctx.health);

  {
    Json e = CampaignJournal::event("probe-begin", world_->now());
    e["vantage"] = Json::string(fieldVantage);
    e["categories"] = Json::number(static_cast<std::int64_t>(scheme.size()));
    emit(ctx, std::move(e));
  }

  // Batched: the 66 probes fetch serially in category order (identical to
  // the per-URL loop) and classify in parallel.
  std::vector<std::string> urls;
  urls.reserve(scheme.size());
  for (const auto& category : scheme.categories())
    urls.push_back("http://denypagetests.netsweeper.com/category/catno/" +
                   std::to_string(category.id));
  const auto results = client.testListBatched(urls);

  std::vector<CategoryProbeResult> out;
  out.reserve(scheme.size());
  for (std::size_t i = 0; i < scheme.categories().size(); ++i) {
    const auto& category = scheme.categories()[i];
    out.push_back({category.id, category.name, results[i].blocked()});
    if (ctx.journal != nullptr) {
      Json e = CampaignJournal::event("probe", world_->now());
      e["category"] = Json::number(std::int64_t{category.id});
      e["blocked"] = Json::boolean(results[i].blocked());
      if (results[i].provenance != measure::Provenance::kConfirmed)
        e["provenance"] = Json::string(toString(results[i].provenance));
      ctx.journal->sync(e);
    }
  }
  return out;
}

}  // namespace urlf::core
