#include "core/profiler.h"

#include <stdexcept>

#include "core/serialize.h"
#include "fingerprint/engine.h"

namespace urlf::core {

report::Json NetworkProfile::toJson() const {
  report::Json out = report::Json::object();
  out["isp"] = report::Json::string(ispName);
  out["country"] = report::Json::string(countryAlpha2);

  report::Json installations = report::Json::array();
  for (const auto& installation : installationsInCountry)
    installations.push(core::toJson(installation));
  out["installations_in_country"] = std::move(installations);

  out["proxy_evidence"] =
      proxyEvidence ? core::toJson(*proxyEvidence) : report::Json::null();

  report::Json scouting = report::Json::object();
  for (const auto& [product, uses] : categoryUse) {
    report::Json perProduct = report::Json::array();
    for (const auto& use : uses) perProduct.push(core::toJson(use));
    scouting[std::string(filters::toString(product))] = std::move(perProduct);
  }
  out["category_use"] = std::move(scouting);

  out["characterization"] = core::toJson(characterization);
  return out;
}

NetworkProfile profileNetwork(simnet::World& world,
                              const std::string& fieldVantage,
                              const std::string& labVantage,
                              const ProfilerSources& sources) {
  if (sources.index == nullptr || sources.globalList == nullptr ||
      sources.localList == nullptr)
    throw std::invalid_argument("profileNetwork: missing sources");
  auto* field = world.findVantage(fieldVantage);
  if (field == nullptr)
    throw std::invalid_argument("profileNetwork: unknown vantage " +
                                fieldVantage);

  NetworkProfile profile;
  profile.ispName = field->isp != nullptr ? field->isp->name() : "(no ISP)";
  profile.countryAlpha2 = field->countryAlpha2;

  if (sources.journal != nullptr) {
    report::Json e =
        measure::CampaignJournal::event("profile-begin", world.now());
    e["vantage"] = report::Json::string(fieldVantage);
    sources.journal->sync(e);
  }

  // §3: installations visible in the network's country.
  Identifier identifier(world, *sources.index,
                        fingerprint::Engine::withBuiltinSignatures(),
                        sources.geo, sources.whois);
  for (const auto& [product, installations] : identifier.identifyAll()) {
    for (const auto& installation : installations)
      if (installation.countryAlpha2 == profile.countryAlpha2)
        profile.installationsInCountry.push_back(installation);
  }

  // §7: transparent-proxy evidence on the path.
  if (!sources.echoUrl.empty()) {
    ProxyDetector detector(world);
    profile.proxyEvidence =
        detector.detect(fieldVantage, labVantage, sources.echoUrl);
  }

  // Challenge 1: which categories does the network enforce, per product.
  CategoryScout scout(world);
  for (const auto& [product, sites] : sources.referenceSites)
    profile.categoryUse[product] = scout.scout(fieldVantage, labVantage, sites);

  // §5: what content is censored.
  Characterizer characterizer(world);
  CharacterizeOptions characterizeOptions;
  characterizeOptions.runs = sources.characterizationRuns;
  characterizeOptions.fetchOptions = sources.fetchOptions;
  characterizeOptions.journal = sources.journal;
  characterizeOptions.health = sources.health;
  profile.characterization =
      characterizer.characterize(fieldVantage, labVantage, *sources.globalList,
                                 *sources.localList, characterizeOptions);

  if (sources.journal != nullptr) {
    report::Json e =
        measure::CampaignJournal::event("profile-end", world.now());
    e["installations"] = report::Json::number(
        static_cast<std::int64_t>(profile.installationsInCountry.size()));
    sources.journal->sync(e);
  }
  return profile;
}

}  // namespace urlf::core
