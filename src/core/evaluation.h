#ifndef URLF_CORE_EVALUATION_H
#define URLF_CORE_EVALUATION_H

#include <set>

#include "core/identifier.h"

namespace urlf::core {

/// Binary-classification tallies used to score the identification pipeline
/// against ground truth (the quantitative half of our Table 2 bench).
struct Confusion {
  int truePositives = 0;
  int falsePositives = 0;
  int falseNegatives = 0;

  /// Fraction of reported installations that are real. 1.0 when nothing
  /// was reported (vacuously precise).
  [[nodiscard]] double precision() const {
    const int reported = truePositives + falsePositives;
    return reported == 0 ? 1.0 : static_cast<double>(truePositives) / reported;
  }

  /// Fraction of real installations that were found. 1.0 when there was
  /// nothing to find.
  [[nodiscard]] double recall() const {
    const int real = truePositives + falseNegatives;
    return real == 0 ? 1.0 : static_cast<double>(truePositives) / real;
  }

  /// Harmonic mean of precision and recall; 0 when both are 0.
  [[nodiscard]] double f1() const {
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Score a set of reported installations against the ground-truth IPs for
/// one product.
[[nodiscard]] Confusion scoreIdentification(
    const std::vector<Installation>& reported,
    const std::set<std::uint32_t>& truthIps);

}  // namespace urlf::core

#endif  // URLF_CORE_EVALUATION_H
