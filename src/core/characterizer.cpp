#include "core/characterizer.h"

#include <stdexcept>

namespace urlf::core {

bool CharacterizationResult::categoryBlocked(
    const std::string& oniCategory) const {
  const auto it = cells.find(oniCategory);
  return it != cells.end() && it->second.blocked > 0;
}

const std::vector<std::string>& table4Categories() {
  static const std::vector<std::string> kColumns{
      "Media Freedom",        "Human Rights",
      "Political Reform",     "LGBT",
      "Religious Criticism",  "Minority Groups and Religions",
  };
  return kColumns;
}

namespace {

/// How definitive one run's verdict is: a vendor block page settles the
/// question, a clean accessible pass beats ambiguous failures, and an
/// injected-fault shadow (timeout/inconclusive) ranks lowest.
int verdictRank(const measure::UrlTestResult& result) {
  switch (result.verdict) {
    case measure::Verdict::kBlocked: return 5;
    case measure::Verdict::kAccessible: return 4;
    case measure::Verdict::kBlockedOther: return 3;
    case measure::Verdict::kInconclusive: return 2;
    case measure::Verdict::kError: return 1;
  }
  return 0;
}

}  // namespace

CharacterizationResult Characterizer::characterize(
    const std::string& fieldVantage, const std::string& labVantage,
    const measure::TestList& globalList, const measure::TestList& localList,
    int runs, const simnet::FetchOptions& fetchOptions) {
  auto* field = world_->findVantage(fieldVantage);
  auto* lab = world_->findVantage(labVantage);
  if (field == nullptr || lab == nullptr)
    throw std::invalid_argument("Characterizer: unknown vantage point");

  CharacterizationResult out;
  out.ispName = field->isp != nullptr ? field->isp->name() : "(no ISP)";
  out.countryAlpha2 = field->countryAlpha2;

  measure::Client client(*world_, *field, *lab, fetchOptions);
  std::map<filters::ProductKind, int> productVotes;

  for (const auto* list : {&globalList, &localList}) {
    for (const auto& entry : list->entries) {
      // Repeat to ride out inconsistent blocking (any-blocked semantics):
      // stop at the first block page, otherwise keep the most definitive
      // observation seen across runs.
      auto result = client.testUrl(entry.url);
      for (int run = 1;
           run < runs && !(result.verdict == measure::Verdict::kBlocked);
           ++run) {
        auto repeat = client.testUrl(entry.url);
        if (verdictRank(repeat) > verdictRank(result))
          result = std::move(repeat);
      }
      auto& cell = out.cells[entry.oniCategory];
      ++cell.tested;
      if (result.verdict == measure::Verdict::kBlocked && result.blockPage) {
        ++cell.blocked;
        ++productVotes[result.blockPage->product];
      }
      out.results.push_back(std::move(result));
    }
  }

  if (!productVotes.empty()) {
    auto best = productVotes.begin();
    for (auto it = productVotes.begin(); it != productVotes.end(); ++it)
      if (it->second > best->second) best = it;
    out.attributedProduct = best->first;
  }
  return out;
}

}  // namespace urlf::core
