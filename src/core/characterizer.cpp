#include "core/characterizer.h"

#include <stdexcept>

namespace urlf::core {

bool CharacterizationResult::categoryBlocked(
    const std::string& oniCategory) const {
  const auto it = cells.find(oniCategory);
  return it != cells.end() && it->second.blocked > 0;
}

const std::vector<std::string>& table4Categories() {
  static const std::vector<std::string> kColumns{
      "Media Freedom",        "Human Rights",
      "Political Reform",     "LGBT",
      "Religious Criticism",  "Minority Groups and Religions",
  };
  return kColumns;
}

CharacterizationResult Characterizer::characterize(
    const std::string& fieldVantage, const std::string& labVantage,
    const measure::TestList& globalList, const measure::TestList& localList,
    int runs) {
  auto* field = world_->findVantage(fieldVantage);
  auto* lab = world_->findVantage(labVantage);
  if (field == nullptr || lab == nullptr)
    throw std::invalid_argument("Characterizer: unknown vantage point");

  CharacterizationResult out;
  out.ispName = field->isp != nullptr ? field->isp->name() : "(no ISP)";
  out.countryAlpha2 = field->countryAlpha2;

  measure::Client client(*world_, *field, *lab);
  std::map<filters::ProductKind, int> productVotes;

  for (const auto* list : {&globalList, &localList}) {
    for (const auto& entry : list->entries) {
      // Retry to ride out inconsistent blocking: keep the first blocked
      // observation, else the last one.
      auto result = client.testUrl(entry.url);
      for (int run = 1;
           run < runs && !(result.verdict == measure::Verdict::kBlocked); ++run)
        result = client.testUrl(entry.url);
      auto& cell = out.cells[entry.oniCategory];
      ++cell.tested;
      if (result.verdict == measure::Verdict::kBlocked && result.blockPage) {
        ++cell.blocked;
        ++productVotes[result.blockPage->product];
      }
      out.results.push_back(std::move(result));
    }
  }

  if (!productVotes.empty()) {
    auto best = productVotes.begin();
    for (auto it = productVotes.begin(); it != productVotes.end(); ++it)
      if (it->second > best->second) best = it;
    out.attributedProduct = best->first;
  }
  return out;
}

}  // namespace urlf::core
