#include "core/characterizer.h"

#include <stdexcept>

#include "measure/mechanism.h"

namespace urlf::core {

bool CharacterizationResult::categoryBlocked(
    const std::string& oniCategory) const {
  const auto it = cells.find(oniCategory);
  return it != cells.end() && it->second.blocked > 0;
}

std::map<std::string, int> CharacterizationResult::mechanismTally() const {
  return measure::tallyMechanisms(results);
}

std::string CharacterizationResult::dominantMechanism() const {
  return measure::dominantMechanism(mechanismTally());
}

const std::vector<std::string>& table4Categories() {
  static const std::vector<std::string> kColumns{
      "Media Freedom",        "Human Rights",
      "Political Reform",     "LGBT",
      "Religious Criticism",  "Minority Groups and Religions",
  };
  return kColumns;
}

namespace {

/// How definitive one run's verdict is: a vendor block page settles the
/// question, a clean accessible pass beats ambiguous failures, and an
/// injected-fault shadow (timeout/inconclusive) ranks lowest.
int verdictRank(const measure::UrlTestResult& result) {
  switch (result.verdict) {
    case measure::Verdict::kBlocked: return 5;
    case measure::Verdict::kAccessible: return 4;
    case measure::Verdict::kBlockedOther: return 3;
    case measure::Verdict::kContested: return 3;  // blocked-ish, unattributed
    case measure::Verdict::kInconclusive: return 2;
    case measure::Verdict::kError: return 1;
  }
  return 0;
}

}  // namespace

CharacterizationResult Characterizer::characterize(
    const std::string& fieldVantage, const std::string& labVantage,
    const measure::TestList& globalList, const measure::TestList& localList,
    int runs, const simnet::FetchOptions& fetchOptions) {
  CharacterizeOptions options;
  options.runs = runs;
  options.fetchOptions = fetchOptions;
  return characterize(fieldVantage, labVantage, globalList, localList,
                      options);
}

CharacterizationResult Characterizer::characterize(
    const std::string& fieldVantage, const std::string& labVantage,
    const measure::TestList& globalList, const measure::TestList& localList,
    const CharacterizeOptions& options) {
  auto* field = world_->findVantage(fieldVantage);
  auto* lab = world_->findVantage(labVantage);
  if (field == nullptr || lab == nullptr)
    throw std::invalid_argument("Characterizer: unknown vantage point");

  CharacterizationResult out;
  out.ispName = field->isp != nullptr ? field->isp->name() : "(no ISP)";
  out.countryAlpha2 = field->countryAlpha2;

  measure::Client client(*world_, *field, *lab, options.fetchOptions);
  client.setClassifyMode(options.classifyMode);
  client.enableVerdictMemo(options.memoizeVerdicts);
  client.setHealthRegistry(options.health);
  client.attachSharedMemo(options.sharedMemo, options.memoScope);
  std::map<filters::ProductKind, int> productVotes;

  if (options.journal != nullptr) {
    report::Json e = measure::CampaignJournal::event("characterize-begin",
                                                     world_->now());
    e["vantage"] = report::Json::string(fieldVantage);
    e["urls"] = report::Json::number(static_cast<std::int64_t>(
        globalList.entries.size() + localList.entries.size()));
    options.journal->sync(e);
  }

  const auto tally = [&](measure::UrlTestResult result,
                         const std::string& oniCategory) {
    auto& cell = out.cells[oniCategory];
    if (result.provenance == measure::Provenance::kDegraded)
      ++cell.untestable;  // never exchanged traffic — not "tested"
    else
      ++cell.tested;
    if (result.verdict == measure::Verdict::kBlocked && result.blockPage) {
      ++cell.blocked;
      ++productVotes[result.blockPage->product];
    } else if (result.verdict == measure::Verdict::kContested) {
      // Quorum/cross-check disagreement: blocked-ish evidence that must
      // neither count as a confirmed block nor vote for a product.
      ++cell.contested;
    }
    if (options.journal != nullptr) {
      report::Json e =
          measure::CampaignJournal::event("verdict", world_->now());
      e["stage"] = report::Json::string("characterize");
      e["url"] = report::Json::string(result.url);
      e["verdict"] = report::Json::string(toString(result.verdict));
      if (result.provenance != measure::Provenance::kConfirmed)
        e["provenance"] = report::Json::string(toString(result.provenance));
      // Failed field fetches journal their wire signature and ground-truth
      // cause, exactly like the confirmer's verdict rows: without the
      // cause, a resumed campaign could not tell an injected transient
      // timeout from a packet-filter kill with the same signature.
      if (result.field.signature != simnet::FailureSignature::kNone)
        e["signature"] =
            report::Json::string(simnet::toString(result.field.signature));
      if (result.field.cause != simnet::FailureCause::kNone)
        e["cause"] = report::Json::string(simnet::toString(result.field.cause));
      if (result.field.interference != simnet::InterferenceEffect::kNone)
        e["interference"] = report::Json::string(
            simnet::toString(result.field.interference));
      options.journal->sync(e);
    }
    out.results.push_back(std::move(result));
  };

  if (options.runs <= 1 && !options.quorumVantages.empty()) {
    // Quorum mode: every URL is confirmed across {field} ∪ quorumVantages
    // by the RobustConfirmer (serial collect, parallel derive) and the
    // quorum-combined verdict is tallied. kContested rows — quorum splits,
    // mimicry cross-check failures — land in ContentCell::contested.
    std::vector<const simnet::VantagePoint*> fields{field};
    for (const auto& name : options.quorumVantages) {
      auto* extra = world_->findVantage(name);
      if (extra == nullptr)
        throw std::invalid_argument("Characterizer: unknown quorum vantage " +
                                    name);
      fields.push_back(extra);
    }
    measure::RobustOptions robust = options.robust;
    robust.fetchOptions = options.fetchOptions;
    robust.classifyMode = options.classifyMode;
    measure::RobustConfirmer confirmer(*world_, std::move(fields), *lab,
                                       robust);

    std::vector<std::string> urls;
    urls.reserve(globalList.entries.size() + localList.entries.size());
    for (const auto* list : {&globalList, &localList})
      for (const auto& entry : list->entries) urls.push_back(entry.url);

    auto verdicts = confirmer.confirmList(urls, options.classifyThreads);
    std::size_t i = 0;
    for (const auto* list : {&globalList, &localList}) {
      for (const auto& entry : list->entries) {
        measure::RobustUrlVerdict& quorumVerdict = verdicts[i++];
        // Tally the row whose blockpage backs the quorum's attribution (the
        // primary vantage's row otherwise), with the combined verdict.
        measure::UrlTestResult row = quorumVerdict.perVantage.front();
        if (quorumVerdict.verdict == measure::Verdict::kBlocked &&
            quorumVerdict.product) {
          for (const auto& candidate : quorumVerdict.perVantage) {
            if (candidate.blockPage &&
                candidate.blockPage->product == *quorumVerdict.product) {
              row = candidate;
              break;
            }
          }
        }
        row.verdict = quorumVerdict.verdict;
        tally(std::move(row), entry.oniCategory);
      }
    }
  } else if (options.runs <= 1) {
    // Single pass: the per-entry loop is just one fetch per URL in list
    // order, so the batched client reproduces it exactly while fanning the
    // classification stage out across threads.
    std::vector<std::string> urls;
    urls.reserve(globalList.entries.size() + localList.entries.size());
    for (const auto* list : {&globalList, &localList})
      for (const auto& entry : list->entries) urls.push_back(entry.url);

    auto results = client.testListBatched(urls, options.classifyThreads);
    std::size_t i = 0;
    for (const auto* list : {&globalList, &localList})
      for (const auto& entry : list->entries)
        tally(std::move(results[i++]), entry.oniCategory);
  } else {
    for (const auto* list : {&globalList, &localList}) {
      for (const auto& entry : list->entries) {
        // Repeat to ride out inconsistent blocking (any-blocked semantics):
        // stop at the first block page, otherwise keep the most definitive
        // observation seen across runs.
        auto result = client.testUrl(entry.url);
        for (int run = 1;
             run < options.runs &&
             !(result.verdict == measure::Verdict::kBlocked);
             ++run) {
          auto repeat = client.testUrl(entry.url);
          if (verdictRank(repeat) > verdictRank(result))
            result = std::move(repeat);
        }
        tally(std::move(result), entry.oniCategory);
      }
    }
  }

  if (!productVotes.empty()) {
    auto best = productVotes.begin();
    for (auto it = productVotes.begin(); it != productVotes.end(); ++it)
      if (it->second > best->second) best = it;
    out.attributedProduct = best->first;
  }

  if (options.journal != nullptr) {
    int tested = 0, blocked = 0, untestable = 0;
    for (const auto& [name, cell] : out.cells) {
      tested += cell.tested;
      blocked += cell.blocked;
      untestable += cell.untestable;
    }
    report::Json e =
        measure::CampaignJournal::event("characterize-end", world_->now());
    e["tested"] = report::Json::number(std::int64_t{tested});
    e["blocked"] = report::Json::number(std::int64_t{blocked});
    if (untestable > 0)
      e["untestable"] = report::Json::number(std::int64_t{untestable});
    options.journal->sync(e);
  }
  return out;
}

}  // namespace urlf::core
