#ifndef URLF_CORE_PROFILER_H
#define URLF_CORE_PROFILER_H

#include <optional>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "core/confirmer.h"
#include "core/identifier.h"
#include "core/proxy_detect.h"
#include "core/scout.h"
#include "measure/testlist.h"
#include "report/json.h"
#include "scan/banner_index.h"

namespace urlf::core {

/// Everything the methodology can learn about one network, gathered in one
/// pass — the shape of an ONI country-profile section: which installations
/// are visible in the network's country, whether the path is transparently
/// proxied, which categories are enforced per product, and what content is
/// censored.
struct NetworkProfile {
  std::string ispName;
  std::string countryAlpha2;
  /// Validated installations geolocated to this country (any product).
  std::vector<Installation> installationsInCountry;
  /// Netalyzr-style path evidence (empty when no echo origin was given).
  std::optional<ProxyEvidence> proxyEvidence;
  /// Per product: the enforced-category scouting results.
  std::map<filters::ProductKind, std::vector<CategoryUse>> categoryUse;
  /// §5 content characterization.
  CharacterizationResult characterization;

  [[nodiscard]] report::Json toJson() const;
};

/// Inputs the profiler needs beyond the world: scan index, geo/whois, and
/// the per-product reference-site lists.
struct ProfilerSources {
  const scan::BannerIndex* index = nullptr;
  geo::GeoDatabase geo;
  geo::AsnDatabase whois;
  std::map<filters::ProductKind, std::vector<ReferenceSite>> referenceSites;
  const measure::TestList* globalList = nullptr;
  const measure::TestList* localList = nullptr;
  std::string echoUrl;  ///< empty = skip proxy detection
  int characterizationRuns = 1;
  /// Redirect limits + retry/backoff for every measurement fetch.
  simnet::FetchOptions fetchOptions;
  /// Campaign write-ahead journal (nullptr = not journaled). Stage
  /// boundaries and characterization verdicts are sync()ed.
  measure::CampaignJournal* journal = nullptr;
  /// Campaign-wide circuit breakers (nullptr = health tracking off).
  measure::HealthRegistry* health = nullptr;
};

/// One-call profiling of a network (composition of the §3/§4.3/§5/§7
/// building blocks; the §4 submission experiment stays separate because it
/// mutates vendor state and takes simulated days).
[[nodiscard]] NetworkProfile profileNetwork(simnet::World& world,
                                            const std::string& fieldVantage,
                                            const std::string& labVantage,
                                            const ProfilerSources& sources);

}  // namespace urlf::core

#endif  // URLF_CORE_PROFILER_H
