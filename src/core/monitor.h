#ifndef URLF_CORE_MONITOR_H
#define URLF_CORE_MONITOR_H

#include <map>
#include <vector>

#include "core/identifier.h"

namespace urlf::core {

/// The longitudinal view the paper motivates ("it is important that we have
/// techniques for monitoring the use of specific technologies for
/// censorship", §1): differences between two identification runs.
///
/// Every list is IP-ascending. `appeared` and `vanished` carry copies (they
/// outlive either input run); `persisted` and `relocated` are pointers into
/// the *caller's* vectors — persisted into `current`, relocated pairs into
/// (baseline, current) — so diffing two large runs never copies the
/// installations both runs share.
struct InstallationDiff {
  /// Present now, absent in the baseline — new deployments (or newly
  /// exposed ones).
  std::vector<Installation> appeared;
  /// Present in the baseline, absent now — decommissioned or newly hidden
  /// (Table 5 evasion #1 shows up here).
  std::vector<Installation> vanished;
  /// Present in both runs; pointers into `current` (current observation).
  std::vector<const Installation*> persisted;
  /// Present in both but geolocated to a different country now (geo DB
  /// churn or address reassignment). Pointer pairs (baseline, current).
  std::vector<std::pair<const Installation*, const Installation*>> relocated;

  [[nodiscard]] bool empty() const {
    return appeared.empty() && vanished.empty() && relocated.empty();
  }
};

/// Diff two identification runs of one product by installation IP, as a
/// sorted two-pointer merge. Duplicate IPs within a run collapse to the
/// first occurrence (the identifier's own dedup rule). The inputs must stay
/// alive as long as the diff's `persisted`/`relocated` pointers are used.
[[nodiscard]] InstallationDiff diffInstallations(
    const std::vector<Installation>& baseline,
    const std::vector<Installation>& current);

/// Diff complete identifyAll() outputs; one entry per product present in
/// either run.
[[nodiscard]] std::map<filters::ProductKind, InstallationDiff> diffAll(
    const std::map<filters::ProductKind, std::vector<Installation>>& baseline,
    const std::map<filters::ProductKind, std::vector<Installation>>& current);

}  // namespace urlf::core

#endif  // URLF_CORE_MONITOR_H
