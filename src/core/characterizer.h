#ifndef URLF_CORE_CHARACTERIZER_H
#define URLF_CORE_CHARACTERIZER_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "filters/category.h"
#include "measure/client.h"
#include "measure/health.h"
#include "measure/journal.h"
#include "measure/robust.h"
#include "measure/testlist.h"
#include "simnet/world.h"

namespace urlf::core {

/// Per-ONI-category tally of tested vs blocked URLs in one network.
struct ContentCell {
  int tested = 0;      ///< URLs actually exchanged with the network
  int blocked = 0;     ///< blocked with a vendor-attributed block page
  int untestable = 0;  ///< skipped — vantage quarantined (kDegraded rows)
  int contested = 0;   ///< blocked-ish but quorum/cross-check disagreed —
                       ///< never counted as blocked, never product-voted
};

/// The §5 characterization of one network: which content categories the
/// confirmed product blocks there. One CharacterizationResult is one row
/// group of Table 4.
struct CharacterizationResult {
  std::string ispName;
  std::string countryAlpha2;
  /// Product attribution from the observed block pages (the product that
  /// matched most block pages), if any URL was blocked.
  std::optional<filters::ProductKind> attributedProduct;
  /// ONI category name -> tallies, across the global + local lists.
  std::map<std::string, ContentCell> cells;
  /// All per-URL results (global list first, then local).
  std::vector<measure::UrlTestResult> results;

  /// True when any URL of this ONI category was blocked.
  [[nodiscard]] bool categoryBlocked(const std::string& oniCategory) const;

  /// Blocking-mechanism mix across all rows, annotated purely from the
  /// recorded exchanges (measure::mechanismOf) — reporting only.
  [[nodiscard]] std::map<std::string, int> mechanismTally() const;
  [[nodiscard]] std::string dominantMechanism() const;
};

/// Pipeline knobs for one characterization (fetch→classify fast path).
struct CharacterizeOptions {
  /// Repeats per URL ("any run blocked" semantics, Challenge 2).
  int runs = 1;
  /// Transport behaviour per fetch (redirect limits + retry/backoff).
  simnet::FetchOptions fetchOptions;
  /// Pattern evaluation: compiled library (default) or per-call reference.
  measure::ClassifyMode classifyMode = measure::ClassifyMode::kCompiled;
  /// Thread limit for the classification stage (util::parallelFor
  /// semantics: 1 = serial reference, 0 = shared pool).
  std::size_t classifyThreads = 0;
  /// Memoize verdicts for repeat fetches on deterministic chains (the memo
  /// auto-disables itself on chains that roll dice — see measure::Client).
  bool memoizeVerdicts = true;
  /// Campaign write-ahead journal (nullptr = not journaled). Stage
  /// boundaries and per-URL final verdicts are sync()ed.
  measure::CampaignJournal* journal = nullptr;
  /// Campaign-wide circuit breakers (nullptr = health tracking off).
  measure::HealthRegistry* health = nullptr;
  /// Cross-session verdict store (nullptr = per-client memo only).
  measure::SharedVerdictStore* sharedMemo = nullptr;
  std::uint64_t memoScope = 0;
  /// Extra field vantages forming a cross-vantage quorum with the primary
  /// one. Non-empty switches the single-pass path to the RobustConfirmer:
  /// every URL is fetched from {fieldVantage} ∪ quorumVantages and the
  /// quorum-combined verdict is tallied (kContested rows land in
  /// ContentCell::contested). Empty = historical single-vantage behaviour.
  std::vector<std::string> quorumVantages;
  /// Quorum/pacing/hedging knobs used when quorumVantages is non-empty.
  /// (`robust.fetchOptions`/`robust.classifyMode` are overridden by the
  /// characterize-level `fetchOptions`/`classifyMode` above.)
  measure::RobustOptions robust;
};

/// Runs the global + local URL lists through the measurement client from a
/// field vantage and tallies blocked content by ONI category (§5).
class Characterizer {
 public:
  explicit Characterizer(simnet::World& world) : world_(&world) {}

  /// `runs` > 1 repeats each URL and counts it blocked if any run blocked
  /// it — how the paper coped with inconsistent blocking (Challenge 2).
  /// Among runs that never produced a block page, the most definitive
  /// observation wins (accessible beats timeout/inconclusive), so transient
  /// substrate faults do not shadow a clean pass. `fetchOptions` adds
  /// per-fetch retry/backoff below the per-URL repetition.
  [[nodiscard]] CharacterizationResult characterize(
      const std::string& fieldVantage, const std::string& labVantage,
      const measure::TestList& globalList, const measure::TestList& localList,
      int runs = 1, const simnet::FetchOptions& fetchOptions = {});

  /// Full-options variant. Single-pass characterizations route through the
  /// batched client (serial fetches, parallel classification); multi-run
  /// ones keep the per-URL repeat loop so the RNG stream order of
  /// nondeterministic chains is replayed exactly. Verdicts and tallies are
  /// identical across classify modes, thread limits, and memo settings.
  [[nodiscard]] CharacterizationResult characterize(
      const std::string& fieldVantage, const std::string& labVantage,
      const measure::TestList& globalList, const measure::TestList& localList,
      const CharacterizeOptions& options);

 private:
  simnet::World* world_;
};

/// The six content categories Table 4 reports as columns.
[[nodiscard]] const std::vector<std::string>& table4Categories();

}  // namespace urlf::core

#endif  // URLF_CORE_CHARACTERIZER_H
