#ifndef URLF_CORE_IDENTIFIER_H
#define URLF_CORE_IDENTIFIER_H

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "filters/category.h"
#include "fingerprint/engine.h"
#include "geo/geodb.h"
#include "scan/banner_index.h"
#include "simnet/world.h"

namespace urlf::core {

/// A validated URL-filter installation: the §3 pipeline's output.
struct Installation {
  filters::ProductKind product = filters::ProductKind::kBlueCoat;
  net::Ipv4Addr ip;
  std::uint16_t port = 80;
  std::string countryAlpha2;  ///< MaxMind-style geolocation
  std::optional<geo::AsnRecord> asn;  ///< Team Cymru-style whois
  double certainty = 0.0;
  std::vector<std::string> evidence;
};

struct IdentifierConfig {
  /// Minimum fingerprint certainty for a validated installation.
  double minCertainty = 0.5;
  /// Search each keyword alone AND combined with every country facet, as
  /// §3.1 does with the ccTLDs "to maximize the set of results".
  bool expandByCountry = true;
  /// Validation fan-out width: 0 uses the full shared thread pool, 1 forces
  /// the serial reference path. Output is byte-identical for any value —
  /// candidates are validated into per-candidate slots and the selection
  /// pass runs sequentially in candidate order (DESIGN.md §4.1).
  std::size_t threads = 0;
};

/// The §3 identification pipeline:
///   1. locate candidates by keyword search over the banner index (Shodan),
///   2. validate each candidate with an active fingerprint probe (WhatWeb),
///   3. map validated IPs to country (MaxMind) and ASN (Team Cymru whois).
///
/// The pipeline deliberately over-collects at step 1 ("we are not
/// conservative, and rely on the following step to confirm", §3.1).
///
/// Validation probes run concurrently on the shared thread pool (active
/// probes are anonymous `GET /` exchanges against externally visible
/// surfaces, which are pure request handlers), so `identifyAll` fans out
/// across every (product, candidate) pair at once.
class Identifier {
 public:
  Identifier(simnet::World& world, const scan::BannerIndex& index,
             fingerprint::Engine engine, geo::GeoDatabase geo,
             geo::AsnDatabase whois, IdentifierConfig config = {});

  /// The Shodan keywords the paper lists per product (Table 2).
  [[nodiscard]] static std::vector<std::string> shodanKeywords(
      filters::ProductKind product);

  /// Identify validated installations of one product (active mode: each
  /// keyword candidate is re-probed, WhatWeb-style).
  [[nodiscard]] std::vector<Installation> identify(
      filters::ProductKind product) const;

  /// Passive mode: validate candidates against their *stored* banners only
  /// — no live probes. This is how an exported scan dump (e.g. a Shodan
  /// data set or the Internet Census archive) is analyzed offline. Slightly
  /// weaker than active mode when banners were truncated.
  [[nodiscard]] std::vector<Installation> identifyPassive(
      filters::ProductKind product) const;

  [[nodiscard]] std::map<filters::ProductKind, std::vector<Installation>>
  identifyAllPassive() const;

  /// All four products (Table 1 order).
  [[nodiscard]] std::map<filters::ProductKind, std::vector<Installation>>
  identifyAll() const;

  /// Figure 1 data: product -> set of countries with >= 1 installation.
  [[nodiscard]] static std::map<filters::ProductKind, std::set<std::string>>
  countriesByProduct(
      const std::map<filters::ProductKind, std::vector<Installation>>& all);

  /// Candidates located by keyword search (before validation) — exposed so
  /// precision/recall of the validation step can be evaluated.
  [[nodiscard]] std::vector<const scan::BannerRecord*> locateCandidates(
      filters::ProductKind product) const;

 private:
  /// Validate one candidate: fingerprint matches from a live probe (active)
  /// or the stored banner (passive).
  using ValidateFn =
      std::function<std::vector<fingerprint::Match>(const scan::BannerRecord&)>;

  /// candidates -> parallel validation -> sequential selection. The
  /// selection pass walks candidates in index order (one installation per
  /// IP, first qualifying port wins), so output is order-deterministic.
  [[nodiscard]] std::vector<Installation> identifyWith(
      filters::ProductKind product, const ValidateFn& validate) const;

  /// Shared fan-out for identifyAll/identifyAllPassive: flattens every
  /// (product, candidate) pair into one parallel validation wave instead of
  /// four sequential per-product waves.
  [[nodiscard]] std::map<filters::ProductKind, std::vector<Installation>>
  identifyAllWith(const ValidateFn& validate) const;

  /// The sequential selection pass shared by all identify flavours.
  [[nodiscard]] std::vector<Installation> selectInstallations(
      filters::ProductKind product,
      const std::vector<const scan::BannerRecord*>& candidates,
      const std::vector<std::vector<fingerprint::Match>>& matches) const;

  [[nodiscard]] ValidateFn activeValidator() const;
  [[nodiscard]] ValidateFn passiveValidator() const;

  simnet::World* world_;
  const scan::BannerIndex* index_;
  fingerprint::Engine engine_;
  geo::GeoDatabase geo_;
  geo::AsnDatabase whois_;
  IdentifierConfig config_;
};

}  // namespace urlf::core

#endif  // URLF_CORE_IDENTIFIER_H
