#ifndef URLF_CORE_IDENTIFIER_H
#define URLF_CORE_IDENTIFIER_H

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "filters/category.h"
#include "fingerprint/engine.h"
#include "geo/geodb.h"
#include "scan/banner_index.h"
#include "simnet/world.h"

namespace urlf::core {

/// A validated URL-filter installation: the §3 pipeline's output.
struct Installation {
  filters::ProductKind product = filters::ProductKind::kBlueCoat;
  net::Ipv4Addr ip;
  std::uint16_t port = 80;
  std::string countryAlpha2;  ///< MaxMind-style geolocation
  std::optional<geo::AsnRecord> asn;  ///< Team Cymru-style whois
  double certainty = 0.0;
  std::vector<std::string> evidence;
};

struct IdentifierConfig {
  /// Minimum fingerprint certainty for a validated installation.
  double minCertainty = 0.5;
  /// Search each keyword alone AND combined with every country facet, as
  /// §3.1 does with the ccTLDs "to maximize the set of results".
  bool expandByCountry = true;
  /// Validation fan-out width: 0 uses the full shared thread pool, 1 forces
  /// the serial reference path (every (product, candidate) pair validated in
  /// order through the allocating entry points). Output is byte-identical
  /// for any value — the fast path validates each distinct candidate once
  /// in chunked waves, and the selection pass runs sequentially in candidate
  /// order (DESIGN.md §4.1).
  std::size_t threads = 0;
};

/// The §3 identification pipeline:
///   1. locate candidates by keyword search over the banner index (Shodan),
///   2. validate each candidate with an active fingerprint probe (WhatWeb),
///   3. map validated IPs to country (MaxMind) and ASN (Team Cymru whois).
///
/// The pipeline deliberately over-collects at step 1 ("we are not
/// conservative, and rely on the following step to confirm", §3.1).
///
/// Works over either banner source: the monolithic BannerIndex (records
/// resident) or the ShardedBannerIndex (compressed postings only; passive
/// validation re-fetches banners through the index's RecordFetcher). Active
/// probes go through World::probeExternal, so streamed hosts that were never
/// bound still answer.
///
/// Validation is a function of the candidate surface alone, never of the
/// product whose keywords located it — so the fast path validates each
/// distinct candidate once and shares the verdict across products, in
/// chunked waves with per-chunk scratch buffers (see IdentifierConfig).
class Identifier {
 public:
  Identifier(simnet::World& world, const scan::BannerIndex& index,
             fingerprint::Engine engine, geo::GeoDatabase geo,
             geo::AsnDatabase whois, IdentifierConfig config = {});

  /// Sharded source: candidates are doc ids. Passive validation and
  /// candidate fetches require the index to have a RecordFetcher attached.
  Identifier(simnet::World& world, const scan::ShardedBannerIndex& index,
             fingerprint::Engine engine, geo::GeoDatabase geo,
             geo::AsnDatabase whois, IdentifierConfig config = {});

  /// The Shodan keywords the paper lists per product (Table 2).
  [[nodiscard]] static std::vector<std::string> shodanKeywords(
      filters::ProductKind product);

  /// Identify validated installations of one product (active mode: each
  /// keyword candidate is re-probed, WhatWeb-style).
  [[nodiscard]] std::vector<Installation> identify(
      filters::ProductKind product) const;

  /// Passive mode: validate candidates against their *stored* banners only
  /// — no live probes. This is how an exported scan dump (e.g. a Shodan
  /// data set or the Internet Census archive) is analyzed offline. Slightly
  /// weaker than active mode when banners were truncated.
  [[nodiscard]] std::vector<Installation> identifyPassive(
      filters::ProductKind product) const;

  [[nodiscard]] std::map<filters::ProductKind, std::vector<Installation>>
  identifyAllPassive() const;

  /// All four products (Table 1 order).
  [[nodiscard]] std::map<filters::ProductKind, std::vector<Installation>>
  identifyAll() const;

  /// Cross-run cache of active-validation results, keyed by candidate
  /// surface (ip, port). Sound because active validation is a pure function
  /// of the surface's current content: an entry may be reused at a later run
  /// if and only if the caller proves (via the epoch) that the surface
  /// content is unchanged since the entry was stored. The longitudinal
  /// monitor derives epochs from its deterministic churn feed.
  class ValidationCache {
   public:
    struct Entry {
      std::uint64_t epoch = 0;
      std::vector<fingerprint::Match> matches;
    };

    [[nodiscard]] const Entry* find(net::Ipv4Addr ip,
                                    std::uint16_t port) const {
      const auto it = entries_.find(key(ip, port));
      return it == entries_.end() ? nullptr : &it->second;
    }
    void store(net::Ipv4Addr ip, std::uint16_t port, std::uint64_t epoch,
               std::vector<fingerprint::Match> matches) {
      entries_[key(ip, port)] = Entry{epoch, std::move(matches)};
    }
    void clear() { entries_.clear(); }
    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return misses_; }
    void tallyHit() { ++hits_; }
    void tallyMiss() { ++misses_; }

   private:
    static std::uint64_t key(net::Ipv4Addr ip, std::uint16_t port) {
      return (std::uint64_t{ip.value()} << 16) | port;
    }
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
  };

  /// The surface-content epoch a cache entry is validated against: any
  /// monotone value that changes whenever the surface at (ip, port) may have
  /// changed content.
  using SurfaceEpochFn =
      std::function<std::uint64_t(net::Ipv4Addr, std::uint16_t)>;

  /// identifyAll with validation results cached across runs: candidates
  /// whose cache entry carries the current surface epoch reuse their stored
  /// matches; the rest are validated (in the same chunked parallel wave as
  /// identifyAll — byte-identical output at any thread count) and stored.
  /// Selection and geolocation run exactly as in identifyAll, so the output
  /// is identical to a fresh identifyAll whenever the epoch function is
  /// truthful.
  [[nodiscard]] std::map<filters::ProductKind, std::vector<Installation>>
  identifyAllCached(ValidationCache& cache,
                    const SurfaceEpochFn& surfaceEpoch) const;

  /// Figure 1 data: product -> set of countries with >= 1 installation.
  [[nodiscard]] static std::map<filters::ProductKind, std::set<std::string>>
  countriesByProduct(
      const std::map<filters::ProductKind, std::vector<Installation>>& all);

  /// Candidates located by keyword search (before validation) — exposed so
  /// precision/recall of the validation step can be evaluated. Monolithic
  /// source only; throws std::logic_error on a sharded source.
  [[nodiscard]] std::vector<const scan::BannerRecord*> locateCandidates(
      filters::ProductKind product) const;

  /// Sharded-source counterpart of locateCandidates: candidate doc ids in
  /// first-match order. Throws std::logic_error on a monolithic source.
  [[nodiscard]] std::vector<std::uint32_t> locateCandidateDocs(
      filters::ProductKind product) const;

 private:
  enum class ValidationMode { kActive, kPassive };

  /// One located candidate, source-agnostic: the surface plus its identity
  /// in the backing index (record pointer or doc id).
  struct Candidate {
    net::Ipv4Addr ip;
    std::uint16_t port = 80;
    const scan::BannerRecord* record = nullptr;  ///< monolithic source
    std::uint32_t doc = 0;                       ///< sharded source
  };

  /// One validation wave over every product's candidate list: results for
  /// each validated job, and per (product, candidate) the slot holding its
  /// verdict (the fast path maps duplicate candidates to one slot).
  struct ValidationWave {
    std::vector<std::vector<fingerprint::Match>> results;
    std::vector<std::vector<std::size_t>> slot;
  };

  [[nodiscard]] std::vector<scan::Query> productQueries(
      filters::ProductKind product) const;
  [[nodiscard]] std::vector<Candidate> locate(
      filters::ProductKind product) const;

  /// Reference validation: the allocating entry points, one candidate.
  void validateReference(const Candidate& candidate, ValidationMode mode,
                         std::vector<fingerprint::Match>& out) const;
  /// Allocation-lean validation through reused scratch buffers; results are
  /// identical to validateReference.
  void validateLean(const Candidate& candidate, ValidationMode mode,
                    fingerprint::EvalScratch& scratch,
                    std::vector<fingerprint::Match>& out) const;

  [[nodiscard]] ValidationWave validateWave(
      const std::vector<std::vector<Candidate>>& perProduct,
      ValidationMode mode) const;

  [[nodiscard]] std::vector<Installation> identifyWith(
      filters::ProductKind product, ValidationMode mode) const;
  [[nodiscard]] std::map<filters::ProductKind, std::vector<Installation>>
  identifyAllWith(ValidationMode mode) const;

  /// The sequential selection pass shared by all identify flavours; matches
  /// for candidates[i] live in results[slot[i]].
  [[nodiscard]] std::vector<Installation> selectInstallations(
      filters::ProductKind product, const std::vector<Candidate>& candidates,
      const std::vector<std::vector<fingerprint::Match>>& results,
      const std::vector<std::size_t>& slot) const;

  simnet::World* world_;
  const scan::BannerIndex* index_ = nullptr;
  const scan::ShardedBannerIndex* sharded_ = nullptr;
  fingerprint::Engine engine_;
  geo::GeoDatabase geo_;
  geo::AsnDatabase whois_;
  IdentifierConfig config_;
};

}  // namespace urlf::core

#endif  // URLF_CORE_IDENTIFIER_H
