#ifndef URLF_CORE_PROXY_DETECT_H
#define URLF_CORE_PROXY_DETECT_H

#include <optional>
#include <string>
#include <vector>

#include "simnet/world.h"

namespace urlf::core {

/// What a Netalyzr-style in-network probe learned about the path between a
/// field vantage point and an echo origin.
struct ProxyEvidence {
  /// Response headers present in the field fetch but not the lab fetch
  /// (e.g. "Via: 1.1 proxysg...", "X-Cache: MISS ...").
  std::vector<std::string> addedResponseHeaders;
  /// Request header lines the origin saw from the field but not from the
  /// lab (in-path request annotation).
  std::vector<std::string> addedRequestHeaders;
  /// Case-insensitive product-marker sniff over the added headers.
  std::optional<std::string> productHint;

  [[nodiscard]] bool proxyDetected() const {
    return !addedResponseHeaders.empty() || !addedRequestHeaders.empty();
  }
};

/// Transparent-proxy detection in the style of Netalyzr [12, 17].
///
/// §7: "our methodology can provide a useful ground truth for more general
/// identification of transparent proxies". This detector is that more
/// general tool: it fetches a request-echo origin from the field and the
/// lab and diffs both directions of the exchange. The §4 confirmations
/// calibrate it — a network confirmed to run a ProxySG should show proxy
/// evidence here.
class ProxyDetector {
 public:
  explicit ProxyDetector(simnet::World& world) : world_(&world) {}

  /// `echoUrl` must point at a RequestEchoServer origin. Throws on unknown
  /// vantage names; returns empty evidence when either fetch fails.
  [[nodiscard]] ProxyEvidence detect(const std::string& fieldVantage,
                                     const std::string& labVantage,
                                     const std::string& echoUrl);

 private:
  simnet::World* world_;
};

}  // namespace urlf::core

#endif  // URLF_CORE_PROXY_DETECT_H
