#include "core/serialize.h"

namespace urlf::core {

using report::Json;

Json toJson(const Installation& installation) {
  Json out = Json::object();
  out["product"] = Json::string(filters::toString(installation.product));
  out["ip"] = Json::string(installation.ip.toString());
  out["port"] = Json::number(std::int64_t{installation.port});
  out["country"] = Json::string(installation.countryAlpha2);
  if (installation.asn) {
    Json asn = Json::object();
    asn["asn"] = Json::number(std::int64_t{installation.asn->asn});
    asn["name"] = Json::string(installation.asn->asName);
    asn["description"] = Json::string(installation.asn->description);
    out["asn"] = std::move(asn);
  }
  out["certainty"] = Json::number(installation.certainty);
  Json evidence = Json::array();
  for (const auto& item : installation.evidence)
    evidence.push(Json::string(item));
  out["evidence"] = std::move(evidence);
  return out;
}

Json toJson(const CaseStudyResult& result) {
  Json out = Json::object();
  out["product"] = Json::string(filters::toString(result.config.product));
  out["country"] = Json::string(result.config.countryAlpha2);
  out["isp"] = Json::string(result.config.ispName);
  out["date"] = Json::string(result.dateLabel);
  out["category"] = Json::string(result.config.categoryLabel.empty()
                                     ? result.config.categoryName
                                     : result.config.categoryLabel);
  out["sites_submitted"] = Json::string(result.submittedRatio());
  out["sites_blocked"] = Json::string(result.blockedRatio());
  out["submitted_blocked"] = Json::number(std::int64_t{result.submittedBlocked});
  out["control_blocked"] = Json::number(std::int64_t{result.controlBlocked});
  if (result.degradedSubmitted + result.degradedControl > 0) {
    out["degraded_submitted"] =
        Json::number(std::int64_t{result.degradedSubmitted});
    out["degraded_control"] = Json::number(std::int64_t{result.degradedControl});
  }
  out["attributed_to_product"] =
      Json::number(std::int64_t{result.attributedToProduct});
  out["confirmed"] = Json::boolean(result.confirmed);
  if (!result.notes.empty()) out["notes"] = Json::string(result.notes);
  // Mechanism columns are pure annotations of already-recorded rows — they
  // add no fetches and cannot perturb campaign digests.
  out["mechanism"] = Json::string(result.dominantMechanism());
  if (const auto tally = result.mechanismTally(); !tally.empty()) {
    Json mechanisms = Json::object();
    for (const auto& [name, count] : tally)
      mechanisms[name] = Json::number(std::int64_t{count});
    out["mechanisms"] = std::move(mechanisms);
  }

  Json submitted = Json::array();
  for (const auto& url : result.submittedUrls) submitted.push(Json::string(url));
  out["submitted_urls"] = std::move(submitted);
  Json controls = Json::array();
  for (const auto& url : result.controlUrls) controls.push(Json::string(url));
  out["control_urls"] = std::move(controls);
  return out;
}

Json toJson(const CharacterizationResult& result) {
  Json out = Json::object();
  out["isp"] = Json::string(result.ispName);
  out["country"] = Json::string(result.countryAlpha2);
  out["attributed_product"] =
      result.attributedProduct
          ? Json::string(filters::toString(*result.attributedProduct))
          : Json::null();
  Json cells = Json::object();
  for (const auto& [category, cell] : result.cells) {
    Json entry = Json::object();
    entry["tested"] = Json::number(std::int64_t{cell.tested});
    entry["blocked"] = Json::number(std::int64_t{cell.blocked});
    if (cell.untestable > 0)
      entry["untestable"] = Json::number(std::int64_t{cell.untestable});
    cells[category] = std::move(entry);
  }
  out["categories"] = std::move(cells);
  out["mechanism"] = Json::string(result.dominantMechanism());
  return out;
}

Json toJson(const CategoryUse& use) {
  Json out = Json::object();
  out["category_id"] = Json::number(std::int64_t{use.category});
  out["category"] = Json::string(use.categoryName);
  out["tested"] = Json::number(std::int64_t{use.tested});
  out["blocked"] = Json::number(std::int64_t{use.blocked});
  out["in_use"] = Json::boolean(use.inUse());
  return out;
}

Json toJson(const ProxyEvidence& evidence) {
  Json out = Json::object();
  out["proxy_detected"] = Json::boolean(evidence.proxyDetected());
  out["product_hint"] = evidence.productHint
                            ? Json::string(*evidence.productHint)
                            : Json::null();
  Json response = Json::array();
  for (const auto& header : evidence.addedResponseHeaders)
    response.push(Json::string(header));
  out["added_response_headers"] = std::move(response);
  Json request = Json::array();
  for (const auto& header : evidence.addedRequestHeaders)
    request.push(Json::string(header));
  out["added_request_headers"] = std::move(request);
  return out;
}

Json toJson(
    const std::map<filters::ProductKind, std::vector<Installation>>& all) {
  Json out = Json::object();
  for (const auto& [product, installations] : all) {
    Json array = Json::array();
    for (const auto& installation : installations)
      array.push(toJson(installation));
    out[std::string(filters::toString(product))] = std::move(array);
  }
  return out;
}

}  // namespace urlf::core
