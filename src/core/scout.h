#ifndef URLF_CORE_SCOUT_H
#define URLF_CORE_SCOUT_H

#include <string>
#include <vector>

#include "filters/category.h"
#include "measure/client.h"
#include "simnet/world.h"

namespace urlf::core {

/// A reference site: a Web site known (from vendor documentation or prior
/// measurements) to be categorized under a specific vendor category.
struct ReferenceSite {
  std::string url;
  filters::CategoryId category = 0;
  std::string categoryName;
};

/// What the scout learned about one vendor category in one ISP.
struct CategoryUse {
  filters::CategoryId category = 0;
  std::string categoryName;
  int tested = 0;
  int blocked = 0;

  /// The category is considered "in use" when any reference site for it is
  /// blocked.
  [[nodiscard]] bool inUse() const { return blocked > 0; }
};

/// Automates Challenge 1 (§4.3) and the scalability concern of §7: "the
/// methods in Section 4 require that we identify which categories are
/// blocked in each ISP before creating test sites."
///
/// The paper did this manually (noticing that SmartFilter-categorized proxy
/// sites were reachable in Saudi Arabia while pornography was not). The
/// scout systematizes it: probe reference sites of known vendor
/// categorization from the field vantage and report which categories the
/// ISP actually enforces.
class CategoryScout {
 public:
  explicit CategoryScout(simnet::World& world) : world_(&world) {}

  /// Probe every reference site from `fieldVantage`; group results by
  /// category. Reference sites whose lab fetch fails are skipped (site
  /// down, not censorship).
  [[nodiscard]] std::vector<CategoryUse> scout(
      const std::string& fieldVantage, const std::string& labVantage,
      const std::vector<ReferenceSite>& referenceSites);

  /// Convenience for the §4 workflow: among `candidates` (category names in
  /// the vendor scheme), pick the first one the ISP enforces, if any.
  [[nodiscard]] static std::optional<std::string> pickEnforcedCategory(
      const std::vector<CategoryUse>& uses,
      const std::vector<std::string>& candidates);

 private:
  simnet::World* world_;
};

}  // namespace urlf::core

#endif  // URLF_CORE_SCOUT_H
