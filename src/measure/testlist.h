#ifndef URLF_MEASURE_TESTLIST_H
#define URLF_MEASURE_TESTLIST_H

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace urlf::measure {

/// The four general themes ONI organizes content categories under (§5).
enum class Theme { kPolitical, kSocial, kInternetTools, kConflictSecurity };

[[nodiscard]] std::string_view toString(Theme theme);

/// One of the 40 ONI content categories (§5: "Each of the URLs on these
/// lists was assigned to one of 40 content categories ... under four general
/// themes").
struct OniCategory {
  std::string_view name;
  Theme theme = Theme::kPolitical;
};

/// The full 40-category taxonomy.
[[nodiscard]] std::span<const OniCategory> oniCategories();

/// Case-insensitive category lookup.
[[nodiscard]] std::optional<OniCategory> oniCategoryByName(std::string_view name);

/// One URL on a test list, tagged with its ONI category.
struct TestUrlEntry {
  std::string url;
  std::string oniCategory;  ///< must name an entry of oniCategories()
};

/// A test list (§5): the "global list" is constant across countries, a
/// "local list" is curated per country by regional experts.
struct TestList {
  std::string name;                 ///< "global" or "local-<alpha2>"
  std::vector<TestUrlEntry> entries;

  [[nodiscard]] std::vector<std::string> urls() const;
};

}  // namespace urlf::measure

#endif  // URLF_MEASURE_TESTLIST_H
