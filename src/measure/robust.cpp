#include "measure/robust.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.h"

namespace urlf::measure {

RobustConfirmer::RobustConfirmer(
    simnet::World& world, std::vector<const simnet::VantagePoint*> fields,
    const simnet::VantagePoint& lab, RobustOptions options)
    : world_(&world),
      transport_(world),
      fields_(std::move(fields)),
      lab_(&lab),
      options_(std::move(options)) {
  if (fields_.empty())
    throw std::invalid_argument("RobustConfirmer: no field vantages");
  for (const auto* vantage : fields_)
    if (vantage == nullptr)
      throw std::invalid_argument("RobustConfirmer: null field vantage");
}

void RobustConfirmer::takePaceToken() {
  if (options_.mode == RobustMode::kReference || options_.paceBurst <= 0 ||
      options_.paceRefillPerHour <= 0.0)
    return;
  const std::int64_t nowHours = world_->now().hours();
  if (!paceStarted_) {
    paceStarted_ = true;
    paceTokens_ = options_.paceBurst;
    paceRefillHour_ = nowHours;
  } else if (nowHours > paceRefillHour_) {
    paceTokens_ = std::min<double>(
        options_.paceBurst,
        paceTokens_ + static_cast<double>(nowHours - paceRefillHour_) *
                          options_.paceRefillPerHour);
    paceRefillHour_ = nowHours;
  }
  if (paceTokens_ < 1.0) {
    // Bucket empty: wait (on the simulated clock) until one token refills.
    const auto waitHours = static_cast<std::int64_t>(
        std::ceil((1.0 - paceTokens_) / options_.paceRefillPerHour));
    world_->clock().advanceHours(waitHours);
    paceTokens_ = std::min<double>(
        options_.paceBurst, paceTokens_ + static_cast<double>(waitHours) *
                                              options_.paceRefillPerHour);
    paceRefillHour_ = world_->now().hours();
  }
  paceTokens_ -= 1.0;
}

std::optional<BlockPageMatch> RobustConfirmer::classify(
    const simnet::FetchResult& field) const {
  return options_.classifyMode == ClassifyMode::kReference
             ? classifyBlockPageReference(field, builtinBlockPagePatterns())
             : classifyBlockPage(field);
}

std::vector<UrlTestResult> RobustConfirmer::collect(const std::string& url) {
  const bool robust = options_.mode == RobustMode::kRobust;
  simnet::FetchOptions fieldOptions = options_.fetchOptions;
  if (robust && options_.attemptDeadlineHours > 0)
    fieldOptions.attemptDeadlineHours = options_.attemptDeadlineHours;

  const std::size_t vantageCount = robust ? fields_.size() : 1;
  std::vector<UrlTestResult> rows;
  rows.reserve(vantageCount);
  for (std::size_t v = 0; v < vantageCount; ++v) {
    simnet::FetchOptions attemptOptions = fieldOptions;
    takePaceToken();
    UrlTestResult row;
    row.url = url;
    row.field = transport_.fetchUrl(*fields_[v], url, attemptOptions);
    if (robust) {
      // Hedge: a slow-drip cancellation is one tarpitted flow, not a
      // verdict — re-fetch with a fresh attempt base (new pure draws),
      // re-paced so hedges don't trip cadence thresholds either.
      for (int hedge = 0;
           hedge < options_.hedgeAttempts &&
           row.field.signature == simnet::FailureSignature::kSlowDrip;
           ++hedge) {
        attemptOptions.attemptBase +=
            std::max(1, attemptOptions.retry.maxAttempts);
        takePaceToken();
        row.field = transport_.fetchUrl(*fields_[v], url, attemptOptions);
      }
    }
    rows.push_back(std::move(row));
  }

  // One lab control per URL, shared by every row: the lab is uncensored, so
  // per-vantage lab fetches would add nothing but extra fault draws.
  simnet::FetchResult lab =
      transport_.fetchUrl(*lab_, url, options_.fetchOptions);
  for (std::size_t v = 0; v + 1 < rows.size(); ++v) rows[v].lab = lab;
  rows.back().lab = std::move(lab);
  return rows;
}

RobustUrlVerdict RobustConfirmer::derive(const std::string& url,
                                         std::vector<UrlTestResult> rows) const {
  RobustUrlVerdict out;
  out.url = url;
  for (auto& row : rows) {
    row.blockPage = classify(row.field);
    row.verdict = Client::compare(row.field, row.lab, row.blockPage);
  }

  if (options_.mode == RobustMode::kReference) {
    // Historical single-vantage behaviour, verbatim: first row decides.
    const UrlTestResult& row = rows.front();
    out.verdict = row.verdict;
    if (row.verdict == Verdict::kBlocked && row.blockPage)
      out.product = row.blockPage->product;
    out.agreeing = 1;
    out.perVantage = std::move(rows);
    return out;
  }

  const int quorum = std::min(std::max(1, options_.quorum),
                              static_cast<int>(rows.size()));
  std::map<filters::ProductKind, int> blockVotes;
  int blockedOther = 0, accessible = 0, inconclusive = 0, error = 0;
  for (const auto& row : rows) {
    switch (row.verdict) {
      case Verdict::kBlocked:
        if (row.blockPage) ++blockVotes[row.blockPage->product];
        break;
      case Verdict::kBlockedOther: ++blockedOther; break;
      case Verdict::kAccessible: ++accessible; break;
      case Verdict::kInconclusive: ++inconclusive; break;
      case Verdict::kError: ++error; break;
      case Verdict::kContested: ++inconclusive; break;  // not emitted by compare
    }
  }

  if (!blockVotes.empty()) {
    if (options_.identifiedProduct) {
      // Mimicry cross-check: only the scan-identified vendor can ever be
      // confirmed. Votes for any other vendor flag suspected mimicry; if
      // the identified vendor itself lacks a quorum, the row is contested,
      // never misattributed.
      const auto it = blockVotes.find(*options_.identifiedProduct);
      const int own = it != blockVotes.end() ? it->second : 0;
      out.mimicrySuspected =
          static_cast<int>(blockVotes.size()) > (own > 0 ? 1 : 0);
      out.agreeing = own;
      if (own >= quorum) {
        out.verdict = Verdict::kBlocked;
        out.product = options_.identifiedProduct;
      } else {
        out.verdict = Verdict::kContested;
      }
    } else {
      // No identification to cross-check against: confirm only a
      // unanimous-vendor quorum; any vendor split is contested.
      auto best = blockVotes.begin();
      for (auto it = blockVotes.begin(); it != blockVotes.end(); ++it)
        if (it->second > best->second) best = it;
      out.agreeing = best->second;
      if (blockVotes.size() == 1 && best->second >= quorum) {
        out.verdict = Verdict::kBlocked;
        out.product = best->first;
      } else {
        out.verdict = Verdict::kContested;
        out.mimicrySuspected = blockVotes.size() > 1;
      }
    }
  } else if (blockedOther >= quorum) {
    out.verdict = Verdict::kBlockedOther;
    out.agreeing = blockedOther;
  } else if (accessible >= quorum) {
    out.verdict = Verdict::kAccessible;
    out.agreeing = accessible;
  } else if (error == static_cast<int>(rows.size())) {
    out.verdict = Verdict::kError;
    out.agreeing = error;
  } else {
    out.verdict = Verdict::kInconclusive;
    out.agreeing = std::max({blockedOther, accessible, inconclusive, error});
  }
  out.perVantage = std::move(rows);
  return out;
}

RobustUrlVerdict RobustConfirmer::confirmUrl(const std::string& url) {
  return derive(url, collect(url));
}

std::vector<RobustUrlVerdict> RobustConfirmer::confirmList(
    std::span<const std::string> urls, std::size_t threadLimit) {
  // Serial collect: fetching mutates the world (pacing clock advances, RNG
  // draws, vendor queues) and must run in exact URL × vantage order.
  std::vector<std::vector<UrlTestResult>> collected;
  collected.reserve(urls.size());
  for (const auto& url : urls) collected.push_back(collect(url));

  // Pure derive, fanned out with slot-per-index writes.
  std::vector<RobustUrlVerdict> out(urls.size());
  util::parallelFor(
      urls.size(),
      [&](std::size_t i) { out[i] = derive(urls[i], std::move(collected[i])); },
      threadLimit);
  return out;
}

}  // namespace urlf::measure
