#include "measure/blockpage.h"

#include <regex>

#include "http/wire.h"
#include "measure/pattern_library.h"
#include "util/regex.h"

namespace urlf::measure {

using filters::ProductKind;

const std::vector<BlockPagePattern>& builtinBlockPagePatterns() {
  static const std::vector<BlockPagePattern> kPatterns{
      // McAfee SmartFilter / McAfee Web Gateway.
      {ProductKind::kSmartFilter, "smartfilter-via-header",
       R"(Via:.*McAfee Web Gateway)"},
      {ProductKind::kSmartFilter, "smartfilter-title",
       R"(<title>[^<]*McAfee Web Gateway[^<]*</title>)"},

      // Blue Coat: the cfauth.com bounce with the cfru parameter.
      {ProductKind::kBlueCoat, "bluecoat-cfauth-redirect",
       R"(Location:\s*http://www\.cfauth\.com/\?cfru=)"},
      {ProductKind::kBlueCoat, "bluecoat-blockpage-title",
       R"(<title>[^<]*Blue Coat[^<]*</title>)"},

      // Netsweeper: deny page under webadmin on port 8080.
      {ProductKind::kNetsweeper, "netsweeper-deny-redirect",
       R"(Location:\s*http://[0-9.]+:8080/webadmin/deny)"},
      {ProductKind::kNetsweeper, "netsweeper-branding",
       R"((Netsweeper WebAdmin|X-Filter:\s*Netsweeper))"},

      // Websense: blockpage.cgi on port 15871 with ws-session.
      {ProductKind::kWebsense, "websense-blockpage-redirect",
       R"(Location:\s*http://[0-9.]+:15871/cgi-bin/blockpage\.cgi\?ws-session=)"},
      {ProductKind::kWebsense, "websense-title",
       R"(<title>[^<]*Websense[^<]*</title>)"},
  };
  return kPatterns;
}

std::string fetchTrace(const simnet::FetchResult& result) {
  std::string trace;
  fetchTraceInto(result, trace);
  return trace;
}

void fetchTraceInto(const simnet::FetchResult& result, std::string& out) {
  out.clear();
  std::size_t bound = 0;
  for (const auto& hop : result.redirectChain)
    bound += http::serializedSizeBound(hop);
  if (result.response) bound += http::serializedSizeBound(*result.response);
  out.reserve(bound);
  for (const auto& hop : result.redirectChain) http::serializeTo(hop, out);
  if (result.response) http::serializeTo(*result.response, out);
}

std::optional<BlockPageMatch> classifyBlockPage(
    const simnet::FetchResult& result,
    const std::vector<BlockPagePattern>& patterns) {
  if (!result.ok() && result.redirectChain.empty()) return std::nullopt;
  thread_local std::string trace;
  fetchTraceInto(result, trace);
  for (const auto& pattern : patterns) {
    // Compiled once per distinct pattern source via the process-wide cache;
    // repeated calls with the same library pay only a hash lookup.
    const std::regex& re = *util::compileIcaseRegex(pattern.regex);
    std::smatch match;
    if (std::regex_search(trace, match, re)) {
      return BlockPageMatch{pattern.product, pattern.name, match.str(0)};
    }
  }
  return std::nullopt;
}

std::optional<BlockPageMatch> classifyBlockPageReference(
    const simnet::FetchResult& result,
    const std::vector<BlockPagePattern>& patterns) {
  if (!result.ok() && result.redirectChain.empty()) return std::nullopt;
  const std::string trace = fetchTrace(result);
  for (const auto& pattern : patterns) {
    const std::regex re(pattern.regex, std::regex::ECMAScript |
                                           std::regex::icase |
                                           std::regex::optimize);
    std::smatch match;
    if (std::regex_search(trace, match, re)) {
      return BlockPageMatch{pattern.product, pattern.name, match.str(0)};
    }
  }
  return std::nullopt;
}

std::optional<BlockPageMatch> classifyBlockPage(
    const simnet::FetchResult& result) {
  return CompiledPatternLibrary::builtin().classify(result);
}

}  // namespace urlf::measure
