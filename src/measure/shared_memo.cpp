#include "measure/shared_memo.h"

#include "util/hash.h"

namespace urlf::measure {

std::string SharedVerdictStore::keyText(const Key& key) {
  std::string text;
  text.reserve(64 + key.field.size() + key.lab.size() + key.url.size());
  text += std::to_string(key.scope);
  text += '|';
  text += std::to_string(key.boxes);
  text += '|';
  text += std::to_string(key.now);
  text += '|';
  text += key.field;
  text += '|';
  text += key.lab;
  text += '|';
  text += key.url;
  return text;
}

SharedVerdictStore::Shard& SharedVerdictStore::shardFor(
    const std::string& text) {
  return shards_[util::fnv1a64(text) % kShards];
}

const SharedVerdictStore::Shard& SharedVerdictStore::shardFor(
    const std::string& text) const {
  return shards_[util::fnv1a64(text) % kShards];
}

std::optional<UrlTestResult> SharedVerdictStore::lookup(const Key& key) const {
  const std::string text = keyText(key);
  const Shard& shard = shardFor(text);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(text);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.result;
}

void SharedVerdictStore::insert(const Key& key, const UrlTestResult& result) {
  const std::string text = keyText(key);
  Shard& shard = shardFor(text);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.emplace(text, Entry{key.scope, result}).second)
    inserts_.fetch_add(1, std::memory_order_relaxed);
}

void SharedVerdictStore::invalidateScope(std::uint64_t scope) {
  std::uint64_t erased = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->second.scope == scope) {
        it = shard.map.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
  }
  invalidated_.fetch_add(erased, std::memory_order_relaxed);
}

void SharedVerdictStore::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
}

std::size_t SharedVerdictStore::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.map.size();
  }
  return n;
}

SharedVerdictStore::Stats SharedVerdictStore::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.invalidated = invalidated_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace urlf::measure
