#ifndef URLF_MEASURE_BLOCKPAGE_H
#define URLF_MEASURE_BLOCKPAGE_H

#include <optional>
#include <string>
#include <vector>

#include "filters/category.h"
#include "simnet/transport.h"

namespace urlf::measure {

/// A vendor block-page recognizer: a named regular expression applied to the
/// textual trace of a fetch (status line, headers, redirect Locations, body).
/// "Manual analysis identified regular expressions corresponding to the
/// vendors' block pages" (§5).
struct BlockPagePattern {
  filters::ProductKind product = filters::ProductKind::kBlueCoat;
  std::string name;    ///< e.g. "smartfilter-via-header"
  std::string regex;   ///< ECMAScript regex, applied case-insensitively
};

/// The built-in pattern library for the four products.
[[nodiscard]] const std::vector<BlockPagePattern>& builtinBlockPagePatterns();

/// A positive block-page classification.
struct BlockPageMatch {
  filters::ProductKind product = filters::ProductKind::kBlueCoat;
  std::string patternName;
  std::string evidence;  ///< the matched text fragment
};

/// Flatten a fetch result (redirect chain + final response) into the text
/// the patterns are applied to. Reserves the exact output size up front.
[[nodiscard]] std::string fetchTrace(const simnet::FetchResult& result);

/// Same, replacing the contents of `out` — lets hot paths reuse one buffer
/// across classifications instead of allocating a trace per call.
void fetchTraceInto(const simnet::FetchResult& result, std::string& out);

/// How classification evaluates its pattern library.
enum class ClassifyMode {
  kCompiled,   ///< compile-once regexes + literal prefilter (default)
  kReference,  ///< per-call std::regex construction, no prefilter
};

/// Classify a fetch as a vendor block page, if any pattern matches. Uses the
/// shared compiled library over builtinBlockPagePatterns().
[[nodiscard]] std::optional<BlockPageMatch> classifyBlockPage(
    const simnet::FetchResult& result);

/// Same, with a caller-supplied pattern library. Regexes compile once per
/// distinct pattern source (process-wide cache), not per call.
[[nodiscard]] std::optional<BlockPageMatch> classifyBlockPage(
    const simnet::FetchResult& result,
    const std::vector<BlockPagePattern>& patterns);

/// Reference classifier: constructs every pattern's std::regex on each call
/// and runs it unconditionally. Semantically identical to the fast paths;
/// kept as the equivalence baseline for tests and benchmarks.
[[nodiscard]] std::optional<BlockPageMatch> classifyBlockPageReference(
    const simnet::FetchResult& result,
    const std::vector<BlockPagePattern>& patterns);

}  // namespace urlf::measure

#endif  // URLF_MEASURE_BLOCKPAGE_H
