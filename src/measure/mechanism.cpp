#include "measure/mechanism.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "net/url.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace urlf::measure {

using simnet::FailureSignature;
using simnet::FetchOutcome;
using simnet::FetchResult;

std::string_view toString(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kNone: return "none";
    case Mechanism::kHttpBlockPage: return "http-block-page";
    case Mechanism::kDnsPoisoning: return "dns-poisoning";
    case Mechanism::kTcpInjection: return "tcp-injection";
    case Mechanism::kSniFiltering: return "sni-filtering";
    case Mechanism::kNullRouting: return "null-routing";
    case Mechanism::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

report::Json toJson(const MechanismVerdict& verdict) {
  report::Json out = report::Json::object();
  out["url"] = report::Json::string(verdict.url);
  out["mechanism"] = report::Json::string(toString(verdict.mechanism));
  out["confidence"] = report::Json::number(verdict.confidence);
  out["trials"] = report::Json::number(std::int64_t{verdict.trials});
  if (verdict.signature != FailureSignature::kNone)
    out["signature"] = report::Json::string(simnet::toString(verdict.signature));
  if (verdict.residualObserved)
    out["residual_observed"] = report::Json::boolean(true);
  if (verdict.esniBypassed) out["esni_bypassed"] = report::Json::boolean(true);
  if (verdict.provenance != Provenance::kConfirmed)
    out["provenance"] = report::Json::string(toString(verdict.provenance));
  if (!verdict.notes.empty()) out["notes"] = report::Json::string(verdict.notes);
  return out;
}

std::string toLine(const MechanismVerdict& verdict) {
  char confidence[16];
  std::snprintf(confidence, sizeof confidence, "%.2f", verdict.confidence);
  std::string line = verdict.url;
  line += '|';
  line += toString(verdict.mechanism);
  line += '|';
  line += confidence;
  line += '|';
  line += std::to_string(verdict.trials);
  line += '|';
  line += simnet::toString(verdict.signature);
  line += '|';
  line += verdict.residualObserved ? "residual" : "-";
  line += '|';
  line += verdict.esniBypassed ? "esni-open" : "-";
  line += '|';
  line += toString(verdict.provenance);
  return line;
}

namespace {

bool bodiesMatch(const FetchResult& field, const FetchResult& lab) {
  return field.ok() && lab.ok() &&
         field.response->statusCode == lab.response->statusCode &&
         field.response->body == lab.response->body;
}

std::string hostOf(const std::string& url) {
  const auto parsed = net::Url::parse(url);
  return parsed ? util::toLower(parsed->host()) : std::string{};
}

bool isHttps(const std::string& url) {
  return util::startsWith(util::toLower(url), "https:");
}

}  // namespace

Mechanism mechanismOf(const UrlTestResult& row) {
  if (row.provenance == Provenance::kDegraded) return Mechanism::kInconclusive;
  return MechanismClassifier::referenceMechanism(row.field, row.lab,
                                                 row.blockPage,
                                                 isHttps(row.url));
}

std::map<std::string, int> tallyMechanisms(
    std::span<const UrlTestResult> rows) {
  std::map<std::string, int> tally;
  for (const auto& row : rows) ++tally[std::string(toString(mechanismOf(row)))];
  return tally;
}

std::string dominantMechanism(const std::map<std::string, int>& tally) {
  std::string best;
  int bestCount = 0;
  for (const auto& [name, count] : tally) {
    if (name == toString(Mechanism::kNone) ||
        name == toString(Mechanism::kInconclusive))
      continue;
    if (count > bestCount) {
      best = name;
      bestCount = count;
    }
  }
  if (!best.empty()) return best;
  if (tally.contains(std::string(toString(Mechanism::kNone))))
    return std::string(toString(Mechanism::kNone));
  if (!tally.empty()) return std::string(toString(Mechanism::kInconclusive));
  return std::string(toString(Mechanism::kNone));
}

Mechanism MechanismClassifier::referenceMechanism(
    const FetchResult& field, const FetchResult& lab,
    const std::optional<BlockPageMatch>& blockPage, bool https) {
  if (!lab.ok()) return Mechanism::kInconclusive;
  if (field.outcome == FetchOutcome::kOk) {
    if (blockPage) return Mechanism::kHttpBlockPage;
    if (bodiesMatch(field, lab)) return Mechanism::kNone;
    return Mechanism::kInconclusive;
  }
  switch (field.signature) {
    case FailureSignature::kEmptyDns: return Mechanism::kDnsPoisoning;
    case FailureSignature::kRstAfterRequest: return Mechanism::kTcpInjection;
    case FailureSignature::kRstBeforeBanner:
      // On TLS a pre-banner kill is what an SNI filter looks like in one
      // draw; on cleartext it is injector state. One draw cannot tell a
      // fail-closed TLS injector apart — that is the evidence path's job.
      return https ? Mechanism::kSniFiltering : Mechanism::kTcpInjection;
    case FailureSignature::kTimeout: return Mechanism::kNullRouting;
    case FailureSignature::kRefused:
    case FailureSignature::kNone:
    case FailureSignature::kSlowDrip:
      // A deadline-cancelled slow drip is adversarial interference, not a
      // blocking mechanism — it never counts toward a censorship verdict.
      return Mechanism::kInconclusive;
  }
  return Mechanism::kInconclusive;
}

MechanismClassifier::MechanismClassifier(simnet::World& world,
                                         const simnet::VantagePoint& field,
                                         const simnet::VantagePoint& lab,
                                         MechanismOptions options)
    : world_(&world),
      transport_(world),
      field_(&field),
      lab_(&lab),
      options_(options) {}

simnet::FetchResult MechanismClassifier::fieldFetch(const std::string& url,
                                                    int trialIndex,
                                                    bool omitSni) {
  simnet::FetchOptions fetchOptions = options_.fetchOptions;
  fetchOptions.omitSni = fetchOptions.omitSni || omitSni;
  // Fresh fault draws per trial: draws are pure in (seed, vantage, url,
  // attempt) and each fetch() restarts its attempt loop at 0, so without
  // the offset every trial would re-observe trial 0's fault.
  const int perTrial = std::max(1, options_.fetchOptions.retry.maxAttempts);
  fetchOptions.attemptBase =
      options_.fetchOptions.attemptBase + trialIndex * perTrial;
  return transport_.fetchUrl(*field_, url, fetchOptions);
}

MechanismEvidence MechanismClassifier::collect(const std::string& url) {
  MechanismEvidence evidence;
  evidence.url = url;
  evidence.https = isHttps(url);

  if (options_.health != nullptr) {
    switch (options_.health->of(field_->name).decide(world_->now())) {
      case HealthDecision::kQuarantined:
        evidence.vantageDegraded = true;
        return evidence;
      case HealthDecision::kProbe:
      case HealthDecision::kProceed:
        break;
    }
  }

  evidence.lab = transport_.fetchUrl(*lab_, url, options_.fetchOptions);
  if (!evidence.lab.ok()) return evidence;

  const int budget = std::max(
      1, options_.mode == MechanismMode::kReference ? 1 : options_.trialBudget);
  int trialIndex = 0;
  const auto runTrial = [&](bool omitSni) {
    ++evidence.fetches;
    return fieldFetch(url, trialIndex++, omitSni);
  };

  bool succeeded = false;
  for (int t = 0; t < budget; ++t) {
    if (t > 0)
      world_->clock().advanceHours(options_.trialSpacing.backoffHours(t - 1));
    evidence.fieldTrials.push_back(runTrial(false));
    if (evidence.fieldTrials.back().outcome == FetchOutcome::kOk) {
      succeeded = true;
      break;
    }
  }

  // One health observation per URL (like Client::testUrl): the first trial.
  // Feeding every trial would let a single null-routed URL trip the breaker
  // by itself, conflating "this URL is blocked" with "the vantage is sick".
  if (options_.health != nullptr)
    options_.health->of(field_->name)
        .recordOutcome(evidence.fieldTrials.front().outcome, world_->now());

  if (succeeded || options_.mode == MechanismMode::kReference) return evidence;

  // Cross-checks are gated on which signature *families* showed up, not on
  // strict unanimity: a single injected fault must not be able to veto a
  // decisive, fault-free discriminator.
  bool sawRstAfter = false, sawRstBefore = false, sawDns = false;
  bool allTimeout = true;
  for (const auto& trial : evidence.fieldTrials) {
    switch (trial.signature) {
      case FailureSignature::kRstAfterRequest: sawRstAfter = true; break;
      case FailureSignature::kRstBeforeBanner: sawRstBefore = true; break;
      case FailureSignature::kEmptyDns:
      case FailureSignature::kRefused: sawDns = true; break;
      default: break;
    }
    if (trial.signature != FailureSignature::kTimeout) allTimeout = false;
  }

  if (sawRstAfter) {
    // Residual-state probe: an immediate refetch. A stateful injector's
    // hold-down kills it *before* the request this time — the signature
    // flip is the fingerprint.
    evidence.residualProbe = runTrial(false);
  } else if (sawRstBefore && evidence.https) {
    // ESNI-style probe: re-fetch with the server name omitted from the
    // hello. An SNI filter fails open; anything else keeps killing.
    evidence.esniProbe = runTrial(true);
  } else if (sawDns && !sawRstBefore) {
    // Out-of-band resolver cross-check: compare what the field path and
    // the lab path resolve, repeatedly. Transient flaps pass; persistent
    // forged answers (empty or wrong) do not. resolveFrom rolls no fault
    // draws, so this discriminator is itself noise-free.
    const std::string host = hostOf(url);
    for (int i = 0; i < std::max(1, options_.resolverChecks); ++i) {
      const auto fieldIp = transport_.resolveFrom(*field_, host);
      const auto labIp = transport_.resolveFrom(*lab_, host);
      ++evidence.resolverChecks;
      if (fieldIp != labIp) ++evidence.resolverMismatches;
    }
  } else if (allTimeout) {
    // A timeout is the one signature with no cross-check, so null-routing
    // is earned with extra corroborating trials (doubled budget).
    const int extra = options_.timeoutCorroboration < 0
                          ? budget
                          : options_.timeoutCorroboration;
    for (int t = 0; t < extra; ++t) {
      world_->clock().advanceHours(
          options_.trialSpacing.backoffHours(budget - 1 + t));
      evidence.fieldTrials.push_back(runTrial(false));
      if (evidence.fieldTrials.back().outcome == FetchOutcome::kOk) break;
    }
  }
  return evidence;
}

MechanismVerdict MechanismClassifier::derive(
    const MechanismEvidence& evidence) const {
  MechanismVerdict verdict;
  verdict.url = evidence.url;
  verdict.trials = evidence.fetches;

  if (evidence.vantageDegraded) {
    verdict.mechanism = Mechanism::kInconclusive;
    verdict.provenance = Provenance::kDegraded;
    verdict.notes = "field vantage quarantined; nothing was fetched";
    return verdict;
  }
  if (!evidence.lab.ok()) {
    verdict.mechanism = Mechanism::kInconclusive;
    verdict.notes = "lab control failed: the site is down, not censored";
    return verdict;
  }
  if (evidence.fieldTrials.empty()) {
    verdict.mechanism = Mechanism::kInconclusive;
    verdict.notes = "no field trials collected";
    return verdict;
  }

  // Any successful trial is definitive evidence one way or the other.
  const auto& last = evidence.fieldTrials.back();
  if (last.outcome == FetchOutcome::kOk) {
    const int failuresBefore =
        static_cast<int>(evidence.fieldTrials.size()) - 1;
    const auto blockPage = classifyBlockPage(last);
    if (blockPage) {
      verdict.mechanism = Mechanism::kHttpBlockPage;
      verdict.confidence = 1.0;
      verdict.notes = "block page: " + blockPage->patternName;
    } else if (bodiesMatch(last, evidence.lab)) {
      verdict.mechanism = Mechanism::kNone;
      verdict.confidence = 1.0 / (1 + failuresBefore);
      if (failuresBefore > 0)
        verdict.notes = "reachable after " + std::to_string(failuresBefore) +
                        " transient failure(s)";
    } else {
      verdict.mechanism = Mechanism::kInconclusive;
      verdict.confidence = 0.5;
      verdict.notes = "reachable but content differs from the lab's view";
    }
    return verdict;
  }

  if (options_.mode == MechanismMode::kReference) {
    const auto& only = evidence.fieldTrials.front();
    verdict.mechanism = referenceMechanism(only, evidence.lab,
                                           classifyBlockPage(only),
                                           evidence.https);
    verdict.signature = only.signature;
    verdict.confidence = 0.5;  // one draw is never more than a guess
    verdict.notes = "reference single-trial mapping";
    return verdict;
  }

  // Family-based derivation. Strict per-trial unanimity would let a single
  // injected fault veto decisive evidence; instead each family leans on a
  // discriminator faults cannot touch — resets are never forged by the
  // substrate, and the resolver cross-check rolls no fault draws. What has
  // no such discriminator (timeouts, refused-with-truthful-DNS) degrades to
  // kInconclusive rather than guessing.
  const int n = static_cast<int>(evidence.fieldTrials.size());
  int resetCount = 0;
  bool sawAfter = false, sawBefore = false;
  bool sawEmptyDns = false, sawRefused = false;
  bool allTimeout = true;
  bool allDns = true;
  for (const auto& trial : evidence.fieldTrials) {
    switch (trial.signature) {
      case FailureSignature::kRstAfterRequest:
        sawAfter = true;
        ++resetCount;
        break;
      case FailureSignature::kRstBeforeBanner:
        sawBefore = true;
        ++resetCount;
        break;
      case FailureSignature::kEmptyDns: sawEmptyDns = true; break;
      case FailureSignature::kRefused: sawRefused = true; break;
      default: break;
    }
    if (trial.signature != FailureSignature::kTimeout) allTimeout = false;
    if (trial.signature != FailureSignature::kEmptyDns &&
        trial.signature != FailureSignature::kRefused)
      allDns = false;
  }

  if (resetCount > 0) {
    // Any reset is deliberate interference; the only question is which kind.
    const bool clean = resetCount == n;  // no fault noise mixed in
    if (evidence.https && !sawAfter) {
      verdict.signature = FailureSignature::kRstBeforeBanner;
      if (evidence.esniProbe && evidence.esniProbe->ok()) {
        verdict.mechanism = Mechanism::kSniFiltering;
        verdict.esniBypassed = true;
        verdict.confidence = clean ? 0.95 : 0.85;
        verdict.notes = "omitting the SNI made the handshake survive";
      } else {
        verdict.mechanism = Mechanism::kTcpInjection;
        verdict.confidence = 0.7;
        verdict.notes = "TLS flows die with or without SNI";
      }
    } else if (sawAfter && sawBefore) {
      // The trials themselves showed the flip: first flow killed after the
      // request, later flows killed before a byte — hold-down state.
      verdict.signature = FailureSignature::kRstAfterRequest;
      verdict.mechanism = Mechanism::kTcpInjection;
      verdict.residualObserved = true;
      verdict.confidence = 0.95;
      verdict.notes =
          "later flows died before the banner — stateful injector hold-down";
    } else if (sawAfter) {
      verdict.signature = FailureSignature::kRstAfterRequest;
      verdict.mechanism = Mechanism::kTcpInjection;
      if (evidence.residualProbe &&
          evidence.residualProbe->signature ==
              FailureSignature::kRstBeforeBanner) {
        verdict.residualObserved = true;
        verdict.confidence = 0.95;
        verdict.notes =
            "residual probe died before the banner — stateful injector";
      } else {
        verdict.confidence = clean ? 0.85 : 0.75;
        verdict.notes = "resets follow the request — stateless injection "
                        "(packet- or HTTP-layer)";
      }
    } else {
      verdict.signature = FailureSignature::kRstBeforeBanner;
      verdict.mechanism = Mechanism::kTcpInjection;
      verdict.residualObserved = true;
      verdict.confidence = 0.75;
      verdict.notes =
          "cleartext flows die before any byte — residual injector state";
    }
    return verdict;
  }

  if (sawEmptyDns || sawRefused) {
    verdict.signature = sawEmptyDns ? FailureSignature::kEmptyDns
                                    : FailureSignature::kRefused;
    if (evidence.resolverChecks > 0 &&
        evidence.resolverMismatches == evidence.resolverChecks) {
      verdict.mechanism = Mechanism::kDnsPoisoning;
      verdict.confidence = !allDns ? 0.85 : sawEmptyDns ? 0.95 : 0.9;
      verdict.notes = sawEmptyDns
                          ? "persistent NXDOMAIN while the lab resolves"
                          : "forged A record: field resolves to a dead "
                            "sinkhole";
    } else {
      // Truthful DNS with failing fetches has no confirmable mechanism
      // among the modeled four; guessing here is how faults get misread.
      verdict.mechanism = Mechanism::kInconclusive;
      verdict.notes =
          "resolver cross-check agrees with the lab — transient flaps";
    }
    return verdict;
  }

  if (allTimeout) {
    verdict.signature = FailureSignature::kTimeout;
    verdict.mechanism = Mechanism::kNullRouting;
    verdict.confidence = 1.0 - std::pow(0.5, n - 1);
    verdict.notes = std::to_string(n) + " consecutive timeouts";
    return verdict;
  }

  verdict.mechanism = Mechanism::kInconclusive;
  verdict.notes = "failure signatures disagree across trials — fault noise";
  return verdict;
}

MechanismVerdict MechanismClassifier::classify(const std::string& url) {
  return derive(collect(url));
}

std::vector<MechanismVerdict> MechanismClassifier::classifyList(
    std::span<const std::string> urls, std::size_t threadLimit) {
  // Evidence collection mutates the world (fetches, clock advances, flow
  // state) and stays strictly serial in list order; derivation is pure and
  // fans out with slot-per-index writes — byte-identical at any width.
  std::vector<MechanismEvidence> evidence;
  evidence.reserve(urls.size());
  for (const auto& url : urls) evidence.push_back(collect(url));

  std::vector<MechanismVerdict> out(urls.size());
  util::parallelFor(
      evidence.size(),
      [&](std::size_t i) { out[i] = derive(evidence[i]); }, threadLimit);
  return out;
}

}  // namespace urlf::measure
