#ifndef URLF_MEASURE_JOURNAL_H
#define URLF_MEASURE_JOURNAL_H

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "report/json.h"
#include "util/clock.h"
#include "util/expected.h"

namespace urlf::measure {

/// Thrown by CampaignJournal::sync when a replayed event does not match the
/// journaled record — the resumed run has diverged from the original (wrong
/// seed, different config, non-deterministic code path).
class JournalDivergence : public std::runtime_error {
 public:
  explicit JournalDivergence(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by CampaignJournal::sync when a crash point armed with
/// crashAfterAppends() fires. The record that triggered it IS durable: the
/// crash models the process dying after the write hit the disk.
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// Append-only, per-record-checksummed write-ahead journal for measurement
/// campaigns (DESIGN.md §4.4).
///
/// File format — one record per line, text, greppable:
///
///   urlfj1 <16-hex fnv1a64 of json> <compact json header>\n
///   <16-hex fnv1a64 of json> <compact json event>\n
///   ...
///
/// A record is valid iff its line is newline-terminated, the checksum
/// matches the byte-exact JSON text, and the JSON parses to an object.
/// open() accepts the longest valid prefix and drops everything after the
/// first torn or corrupt line (the torn-write contract: a crash mid-append
/// loses at most the record being written).
///
/// The simulator is deterministic, so resume is replay-by-re-execution: a
/// resumed campaign rebuilds the world from the journaled config and runs
/// the same program. The journal's job during replay is verification — each
/// sync() checks the regenerated event against the stored record and throws
/// JournalDivergence on any mismatch — and once the stored records are
/// exhausted, sync() switches to appending. The same driver code therefore
/// runs fresh and resumed campaigns identically.
class CampaignJournal {
 public:
  enum class SyncAction {
    kReplayed,  ///< event matched the next stored record
    kAppended,  ///< event was appended (and flushed, if file-backed)
  };

  struct Stats {
    std::size_t loadedRecords = 0;  ///< valid records accepted by open()
    std::size_t droppedBytes = 0;   ///< torn/corrupt tail bytes discarded
    bool tornTail = false;          ///< droppedBytes > 0
  };

  /// Start a fresh journal: truncates `path` and writes the header record.
  /// An empty path makes an in-memory journal (no file, same semantics).
  [[nodiscard]] static CampaignJournal start(const std::string& path,
                                             const report::Json& header);

  /// Open an existing journal for resume. Fails (with a one-line reason)
  /// when the file is missing, empty, or its header record is corrupt —
  /// a resume against those must not silently start fresh. A torn or
  /// corrupt *tail* is recovered: the file is physically truncated to the
  /// longest valid prefix and every surviving record becomes replay state.
  [[nodiscard]] static util::Expected<CampaignJournal> open(
      const std::string& path);

  /// open() on journal text instead of a file: same validation and prefix
  /// recovery, but in-memory (nothing is written anywhere). For tests.
  [[nodiscard]] static util::Expected<CampaignJournal> fromText(
      std::string_view text);

  /// Feed one event through the journal. While stored records remain this
  /// verifies the event against the next one (JournalDivergence on
  /// mismatch); afterwards it appends and flushes.
  SyncAction sync(const report::Json& event);

  /// Arm a crash point: the nth append after this call throws
  /// SimulatedCrash *after* the record is flushed. n <= 0 disarms.
  void crashAfterAppends(int n) { crashBudget_ = n; }

  [[nodiscard]] const report::Json& header() const { return header_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Records consumed or written so far this run.
  [[nodiscard]] std::size_t position() const { return cursor_; }
  /// Records currently stored (replayed-over + appended).
  [[nodiscard]] std::size_t recordCount() const { return records_.size(); }
  /// Stored records not yet replayed over.
  [[nodiscard]] std::size_t replayRemaining() const {
    return records_.size() - cursor_;
  }
  [[nodiscard]] std::size_t appendCount() const { return appends_; }
  [[nodiscard]] const std::vector<report::Json>& records() const {
    return records_;
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Convenience: an event object with "type" and "t" (simulated hours)
  /// already set; callers add their own fields before sync().
  [[nodiscard]] static report::Json event(std::string_view type,
                                          util::SimTime t);

  /// Byte offsets of every record boundary in journal text: offset 0 is
  /// "after the header line", offset k is "after the kth event record".
  /// Crafting a file prefix at any of these simulates a crash exactly
  /// between two appends. Scanning stops at the first invalid line.
  [[nodiscard]] static std::vector<std::size_t> recordBoundaries(
      std::string_view text);

  CampaignJournal(CampaignJournal&&) = default;
  CampaignJournal& operator=(CampaignJournal&&) = default;

 private:
  CampaignJournal() = default;

  void appendLine(const std::string& line);

  std::string path_;  ///< empty = in-memory
  report::Json header_;
  std::vector<report::Json> records_;
  std::vector<std::string> recordTexts_;  ///< compact dumps, index-aligned
  std::size_t cursor_ = 0;
  std::size_t appends_ = 0;
  int crashBudget_ = 0;
  Stats stats_;
  std::ofstream out_;
};

}  // namespace urlf::measure

#endif  // URLF_MEASURE_JOURNAL_H
