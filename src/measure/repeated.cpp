#include "measure/repeated.h"

namespace urlf::measure {

std::vector<UrlRunStats> RepeatedTester::run(std::span<const std::string> urls,
                                             int passes,
                                             int hoursBetweenPasses) {
  std::vector<UrlRunStats> stats;
  stats.reserve(urls.size());
  for (const auto& url : urls) {
    UrlRunStats s;
    s.url = url;
    stats.push_back(std::move(s));
  }

  for (int pass = 0; pass < passes; ++pass) {
    if (pass > 0 && hoursBetweenPasses > 0)
      world_->clock().advanceHours(hoursBetweenPasses);
    for (std::size_t i = 0; i < urls.size(); ++i) {
      const auto result = client_.testUrl(urls[i]);
      auto& s = stats[i];
      ++s.runs;
      switch (result.verdict) {
        case Verdict::kBlocked:
        case Verdict::kBlockedOther:
          ++s.blocked;
          if (result.blockPage && !s.attributedProduct)
            s.attributedProduct = result.blockPage->product;
          break;
        case Verdict::kAccessible:
          ++s.accessible;
          break;
        case Verdict::kInconclusive:
        case Verdict::kError:
        case Verdict::kContested:  // blocked-ish but unattributable
          ++s.other;
          break;
      }
    }
  }
  return stats;
}

}  // namespace urlf::measure
