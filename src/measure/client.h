#ifndef URLF_MEASURE_CLIENT_H
#define URLF_MEASURE_CLIENT_H

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "measure/blockpage.h"
#include "simnet/transport.h"
#include "simnet/world.h"

namespace urlf::measure {

/// Verdict for one URL after comparing the field and lab accesses (§4.1).
enum class Verdict {
  kAccessible,    ///< field matches the lab's view of the page
  kBlocked,       ///< field got a recognized vendor block page
  kBlockedOther,  ///< field clearly censored (non-2xx / RST / timeout while
                  ///< lab is fine) but no vendor pattern matched
  kInconclusive,  ///< field differs from lab in a way we cannot attribute
  kError,         ///< the lab access itself failed — the site is just down
};

[[nodiscard]] std::string_view toString(Verdict verdict);

/// Everything recorded about one URL in one run.
struct UrlTestResult {
  std::string url;
  simnet::FetchResult field;
  simnet::FetchResult lab;
  Verdict verdict = Verdict::kError;
  std::optional<BlockPageMatch> blockPage;

  [[nodiscard]] bool blocked() const {
    return verdict == Verdict::kBlocked || verdict == Verdict::kBlockedOther;
  }
};

/// The ONI-style measurement client (§4.1): accesses a URL list from a field
/// vantage point and triggers the same list from the uncensored lab, then
/// compares the two to decide per-URL accessibility.
///
/// `fetchOptions` (redirect limits + RetryPolicy) apply to both the field
/// and the lab fetch, so transient substrate faults are ridden out on both
/// sides before the verdict is derived.
class Client {
 public:
  Client(simnet::World& world, const simnet::VantagePoint& field,
         const simnet::VantagePoint& lab,
         simnet::FetchOptions fetchOptions = {});

  [[nodiscard]] UrlTestResult testUrl(const std::string& url);

  [[nodiscard]] std::vector<UrlTestResult> testList(
      std::span<const std::string> urls);

  [[nodiscard]] const simnet::VantagePoint& field() const { return *field_; }
  [[nodiscard]] const simnet::VantagePoint& lab() const { return *lab_; }
  [[nodiscard]] const simnet::FetchOptions& fetchOptions() const {
    return fetchOptions_;
  }

  /// The pure comparison rule (§4.1): derive the verdict from the two
  /// fetches and the block-page classification. Public so recorded sessions
  /// can be re-classified offline with a different pattern library.
  [[nodiscard]] static Verdict compare(
      const simnet::FetchResult& field, const simnet::FetchResult& lab,
      const std::optional<BlockPageMatch>& blockPage);

 private:
  simnet::Transport transport_;
  const simnet::VantagePoint* field_;
  const simnet::VantagePoint* lab_;
  simnet::FetchOptions fetchOptions_;
};

}  // namespace urlf::measure

#endif  // URLF_MEASURE_CLIENT_H
