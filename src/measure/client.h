#ifndef URLF_MEASURE_CLIENT_H
#define URLF_MEASURE_CLIENT_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "measure/blockpage.h"
#include "measure/health.h"
#include "simnet/transport.h"
#include "simnet/world.h"

namespace urlf::measure {

class SharedVerdictStore;

/// Verdict for one URL after comparing the field and lab accesses (§4.1).
enum class Verdict {
  kAccessible,    ///< field matches the lab's view of the page
  kBlocked,       ///< field got a recognized vendor block page
  kBlockedOther,  ///< field clearly censored (non-2xx / RST / timeout while
                  ///< lab is fine) but no vendor pattern matched
  kInconclusive,  ///< field differs from lab in a way we cannot attribute
  kError,         ///< the lab access itself failed — the site is just down
  kContested,     ///< cross-vantage quorum disagreed, or the blockpage
                  ///< vendor contradicts the scan/fingerprint identification
                  ///< — blocked-ish evidence that must not be attributed
                  ///< (appended last: campaign digests cast verdicts to int)
};

[[nodiscard]] std::string_view toString(Verdict verdict);

/// How much a recorded row is worth as evidence. kConfirmed rows come from a
/// real field+lab exchange; kDegraded rows were never fetched — the vantage
/// was quarantined by its circuit breaker — so they mean "untestable", not
/// "accessible" or "blocked".
enum class Provenance {
  kConfirmed,
  kDegraded,
};

[[nodiscard]] std::string_view toString(Provenance provenance);

/// Everything recorded about one URL in one run.
struct UrlTestResult {
  std::string url;
  simnet::FetchResult field;
  simnet::FetchResult lab;
  Verdict verdict = Verdict::kError;
  std::optional<BlockPageMatch> blockPage;
  Provenance provenance = Provenance::kConfirmed;

  [[nodiscard]] bool blocked() const {
    return verdict == Verdict::kBlocked || verdict == Verdict::kBlockedOther;
  }
};

/// The ONI-style measurement client (§4.1): accesses a URL list from a field
/// vantage point and triggers the same list from the uncensored lab, then
/// compares the two to decide per-URL accessibility.
///
/// `fetchOptions` (redirect limits + RetryPolicy) apply to both the field
/// and the lab fetch, so transient substrate faults are ridden out on both
/// sides before the verdict is derived.
///
/// Two campaign-scale fast paths are layered on the same semantics:
///
/// - **Batched classification** (testListBatched): fetches stay strictly in
///   list order — fetching mutates the world (RNG draws, retry-backoff clock
///   advances, vendor queues) and must replay the exact serial program order
///   (DESIGN.md §4.1) — while the pure classify/compare stage fans out over
///   util::parallelFor with slot-per-index writes. Output is byte-identical
///   to testList at any thread count.
///
/// - **Verdict memoization** (enableVerdictMemo): repeat fetches of the same
///   URL at an unchanged (middlebox state epoch, clock) are answered from a
///   per-client memo. The memo only ever activates when every middlebox on
///   both vantages' paths reports deterministicIntercept() — a box that
///   rolls dice per exchange (offlineProbability, license models) must
///   consume its RNG draws on every repeat, so its vantage is never
///   memoized. Entries are dropped the moment the epoch moves (any category
///   database mutation or clock advance), and a fetch that itself moves the
///   epoch (retry backoff, queue-triggered recategorization) is not
///   memoized. Policy-knob edits that bypass the epoch (e.g. assigning a new
///   FilterPolicy wholesale) require clearVerdictMemo() or a fresh Client.
class Client {
 public:
  Client(simnet::World& world, const simnet::VantagePoint& field,
         const simnet::VantagePoint& lab,
         simnet::FetchOptions fetchOptions = {});

  [[nodiscard]] UrlTestResult testUrl(const std::string& url);

  [[nodiscard]] std::vector<UrlTestResult> testList(
      std::span<const std::string> urls);

  /// testList with the classification stage parallelized (threadLimit as in
  /// util::parallelFor: 1 = serial reference, 0 = shared pool).
  [[nodiscard]] std::vector<UrlTestResult> testListBatched(
      std::span<const std::string> urls, std::size_t threadLimit = 0);

  /// Opt into verdict memoization. Takes effect only when both vantages'
  /// middlebox chains are deterministic (checked here and remembered).
  void enableVerdictMemo(bool enabled);
  [[nodiscard]] bool verdictMemoActive() const {
    return memoEnabled_ && memoSafe_;
  }
  void clearVerdictMemo();
  [[nodiscard]] std::uint64_t verdictMemoHits() const { return memoHits_; }

  /// Attach a cross-session verdict store under `scope` (nullptr detaches).
  /// On top of the per-client memo's gating, the store is consulted only
  /// when every middlebox on both vantages' chains is deterministic AND
  /// side-effect free (Middlebox::interceptHasSideEffects): a shared hit
  /// skips this world's fetch entirely, which is sound only if the skipped
  /// fetch would have mutated nothing. Shared lookups/inserts additionally
  /// require the per-client memo to be active (enableVerdictMemo), and key
  /// on (scope, middlebox state epoch, clock, vantage pair, url) so entries
  /// can never replay across policy epochs or vantages.
  void attachSharedMemo(SharedVerdictStore* store, std::uint64_t scope);
  [[nodiscard]] bool sharedMemoActive() const {
    return shared_ != nullptr && sharedSafe_ && verdictMemoActive();
  }
  [[nodiscard]] std::uint64_t sharedMemoHits() const { return sharedHits_; }

  /// Attach a campaign-scoped health registry (nullptr = health tracking
  /// off, the historical behavior). With a registry attached, every test is
  /// gated on the *field* vantage's circuit breaker BEFORE the verdict memo
  /// is consulted: a quarantined vantage yields a kDegraded result without
  /// touching the network or the memo, and a half-open probe bypasses the
  /// memo so the breaker sees a live exchange. Only real fetches feed the
  /// breaker — memo hits carry no health signal. The lab vantage is not
  /// gated or tracked: a lab-side failure means the site is down, not that
  /// the infrastructure is sick.
  void setHealthRegistry(HealthRegistry* registry) { health_ = registry; }
  [[nodiscard]] HealthRegistry* healthRegistry() const { return health_; }

  /// Classification mode: compiled pattern library (default) or per-call
  /// reference regex construction (equivalence baseline).
  void setClassifyMode(ClassifyMode mode) { classifyMode_ = mode; }
  [[nodiscard]] ClassifyMode classifyMode() const { return classifyMode_; }

  [[nodiscard]] const simnet::VantagePoint& field() const { return *field_; }
  [[nodiscard]] const simnet::VantagePoint& lab() const { return *lab_; }
  [[nodiscard]] const simnet::FetchOptions& fetchOptions() const {
    return fetchOptions_;
  }

  /// True when a verdict recorded by this client can be replayed later
  /// without re-fetching, as long as no category DB, policy, or clock-lag
  /// boundary moved in between: every middlebox on both vantages' paths is
  /// deterministic (no per-exchange dice) AND side-effect free (no vendor
  /// queue writes). This is the same gate the shared verdict store applies;
  /// the longitudinal monitor consults it before reusing cached verdicts
  /// across ticks.
  [[nodiscard]] bool cacheableChains() const {
    return chainsDeterministic() && chainsSideEffectFree() &&
           interferenceFree();
  }

  /// The pure comparison rule (§4.1): derive the verdict from the two
  /// fetches and the block-page classification. Public so recorded sessions
  /// can be re-classified offline with a different pattern library.
  [[nodiscard]] static Verdict compare(
      const simnet::FetchResult& field, const simnet::FetchResult& lab,
      const std::optional<BlockPageMatch>& blockPage);

 private:
  /// Everything that must be unchanged for a memoized verdict to replay
  /// exactly: category-database state across all middleboxes + the clock
  /// (the policy epoch and the fetch time).
  struct MemoEpoch {
    std::uint64_t boxes = 0;
    std::int64_t now = 0;
    bool operator==(const MemoEpoch&) const = default;
  };
  [[nodiscard]] MemoEpoch currentEpoch() const;
  [[nodiscard]] bool chainsDeterministic() const;
  [[nodiscard]] bool chainsSideEffectFree() const;
  /// True when no InterferencePlan feature is armed for either vantage.
  /// Interference draws are attempt-keyed and the probe/lockout windows are
  /// cadence-dependent, so a verdict observed under an active plan must
  /// never be memoized or shared — a deceived observation served to another
  /// session would launder the deception.
  [[nodiscard]] bool interferenceFree() const;
  /// Shared-store lookup for `url` at `epoch`; populates the local memo on
  /// a hit. Only call when sharedMemoActive().
  [[nodiscard]] std::optional<UrlTestResult> sharedLookup(
      const std::string& url, const MemoEpoch& epoch);
  void sharedInsert(const UrlTestResult& result, const MemoEpoch& epoch);

  /// Fetch both sides and classify — the memo-oblivious core of testUrl.
  /// Feeds the field outcome to the health registry when one is attached.
  [[nodiscard]] UrlTestResult fetchAndClassify(const std::string& url);
  [[nodiscard]] std::optional<BlockPageMatch> classify(
      const simnet::FetchResult& field) const;
  /// The synthetic row recorded for a URL skipped under quarantine.
  [[nodiscard]] UrlTestResult degradedResult(const std::string& url) const;

  simnet::World* world_;
  simnet::Transport transport_;
  const simnet::VantagePoint* field_;
  const simnet::VantagePoint* lab_;
  simnet::FetchOptions fetchOptions_;

  ClassifyMode classifyMode_ = ClassifyMode::kCompiled;
  bool memoEnabled_ = false;
  bool memoSafe_ = false;
  MemoEpoch memoEpoch_{};
  std::uint64_t memoHits_ = 0;
  std::unordered_map<std::string, UrlTestResult> memo_;
  HealthRegistry* health_ = nullptr;

  SharedVerdictStore* shared_ = nullptr;
  std::uint64_t sharedScope_ = 0;
  bool sharedSafe_ = false;
  std::uint64_t sharedHits_ = 0;
};

}  // namespace urlf::measure

#endif  // URLF_MEASURE_CLIENT_H
