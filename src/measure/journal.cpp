#include "measure/journal.h"

#include <cstdio>
#include <filesystem>
#include <optional>

#include "util/hash.h"

namespace urlf::measure {

namespace {

constexpr std::string_view kMagic = "urlfj1";
constexpr std::size_t kChecksumChars = 16;

std::string checksumHex(std::string_view text) {
  char buf[kChecksumChars + 1];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(util::fnv1a64(text)));
  return std::string(buf, kChecksumChars);
}

bool isHex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

/// Validate "<16-hex> <json>" and return the parsed object, or nullopt.
std::optional<report::Json> parseRecordBody(std::string_view body) {
  if (body.size() < kChecksumChars + 2) return std::nullopt;
  if (body[kChecksumChars] != ' ') return std::nullopt;
  for (std::size_t i = 0; i < kChecksumChars; ++i)
    if (!isHex(body[i])) return std::nullopt;
  const std::string_view jsonText = body.substr(kChecksumChars + 1);
  if (checksumHex(jsonText) != body.substr(0, kChecksumChars))
    return std::nullopt;
  auto json = report::Json::parse(jsonText);
  if (!json || !json->isObject()) return std::nullopt;
  return json;
}

struct ScannedJournal {
  report::Json header;
  std::vector<report::Json> records;
  std::vector<std::string> recordTexts;
  std::size_t validBytes = 0;  ///< length of the longest valid prefix
  bool headerOk = false;
};

/// Walk journal text line by line, accepting the longest valid prefix.
ScannedJournal scan(std::string_view text) {
  ScannedJournal out;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) break;  // torn line — no newline yet
    std::string_view line = text.substr(pos, nl - pos);
    if (first) {
      if (line.size() <= kMagic.size() + 1 ||
          line.substr(0, kMagic.size()) != kMagic ||
          line[kMagic.size()] != ' ')
        break;
      auto header = parseRecordBody(line.substr(kMagic.size() + 1));
      if (!header) break;
      out.header = std::move(*header);
      out.headerOk = true;
      first = false;
    } else {
      auto record = parseRecordBody(line);
      if (!record) break;
      out.recordTexts.emplace_back(line.substr(kChecksumChars + 1));
      out.records.push_back(std::move(*record));
    }
    pos = nl + 1;
    out.validBytes = pos;
  }
  return out;
}

std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

}  // namespace

CampaignJournal CampaignJournal::start(const std::string& path,
                                       const report::Json& header) {
  CampaignJournal journal;
  journal.path_ = path;
  journal.header_ = header;
  const std::string headerText = header.dump(0);
  if (!path.empty()) {
    journal.out_.open(path, std::ios::binary | std::ios::trunc);
    if (!journal.out_)
      throw std::runtime_error("cannot create journal: " + path);
    journal.out_ << kMagic << ' ' << checksumHex(headerText) << ' '
                 << headerText << '\n';
    journal.out_.flush();
  }
  return journal;
}

util::Expected<CampaignJournal> CampaignJournal::open(const std::string& path) {
  auto text = readFile(path);
  if (!text)
    return util::Expected<CampaignJournal>::failure(
        "cannot resume: journal '" + path + "' does not exist");
  if (text->empty())
    return util::Expected<CampaignJournal>::failure(
        "cannot resume: journal '" + path + "' is empty");

  ScannedJournal scanned = scan(*text);
  if (!scanned.headerOk)
    return util::Expected<CampaignJournal>::failure(
        "cannot resume: journal '" + path +
        "' has a corrupt or unrecognized header");

  CampaignJournal journal;
  journal.path_ = path;
  journal.header_ = std::move(scanned.header);
  journal.records_ = std::move(scanned.records);
  journal.recordTexts_ = std::move(scanned.recordTexts);
  journal.stats_.loadedRecords = journal.records_.size();
  journal.stats_.droppedBytes = text->size() - scanned.validBytes;
  journal.stats_.tornTail = journal.stats_.droppedBytes > 0;

  // Physically truncate a torn tail so future appends start on a clean
  // record boundary (and a second open sees exactly the same prefix).
  if (journal.stats_.tornTail) {
    std::error_code ec;
    std::filesystem::resize_file(path, scanned.validBytes, ec);
    if (ec)
      return util::Expected<CampaignJournal>::failure(
          "cannot resume: journal '" + path +
          "' has a torn tail that could not be truncated: " + ec.message());
  }

  journal.out_.open(path, std::ios::binary | std::ios::app);
  if (!journal.out_)
    return util::Expected<CampaignJournal>::failure(
        "cannot resume: journal '" + path + "' is not writable");
  return journal;
}

util::Expected<CampaignJournal> CampaignJournal::fromText(
    std::string_view text) {
  if (text.empty())
    return util::Expected<CampaignJournal>::failure(
        "cannot resume: journal text is empty");
  ScannedJournal scanned = scan(text);
  if (!scanned.headerOk)
    return util::Expected<CampaignJournal>::failure(
        "cannot resume: journal text has a corrupt or unrecognized header");
  CampaignJournal journal;
  journal.header_ = std::move(scanned.header);
  journal.records_ = std::move(scanned.records);
  journal.recordTexts_ = std::move(scanned.recordTexts);
  journal.stats_.loadedRecords = journal.records_.size();
  journal.stats_.droppedBytes = text.size() - scanned.validBytes;
  journal.stats_.tornTail = journal.stats_.droppedBytes > 0;
  return journal;
}

void CampaignJournal::appendLine(const std::string& line) {
  if (path_.empty()) return;
  out_ << line << '\n';
  // Flush every record: the torn-write contract promises a crash loses at
  // most the line currently being written, never a previously synced one.
  out_.flush();
}

CampaignJournal::SyncAction CampaignJournal::sync(const report::Json& event) {
  const std::string text = event.dump(0);

  if (cursor_ < records_.size()) {
    const std::string& stored = recordTexts_[cursor_];
    if (stored != text)
      throw JournalDivergence(
          "journal divergence at record " + std::to_string(cursor_) +
          ": stored " + stored + " vs regenerated " + text);
    ++cursor_;
    return SyncAction::kReplayed;
  }

  appendLine(checksumHex(text) + ' ' + text);
  records_.push_back(event);
  recordTexts_.push_back(text);
  ++cursor_;
  ++appends_;
  if (crashBudget_ > 0 && --crashBudget_ == 0)
    throw SimulatedCrash("simulated crash after journal record " +
                         std::to_string(cursor_ - 1) + " (" + text + ")");
  return SyncAction::kAppended;
}

report::Json CampaignJournal::event(std::string_view type, util::SimTime t) {
  report::Json out = report::Json::object();
  out["type"] = report::Json::string(type);
  out["t"] = report::Json::number(t.hours());
  return out;
}

std::vector<std::size_t> CampaignJournal::recordBoundaries(
    std::string_view text) {
  std::vector<std::size_t> boundaries;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) break;
    const std::string_view line = text.substr(pos, nl - pos);
    if (first) {
      if (line.size() <= kMagic.size() + 1 ||
          line.substr(0, kMagic.size()) != kMagic ||
          line[kMagic.size()] != ' ' ||
          !parseRecordBody(line.substr(kMagic.size() + 1)))
        break;
      first = false;
    } else if (!parseRecordBody(line)) {
      break;
    }
    pos = nl + 1;
    boundaries.push_back(pos);
  }
  return boundaries;
}

}  // namespace urlf::measure
