#ifndef URLF_MEASURE_SHARED_MEMO_H
#define URLF_MEASURE_SHARED_MEMO_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "measure/client.h"

namespace urlf::measure {

/// Cross-session verdict store (DESIGN.md §4.6).
///
/// Concurrent sessions that run against *deterministic replicas* of the same
/// world snapshot can share verdicts: if session A already fetched URL u at
/// policy state (boxes, now) from vantage pair (f, l), session B's fetch of
/// the same key is byte-identical by construction and can be answered
/// without touching B's world at all.
///
/// Safety is enforced three ways, mirroring the per-client memo's gating
/// (PR 3) but strengthened for cross-world reuse:
///
///  * **Scope**: every entry carries a caller-chosen 64-bit scope key that
///    folds in everything that selects the world program — snapshot name,
///    campaign config header, and the snapshot's category-DB mutation epoch.
///    Sessions with different configs or epochs can never exchange entries.
///  * **Epoch**: the key includes the live middlebox state epoch (the sum of
///    category-DB mutation counts) and the simulated clock. A world whose
///    databases or clock have moved looks up under a different key, so a
///    stale verdict is structurally unreachable, not just invalidated.
///  * **Side effects**: measure::Client only attaches the store on vantage
///    chains whose intercepts are deterministic AND side-effect free (no
///    queue-on-access boxes — see Middlebox::interceptHasSideEffects).
///    Skipping a fetch must not skip world mutations the solo run would
///    have performed.
///
/// The store is sharded; each shard is a mutex-guarded hash map. Lookups and
/// inserts take one shard lock; statistics are relaxed atomics.
class SharedVerdictStore {
 public:
  struct Key {
    std::uint64_t scope = 0;   ///< session scope (config + snapshot epoch)
    std::uint64_t boxes = 0;   ///< World::middleboxStateEpoch()
    std::int64_t now = 0;      ///< simulated clock, hours
    std::string_view field;    ///< field vantage name
    std::string_view lab;      ///< lab vantage name
    std::string_view url;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t invalidated = 0;  ///< entries erased by invalidateScope
  };

  SharedVerdictStore() = default;
  SharedVerdictStore(const SharedVerdictStore&) = delete;
  SharedVerdictStore& operator=(const SharedVerdictStore&) = delete;

  [[nodiscard]] std::optional<UrlTestResult> lookup(const Key& key) const;

  /// Insert (first writer wins; identical by determinism, so losing a race
  /// is harmless).
  void insert(const Key& key, const UrlTestResult& result);

  /// Drop every entry recorded under `scope`. Called by the campaign server
  /// when a snapshot's category databases mutate and the scope retires —
  /// new sessions already key under the bumped epoch; this just releases
  /// the dead generation's memory promptly.
  void invalidateScope(std::uint64_t scope);

  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats() const;

 private:
  static constexpr std::size_t kShards = 16;

  struct Entry {
    std::uint64_t scope = 0;
    UrlTestResult result;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> map;
  };

  /// Exact composite key text — no hash-collision ambiguity between
  /// vantages, epochs, or scopes.
  [[nodiscard]] static std::string keyText(const Key& key);
  [[nodiscard]] Shard& shardFor(const std::string& text);
  [[nodiscard]] const Shard& shardFor(const std::string& text) const;

  Shard shards_[kShards];
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> invalidated_{0};
};

}  // namespace urlf::measure

#endif  // URLF_MEASURE_SHARED_MEMO_H
