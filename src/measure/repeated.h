#ifndef URLF_MEASURE_REPEATED_H
#define URLF_MEASURE_REPEATED_H

#include <map>
#include <span>
#include <string>
#include <vector>

#include "measure/client.h"
#include "simnet/world.h"

namespace urlf::measure {

/// Per-URL statistics across repeated runs.
struct UrlRunStats {
  std::string url;
  int runs = 0;
  int blocked = 0;       ///< runs with a blocked verdict
  int accessible = 0;    ///< runs with an accessible verdict
  int other = 0;         ///< inconclusive / error runs
  std::optional<filters::ProductKind> attributedProduct;

  /// Blocked in at least one run AND accessible in at least one run — the
  /// §4.4 inconsistency signature ("some proxy URLs are accessible on runs
  /// where other proxy URLs are blocked, while in later runs the reverse is
  /// true").
  [[nodiscard]] bool inconsistent() const {
    return blocked > 0 && accessible > 0;
  }
  [[nodiscard]] bool everBlocked() const { return blocked > 0; }
  [[nodiscard]] double blockedFraction() const {
    return runs == 0 ? 0.0 : static_cast<double>(blocked) / runs;
  }
};

/// Runs a URL list repeatedly with a configurable spacing, advancing the
/// world clock between passes, and aggregates per-URL statistics —
/// systematizing how the paper coped with inconsistent blocking
/// (Challenge 2): "we need to repeat the tests numerous times".
class RepeatedTester {
 public:
  RepeatedTester(simnet::World& world, const simnet::VantagePoint& field,
                 const simnet::VantagePoint& lab,
                 simnet::FetchOptions fetchOptions = {})
      : world_(&world), client_(world, field, lab, fetchOptions) {}

  /// Run `passes` full passes over `urls`, advancing the clock by
  /// `hoursBetweenPasses` between them (the first pass runs at the current
  /// time). Results are keyed by URL in input order.
  [[nodiscard]] std::vector<UrlRunStats> run(std::span<const std::string> urls,
                                             int passes,
                                             int hoursBetweenPasses = 6);

 private:
  simnet::World* world_;
  Client client_;
};

}  // namespace urlf::measure

#endif  // URLF_MEASURE_REPEATED_H
