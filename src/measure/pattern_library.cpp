#include "measure/pattern_library.h"

#include <regex>

#include "util/strings.h"

namespace urlf::measure {

CompiledPatternLibrary::CompiledPatternLibrary(
    std::vector<BlockPagePattern> patterns) {
  entries_.reserve(patterns.size());
  for (auto& pattern : patterns) {
    std::string literal = util::requiredLiteral(pattern.regex);
    if (!literal.empty()) anyLiteral_ = true;
    util::LazyRegex regex(pattern.regex);
    entries_.push_back(
        Entry{std::move(pattern), std::move(regex), std::move(literal)});
  }
}

const CompiledPatternLibrary& CompiledPatternLibrary::builtin() {
  static const CompiledPatternLibrary kLibrary(builtinBlockPagePatterns());
  return kLibrary;
}

std::optional<BlockPageMatch> CompiledPatternLibrary::classify(
    const simnet::FetchResult& result) const {
  if (!result.ok() && result.redirectChain.empty()) return std::nullopt;
  // Reuse one trace buffer per thread: classification is pure, so batched
  // runs classify on worker threads and each keeps its own scratch.
  thread_local std::string trace;
  fetchTraceInto(result, trace);
  return classifyTrace(trace);
}

std::optional<BlockPageMatch> CompiledPatternLibrary::classifyTrace(
    const std::string& trace) const {
  thread_local std::string folded;
  if (anyLiteral_) util::toLowerInto(trace, folded);
  for (const auto& entry : entries_) {
    // The literal is case-folded and required in every match; its absence
    // from the folded trace proves the (case-insensitive) regex cannot
    // match, so the expensive search is skipped.
    if (!entry.literal.empty() &&
        folded.find(entry.literal) == std::string::npos)
      continue;
    std::smatch match;
    if (std::regex_search(trace, match, entry.regex.get())) {
      return BlockPageMatch{entry.source.product, entry.source.name,
                            match.str(0)};
    }
  }
  return std::nullopt;
}

std::vector<BlockPagePattern> CompiledPatternLibrary::patterns() const {
  std::vector<BlockPagePattern> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.source);
  return out;
}

}  // namespace urlf::measure
