#ifndef URLF_MEASURE_MECHANISM_H
#define URLF_MEASURE_MECHANISM_H

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "measure/blockpage.h"
#include "measure/client.h"
#include "measure/health.h"
#include "report/json.h"
#include "simnet/transport.h"
#include "simnet/world.h"

namespace urlf::measure {

/// The blocking mechanism behind an inaccessible URL, as recovered from
/// client-visible evidence alone (DESIGN.md §4.8). kInconclusive is a
/// first-class verdict, not a failure: when fault noise dominates, refusing
/// to guess is the robust answer.
enum class Mechanism {
  kNone,           ///< no interference observed — the URL is reachable
  kHttpBlockPage,  ///< an HTTP-layer product answered with a block page
  kDnsPoisoning,   ///< forged DNS answers (NXDOMAIN or sinkhole)
  kTcpInjection,   ///< injected TCP RST/FIN kills flows
  kSniFiltering,   ///< TLS handshakes die when the hello names the server
  kNullRouting,    ///< the destination is blackholed — flows just time out
  kInconclusive,   ///< evidence too noisy or contradictory to attribute
};

[[nodiscard]] std::string_view toString(Mechanism mechanism);

/// Classifier mode. The evidence-budget path is the robust default; the
/// reference twin maps one field/lab exchange straight to a mechanism and
/// exists as the equivalence baseline (both agree on fault-free worlds —
/// property-tested).
enum class MechanismMode {
  kReference,  ///< single trial, direct signature -> mechanism mapping
  kEvidence,   ///< repeated trials + cross-checks, degrades to kInconclusive
};

struct MechanismOptions {
  MechanismMode mode = MechanismMode::kEvidence;
  /// Field trials per URL before cross-checks (>= 1). The confusion-matrix
  /// ablation (bench/ablation_mechanisms) shows 3 is where false-censorship
  /// verdicts vanish for realistic fault rates.
  int trialBudget = 3;
  /// Simulated-clock spacing between trials: trial t+1 starts
  /// trialSpacing.backoffHours(t) hours after trial t, exactly like retry
  /// backoff. maxAttempts is ignored (trialBudget governs).
  simnet::RetryPolicy trialSpacing;
  /// Transport options for every trial (redirect limits, per-trial retry,
  /// SNI behaviour). attemptBase is managed by the classifier: trial t
  /// rolls fresh fault draws by offsetting the attempt index.
  simnet::FetchOptions fetchOptions;
  /// Repeats of the out-of-band resolver cross-check for DNS signatures.
  int resolverChecks = 2;
  /// Extra corroborating trials when every trial timed out: a timeout is
  /// the one signature with no cross-check, so null-routing must be earned
  /// with a doubled budget before it is attributed.
  int timeoutCorroboration = -1;  ///< -1 = same as trialBudget
  /// Campaign-wide circuit breakers (nullptr = no gating). A quarantined
  /// field vantage yields kInconclusive with Provenance::kDegraded and no
  /// network activity, reusing the PR-4 breaker path.
  HealthRegistry* health = nullptr;
};

/// Everything the classifier gathered for one URL. Collection mutates the
/// world (fetches, clock advances) and is strictly serial in list order;
/// verdict derivation from an evidence record is a pure function, so it may
/// fan out thread-pool-wide without changing a byte.
struct MechanismEvidence {
  std::string url;
  bool vantageDegraded = false;  ///< breaker open — nothing was fetched
  bool https = false;
  simnet::FetchResult lab;                      ///< control fetch
  std::vector<simnet::FetchResult> fieldTrials; ///< budget + corroboration
  std::optional<simnet::FetchResult> residualProbe;  ///< immediate refetch
  std::optional<simnet::FetchResult> esniProbe;      ///< omit-SNI refetch
  int resolverChecks = 0;      ///< out-of-band resolver queries run
  int resolverMismatches = 0;  ///< field answer differed from the lab's
  int fetches = 0;             ///< field fetches consumed (trials + probes)
};

/// The classifier's answer for one URL.
struct MechanismVerdict {
  std::string url;
  Mechanism mechanism = Mechanism::kInconclusive;
  /// Calibrated-ish weight of evidence in [0, 1], a deterministic function
  /// of the trial counts — not a probability, but monotone in evidence.
  double confidence = 0.0;
  int trials = 0;  ///< field fetches consumed
  /// Dominant failure signature across trials (kNone when any succeeded).
  simnet::FailureSignature signature = simnet::FailureSignature::kNone;
  bool residualObserved = false;  ///< hold-down state confirmed by probe
  bool esniBypassed = false;      ///< SNI omission made the fetch succeed
  Provenance provenance = Provenance::kConfirmed;
  std::string notes;
};

[[nodiscard]] report::Json toJson(const MechanismVerdict& verdict);
/// Canonical one-line form for digests ("url|mechanism|conf|trials|sig|...").
[[nodiscard]] std::string toLine(const MechanismVerdict& verdict);

/// Pure single-row annotation for Table-3/Table-4 reporting: maps an
/// already-recorded field/lab exchange to a mechanism via the reference
/// mapping. No fetches, no RNG, no clock — stamping it onto existing
/// results cannot move a campaign digest. Degraded rows annotate as
/// kInconclusive.
[[nodiscard]] Mechanism mechanismOf(const UrlTestResult& row);

/// Tally of mechanismOf over a result set, keyed by toString(Mechanism).
[[nodiscard]] std::map<std::string, int> tallyMechanisms(
    std::span<const UrlTestResult> rows);

/// The most frequent mechanism other than kNone/kInconclusive in a tally
/// ("none" when every row was clean, "inconclusive" when nothing else won).
[[nodiscard]] std::string dominantMechanism(
    const std::map<std::string, int>& tally);

/// Turns single-trial failure signatures into robust mechanism verdicts.
///
/// The evidence budget (mode kEvidence):
///  1. Gate on the field vantage's circuit breaker (Provenance::kDegraded).
///  2. Control fetch from the unfiltered lab vantage — if the lab cannot
///     reach the site, nothing is attributable.
///  3. Up to `trialBudget` field trials spaced on the simulated clock, each
///     rolling fresh fault draws (FetchOptions::attemptBase). Any success
///     short-circuits: a block page is definitive kHttpBlockPage evidence,
///     a clean page means kNone.
///  4. All-failed trials must agree on one signature; mixed signatures mean
///     fault noise dominates -> kInconclusive.
///  5. Per-signature cross-checks: empty-DNS -> out-of-band resolver
///     comparison against the lab; rst-after-request -> immediate residual
///     probe (a stateful injector's hold-down flips the signature to
///     rst-before-banner); rst-before-banner on TLS -> omit-SNI probe (an
///     SNI filter fails open); all-timeout -> extra corroborating trials
///     before kNullRouting is earned.
///
/// Evidence collection is strictly serial in URL-list order (fetches mutate
/// the world); derivation is pure and parallelizes byte-identically.
class MechanismClassifier {
 public:
  MechanismClassifier(simnet::World& world,
                      const simnet::VantagePoint& field,
                      const simnet::VantagePoint& lab,
                      MechanismOptions options = {});

  [[nodiscard]] MechanismVerdict classify(const std::string& url);

  /// Classify a list: serial evidence collection in list order, then the
  /// pure derivation stage fanned out under util::parallelFor (threadLimit
  /// semantics: 1 = serial reference, 0 = shared pool). Output is
  /// byte-identical at any thread count.
  [[nodiscard]] std::vector<MechanismVerdict> classifyList(
      std::span<const std::string> urls, std::size_t threadLimit = 1);

  /// The two halves, exposed for property tests.
  [[nodiscard]] MechanismEvidence collect(const std::string& url);
  [[nodiscard]] MechanismVerdict derive(const MechanismEvidence& evidence) const;

  /// The single-exchange reference mapping (mode kReference, and the pure
  /// annotation Confirmer/Characterizer stamp onto already-recorded rows —
  /// no extra fetches, so digests cannot move).
  [[nodiscard]] static Mechanism referenceMechanism(
      const simnet::FetchResult& field, const simnet::FetchResult& lab,
      const std::optional<BlockPageMatch>& blockPage, bool https = false);

  [[nodiscard]] const MechanismOptions& options() const { return options_; }

 private:
  [[nodiscard]] simnet::FetchResult fieldFetch(const std::string& url,
                                               int trialIndex, bool omitSni);

  simnet::World* world_;
  simnet::Transport transport_;
  const simnet::VantagePoint* field_;
  const simnet::VantagePoint* lab_;
  MechanismOptions options_;
};

}  // namespace urlf::measure

#endif  // URLF_MEASURE_MECHANISM_H
