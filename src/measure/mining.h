#ifndef URLF_MEASURE_MINING_H
#define URLF_MEASURE_MINING_H

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "measure/blockpage.h"
#include "measure/client.h"
#include "simnet/transport.h"

namespace urlf::measure {

/// Longest common substring of two strings (dynamic programming; first
/// occurrence wins ties). Empty when the strings share nothing.
[[nodiscard]] std::string longestCommonSubstring(std::string_view a,
                                                 std::string_view b);

/// Escape a literal string for use inside an ECMAScript regex.
[[nodiscard]] std::string regexEscape(std::string_view literal);

/// Derive a block-page pattern candidate from recorded fetch traces of
/// blocked URLs in one network — mechanizing the paper's "manual analysis
/// identified regular expressions corresponding to the vendors' block
/// pages" (§5). The candidate is the longest substring common to ALL
/// traces, regex-escaped; nullopt when the common core is shorter than
/// `minLength` (too generic to be a signature).
[[nodiscard]] std::optional<BlockPagePattern> minePattern(
    filters::ProductKind product, std::span<const std::string> traces,
    std::size_t minLength = 12);

/// Convenience: extract the traces of the blocked results of a session and
/// mine a pattern from them.
[[nodiscard]] std::optional<BlockPagePattern> minePatternFromResults(
    filters::ProductKind product, const std::vector<UrlTestResult>& results,
    std::size_t minLength = 12);

}  // namespace urlf::measure

#endif  // URLF_MEASURE_MINING_H
