#include "measure/client.h"

#include "measure/shared_memo.h"
#include "util/thread_pool.h"

namespace urlf::measure {

std::string_view toString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccessible: return "accessible";
    case Verdict::kBlocked: return "blocked";
    case Verdict::kBlockedOther: return "blocked-other";
    case Verdict::kInconclusive: return "inconclusive";
    case Verdict::kError: return "error";
    case Verdict::kContested: return "contested";
  }
  return "unknown";
}

std::string_view toString(Provenance provenance) {
  switch (provenance) {
    case Provenance::kConfirmed: return "confirmed";
    case Provenance::kDegraded: return "degraded";
  }
  return "unknown";
}

Client::Client(simnet::World& world, const simnet::VantagePoint& field,
               const simnet::VantagePoint& lab,
               simnet::FetchOptions fetchOptions)
    : world_(&world),
      transport_(world),
      field_(&field),
      lab_(&lab),
      fetchOptions_(fetchOptions) {}

Verdict Client::compare(const simnet::FetchResult& field,
                        const simnet::FetchResult& lab,
                        const std::optional<BlockPageMatch>& blockPage) {
  // If the lab cannot reach the site, the site is simply down; nothing can
  // be concluded about censorship.
  if (!lab.ok() || !lab.response->isSuccess()) return Verdict::kError;

  if (blockPage) return Verdict::kBlocked;

  switch (field.outcome) {
    case simnet::FetchOutcome::kOk:
      break;
    case simnet::FetchOutcome::kReset:
    case simnet::FetchOutcome::kTimeout:
      // Censorship via RST/blackholing — the ambiguity the paper avoids by
      // testing products with explicit block pages (§4.1).
      return Verdict::kBlockedOther;
    case simnet::FetchOutcome::kDnsFailure:
    case simnet::FetchOutcome::kConnectFailure:
      return Verdict::kInconclusive;
    case simnet::FetchOutcome::kBadUrl:
      // A parse error is a test-list defect, not a network observation (and
      // the lab fetch of the same URL fails first in practice).
      return Verdict::kError;
  }

  if (field.response->statusCode != lab.response->statusCode)
    return Verdict::kBlockedOther;
  if (field.response->body == lab.response->body) return Verdict::kAccessible;
  // Same status, different content: transparent rewriting we cannot
  // attribute to a vendor.
  return Verdict::kInconclusive;
}

bool Client::chainsDeterministic() const {
  for (const auto* vantage : {field_, lab_}) {
    if (vantage->isp == nullptr) continue;  // lab: no chain
    for (const auto* box : vantage->isp->chain())
      if (!box->deterministicIntercept()) return false;
    for (const auto* filter : vantage->isp->packetChain())
      if (!filter->deterministicDecision()) return false;
  }
  return true;
}

bool Client::chainsSideEffectFree() const {
  for (const auto* vantage : {field_, lab_}) {
    if (vantage->isp == nullptr) continue;  // lab: no chain
    for (const auto* box : vantage->isp->chain())
      if (box->interceptHasSideEffects()) return false;
    // A stateful injector arms hold-down state on a kill; skipping its
    // fetch would skip the arm (flow-table epoch moves gate the memo, but
    // a replay path must not miss the mutation itself).
    for (const auto* filter : vantage->isp->packetChain())
      if (filter->decisionHasSideEffects()) return false;
  }
  return true;
}

bool Client::interferenceFree() const {
  const simnet::InterferencePlan* plan = world_->interferencePlan();
  if (plan == nullptr) return true;
  for (const auto* vantage : {field_, lab_})
    if (plan->activeFor(*vantage)) return false;
  return true;
}

Client::MemoEpoch Client::currentEpoch() const {
  return MemoEpoch{world_->middleboxStateEpoch(), world_->now().hours()};
}

void Client::attachSharedMemo(SharedVerdictStore* store, std::uint64_t scope) {
  shared_ = store;
  sharedScope_ = scope;
  // A shared hit skips this world's fetch entirely, so beyond determinism
  // (the per-client memo's bar) every box must also be side-effect free,
  // and no interference may be armed for either vantage — a deceived
  // observation must never be served to another session.
  sharedSafe_ = store != nullptr && chainsDeterministic() &&
                chainsSideEffectFree() && interferenceFree();
}

std::optional<UrlTestResult> Client::sharedLookup(const std::string& url,
                                                  const MemoEpoch& epoch) {
  const SharedVerdictStore::Key key{sharedScope_,
                                    epoch.boxes,
                                    epoch.now,
                                    field_->name,
                                    lab_->name,
                                    url};
  auto hit = shared_->lookup(key);
  if (hit) {
    ++sharedHits_;
    // Promote to the local memo so repeats stay off the shard lock.
    memo_.emplace(url, *hit);
  }
  return hit;
}

void Client::sharedInsert(const UrlTestResult& result, const MemoEpoch& epoch) {
  const SharedVerdictStore::Key key{sharedScope_,
                                    epoch.boxes,
                                    epoch.now,
                                    field_->name,
                                    lab_->name,
                                    result.url};
  shared_->insert(key, result);
}

void Client::enableVerdictMemo(bool enabled) {
  memoEnabled_ = enabled;
  // Re-check the chains each time: a box attached (or reconfigured) after
  // construction must be able to veto memoization. An armed interference
  // plan vetoes too: verdicts become cadence- and attempt-dependent.
  memoSafe_ = enabled && chainsDeterministic() && interferenceFree();
  if (!verdictMemoActive()) clearVerdictMemo();
}

void Client::clearVerdictMemo() {
  memo_.clear();
  memoEpoch_ = MemoEpoch{};
  memoHits_ = 0;
}

std::optional<BlockPageMatch> Client::classify(
    const simnet::FetchResult& field) const {
  return classifyMode_ == ClassifyMode::kReference
             ? classifyBlockPageReference(field, builtinBlockPagePatterns())
             : classifyBlockPage(field);
}

UrlTestResult Client::fetchAndClassify(const std::string& url) {
  UrlTestResult result;
  result.url = url;
  result.field = transport_.fetchUrl(*field_, url, fetchOptions_);
  result.lab = transport_.fetchUrl(*lab_, url, fetchOptions_);
  if (health_ != nullptr)
    health_->of(field_->name).recordOutcome(result.field.outcome,
                                            world_->now());
  result.blockPage = classify(result.field);
  result.verdict = compare(result.field, result.lab, result.blockPage);
  return result;
}

UrlTestResult Client::degradedResult(const std::string& url) const {
  UrlTestResult result;
  result.url = url;
  result.provenance = Provenance::kDegraded;
  const std::string reason = "skipped: vantage '" + field_->name +
                             "' quarantined (circuit breaker open)";
  result.field.outcome = simnet::FetchOutcome::kTimeout;
  result.field.error = reason;
  result.lab.outcome = simnet::FetchOutcome::kTimeout;
  result.lab.error = reason;
  result.verdict = Verdict::kError;  // untestable, not evidence of blocking
  return result;
}

UrlTestResult Client::testUrl(const std::string& url) {
  // Health gate comes BEFORE the memo: a quarantined vantage must not serve
  // stale verdicts, and a half-open probe must reach the network.
  bool probe = false;
  if (health_ != nullptr) {
    switch (health_->of(field_->name).decide(world_->now())) {
      case HealthDecision::kQuarantined: return degradedResult(url);
      case HealthDecision::kProbe: probe = true; break;
      case HealthDecision::kProceed: break;
    }
  }

  if (!verdictMemoActive()) return fetchAndClassify(url);

  const MemoEpoch before = currentEpoch();
  if (before != memoEpoch_) {
    memo_.clear();
    memoEpoch_ = before;
  }
  const bool sharedActive = sharedMemoActive();
  if (!probe) {
    if (const auto it = memo_.find(url); it != memo_.end()) {
      ++memoHits_;
      return it->second;
    }
    if (sharedActive) {
      if (auto hit = sharedLookup(url, before)) return *hit;
    }
  }
  UrlTestResult result = fetchAndClassify(url);
  // Insert-guard: memoize only when the fetch itself left the epoch alone.
  // A fetch that advanced the clock (retry backoff) or mutated a database
  // (queue-triggered categorization) would not replay identically. A fetch
  // the interference layer touched is never cached (belt and braces on top
  // of interferenceFree(): memoSafe_ is re-checked at enable time, but a
  // plan installed later must still not leak deceived rows).
  if (result.field.interference == simnet::InterferenceEffect::kNone &&
      result.lab.interference == simnet::InterferenceEffect::kNone &&
      currentEpoch() == before) {
    memo_.emplace(url, result);
    if (sharedActive) sharedInsert(result, before);
  }
  return result;
}

std::vector<UrlTestResult> Client::testList(std::span<const std::string> urls) {
  std::vector<UrlTestResult> out;
  out.reserve(urls.size());
  for (const auto& url : urls) out.push_back(testUrl(url));
  return out;
}

std::vector<UrlTestResult> Client::testListBatched(
    std::span<const std::string> urls, std::size_t threadLimit) {
  std::vector<UrlTestResult> out(urls.size());
  const bool memoActive = verdictMemoActive();

  // Phase 1 — fetches, strictly in list order. Fetching mutates the world
  // (RNG draws, clock advances, vendor queues), so this phase must replay
  // the exact serial program order regardless of threadLimit.
  std::vector<std::size_t> fetched;  // indices that still need classification
  std::vector<MemoEpoch> before, after;
  fetched.reserve(urls.size());
  if (memoActive) {
    before.reserve(urls.size());
    after.reserve(urls.size());
  }
  for (std::size_t i = 0; i < urls.size(); ++i) {
    // Health gate first (same contract as testUrl): quarantine skips the
    // URL entirely, a half-open probe bypasses the memo lookup.
    bool probe = false;
    if (health_ != nullptr) {
      switch (health_->of(field_->name).decide(world_->now())) {
        case HealthDecision::kQuarantined:
          out[i] = degradedResult(urls[i]);
          continue;
        case HealthDecision::kProbe: probe = true; break;
        case HealthDecision::kProceed: break;
      }
    }
    if (memoActive) {
      const MemoEpoch epoch = currentEpoch();
      if (epoch != memoEpoch_) {
        memo_.clear();
        memoEpoch_ = epoch;
      }
      if (!probe) {
        if (const auto it = memo_.find(urls[i]); it != memo_.end()) {
          ++memoHits_;
          out[i] = it->second;
          continue;
        }
        if (sharedMemoActive()) {
          if (auto hit = sharedLookup(urls[i], epoch)) {
            out[i] = *hit;
            continue;
          }
        }
      }
      before.push_back(epoch);
    }
    out[i].url = urls[i];
    out[i].field = transport_.fetchUrl(*field_, urls[i], fetchOptions_);
    out[i].lab = transport_.fetchUrl(*lab_, urls[i], fetchOptions_);
    if (health_ != nullptr)
      health_->of(field_->name).recordOutcome(out[i].field.outcome,
                                              world_->now());
    fetched.push_back(i);
    if (memoActive) after.push_back(currentEpoch());
  }

  // Phase 2 — classification + comparison: pure per entry, fanned out with
  // slot-per-index writes, so the gathered output is byte-identical to the
  // serial loop at any thread count.
  util::parallelFor(
      fetched.size(),
      [&](std::size_t k) {
        UrlTestResult& result = out[fetched[k]];
        result.blockPage = classify(result.field);
        result.verdict = compare(result.field, result.lab, result.blockPage);
      },
      threadLimit);

  // Phase 3 — memo inserts, serial. An entry is replayable only if nothing
  // (its own fetch included) moved the epoch between its fetch and now.
  if (memoActive) {
    const MemoEpoch finalEpoch = currentEpoch();
    if (finalEpoch != memoEpoch_) {
      memo_.clear();
      memoEpoch_ = finalEpoch;
    }
    const bool sharedActive = sharedMemoActive();
    for (std::size_t k = 0; k < fetched.size(); ++k) {
      const UrlTestResult& row = out[fetched[k]];
      if (row.field.interference != simnet::InterferenceEffect::kNone ||
          row.lab.interference != simnet::InterferenceEffect::kNone)
        continue;  // a deceived observation is never cached
      if (before[k] == finalEpoch && after[k] == finalEpoch) {
        memo_.emplace(row.url, row);
        if (sharedActive) sharedInsert(row, finalEpoch);
      }
    }
  }
  return out;
}

}  // namespace urlf::measure
