#include "measure/client.h"

namespace urlf::measure {

std::string_view toString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccessible: return "accessible";
    case Verdict::kBlocked: return "blocked";
    case Verdict::kBlockedOther: return "blocked-other";
    case Verdict::kInconclusive: return "inconclusive";
    case Verdict::kError: return "error";
  }
  return "unknown";
}

Client::Client(simnet::World& world, const simnet::VantagePoint& field,
               const simnet::VantagePoint& lab,
               simnet::FetchOptions fetchOptions)
    : transport_(world),
      field_(&field),
      lab_(&lab),
      fetchOptions_(fetchOptions) {}

Verdict Client::compare(const simnet::FetchResult& field,
                        const simnet::FetchResult& lab,
                        const std::optional<BlockPageMatch>& blockPage) {
  // If the lab cannot reach the site, the site is simply down; nothing can
  // be concluded about censorship.
  if (!lab.ok() || !lab.response->isSuccess()) return Verdict::kError;

  if (blockPage) return Verdict::kBlocked;

  switch (field.outcome) {
    case simnet::FetchOutcome::kOk:
      break;
    case simnet::FetchOutcome::kReset:
    case simnet::FetchOutcome::kTimeout:
      // Censorship via RST/blackholing — the ambiguity the paper avoids by
      // testing products with explicit block pages (§4.1).
      return Verdict::kBlockedOther;
    case simnet::FetchOutcome::kDnsFailure:
    case simnet::FetchOutcome::kConnectFailure:
      return Verdict::kInconclusive;
    case simnet::FetchOutcome::kBadUrl:
      // A parse error is a test-list defect, not a network observation (and
      // the lab fetch of the same URL fails first in practice).
      return Verdict::kError;
  }

  if (field.response->statusCode != lab.response->statusCode)
    return Verdict::kBlockedOther;
  if (field.response->body == lab.response->body) return Verdict::kAccessible;
  // Same status, different content: transparent rewriting we cannot
  // attribute to a vendor.
  return Verdict::kInconclusive;
}

UrlTestResult Client::testUrl(const std::string& url) {
  UrlTestResult result;
  result.url = url;
  result.field = transport_.fetchUrl(*field_, url, fetchOptions_);
  result.lab = transport_.fetchUrl(*lab_, url, fetchOptions_);
  result.blockPage = classifyBlockPage(result.field);
  result.verdict = compare(result.field, result.lab, result.blockPage);
  return result;
}

std::vector<UrlTestResult> Client::testList(std::span<const std::string> urls) {
  std::vector<UrlTestResult> out;
  out.reserve(urls.size());
  for (const auto& url : urls) out.push_back(testUrl(url));
  return out;
}

}  // namespace urlf::measure
