#ifndef URLF_MEASURE_PATTERN_LIBRARY_H
#define URLF_MEASURE_PATTERN_LIBRARY_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "measure/blockpage.h"
#include "util/regex.h"

namespace urlf::measure {

/// A block-page pattern set prepared for repeated classification.
///
/// The reference classifier (classifyBlockPageReference) constructs a
/// std::regex per pattern per call; at campaign scale that construction
/// dominates the classify path. This library compiles each pattern exactly
/// once — lazily and thread-safely, through the process-wide cache shared
/// with fingerprint::Matcher — and additionally extracts a case-folded
/// literal that must occur in every match (util::requiredLiteral). A trace
/// that does not contain the literal is rejected with a memchr-class scan
/// and the regex never runs at all; on a typical campaign the overwhelming
/// majority of traces are benign and the prefilter short-circuits them.
///
/// Classification semantics are byte-identical to the reference classifier:
/// patterns are tried in order, the first match wins, and the evidence is
/// match.str(0) against the original (non-folded) trace.
class CompiledPatternLibrary {
 public:
  explicit CompiledPatternLibrary(std::vector<BlockPagePattern> patterns);

  /// The shared library over builtinBlockPagePatterns().
  static const CompiledPatternLibrary& builtin();

  /// Classify a fetch result (same guard and trace flattening as the
  /// reference path).
  [[nodiscard]] std::optional<BlockPageMatch> classify(
      const simnet::FetchResult& result) const;

  /// Classify an already-flattened trace.
  [[nodiscard]] std::optional<BlockPageMatch> classifyTrace(
      const std::string& trace) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// The source patterns, in match order.
  [[nodiscard]] std::vector<BlockPagePattern> patterns() const;

 private:
  struct Entry {
    BlockPagePattern source;
    util::LazyRegex regex;
    std::string literal;  ///< case-folded required literal; "" = no prefilter
  };
  std::vector<Entry> entries_;
  bool anyLiteral_ = false;  ///< fold the trace only when a prefilter exists
};

}  // namespace urlf::measure

#endif  // URLF_MEASURE_PATTERN_LIBRARY_H
