#include "measure/mining.h"

#include <vector>

namespace urlf::measure {

std::string longestCommonSubstring(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return {};
  // Rolling single-row DP: lengths[j] = longest common suffix of a[..i] and
  // b[..j].
  std::vector<std::size_t> lengths(b.size() + 1, 0);
  std::size_t best = 0;
  std::size_t bestEndInA = 0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t previousDiagonal = 0;  // lengths[j-1] from the previous row
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t previous = lengths[j];
      if (a[i - 1] == b[j - 1]) {
        lengths[j] = previousDiagonal + 1;
        if (lengths[j] > best) {
          best = lengths[j];
          bestEndInA = i;
        }
      } else {
        lengths[j] = 0;
      }
      previousDiagonal = previous;
    }
  }
  return std::string(a.substr(bestEndInA - best, best));
}

std::string regexEscape(std::string_view literal) {
  static constexpr std::string_view kSpecials = R"(\^$.|?*+()[]{})";
  std::string out;
  out.reserve(literal.size());
  for (const char c : literal) {
    if (kSpecials.find(c) != std::string_view::npos) out += '\\';
    out += c;
  }
  return out;
}

std::optional<BlockPagePattern> minePattern(
    filters::ProductKind product, std::span<const std::string> traces,
    std::size_t minLength) {
  if (traces.empty()) return std::nullopt;

  std::string core = traces[0];
  for (std::size_t i = 1; i < traces.size(); ++i) {
    core = longestCommonSubstring(core, traces[i]);
    if (core.size() < minLength) return std::nullopt;
  }
  if (core.size() < minLength) return std::nullopt;

  BlockPagePattern pattern;
  pattern.product = product;
  pattern.name = std::string(filters::toString(product)) + "-mined";
  pattern.regex = regexEscape(core);
  return pattern;
}

std::optional<BlockPagePattern> minePatternFromResults(
    filters::ProductKind product, const std::vector<UrlTestResult>& results,
    std::size_t minLength) {
  // Fold the common core incrementally instead of materializing every trace:
  // the DP only ever needs the running core and the current trace, and the
  // core shrinks monotonically, so peak memory is two traces rather than all
  // of them.
  std::string core;
  std::string trace;
  bool haveFirst = false;
  for (const auto& result : results) {
    if (!result.blocked()) continue;
    fetchTraceInto(result.field, trace);
    if (!haveFirst) {
      core = trace;
      haveFirst = true;
      continue;
    }
    core = longestCommonSubstring(core, trace);
    if (core.size() < minLength) return std::nullopt;
  }
  if (!haveFirst || core.size() < minLength) return std::nullopt;

  BlockPagePattern pattern;
  pattern.product = product;
  pattern.name = std::string(filters::toString(product)) + "-mined";
  pattern.regex = regexEscape(core);
  return pattern;
}

}  // namespace urlf::measure
