#include "measure/testlist.h"

#include <array>

#include "util/strings.h"

namespace urlf::measure {

std::string_view toString(Theme theme) {
  switch (theme) {
    case Theme::kPolitical: return "political";
    case Theme::kSocial: return "social";
    case Theme::kInternetTools: return "internet-tools";
    case Theme::kConflictSecurity: return "conflict-security";
  }
  return "unknown";
}

namespace {

// The 40 ONI content categories under the four themes. The six that appear
// as Table 4 columns are: Media Freedom, Human Rights, Political Reform,
// LGBT, Religious Criticism, Minority Groups and Religions.
constexpr std::array<OniCategory, 40> kCategories{{
    // Political theme.
    {"Human Rights", Theme::kPolitical},
    {"Political Reform", Theme::kPolitical},
    {"Media Freedom", Theme::kPolitical},
    {"Opposition Parties", Theme::kPolitical},
    {"Criticism of Government", Theme::kPolitical},
    {"Elections", Theme::kPolitical},
    {"Corruption Reporting", Theme::kPolitical},
    {"Women's Rights", Theme::kPolitical},
    {"Labor Rights", Theme::kPolitical},
    {"Foreign Relations", Theme::kPolitical},
    // Social theme.
    {"LGBT", Theme::kSocial},
    {"Religious Criticism", Theme::kSocial},
    {"Minority Groups and Religions", Theme::kSocial},
    {"Pornography", Theme::kSocial},
    {"Gambling", Theme::kSocial},
    {"Alcohol and Drugs", Theme::kSocial},
    {"Dating", Theme::kSocial},
    {"Sex Education", Theme::kSocial},
    {"Provocative Attire", Theme::kSocial},
    {"Popular Culture", Theme::kSocial},
    // Internet tools theme.
    {"Anonymizers and Proxies", Theme::kInternetTools},
    {"Translation Tools", Theme::kInternetTools},
    {"VoIP", Theme::kInternetTools},
    {"Peer to Peer", Theme::kInternetTools},
    {"Free Email", Theme::kInternetTools},
    {"Web Hosting", Theme::kInternetTools},
    {"Search Engines", Theme::kInternetTools},
    {"Blogging Platforms", Theme::kInternetTools},
    {"Social Networking", Theme::kInternetTools},
    {"Multimedia Sharing", Theme::kInternetTools},
    // Conflict / security theme.
    {"Armed Conflict", Theme::kConflictSecurity},
    {"Extremism", Theme::kConflictSecurity},
    {"Militant Groups", Theme::kConflictSecurity},
    {"Separatist Movements", Theme::kConflictSecurity},
    {"Border Disputes", Theme::kConflictSecurity},
    {"Weapons", Theme::kConflictSecurity},
    {"Hacking Tools", Theme::kConflictSecurity},
    {"Terrorism Coverage", Theme::kConflictSecurity},
    {"Military Affairs", Theme::kConflictSecurity},
    {"Security Services Criticism", Theme::kConflictSecurity},
}};

}  // namespace

std::span<const OniCategory> oniCategories() { return kCategories; }

std::optional<OniCategory> oniCategoryByName(std::string_view name) {
  for (const auto& category : kCategories)
    if (util::iequals(category.name, name)) return category;
  return std::nullopt;
}

std::vector<std::string> TestList::urls() const {
  std::vector<std::string> out;
  out.reserve(entries.size());
  for (const auto& entry : entries) out.push_back(entry.url);
  return out;
}

}  // namespace urlf::measure
