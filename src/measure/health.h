#ifndef URLF_MEASURE_HEALTH_H
#define URLF_MEASURE_HEALTH_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simnet/transport.h"
#include "util/clock.h"

namespace urlf::measure {

/// Circuit-breaker state for one vantage point.
enum class BreakerState {
  kClosed,    ///< healthy — all requests flow
  kOpen,      ///< quarantined — requests are skipped until the cooldown
  kHalfOpen,  ///< cooldown elapsed — one probe request is let through
};

[[nodiscard]] std::string_view toString(BreakerState state);

/// Tuning for the per-vantage circuit breaker.
struct BreakerPolicy {
  /// Consecutive hard failures that trip closed -> open.
  int failureThreshold = 5;
  /// Simulated-clock hours an open breaker waits before letting a half-open
  /// probe through.
  std::int64_t cooldownHours = 24;

  bool operator==(const BreakerPolicy&) const = default;
};

/// What the breaker says about a fetch that is about to happen.
enum class HealthDecision {
  kProceed,      ///< breaker closed — fetch normally
  kProbe,        ///< breaker half-open — fetch, but bypass the verdict memo
  kQuarantined,  ///< breaker open and cooling down — skip the fetch
};

/// Health tracker for one vantage point: counts consecutive hard transport
/// failures and runs the closed -> open -> half-open state machine on the
/// simulated clock.
///
/// Outcome classification (pinned by tests/health_breaker_test.cpp):
///  * kTimeout / kReset / kDnsFailure / kConnectFailure — hard failures;
///    each increments the consecutive-failure count,
///  * kOk — success; closes the breaker and resets the count (even a block
///    page proves the vantage is alive and exchanging traffic),
///  * kBadUrl — ignored entirely: the URL never parsed, no network activity
///    happened, so it is evidence about the test list, not the vantage.
class VantageHealth {
 public:
  explicit VantageHealth(BreakerPolicy policy = {}) : policy_(policy) {}

  /// Gate a fetch at simulated time `now`. May transition open -> half-open
  /// when the cooldown has elapsed (the caller is then expected to fetch).
  [[nodiscard]] HealthDecision decide(util::SimTime now);

  /// Record the final transport outcome of a fetch (after retries).
  void recordOutcome(simnet::FetchOutcome outcome, util::SimTime now);

  [[nodiscard]] BreakerState state() const { return state_; }
  [[nodiscard]] int consecutiveFailures() const { return consecutiveFailures_; }
  [[nodiscard]] util::SimTime openedAt() const { return openedAt_; }
  [[nodiscard]] const BreakerPolicy& policy() const { return policy_; }

  /// Lifetime tallies (reporting).
  [[nodiscard]] std::uint64_t requestsAllowed() const { return allowed_; }
  [[nodiscard]] std::uint64_t requestsQuarantined() const {
    return quarantined_;
  }
  [[nodiscard]] std::uint64_t timesOpened() const { return timesOpened_; }

  /// Restore a previously snapshotted breaker verbatim (monitor checkpoint
  /// resume). The policy stays whatever this instance was constructed with —
  /// the caller rebuilds the registry from the same options that produced
  /// the snapshot.
  void restore(BreakerState state, int consecutiveFailures,
               util::SimTime openedAt, std::uint64_t allowed,
               std::uint64_t quarantined, std::uint64_t timesOpened) {
    state_ = state;
    consecutiveFailures_ = consecutiveFailures;
    openedAt_ = openedAt;
    allowed_ = allowed;
    quarantined_ = quarantined;
    timesOpened_ = timesOpened;
  }

  /// Does this outcome count as a hard failure for breaker purposes?
  [[nodiscard]] static bool hardFailure(simnet::FetchOutcome outcome);
  /// Is this outcome ignored by the breaker (no state change at all)?
  [[nodiscard]] static bool ignored(simnet::FetchOutcome outcome);

 private:
  void open(util::SimTime now);

  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutiveFailures_ = 0;
  util::SimTime openedAt_{};
  std::uint64_t allowed_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t timesOpened_ = 0;
};

/// Campaign-scoped registry of per-vantage health, keyed by vantage name.
/// One registry spans every Client / case study in a campaign so that a
/// vantage quarantined in one case study stays quarantined in the next.
class HealthRegistry {
 public:
  explicit HealthRegistry(BreakerPolicy policy = {}) : policy_(policy) {}

  [[nodiscard]] VantageHealth& of(const std::string& vantageName);
  [[nodiscard]] const VantageHealth* find(const std::string& vantageName) const;
  [[nodiscard]] const BreakerPolicy& policy() const { return policy_; }

  /// (vantage name, state) for every vantage seen, name-sorted.
  [[nodiscard]] std::vector<std::pair<std::string, BreakerState>> snapshot()
      const;

  /// Full per-vantage breaker records, name-sorted (checkpoint
  /// serialization; restore with of(name).restore(...)).
  [[nodiscard]] const std::map<std::string, VantageHealth>& entries() const {
    return vantages_;
  }

 private:
  BreakerPolicy policy_;
  std::map<std::string, VantageHealth> vantages_;
};

}  // namespace urlf::measure

#endif  // URLF_MEASURE_HEALTH_H
