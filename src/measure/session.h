#ifndef URLF_MEASURE_SESSION_H
#define URLF_MEASURE_SESSION_H

#include <optional>
#include <string>
#include <vector>

#include "measure/client.h"
#include "report/json.h"

namespace urlf::measure {

/// JSON serialization of measurement sessions with full wire traces.
///
/// The paper's §5 workflow is collect-first, analyze-later: "Manual analysis
/// identified regular expressions corresponding to the vendors' block pages
/// and automated analysis identified all URLs which matched a given block
/// page regular expression." Persisting complete field/lab exchanges makes
/// that second pass (and later re-analysis with better patterns) possible.
[[nodiscard]] report::Json toJson(const UrlTestResult& result);
[[nodiscard]] std::optional<UrlTestResult> urlTestResultFromJson(
    const report::Json& json);

[[nodiscard]] std::string exportSession(
    const std::vector<UrlTestResult>& results, int indent = 0);
[[nodiscard]] std::optional<std::vector<UrlTestResult>> importSession(
    std::string_view text);

/// Re-run block-page classification and the §4.1 verdict rule over recorded
/// results with a (possibly new) pattern library — the "automated analysis"
/// pass.
[[nodiscard]] std::vector<UrlTestResult> reclassify(
    std::vector<UrlTestResult> results,
    const std::vector<BlockPagePattern>& patterns);

}  // namespace urlf::measure

#endif  // URLF_MEASURE_SESSION_H
