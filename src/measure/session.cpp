#include "measure/session.h"

#include "http/wire.h"

namespace urlf::measure {

using report::Json;

namespace {

std::string_view outcomeName(simnet::FetchOutcome outcome) {
  return simnet::toString(outcome);
}

std::optional<simnet::FetchOutcome> outcomeFromName(std::string_view name) {
  using FO = simnet::FetchOutcome;
  for (const auto outcome : {FO::kOk, FO::kDnsFailure, FO::kConnectFailure,
                             FO::kTimeout, FO::kReset, FO::kBadUrl}) {
    if (name == simnet::toString(outcome)) return outcome;
  }
  return std::nullopt;
}

Json fetchToJson(const simnet::FetchResult& fetch) {
  Json out = Json::object();
  out["outcome"] = Json::string(outcomeName(fetch.outcome));
  if (!fetch.error.empty()) out["error"] = Json::string(fetch.error);
  if (fetch.attempts > 1)
    out["attempts"] = Json::number(std::int64_t{fetch.attempts});
  if (fetch.injectedFault != simnet::FaultKind::kNone)
    out["injected_fault"] = Json::string(simnet::toString(fetch.injectedFault));
  // The failure signature and cause ride along whenever they are
  // non-default. Before the cause existed, a re-imported session could only
  // tell injected faults apart via `injected_fault` — a middlebox-caused
  // timeout and an injected one round-tripped identically and resumed
  // campaigns could misattribute them.
  if (fetch.signature != simnet::FailureSignature::kNone)
    out["signature"] = Json::string(simnet::toString(fetch.signature));
  if (fetch.cause != simnet::FailureCause::kNone)
    out["cause"] = Json::string(simnet::toString(fetch.cause));
  if (fetch.interference != simnet::InterferenceEffect::kNone)
    out["interference"] = Json::string(simnet::toString(fetch.interference));
  out["response"] = fetch.response
                        ? Json::string(http::serialize(*fetch.response))
                        : Json::null();
  Json chain = Json::array();
  for (const auto& hop : fetch.redirectChain)
    chain.push(Json::string(http::serialize(hop)));
  out["redirect_chain"] = std::move(chain);
  return out;
}

std::optional<simnet::FetchResult> fetchFromJson(const Json& json) {
  if (!json.isObject()) return std::nullopt;
  const auto* outcome = json.find("outcome");
  if (outcome == nullptr || !outcome->asString()) return std::nullopt;
  const auto parsedOutcome = outcomeFromName(*outcome->asString());
  if (!parsedOutcome) return std::nullopt;

  simnet::FetchResult fetch;
  fetch.outcome = *parsedOutcome;
  if (const auto* error = json.find("error"); error && error->asString())
    fetch.error = *error->asString();
  if (const auto* attempts = json.find("attempts");
      attempts && attempts->asNumber())
    fetch.attempts = static_cast<int>(*attempts->asNumber());
  if (const auto* fault = json.find("injected_fault");
      fault && fault->asString()) {
    using FK = simnet::FaultKind;
    for (const auto kind : {FK::kDnsFlap, FK::kConnectFail, FK::kLoss,
                            FK::kTimeout, FK::kOutage}) {
      if (*fault->asString() == simnet::toString(kind))
        fetch.injectedFault = kind;
    }
  }
  if (const auto* signature = json.find("signature");
      signature && signature->asString()) {
    using FS = simnet::FailureSignature;
    for (const auto kind :
         {FS::kEmptyDns, FS::kRefused, FS::kRstBeforeBanner,
          FS::kRstAfterRequest, FS::kTimeout, FS::kSlowDrip}) {
      if (*signature->asString() == simnet::toString(kind))
        fetch.signature = kind;
    }
  }
  if (const auto* cause = json.find("cause"); cause && cause->asString()) {
    using FC = simnet::FailureCause;
    for (const auto kind :
         {FC::kOrganic, FC::kFault, FC::kOutage, FC::kMiddlebox,
          FC::kPacketFilter, FC::kInterference}) {
      if (*cause->asString() == simnet::toString(kind)) fetch.cause = kind;
    }
  }
  if (const auto* interference = json.find("interference");
      interference && interference->asString()) {
    using IE = simnet::InterferenceEffect;
    for (const auto effect : {IE::kHidden, IE::kLockout, IE::kTarpit,
                              IE::kFlakyOpen, IE::kMimicry}) {
      if (*interference->asString() == simnet::toString(effect))
        fetch.interference = effect;
    }
  }

  if (const auto* response = json.find("response");
      response && response->asString()) {
    auto parsed = http::parseResponse(*response->asString());
    if (!parsed) return std::nullopt;
    fetch.response = std::move(*parsed);
  }
  if (const auto* chain = json.find("redirect_chain")) {
    const auto* array = chain->asArray();
    if (array == nullptr) return std::nullopt;
    for (const auto& hop : *array) {
      if (!hop.asString()) return std::nullopt;
      auto parsed = http::parseResponse(*hop.asString());
      if (!parsed) return std::nullopt;
      fetch.redirectChain.push_back(std::move(*parsed));
    }
  }
  return fetch;
}

}  // namespace

Json toJson(const UrlTestResult& result) {
  Json out = Json::object();
  out["url"] = Json::string(result.url);
  out["verdict"] = Json::string(toString(result.verdict));
  if (result.provenance != Provenance::kConfirmed)
    out["provenance"] = Json::string(toString(result.provenance));
  out["field"] = fetchToJson(result.field);
  out["lab"] = fetchToJson(result.lab);
  if (result.blockPage) {
    Json match = Json::object();
    match["product"] =
        Json::string(filters::toString(result.blockPage->product));
    match["pattern"] = Json::string(result.blockPage->patternName);
    match["evidence"] = Json::string(result.blockPage->evidence);
    out["block_page"] = std::move(match);
  }
  return out;
}

std::optional<UrlTestResult> urlTestResultFromJson(const Json& json) {
  if (!json.isObject()) return std::nullopt;
  const auto* url = json.find("url");
  const auto* field = json.find("field");
  const auto* lab = json.find("lab");
  if (url == nullptr || !url->asString() || field == nullptr || lab == nullptr)
    return std::nullopt;

  UrlTestResult result;
  result.url = *url->asString();
  auto parsedField = fetchFromJson(*field);
  auto parsedLab = fetchFromJson(*lab);
  if (!parsedField || !parsedLab) return std::nullopt;
  result.field = std::move(*parsedField);
  result.lab = std::move(*parsedLab);
  if (const auto* provenance = json.find("provenance");
      provenance && provenance->asString() &&
      *provenance->asString() == toString(Provenance::kDegraded))
    result.provenance = Provenance::kDegraded;

  // Verdict and block page are derived data; recompute them so an imported
  // session is internally consistent even if the library changed.
  result.blockPage = classifyBlockPage(result.field);
  result.verdict = Client::compare(result.field, result.lab, result.blockPage);
  return result;
}

std::string exportSession(const std::vector<UrlTestResult>& results,
                          int indent) {
  Json array = Json::array();
  for (const auto& result : results) array.push(toJson(result));
  return array.dump(indent);
}

std::optional<std::vector<UrlTestResult>> importSession(std::string_view text) {
  const auto json = Json::parse(text);
  if (!json) return std::nullopt;
  const auto* array = json->asArray();
  if (array == nullptr) return std::nullopt;

  std::vector<UrlTestResult> out;
  out.reserve(array->size());
  for (const auto& item : *array) {
    auto result = urlTestResultFromJson(item);
    if (!result) return std::nullopt;
    out.push_back(std::move(*result));
  }
  return out;
}

std::vector<UrlTestResult> reclassify(
    std::vector<UrlTestResult> results,
    const std::vector<BlockPagePattern>& patterns) {
  for (auto& result : results) {
    result.blockPage = classifyBlockPage(result.field, patterns);
    result.verdict =
        Client::compare(result.field, result.lab, result.blockPage);
  }
  return results;
}

}  // namespace urlf::measure
