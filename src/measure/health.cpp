#include "measure/health.h"

namespace urlf::measure {

std::string_view toString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

bool VantageHealth::hardFailure(simnet::FetchOutcome outcome) {
  switch (outcome) {
    case simnet::FetchOutcome::kTimeout:
    case simnet::FetchOutcome::kReset:
    case simnet::FetchOutcome::kDnsFailure:
    case simnet::FetchOutcome::kConnectFailure:
      return true;
    case simnet::FetchOutcome::kOk:
    case simnet::FetchOutcome::kBadUrl:
      return false;
  }
  return false;
}

bool VantageHealth::ignored(simnet::FetchOutcome outcome) {
  // A malformed URL never reaches the network: it says nothing about the
  // vantage, so it must neither trip nor reset the breaker.
  return outcome == simnet::FetchOutcome::kBadUrl;
}

HealthDecision VantageHealth::decide(util::SimTime now) {
  switch (state_) {
    case BreakerState::kClosed:
      ++allowed_;
      return HealthDecision::kProceed;
    case BreakerState::kHalfOpen:
      // A probe is already owed (e.g. the caller asked again before
      // reporting the probe's outcome) — keep offering it.
      ++allowed_;
      return HealthDecision::kProbe;
    case BreakerState::kOpen:
      if (now.hours() - openedAt_.hours() >= policy_.cooldownHours) {
        state_ = BreakerState::kHalfOpen;
        ++allowed_;
        return HealthDecision::kProbe;
      }
      ++quarantined_;
      return HealthDecision::kQuarantined;
  }
  ++allowed_;
  return HealthDecision::kProceed;
}

void VantageHealth::recordOutcome(simnet::FetchOutcome outcome,
                                  util::SimTime now) {
  if (ignored(outcome)) return;

  if (!hardFailure(outcome)) {
    // Success (including a vendor block page — the vantage exchanged
    // traffic): close the breaker from any state.
    state_ = BreakerState::kClosed;
    consecutiveFailures_ = 0;
    return;
  }

  ++consecutiveFailures_;
  switch (state_) {
    case BreakerState::kHalfOpen:
      // The probe failed — straight back to open and restart the cooldown.
      open(now);
      break;
    case BreakerState::kClosed:
      if (consecutiveFailures_ >= policy_.failureThreshold) open(now);
      break;
    case BreakerState::kOpen:
      break;  // already quarantined; nothing more to do
  }
}

void VantageHealth::open(util::SimTime now) {
  state_ = BreakerState::kOpen;
  openedAt_ = now;
  ++timesOpened_;
}

VantageHealth& HealthRegistry::of(const std::string& vantageName) {
  auto it = vantages_.find(vantageName);
  if (it == vantages_.end())
    it = vantages_.emplace(vantageName, VantageHealth{policy_}).first;
  return it->second;
}

const VantageHealth* HealthRegistry::find(const std::string& vantageName) const {
  const auto it = vantages_.find(vantageName);
  return it == vantages_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, BreakerState>> HealthRegistry::snapshot()
    const {
  std::vector<std::pair<std::string, BreakerState>> out;
  out.reserve(vantages_.size());
  for (const auto& [name, health] : vantages_)
    out.emplace_back(name, health.state());
  return out;
}

}  // namespace urlf::measure
