#ifndef URLF_MEASURE_ROBUST_H
#define URLF_MEASURE_ROBUST_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "measure/client.h"
#include "simnet/transport.h"
#include "simnet/world.h"

namespace urlf::measure {

/// kReference replays the historical single-vantage confirmer exactly (no
/// quorum, no pacing, no hedging, no cross-check); kRobust applies the full
/// anti-interference battery. Both are pure functions of the same serial
/// fetch program, so reference ≡ robust on interference-free worlds is a
/// property test, not a hope.
enum class RobustMode {
  kReference,
  kRobust,
};

/// Knobs for the interference-robust confirmation path.
struct RobustOptions {
  RobustMode mode = RobustMode::kRobust;

  /// k-of-n cross-vantage quorum: a verdict is confirmed only when at least
  /// `quorum` vantages independently agree (clamped to the vantage count).
  int quorum = 2;

  /// Token-bucket pacing against the simulated clock: a bucket of
  /// `paceBurst` tokens refilling at `paceRefillPerHour` gates every field
  /// fetch; an empty bucket advances the simulated clock until one token is
  /// available. Keeps the request cadence under detection/lockout
  /// thresholds. 0 = pacing off.
  int paceBurst = 0;
  double paceRefillPerHour = 1.0;

  /// Per-attempt deadline threaded into FetchOptions (tarpit defense):
  /// a slow-drip attempt is cancelled after this many simulated hours.
  std::int64_t attemptDeadlineHours = 0;

  /// Extra re-fetches (fresh attemptBase, re-paced) after a slow-drip
  /// cancellation — hedging so one tarpitted flow doesn't decide the row.
  int hedgeAttempts = 0;

  /// The product the scan/fingerprint pipeline identified on this path, if
  /// any. With it set, a blockpage classifying as any OTHER vendor can
  /// never be confirmed — disagreement downgrades to kContested
  /// (mimicry cross-check).
  std::optional<filters::ProductKind> identifiedProduct;

  ClassifyMode classifyMode = ClassifyMode::kCompiled;
  simnet::FetchOptions fetchOptions;
};

/// The quorum-combined outcome for one URL.
struct RobustUrlVerdict {
  std::string url;
  Verdict verdict = Verdict::kError;
  /// Attributed product — only ever set when the quorum (and, if supplied,
  /// the scan identification) agree on a single vendor.
  std::optional<filters::ProductKind> product;
  /// True when blockpage evidence named more than one vendor, or named a
  /// vendor that contradicts the scan identification.
  bool mimicrySuspected = false;
  /// How many vantages backed the winning verdict.
  int agreeing = 0;
  /// One confirmed row per field vantage, in vantage order.
  std::vector<UrlTestResult> perVantage;
};

/// Cross-vantage, interference-robust confirmation (DESIGN.md §4.9).
///
/// Follows the repo's serial-collect / pure-derive contract: collect()
/// mutates the world (fetches, pacing clock advances, hedges) and runs
/// strictly in URL × vantage order; derive() is a pure function of the
/// collected rows, so confirmList can fan it out over any thread count and
/// stay byte-identical to the serial reference.
class RobustConfirmer {
 public:
  RobustConfirmer(simnet::World& world,
                  std::vector<const simnet::VantagePoint*> fields,
                  const simnet::VantagePoint& lab, RobustOptions options);

  /// Serial stage: fetch `url` from every field vantage (first vantage only
  /// in kReference mode) plus once from the lab. Pacing, deadlines, and
  /// hedging apply here.
  [[nodiscard]] std::vector<UrlTestResult> collect(const std::string& url);

  /// Pure stage: classify each row and combine under the quorum rule.
  [[nodiscard]] RobustUrlVerdict derive(const std::string& url,
                                        std::vector<UrlTestResult> rows) const;

  [[nodiscard]] RobustUrlVerdict confirmUrl(const std::string& url);

  /// Serial-collect / parallel-derive over a list (threadLimit as in
  /// util::parallelFor: 1 = serial reference, 0 = shared pool).
  [[nodiscard]] std::vector<RobustUrlVerdict> confirmList(
      std::span<const std::string> urls, std::size_t threadLimit = 1);

  [[nodiscard]] const RobustOptions& options() const { return options_; }

 private:
  /// Blocks (advancing the simulated clock) until one pacing token is
  /// available, then spends it. No-op when pacing is off or in reference
  /// mode.
  void takePaceToken();

  [[nodiscard]] std::optional<BlockPageMatch> classify(
      const simnet::FetchResult& field) const;

  simnet::World* world_;
  simnet::Transport transport_;
  std::vector<const simnet::VantagePoint*> fields_;
  const simnet::VantagePoint* lab_;
  RobustOptions options_;

  double paceTokens_ = 0.0;
  std::int64_t paceRefillHour_ = 0;
  bool paceStarted_ = false;
};

}  // namespace urlf::measure

#endif  // URLF_MEASURE_ROBUST_H
