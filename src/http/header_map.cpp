#include "http/header_map.h"

#include <algorithm>

#include "util/strings.h"

namespace urlf::http {

HeaderMap::HeaderMap(std::initializer_list<Field> fields) : fields_(fields) {}

void HeaderMap::add(std::string_view name, std::string_view value) {
  fields_.push_back({std::string(name), std::string(value)});
}

void HeaderMap::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

void HeaderMap::replaceValue(std::string_view name, std::string_view value) {
  for (auto& f : fields_) {
    if (util::iequals(f.name, name)) {
      f.value.assign(value);
      return;
    }
  }
  add(name, value);
}

std::size_t HeaderMap::remove(std::string_view name) {
  const auto before = fields_.size();
  std::erase_if(fields_, [&](const Field& f) {
    return util::iequals(f.name, name);
  });
  return before - fields_.size();
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const auto& f : fields_)
    if (util::iequals(f.name, name)) return std::string_view{f.value};
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::getAll(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& f : fields_)
    if (util::iequals(f.name, name)) out.emplace_back(f.value);
  return out;
}

bool HeaderMap::contains(std::string_view name) const {
  return get(name).has_value();
}

bool HeaderMap::anyValueContains(std::string_view needle) const {
  return std::any_of(fields_.begin(), fields_.end(), [&](const Field& f) {
    return util::icontains(f.value, needle);
  });
}

std::string HeaderMap::serialize() const {
  std::string out;
  for (const auto& f : fields_) {
    out += f.name;
    out += ": ";
    out += f.value;
    out += "\r\n";
  }
  return out;
}

bool HeaderMap::operator==(const HeaderMap& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (!util::iequals(fields_[i].name, other.fields_[i].name) ||
        fields_[i].value != other.fields_[i].value)
      return false;
  }
  return true;
}

}  // namespace urlf::http
