#include "http/wire.h"

#include <cctype>

#include "util/strings.h"

namespace urlf::http {

namespace {

struct HeaderBlock {
  HeaderMap headers;
  std::string_view rest;  // body bytes
};

/// Parse "Name: value\r\n"* up to the blank line.
std::optional<HeaderBlock> parseHeaderBlock(std::string_view s) {
  HeaderBlock out;
  while (true) {
    const std::size_t eol = s.find("\r\n");
    if (eol == std::string_view::npos) return std::nullopt;  // no blank line
    const std::string_view line = s.substr(0, eol);
    s.remove_prefix(eol + 2);
    if (line.empty()) break;  // end of headers
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return std::nullopt;
    const std::string_view name = util::trim(line.substr(0, colon));
    const std::string_view value = util::trim(line.substr(colon + 1));
    if (name.empty()) return std::nullopt;
    out.headers.add(name, value);
  }
  out.rest = s;
  return out;
}

std::optional<int> parseStatusCode(std::string_view s) {
  if (s.size() != 3) return std::nullopt;
  int code = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    code = code * 10 + (c - '0');
  }
  return code;
}

}  // namespace

std::string serialize(const Request& req) {
  std::string out = req.requestLine();
  out += "\r\n";
  out += req.headers.serialize();
  out += "\r\n";
  out += req.body;
  return out;
}

std::string serialize(const Response& resp) {
  std::string out;
  out.reserve(serializedSizeBound(resp));
  serializeTo(resp, out);
  return out;
}

void serializeTo(const Response& resp, std::string& out) {
  out += resp.statusLine();
  out += "\r\n";
  for (const auto& field : resp.headers.fields()) {
    out += field.name;
    out += ": ";
    out += field.value;
    out += "\r\n";
  }
  out += "\r\n";
  out += resp.body;
}

std::size_t serializedSizeBound(const Response& resp) {
  // "HTTP/1.1 NNN " + reason + CRLF, with slack for long status codes.
  std::size_t n = 16 + resp.reason.size() + 2;
  for (const auto& field : resp.headers.fields())
    n += field.name.size() + 2 + field.value.size() + 2;
  n += 2 + resp.body.size();
  return n;
}

std::optional<Response> parseResponse(std::string_view wire) {
  const std::size_t eol = wire.find("\r\n");
  if (eol == std::string_view::npos) return std::nullopt;
  const std::string_view statusLine = wire.substr(0, eol);

  // "HTTP/1.1 SP 3DIGIT SP reason"
  if (!util::startsWith(statusLine, "HTTP/1.")) return std::nullopt;
  const std::size_t sp1 = statusLine.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const std::size_t sp2 = statusLine.find(' ', sp1 + 1);
  const std::string_view codeText =
      sp2 == std::string_view::npos
          ? statusLine.substr(sp1 + 1)
          : statusLine.substr(sp1 + 1, sp2 - sp1 - 1);
  const auto code = parseStatusCode(codeText);
  if (!code) return std::nullopt;

  auto block = parseHeaderBlock(wire.substr(eol + 2));
  if (!block) return std::nullopt;

  Response resp;
  resp.statusCode = *code;
  resp.reason = sp2 == std::string_view::npos
                    ? std::string(reasonPhrase(*code))
                    : std::string(statusLine.substr(sp2 + 1));
  resp.headers = std::move(block->headers);
  if (const auto len = resp.headers.get("Content-Length")) {
    std::size_t n = 0;
    for (char c : *len) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      n = n * 10 + static_cast<std::size_t>(c - '0');
    }
    if (n > block->rest.size()) return std::nullopt;  // truncated
    resp.body = std::string(block->rest.substr(0, n));
  } else {
    resp.body = std::string(block->rest);  // connection-close framing
  }
  return resp;
}

std::optional<Request> parseRequest(std::string_view wire) {
  const std::size_t eol = wire.find("\r\n");
  if (eol == std::string_view::npos) return std::nullopt;
  const std::string_view requestLine = wire.substr(0, eol);

  const auto parts = util::split(requestLine, ' ');
  if (parts.size() != 3) return std::nullopt;
  const std::string& method = parts[0];
  const std::string& target = parts[1];
  if (method.empty() || target.empty() || parts[2].substr(0, 7) != "HTTP/1.")
    return std::nullopt;

  auto block = parseHeaderBlock(wire.substr(eol + 2));
  if (!block) return std::nullopt;

  const auto host = block->headers.get("Host");
  if (!host) return std::nullopt;

  const auto url = net::Url::parse("http://" + std::string(*host) + target);
  if (!url) return std::nullopt;

  Request req;
  req.method = method;
  req.url = *url;
  req.headers = std::move(block->headers);
  req.body = std::string(block->rest);
  return req;
}

Frame messageFrame(std::string_view buffer) {
  // One whole line must be buffered before we can even reject the stream.
  const std::size_t eol = buffer.find("\r\n");
  if (eol == std::string_view::npos)
    // Bound the damage a never-terminating first line can do.
    return {buffer.size() > 64 * 1024 ? Frame::State::kBad
                                      : Frame::State::kIncomplete,
            0};
  const std::size_t headerEnd = buffer.find("\r\n\r\n", eol);
  if (headerEnd == std::string_view::npos)
    return {Frame::State::kIncomplete, 0};

  // Scan the header block for Content-Length (case-insensitive name match,
  // same tolerance as HeaderMap).
  std::size_t bodyLen = 0;
  std::string_view block = buffer.substr(eol + 2, headerEnd - eol);
  while (!block.empty()) {
    const std::size_t lineEnd = block.find("\r\n");
    const std::string_view line =
        lineEnd == std::string_view::npos ? block : block.substr(0, lineEnd);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      const std::string_view name = util::trim(line.substr(0, colon));
      if (util::toLower(std::string(name)) == "content-length") {
        const std::string_view value = util::trim(line.substr(colon + 1));
        if (value.empty()) return {Frame::State::kBad, 0};
        bodyLen = 0;
        for (const char c : value) {
          if (!std::isdigit(static_cast<unsigned char>(c)))
            return {Frame::State::kBad, 0};
          bodyLen = bodyLen * 10 + static_cast<std::size_t>(c - '0');
        }
      }
    }
    if (lineEnd == std::string_view::npos) break;
    block.remove_prefix(lineEnd + 2);
  }

  const std::size_t total = headerEnd + 4 + bodyLen;
  if (buffer.size() < total) return {Frame::State::kIncomplete, 0};
  return {Frame::State::kComplete, total};
}

}  // namespace urlf::http
