#include "http/message.h"

#include <stdexcept>

namespace urlf::http {

Request Request::get(const net::Url& url) {
  Request req;
  req.method = "GET";
  req.url = url;
  req.headers.add("Host", url.host());
  req.headers.add("User-Agent", "ONI-MeasurementClient/2.1");
  req.headers.add("Accept", "*/*");
  req.headers.add("Connection", "close");
  return req;
}

Request Request::get(std::string_view urlText) {
  const auto url = net::Url::parse(urlText);
  if (!url)
    throw std::invalid_argument("Request::get: malformed URL: " +
                                std::string(urlText));
  return get(*url);
}

void Request::retarget(net::Url newUrl) {
  url = std::move(newUrl);
  headers.replaceValue("Host", url.host());
}

std::string Request::requestLine() const {
  return method + " " + url.requestTarget() + " HTTP/1.1";
}

Response Response::make(Status status) {
  Response resp;
  resp.statusCode = static_cast<int>(status);
  resp.reason = std::string(reasonPhrase(status));
  return resp;
}

Response Response::make(Status status, std::string body,
                        std::string_view contentType) {
  Response resp = make(status);
  resp.body = std::move(body);
  resp.headers.set("Content-Type", std::string(contentType));
  resp.headers.set("Content-Length", std::to_string(resp.body.size()));
  return resp;
}

std::string Response::statusLine() const {
  return "HTTP/1.1 " + std::to_string(statusCode) + " " + reason;
}

}  // namespace urlf::http
