#ifndef URLF_HTTP_STATUS_H
#define URLF_HTTP_STATUS_H

#include <string_view>

namespace urlf::http {

/// HTTP status codes used in the simulation.
enum class Status : int {
  kOk = 200,
  kMovedPermanently = 301,
  kFound = 302,
  kBadRequest = 400,
  kForbidden = 403,
  kNotFound = 404,
  kProxyAuthRequired = 407,
  kRequestTimeout = 408,
  kInternalServerError = 500,
  kBadGateway = 502,
  kServiceUnavailable = 503,
  kGatewayTimeout = 504,
};

/// Canonical reason phrase ("OK", "Forbidden", ...). Unknown codes yield
/// "Unknown".
[[nodiscard]] std::string_view reasonPhrase(Status status);
[[nodiscard]] std::string_view reasonPhrase(int code);

[[nodiscard]] constexpr int code(Status s) { return static_cast<int>(s); }
[[nodiscard]] constexpr bool isRedirectCode(int c) { return c == 301 || c == 302 || c == 303 || c == 307 || c == 308; }
[[nodiscard]] constexpr bool isSuccessCode(int c) { return c >= 200 && c < 300; }

}  // namespace urlf::http

#endif  // URLF_HTTP_STATUS_H
