#ifndef URLF_HTTP_HTML_H
#define URLF_HTTP_HTML_H

#include <string>
#include <string_view>

namespace urlf::http {

/// Extract the contents of the first <title> element (case-insensitive tag
/// match, whitespace-trimmed). Empty when no title exists. Fingerprinting
/// relies on this: e.g. SmartFilter's block page titles itself
/// "McAfee Web Gateway" (Table 2).
[[nodiscard]] std::string extractTitle(std::string_view html);

/// Minimal page builder: <html><head><title>..</title></head><body>..</body></html>.
[[nodiscard]] std::string makePage(std::string_view title, std::string_view body);

/// Escape &, <, > for safe embedding in HTML text.
[[nodiscard]] std::string escape(std::string_view text);

}  // namespace urlf::http

#endif  // URLF_HTTP_HTML_H
