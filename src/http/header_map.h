#ifndef URLF_HTTP_HEADER_MAP_H
#define URLF_HTTP_HEADER_MAP_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace urlf::http {

/// An ordered, case-insensitive HTTP header collection.
///
/// Field names compare case-insensitively (RFC 7230 §3.2); insertion order is
/// preserved because fingerprinting (Table 2 of the paper) cares about the
/// exact header lines a device emits.
class HeaderMap {
 public:
  struct Field {
    std::string name;
    std::string value;
  };

  HeaderMap() = default;
  HeaderMap(std::initializer_list<Field> fields);

  /// Append a field, keeping any existing fields with the same name.
  void add(std::string_view name, std::string_view value);

  /// Replace all fields of this name with a single field.
  void set(std::string_view name, std::string_view value);

  /// Overwrite the first field of this name in place (keeping its position
  /// and the value string's capacity); append when absent. The reuse-friendly
  /// variant of `set` for hot loops that re-point one header per iteration.
  void replaceValue(std::string_view name, std::string_view value);

  /// Remove every field with this name. Returns the number removed.
  std::size_t remove(std::string_view name);

  /// First value for the name, if any.
  [[nodiscard]] std::optional<std::string_view> get(std::string_view name) const;

  /// All values for the name, in insertion order.
  [[nodiscard]] std::vector<std::string_view> getAll(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const;

  /// True if any field's *value* contains `needle` (case-insensitive).
  [[nodiscard]] bool anyValueContains(std::string_view needle) const;

  [[nodiscard]] const std::vector<Field>& fields() const { return fields_; }
  [[nodiscard]] bool empty() const { return fields_.empty(); }
  [[nodiscard]] std::size_t size() const { return fields_.size(); }

  /// "Name: value\r\n" for every field, in order.
  [[nodiscard]] std::string serialize() const;

  bool operator==(const HeaderMap&) const;

 private:
  std::vector<Field> fields_;
};

}  // namespace urlf::http

#endif  // URLF_HTTP_HEADER_MAP_H
