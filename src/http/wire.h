#ifndef URLF_HTTP_WIRE_H
#define URLF_HTTP_WIRE_H

#include <optional>
#include <string>
#include <string_view>

#include "http/message.h"

namespace urlf::http {

/// Serialize a request to its RFC 7230 wire form (origin-form target).
[[nodiscard]] std::string serialize(const Request& req);

/// Serialize a response to its wire form.
[[nodiscard]] std::string serialize(const Response& resp);

/// Append a response's wire form to `out` (no intermediate string). The
/// measurement pipeline flattens every hop of a fetch into one trace; the
/// appending form lets the caller reserve once for the whole trace.
void serializeTo(const Response& resp, std::string& out);

/// Upper-bound byte count of serializeTo(resp) — exact for the body and
/// headers, slack only for the status line. Cheap enough to call per hop to
/// size a reserve().
[[nodiscard]] std::size_t serializedSizeBound(const Response& resp);

/// Parse a response from wire form. Tolerates missing Content-Length by
/// treating the remainder as the body (connection-close framing). Returns
/// nullopt on a malformed status line or header block.
[[nodiscard]] std::optional<Response> parseResponse(std::string_view wire);

/// Parse a request from wire form (origin-form target; requires Host header
/// to reconstruct the absolute URL). Returns nullopt when malformed.
[[nodiscard]] std::optional<Request> parseRequest(std::string_view wire);

/// Incremental framing over a byte stream carrying back-to-back messages
/// (either direction: the request and status lines frame identically). A
/// message is complete once its header block and `Content-Length` body bytes
/// are buffered; a missing Content-Length frames as an empty body, so
/// streamed peers must set it explicitly on every message they send.
struct Frame {
  enum class State {
    kIncomplete,  ///< need more bytes
    kComplete,    ///< first `size` bytes hold one whole message
    kBad,         ///< stream is unparseable — close the connection
  };
  State state = State::kIncomplete;
  std::size_t size = 0;  ///< set when state == kComplete
};

/// Frame the first message in `buffer`. Never consumes bytes: callers slice
/// off `size` bytes on kComplete and hand them to parseRequest /
/// parseResponse.
[[nodiscard]] Frame messageFrame(std::string_view buffer);

}  // namespace urlf::http

#endif  // URLF_HTTP_WIRE_H
