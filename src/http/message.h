#ifndef URLF_HTTP_MESSAGE_H
#define URLF_HTTP_MESSAGE_H

#include <optional>
#include <string>
#include <string_view>

#include "http/header_map.h"
#include "http/status.h"
#include "net/url.h"

namespace urlf::http {

/// An HTTP/1.1 request as exchanged inside the simulated network.
struct Request {
  std::string method = "GET";
  net::Url url;          ///< absolute target (scheme+host+port+path+query)
  HeaderMap headers;
  std::string body;

  /// Build a plain GET with a Host header and common client headers.
  static Request get(const net::Url& url);
  /// Convenience: parse the URL text, then build the GET. Throws
  /// std::invalid_argument on malformed URLs.
  static Request get(std::string_view urlText);

  /// Re-point an already-built GET at a new target: swaps the url and
  /// rewrites the Host header in place. On a request primed by `get()` the
  /// result is field-for-field identical to `get(url)` — probe loops reuse
  /// one request instead of rebuilding four headers per endpoint.
  void retarget(net::Url url);

  /// Request line, e.g. "GET /path?q HTTP/1.1".
  [[nodiscard]] std::string requestLine() const;
};

/// An HTTP/1.1 response.
struct Response {
  int statusCode = 200;
  std::string reason = "OK";
  HeaderMap headers;
  std::string body;

  static Response make(Status status);
  static Response make(Status status, std::string body,
                       std::string_view contentType = "text/html");

  [[nodiscard]] bool isRedirect() const { return isRedirectCode(statusCode); }
  [[nodiscard]] bool isSuccess() const { return isSuccessCode(statusCode); }

  /// Location header, if present.
  [[nodiscard]] std::optional<std::string_view> location() const {
    return headers.get("Location");
  }

  /// Status line, e.g. "HTTP/1.1 403 Forbidden".
  [[nodiscard]] std::string statusLine() const;
};

}  // namespace urlf::http

#endif  // URLF_HTTP_MESSAGE_H
