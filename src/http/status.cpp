#include "http/status.h"

namespace urlf::http {

std::string_view reasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 407: return "Proxy Authentication Required";
    case 408: return "Request Timeout";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string_view reasonPhrase(Status status) {
  return reasonPhrase(static_cast<int>(status));
}

}  // namespace urlf::http
