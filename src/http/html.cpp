#include "http/html.h"

#include "util/strings.h"

namespace urlf::http {

namespace {

std::size_t ifind(std::string_view haystack, std::string_view needle,
                  std::size_t from) {
  const std::string lowerHay = util::toLower(haystack);
  const std::string lowerNeedle = util::toLower(needle);
  return lowerHay.find(lowerNeedle, from);
}

}  // namespace

std::string extractTitle(std::string_view html) {
  const std::size_t open = ifind(html, "<title", 0);
  if (open == std::string::npos) return {};
  const std::size_t openEnd = html.find('>', open);
  if (openEnd == std::string::npos) return {};
  const std::size_t close = ifind(html, "</title", openEnd);
  if (close == std::string::npos) return {};
  return std::string(util::trim(html.substr(openEnd + 1, close - openEnd - 1)));
}

std::string makePage(std::string_view title, std::string_view body) {
  std::string out = "<html><head><title>";
  out += title;
  out += "</title></head><body>";
  out += body;
  out += "</body></html>";
  return out;
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace urlf::http
