#include "fingerprint/engine.h"

#include "http/html.h"

namespace urlf::fingerprint {

using filters::ProductKind;

void Engine::addSignature(Signature signature) {
  signatures_.push_back(std::move(signature));
}

Engine Engine::withBuiltinSignatures() {
  Engine engine;

  // Blue Coat (Table 2): "Built in detection or Location header contains
  // hostname www.cfauth.com"; Shodan keywords "proxysg", "cfru=".
  engine.addSignature(Signature{
      ProductKind::kBlueCoat,
      "bluecoat-proxysg",
      {
          {Matcher::locationContains("www.cfauth.com"), 1.0},
          {Matcher::locationContains("cfru="), 0.95},
          {Matcher::headerContains("Server", "ProxySG"), 1.0},
          {Matcher::titleContains("ProxySG"), 0.9},
      },
      0.5,
  });

  // McAfee SmartFilter (Table 2): "Via-Proxy header or HTML title contains
  // 'McAfee Web Gateway'".
  engine.addSignature(Signature{
      ProductKind::kSmartFilter,
      "mcafee-web-gateway",
      {
          {Matcher::headerContains("Via", "McAfee Web Gateway"), 1.0},
          {Matcher::titleContains("McAfee Web Gateway"), 1.0},
          {Matcher::headerContains("Server", "McAfee Web Gateway"), 0.95},
      },
      0.5,
  });

  // Netsweeper (Table 2): "Built in detection"; keyed on the WebAdmin
  // console and deny-page artifacts.
  engine.addSignature(Signature{
      ProductKind::kNetsweeper,
      "netsweeper-webadmin",
      {
          {Matcher::titleContains("Netsweeper"), 1.0},
          {Matcher::headerContains("Server", "Netsweeper"), 1.0},
          {Matcher::locationContains("/webadmin/"), 0.9},
          {Matcher::bodyContains("netsweeper webadmin"), 0.95},
      },
      0.5,
  });

  // Websense (Table 2): "Location header redirects to a host on port 15871
  // with parameter 'ws-session'".
  engine.addSignature(Signature{
      ProductKind::kWebsense,
      "websense-gateway",
      {
          {Matcher::locationRedirect(15871, "ws-session"), 1.0},
          {Matcher::headerContains("Server", "Websense"), 0.95},
          // Body-only mention of blockpage.cgi is weak evidence (tutorials
          // and clones use the name); below threshold on its own.
          {Matcher::bodyContains("blockpage.cgi"), 0.45},
          {Matcher::titleContains("Websense"), 0.9},
      },
      0.5,
  });

  return engine;
}

void Engine::evaluatePrepared(const PreparedObservation& view,
                              std::vector<Match>& out) const {
  for (const auto& signature : signatures_) {
    Match match;
    match.product = signature.product;
    match.signatureName = signature.name;
    for (const auto& [matcher, weight] : signature.matchers) {
      if (const auto evidence = matcher.match(view)) {
        match.certainty = std::max(match.certainty, weight);
        match.evidence.push_back(matcher.describe() + " -> " + *evidence);
      }
    }
    if (match.certainty >= signature.threshold) out.push_back(std::move(match));
  }
}

std::vector<Match> Engine::evaluate(const Observation& obs) const {
  // Case-fold the observation once; every signature rule then probes the
  // prepared view instead of re-lowercasing body/title per matcher.
  const PreparedObservation view(obs);
  std::vector<Match> out;
  evaluatePrepared(view, out);
  return out;
}

void Engine::evaluateInto(const Observation& obs, PreparedObservation& view,
                          std::vector<Match>& out) const {
  view.assign(obs);
  out.clear();
  evaluatePrepared(view, out);
}

bool Engine::observeInto(simnet::World& world, net::Ipv4Addr ip,
                         std::uint16_t port, Observation& out) {
  http::Request request;
  return observeInto(world, ip, port, out, request);
}

bool Engine::observeInto(simnet::World& world, net::Ipv4Addr ip,
                         std::uint16_t port, Observation& out,
                         http::Request& request) {
  net::Url url{"http", ip.toString(), port, "/", ""};
  if (request.headers.empty())
    request = http::Request::get(url);
  else
    request.retarget(std::move(url));
  auto response = world.probeExternal(ip, port, request);
  if (!response) return false;

  out.ip = ip;
  out.port = port;
  out.statusCode = response->statusCode;
  out.headers = std::move(response->headers);
  out.title = http::extractTitle(response->body);
  out.body = std::move(response->body);
  return true;
}

std::optional<Observation> Engine::observe(simnet::World& world,
                                           net::Ipv4Addr ip,
                                           std::uint16_t port) {
  Observation obs;
  if (!observeInto(world, ip, port, obs)) return std::nullopt;
  return obs;
}

std::vector<Match> Engine::probe(simnet::World& world, net::Ipv4Addr ip,
                                 std::uint16_t port) const {
  const auto obs = observe(world, ip, port);
  if (!obs) return {};
  return evaluate(*obs);
}

void Engine::probeInto(simnet::World& world, net::Ipv4Addr ip,
                       std::uint16_t port, EvalScratch& scratch,
                       std::vector<Match>& out) const {
  out.clear();
  if (!observeInto(world, ip, port, scratch.observation, scratch.probeRequest))
    return;
  evaluateInto(scratch.observation, scratch.view, out);
}

}  // namespace urlf::fingerprint
