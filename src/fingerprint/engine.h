#ifndef URLF_FINGERPRINT_ENGINE_H
#define URLF_FINGERPRINT_ENGINE_H

#include <optional>
#include <string>
#include <vector>

#include "filters/category.h"
#include "fingerprint/matcher.h"
#include "simnet/world.h"

namespace urlf::fingerprint {

/// A weighted rule inside a signature.
struct WeightedMatcher {
  Matcher matcher;
  double weight = 1.0;  ///< certainty contributed when this rule fires
};

/// A product signature: a set of weighted rules. The signature matches an
/// observation when any rule fires; certainty is the maximum weight among
/// fired rules.
struct Signature {
  filters::ProductKind product = filters::ProductKind::kBlueCoat;
  std::string name;
  std::vector<WeightedMatcher> matchers;
  double threshold = 0.5;  ///< minimum certainty to report a match
};

/// One confirmed signature hit.
struct Match {
  filters::ProductKind product = filters::ProductKind::kBlueCoat;
  std::string signatureName;
  double certainty = 0.0;
  std::vector<std::string> evidence;  ///< one entry per fired rule
};

/// The WhatWeb stand-in: validates that a candidate IP really hosts the
/// suspected product (§3.1, "Validating URL filter installations").
class Engine {
 public:
  Engine() = default;

  void addSignature(Signature signature);

  /// Engine preloaded with the Table 2 signatures for all four products.
  [[nodiscard]] static Engine withBuiltinSignatures();

  /// Evaluate all signatures against a stored observation (passive mode).
  [[nodiscard]] std::vector<Match> evaluate(const Observation& obs) const;

  /// Actively probe (ip, port) from outside — GET / without following
  /// redirects, so signature Location headers stay observable. Returns
  /// nullopt when nothing externally reachable answers.
  [[nodiscard]] static std::optional<Observation> observe(simnet::World& world,
                                                          net::Ipv4Addr ip,
                                                          std::uint16_t port);

  /// observe + evaluate (aggressive mode).
  [[nodiscard]] std::vector<Match> probe(simnet::World& world, net::Ipv4Addr ip,
                                         std::uint16_t port) const;

  [[nodiscard]] const std::vector<Signature>& signatures() const {
    return signatures_;
  }

 private:
  std::vector<Signature> signatures_;
};

}  // namespace urlf::fingerprint

#endif  // URLF_FINGERPRINT_ENGINE_H
