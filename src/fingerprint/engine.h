#ifndef URLF_FINGERPRINT_ENGINE_H
#define URLF_FINGERPRINT_ENGINE_H

#include <optional>
#include <string>
#include <vector>

#include "filters/category.h"
#include "fingerprint/matcher.h"
#include "http/message.h"
#include "simnet/world.h"

namespace urlf::fingerprint {

/// A weighted rule inside a signature.
struct WeightedMatcher {
  Matcher matcher;
  double weight = 1.0;  ///< certainty contributed when this rule fires
};

/// A product signature: a set of weighted rules. The signature matches an
/// observation when any rule fires; certainty is the maximum weight among
/// fired rules.
struct Signature {
  filters::ProductKind product = filters::ProductKind::kBlueCoat;
  std::string name;
  std::vector<WeightedMatcher> matchers;
  double threshold = 0.5;  ///< minimum certainty to report a match
};

/// One confirmed signature hit.
struct Match {
  filters::ProductKind product = filters::ProductKind::kBlueCoat;
  std::string signatureName;
  double certainty = 0.0;
  std::vector<std::string> evidence;  ///< one entry per fired rule
};

/// Reusable buffers for the allocation-lean validation hot path: one
/// observation whose strings keep their capacity across probes, one
/// prepared view re-pointed at it per candidate, and one GET request
/// retargeted per probe instead of rebuilt (four headers and a URL per
/// build otherwise). Verdicts are byte-identical to the scratch-free entry
/// points.
struct EvalScratch {
  Observation observation;
  PreparedObservation view;
  http::Request probeRequest;
};

/// The WhatWeb stand-in: validates that a candidate IP really hosts the
/// suspected product (§3.1, "Validating URL filter installations").
class Engine {
 public:
  Engine() = default;

  void addSignature(Signature signature);

  /// Engine preloaded with the Table 2 signatures for all four products.
  [[nodiscard]] static Engine withBuiltinSignatures();

  /// Evaluate all signatures against a stored observation (passive mode).
  [[nodiscard]] std::vector<Match> evaluate(const Observation& obs) const;

  /// evaluate() into caller-owned storage: `view` is re-pointed at `obs`
  /// (capacity reused) and `out` is cleared first. Identical results.
  void evaluateInto(const Observation& obs, PreparedObservation& view,
                    std::vector<Match>& out) const;

  /// Actively probe (ip, port) from outside — GET / without following
  /// redirects, so signature Location headers stay observable. Reaches both
  /// bound endpoints and streamed hosts via World::probeExternal. Returns
  /// nullopt when nothing externally reachable answers.
  [[nodiscard]] static std::optional<Observation> observe(simnet::World& world,
                                                          net::Ipv4Addr ip,
                                                          std::uint16_t port);

  /// observe() into a reused Observation (string capacity preserved across
  /// calls). Returns false when nothing externally reachable answers.
  [[nodiscard]] static bool observeInto(simnet::World& world, net::Ipv4Addr ip,
                                        std::uint16_t port, Observation& out);

  /// observeInto() that also reuses the probe request: `request` is primed by
  /// Request::get on first use and retargeted in place afterwards, so the
  /// wire-visible request stays field-for-field identical while the probe
  /// loop stops rebuilding headers per endpoint.
  [[nodiscard]] static bool observeInto(simnet::World& world, net::Ipv4Addr ip,
                                        std::uint16_t port, Observation& out,
                                        http::Request& request);

  /// observe + evaluate (aggressive mode).
  [[nodiscard]] std::vector<Match> probe(simnet::World& world, net::Ipv4Addr ip,
                                         std::uint16_t port) const;

  /// probe() through scratch buffers: `out` is cleared, then filled with
  /// exactly what probe() would return. The validation fan-out uses one
  /// scratch per worker chunk.
  void probeInto(simnet::World& world, net::Ipv4Addr ip, std::uint16_t port,
                 EvalScratch& scratch, std::vector<Match>& out) const;

  [[nodiscard]] const std::vector<Signature>& signatures() const {
    return signatures_;
  }

 private:
  void evaluatePrepared(const PreparedObservation& view,
                        std::vector<Match>& out) const;

  std::vector<Signature> signatures_;
};

}  // namespace urlf::fingerprint

#endif  // URLF_FINGERPRINT_ENGINE_H
