#include "fingerprint/matcher.h"

#include "net/url.h"
#include "util/regex.h"
#include "util/strings.h"

namespace urlf::fingerprint {

void PreparedObservation::assign(const Observation& observation) {
  obs = &observation;
  util::toLowerInto(observation.body, loweredBody);
  util::toLowerInto(observation.title, loweredTitle);
  if (const auto value = observation.headers.get("Location")) {
    hasLocation = true;
    location.assign(*value);
    util::toLowerInto(location, loweredLocation);
  } else {
    hasLocation = false;
    location.clear();
    loweredLocation.clear();
  }
}

Matcher Matcher::headerContains(std::string name, std::string needle) {
  Matcher m;
  m.kind_ = Kind::kHeaderContains;
  m.headerName_ = std::move(name);
  m.needle_ = std::move(needle);
  m.loweredNeedle_ = util::toLower(m.needle_);
  return m;
}

Matcher Matcher::titleContains(std::string needle) {
  Matcher m;
  m.kind_ = Kind::kTitleContains;
  m.needle_ = std::move(needle);
  m.loweredNeedle_ = util::toLower(m.needle_);
  return m;
}

Matcher Matcher::bodyContains(std::string needle) {
  Matcher m;
  m.kind_ = Kind::kBodyContains;
  m.needle_ = std::move(needle);
  m.loweredNeedle_ = util::toLower(m.needle_);
  return m;
}

Matcher Matcher::locationContains(std::string needle) {
  Matcher m;
  m.kind_ = Kind::kLocationContains;
  m.needle_ = std::move(needle);
  m.loweredNeedle_ = util::toLower(m.needle_);
  return m;
}

Matcher Matcher::locationRedirect(std::uint16_t port, std::string queryKey) {
  Matcher m;
  m.kind_ = Kind::kLocationRedirect;
  m.port_ = port;
  m.needle_ = std::move(queryKey);
  return m;
}

Matcher Matcher::statusEquals(int code) {
  Matcher m;
  m.kind_ = Kind::kStatusEquals;
  m.status_ = code;
  return m;
}

Matcher Matcher::headerRegex(std::string name, const std::string& pattern) {
  Matcher m;
  m.kind_ = Kind::kHeaderRegex;
  m.headerName_ = std::move(name);
  m.needle_ = pattern;
  // Shared compile-once pool: the same pattern source used by a block-page
  // recognizer or another fingerprint compiles exactly once per process.
  m.regex_ = util::compileIcaseRegex(pattern);
  return m;
}

Matcher Matcher::bodyRegex(const std::string& pattern) {
  Matcher m;
  m.kind_ = Kind::kBodyRegex;
  m.needle_ = pattern;
  m.regex_ = util::compileIcaseRegex(pattern);
  return m;
}

std::optional<std::string> Matcher::match(const Observation& obs) const {
  return match(PreparedObservation(obs));
}

std::optional<std::string> Matcher::match(
    const PreparedObservation& view) const {
  const Observation& obs = *view.obs;
  switch (kind_) {
    case Kind::kHeaderContains: {
      for (const auto value : obs.headers.getAll(headerName_)) {
        if (util::icontains(value, needle_))
          return headerName_ + ": " + std::string(value);
      }
      return std::nullopt;
    }
    case Kind::kTitleContains:
      if (view.loweredTitle.find(loweredNeedle_) != std::string::npos)
        return "title: " + obs.title;
      return std::nullopt;
    case Kind::kBodyContains:
      if (view.loweredBody.find(loweredNeedle_) != std::string::npos)
        return "body contains " + needle_;
      return std::nullopt;
    case Kind::kLocationContains: {
      if (view.hasLocation &&
          view.loweredLocation.find(loweredNeedle_) != std::string::npos)
        return "Location: " + view.location;
      return std::nullopt;
    }
    case Kind::kLocationRedirect: {
      if (!view.hasLocation) return std::nullopt;
      const auto url = net::Url::parse(view.location);
      if (!url) return std::nullopt;
      if (url->effectivePort() != port_) return std::nullopt;
      if (!net::queryParam(url->query(), needle_)) return std::nullopt;
      return "Location: " + view.location;
    }
    case Kind::kStatusEquals:
      if (obs.statusCode == status_)
        return "status " + std::to_string(status_);
      return std::nullopt;
    case Kind::kHeaderRegex: {
      for (const auto value : obs.headers.getAll(headerName_)) {
        const std::string text(value);
        if (std::regex_search(text, *regex_))
          return headerName_ + ": " + text;
      }
      return std::nullopt;
    }
    case Kind::kBodyRegex: {
      std::smatch match;
      if (std::regex_search(obs.body, match, *regex_))
        return "body matches: " + match.str(0);
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::string Matcher::describe() const {
  switch (kind_) {
    case Kind::kHeaderContains:
      return "header " + headerName_ + " contains \"" + needle_ + "\"";
    case Kind::kTitleContains:
      return "title contains \"" + needle_ + "\"";
    case Kind::kBodyContains:
      return "body contains \"" + needle_ + "\"";
    case Kind::kLocationContains:
      return "Location contains \"" + needle_ + "\"";
    case Kind::kLocationRedirect:
      return "Location redirects to port " + std::to_string(port_) +
             " with parameter \"" + needle_ + "\"";
    case Kind::kStatusEquals:
      return "status equals " + std::to_string(status_);
    case Kind::kHeaderRegex:
      return "header " + headerName_ + " matches /" + needle_ + "/i";
    case Kind::kBodyRegex:
      return "body matches /" + needle_ + "/i";
  }
  return "unknown";
}

}  // namespace urlf::fingerprint
