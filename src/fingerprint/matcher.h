#ifndef URLF_FINGERPRINT_MATCHER_H
#define URLF_FINGERPRINT_MATCHER_H

#include <cstdint>
#include <memory>
#include <optional>
#include <regex>
#include <string>

#include "http/header_map.h"
#include "net/ipv4.h"

namespace urlf::fingerprint {

/// What the fingerprinting engine sees for one probed (ip, port): status,
/// headers, a body snippet, and the extracted HTML title. Built either from
/// an active probe or from a stored scan banner.
struct Observation {
  net::Ipv4Addr ip;
  std::uint16_t port = 80;
  int statusCode = 0;
  http::HeaderMap headers;
  std::string body;
  std::string title;
};

/// Case-folded, parsed-once view of one Observation. The engine evaluates
/// dozens of matchers against the same observation; preparing the lowered
/// body/title and the Location header once keeps that work out of every
/// rule probe. The view borrows the observation — keep the Observation
/// alive for the view's lifetime.
struct PreparedObservation {
  /// An empty view; `assign` before use. Lets validation hot loops keep one
  /// view alive and re-point it per candidate, reusing the lowered buffers'
  /// capacity instead of reallocating them thousands of times.
  PreparedObservation() = default;
  explicit PreparedObservation(const Observation& observation) {
    assign(observation);
  }

  /// Re-point the view at `observation`, rebuilding the case-folded fields
  /// in place. Verdicts are identical to a freshly constructed view.
  void assign(const Observation& observation);

  const Observation* obs = nullptr;
  std::string loweredBody;
  std::string loweredTitle;
  bool hasLocation = false;
  std::string location;         ///< raw Location header value (first)
  std::string loweredLocation;
};

/// One WhatWeb-style match rule. Each rule keys on a protocol artifact that
/// Table 2 of the paper identifies as distinctive for a product.
class Matcher {
 public:
  /// Header `name` has a value containing `needle` (case-insensitive).
  static Matcher headerContains(std::string name, std::string needle);
  /// HTML title contains `needle` (case-insensitive).
  static Matcher titleContains(std::string needle);
  /// Body contains `needle` (case-insensitive).
  static Matcher bodyContains(std::string needle);
  /// Location header contains `needle` (case-insensitive).
  static Matcher locationContains(std::string needle);
  /// Redirect whose Location URL targets this port AND carries this query
  /// parameter (the Websense signature: port 15871 + "ws-session").
  static Matcher locationRedirect(std::uint16_t port, std::string queryKey);
  /// Exact status code.
  static Matcher statusEquals(int code);
  /// Header `name` has a value matching an ECMAScript regex
  /// (case-insensitive) — WhatWeb's native rule form. Throws
  /// std::regex_error on a malformed pattern.
  static Matcher headerRegex(std::string name, const std::string& pattern);
  /// Body matches an ECMAScript regex (case-insensitive).
  static Matcher bodyRegex(const std::string& pattern);

  /// Evidence string when matched, nullopt otherwise.
  [[nodiscard]] std::optional<std::string> match(const Observation& obs) const;

  /// Fast path against a prepared view — identical verdicts to the
  /// Observation overload, without re-lowercasing per rule.
  [[nodiscard]] std::optional<std::string> match(
      const PreparedObservation& view) const;

  /// Human-readable rule description.
  [[nodiscard]] std::string describe() const;

 private:
  enum class Kind {
    kHeaderContains,
    kTitleContains,
    kBodyContains,
    kLocationContains,
    kLocationRedirect,
    kStatusEquals,
    kHeaderRegex,
    kBodyRegex,
  };

  Matcher() = default;

  Kind kind_ = Kind::kBodyContains;
  std::string headerName_;
  std::string needle_;  ///< substring needle, or the regex's source text
  std::string loweredNeedle_;  ///< needle_ case-folded once at construction
  std::uint16_t port_ = 0;
  int status_ = 0;
  /// Compiled regex for the regex kinds (shared so Matcher stays copyable).
  std::shared_ptr<const std::regex> regex_;
};

}  // namespace urlf::fingerprint

#endif  // URLF_FINGERPRINT_MATCHER_H
