#ifndef URLF_GEO_GEODB_H
#define URLF_GEO_GEODB_H

#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "util/rng.h"

namespace urlf::geo {

/// A MaxMind-style IP-geolocation database: longest-prefix match from IPv4
/// prefixes to ISO alpha-2 country codes.
///
/// Real geolocation databases are imperfect; `errorRate` models that: with
/// that probability a lookup deterministically (per address) returns the
/// country of a different, randomly chosen entry. The identification pipeline
/// (§3.1) must tolerate this.
class GeoDatabase {
 public:
  GeoDatabase() = default;

  /// Register a prefix as located in `alpha2`. Later insertions with longer
  /// prefixes take precedence (longest-prefix match).
  void add(const net::IpPrefix& prefix, std::string alpha2);

  /// Set the mislocation probability (default 0) and the seed that makes the
  /// per-address noise deterministic.
  void setErrorModel(double errorRate, std::uint64_t seed);

  /// Country (ISO alpha-2) for the address, if covered by any prefix.
  [[nodiscard]] std::optional<std::string> lookup(net::Ipv4Addr addr) const;

  /// Ground-truth lookup, ignoring the error model (for evaluation only;
  /// the methodology code must not call this).
  [[nodiscard]] std::optional<std::string> lookupTruth(net::Ipv4Addr addr) const;

  [[nodiscard]] std::size_t entryCount() const { return entries_.size(); }

 private:
  struct Entry {
    net::IpPrefix prefix;
    std::string alpha2;
  };
  std::vector<Entry> entries_;
  double errorRate_ = 0.0;
  std::uint64_t noiseSeed_ = 0;
};

/// One whois/IP-to-ASN record in the Team Cymru style.
struct AsnRecord {
  std::uint32_t asn = 0;
  std::string asName;       ///< e.g. "ETISALAT-AS"
  std::string description;  ///< e.g. "Emirates Telecommunications Corporation"
  std::string countryAlpha2;
};

/// Team Cymru-style IP→ASN mapping: longest-prefix match over announced
/// prefixes, plus a bulk interface mirroring their netcat/whois service.
class AsnDatabase {
 public:
  AsnDatabase() = default;

  void add(const net::IpPrefix& prefix, AsnRecord record);

  [[nodiscard]] std::optional<AsnRecord> lookup(net::Ipv4Addr addr) const;

  /// Bulk lookup preserving input order; unresolved entries are nullopt.
  [[nodiscard]] std::vector<std::optional<AsnRecord>> bulkLookup(
      const std::vector<net::Ipv4Addr>& addrs) const;

  [[nodiscard]] std::size_t entryCount() const { return entries_.size(); }

 private:
  struct Entry {
    net::IpPrefix prefix;
    AsnRecord record;
  };
  std::vector<Entry> entries_;
};

}  // namespace urlf::geo

#endif  // URLF_GEO_GEODB_H
