#include "geo/geodb.h"

#include <algorithm>

namespace urlf::geo {

namespace {

/// Longest-prefix match over a list of entries.
template <typename Entry>
const Entry* longestMatch(const std::vector<Entry>& entries,
                          net::Ipv4Addr addr) {
  const Entry* best = nullptr;
  for (const auto& e : entries) {
    if (!e.prefix.contains(addr)) continue;
    if (best == nullptr || e.prefix.length() > best->prefix.length()) best = &e;
  }
  return best;
}

}  // namespace

void GeoDatabase::add(const net::IpPrefix& prefix, std::string alpha2) {
  entries_.push_back({prefix, std::move(alpha2)});
}

void GeoDatabase::setErrorModel(double errorRate, std::uint64_t seed) {
  errorRate_ = std::clamp(errorRate, 0.0, 1.0);
  noiseSeed_ = seed;
}

std::optional<std::string> GeoDatabase::lookup(net::Ipv4Addr addr) const {
  const auto truth = lookupTruth(addr);
  if (!truth || errorRate_ <= 0.0 || entries_.size() < 2) return truth;
  // Per-address deterministic noise: hash the address with the seed.
  util::Rng noise{noiseSeed_ ^ (std::uint64_t{addr.value()} * 0x9E3779B97F4A7C15ULL)};
  if (!noise.chance(errorRate_)) return truth;
  // Pick a different entry's country.
  for (int attempts = 0; attempts < 16; ++attempts) {
    const auto& candidate = entries_[noise.index(entries_.size())].alpha2;
    if (candidate != *truth) return candidate;
  }
  return truth;  // db is homogeneous; no different country available
}

std::optional<std::string> GeoDatabase::lookupTruth(net::Ipv4Addr addr) const {
  const auto* entry = longestMatch(entries_, addr);
  if (entry == nullptr) return std::nullopt;
  return entry->alpha2;
}

void AsnDatabase::add(const net::IpPrefix& prefix, AsnRecord record) {
  entries_.push_back({prefix, std::move(record)});
}

std::optional<AsnRecord> AsnDatabase::lookup(net::Ipv4Addr addr) const {
  const auto* entry = longestMatch(entries_, addr);
  if (entry == nullptr) return std::nullopt;
  return entry->record;
}

std::vector<std::optional<AsnRecord>> AsnDatabase::bulkLookup(
    const std::vector<net::Ipv4Addr>& addrs) const {
  std::vector<std::optional<AsnRecord>> out;
  out.reserve(addrs.size());
  for (const auto addr : addrs) out.push_back(lookup(addr));
  return out;
}

}  // namespace urlf::geo
