// End-to-end integration tests: the full identify -> confirm -> characterize
// pipeline over the paper world, including the interplay between stages and
// the world variants used by the Table 5 evasion ablation.
#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "core/confirmer.h"
#include "core/identifier.h"
#include "scenarios/paper_world.h"

namespace urlf {
namespace {

using filters::ProductKind;
using scenarios::PaperWorld;
using scenarios::advanceClockTo;

/// The whole paper, one test: identify installations, confirm a product in
/// one of the identified networks, then characterize what it censors.
TEST(EndToEndTest, IdentifyConfirmCharacterize) {
  PaperWorld paper;
  auto& world = paper.world();

  // --- §3: identify.
  const auto geo = world.buildGeoDatabase();
  const auto whois = world.buildAsnDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo);
  core::Identifier identifier(world, index,
                              fingerprint::Engine::withBuiltinSignatures(),
                              geo, whois);
  const auto smartFilters = identifier.identify(ProductKind::kSmartFilter);

  // One of the validated SmartFilter installations is in Etisalat (AS 5384).
  const auto etisalatHit = std::find_if(
      smartFilters.begin(), smartFilters.end(), [](const auto& inst) {
        return inst.asn && inst.asn->asn == 5384;
      });
  ASSERT_NE(etisalatHit, smartFilters.end());

  // --- §4: confirm there.
  core::Confirmer confirmer(world, paper.hosting(), paper.vendorSet());
  const auto& caseStudy = paper.caseStudies()[1];  // Etisalat/Anonymizers
  advanceClockTo(world, caseStudy.startDate);
  const auto confirmation = confirmer.run(caseStudy.config);
  EXPECT_TRUE(confirmation.confirmed);

  // --- §5: characterize within 30 days.
  core::Characterizer characterizer(world);
  const auto characterization = characterizer.characterize(
      "field-etisalat", "lab-toronto", paper.globalList(),
      paper.localList("AE"));
  ASSERT_TRUE(characterization.attributedProduct);
  EXPECT_EQ(*characterization.attributedProduct, ProductKind::kSmartFilter);
  // Protected content is censored (the paper's headline finding).
  EXPECT_TRUE(characterization.categoryBlocked("Media Freedom"));
  EXPECT_TRUE(characterization.categoryBlocked("LGBT"));
  EXPECT_TRUE(characterization.categoryBlocked("Political Reform"));
  EXPECT_TRUE(characterization.categoryBlocked("Religious Criticism"));
  EXPECT_FALSE(characterization.categoryBlocked("Human Rights"));
}

TEST(EndToEndTest, Table4PatternForNetsweeperNetworks) {
  PaperWorld paper;
  advanceClockTo(paper.world(), {2013, 4, 1});
  core::Characterizer characterizer(paper.world());

  // Du (AE): political reform, LGBT, religious criticism, minority groups.
  const auto du = characterizer.characterize("field-du", "lab-toronto",
                                             paper.globalList(),
                                             paper.localList("AE"));
  EXPECT_TRUE(du.categoryBlocked("Political Reform"));
  EXPECT_TRUE(du.categoryBlocked("LGBT"));
  EXPECT_TRUE(du.categoryBlocked("Religious Criticism"));
  EXPECT_TRUE(du.categoryBlocked("Minority Groups and Religions"));
  EXPECT_FALSE(du.categoryBlocked("Media Freedom"));
  ASSERT_TRUE(du.attributedProduct);
  EXPECT_EQ(*du.attributedProduct, ProductKind::kNetsweeper);

  // Ooredoo (QA): LGBT and religious criticism only.
  const auto ooredoo = characterizer.characterize(
      "field-ooredoo", "lab-toronto", paper.globalList(),
      paper.localList("QA"));
  EXPECT_TRUE(ooredoo.categoryBlocked("LGBT"));
  EXPECT_TRUE(ooredoo.categoryBlocked("Religious Criticism"));
  EXPECT_FALSE(ooredoo.categoryBlocked("Political Reform"));
  EXPECT_FALSE(ooredoo.categoryBlocked("Human Rights"));

  // YemenNet: media freedom, human rights, political reform (three runs to
  // ride out the inconsistent blocking).
  const auto yemen = characterizer.characterize(
      "field-yemennet", "lab-toronto", paper.globalList(),
      paper.localList("YE"), /*runs=*/4);
  EXPECT_TRUE(yemen.categoryBlocked("Media Freedom"));
  EXPECT_TRUE(yemen.categoryBlocked("Human Rights"));
  EXPECT_TRUE(yemen.categoryBlocked("Political Reform"));
  EXPECT_FALSE(yemen.categoryBlocked("LGBT"));
}

TEST(EndToEndTest, ChallengeThreeTandemNegativeResult) {
  // Submissions to Blue Coat in Etisalat never block: SmartFilter is the
  // engine (§4.5). The identification stage still sees BOTH products there.
  PaperWorld paper;
  auto& world = paper.world();
  const auto geo = world.buildGeoDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo);
  core::Identifier identifier(world, index,
                              fingerprint::Engine::withBuiltinSignatures(),
                              geo, world.buildAsnDatabase());

  auto inAs5384 = [](const std::vector<core::Installation>& installations) {
    return std::any_of(installations.begin(), installations.end(),
                       [](const auto& inst) {
                         return inst.asn && inst.asn->asn == 5384;
                       });
  };
  EXPECT_TRUE(inAs5384(identifier.identify(ProductKind::kBlueCoat)));
  EXPECT_TRUE(inAs5384(identifier.identify(ProductKind::kSmartFilter)));

  core::Confirmer confirmer(world, paper.hosting(), paper.vendorSet());
  const auto& blueCoatCase = paper.caseStudies()[4];  // Blue Coat / Etisalat
  ASSERT_EQ(blueCoatCase.config.product, ProductKind::kBlueCoat);
  advanceClockTo(world, blueCoatCase.startDate);
  const auto result = confirmer.run(blueCoatCase.config);
  EXPECT_FALSE(result.confirmed);
  EXPECT_EQ(result.submittedBlocked, 0);

  // The Blue Coat vendor DID accept and categorize the submissions — the
  // deployment just never consults its database.
  int accepted = 0;
  paper.vendor(ProductKind::kBlueCoat).processUntil(world.now());
  for (const auto& submission :
       paper.vendor(ProductKind::kBlueCoat).submissions())
    if (submission.state == filters::Submission::State::kAccepted) ++accepted;
  EXPECT_EQ(accepted, 3);
}

TEST(EndToEndTest, NetsweeperQueueEventuallyBlocksControlSites) {
  // §4.4: "once we have validated that our set of URLs is accessible, they
  // may be queued for categorization by Netsweeper, and eventually may be
  // blocked". Demonstrate with proxy domains accessed (not submitted) in
  // Ooredoo, far past the queue latency.
  PaperWorld paper;
  auto& world = paper.world();
  simnet::Transport transport(world);
  auto* field = world.findVantage("field-ooredoo");

  std::vector<std::string> urls;
  for (int i = 0; i < 8; ++i) {
    const auto domain = paper.hosting().createFreshDomain(
        simnet::ContentProfile::kGlypeProxy);
    urls.push_back("http://" + domain.hostname + "/");
  }
  for (const auto& url : urls) {
    const auto result = transport.fetchUrl(*field, url);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.response->statusCode, 200);  // accessible today
  }

  world.clock().advanceDays(30);
  int blockedLater = 0;
  for (const auto& url : urls) {
    const auto result = transport.fetchUrl(*field, url);
    if (result.ok() && result.response->statusCode != 200) ++blockedLater;
  }
  // queueCategorizeProbability = 0.6 over 8 URLs: some but maybe not all.
  EXPECT_GE(blockedLater, 2);
}

TEST(EndToEndTest, StripBrandingWorldBlocksWithoutAttribution) {
  PaperWorld paper(scenarios::kPaperSeed, {.stripBranding = true});
  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());
  const auto& caseStudy = paper.caseStudies()[0];  // SmartFilter / Bayanat
  advanceClockTo(paper.world(), caseStudy.startDate);
  const auto result = confirmer.run(caseStudy.config);
  // The censorship still happens...
  EXPECT_EQ(result.submittedBlocked, 5);
  // ...but can no longer be pinned on McAfee.
  EXPECT_EQ(result.attributedToProduct, 0);
  EXPECT_FALSE(result.confirmed);
}

TEST(EndToEndTest, GeoErrorsPerturbButDoNotBreakIdentification) {
  PaperWorld paper;
  auto& world = paper.world();
  const auto noisyGeo = world.buildGeoDatabase(/*errorRate=*/0.1);
  scan::BannerIndex index;
  index.crawl(world, noisyGeo);
  core::Identifier identifier(world, index,
                              fingerprint::Engine::withBuiltinSignatures(),
                              noisyGeo, world.buildAsnDatabase());
  const auto all = identifier.identifyAll();
  std::size_t total = 0;
  for (const auto& [product, installations] : all) total += installations.size();
  // Validation is country-independent: the same installations are found,
  // just sometimes mapped to the wrong country.
  std::size_t visibleTruth = 0;
  for (const auto& truth : paper.groundTruth())
    if (truth.externallyVisible) ++visibleTruth;
  EXPECT_GE(total, visibleTruth);
}

TEST(EndToEndTest, WholeCampaignRunsWithinSimulatedYear) {
  // Sanity: running everything end-to-end leaves the clock in 2013.
  PaperWorld paper;
  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());
  for (const auto& caseStudy : paper.caseStudies()) {
    advanceClockTo(paper.world(), caseStudy.startDate);
    (void)confirmer.run(caseStudy.config);
  }
  EXPECT_EQ(paper.world().now().date().year, 2013);
}

}  // namespace
}  // namespace urlf
