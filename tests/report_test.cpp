#include <gtest/gtest.h>

#include "report/table.h"

namespace urlf::report {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"A", "Long header", "C"});
  table.addRow({"1", "x", "yy"});
  table.addRow({"22", "value", "z"});
  const auto out = table.render();

  // Separator, header, separator, 2 rows, separator.
  int lines = 0;
  for (const char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 6);

  // All lines are equally wide.
  std::size_t width = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto eol = out.find('\n', pos);
    EXPECT_EQ(eol - pos, width);
    pos = eol + 1;
  }
}

TEST(TextTableTest, PadsShortRows) {
  TextTable table({"A", "B"});
  table.addRow({"only"});
  EXPECT_EQ(table.rowCount(), 1u);
  EXPECT_NE(table.render().find("| only | "), std::string::npos);
}

TEST(TextTableTest, RejectsWideRows) {
  TextTable table({"A"});
  EXPECT_THROW(table.addRow({"1", "2"}), std::invalid_argument);
}

TEST(TextTableTest, ColumnWidthGrowsWithContent) {
  TextTable table({"H"});
  table.addRow({"a-very-long-cell-value"});
  EXPECT_NE(table.render().find("| a-very-long-cell-value |"),
            std::string::npos);
}

TEST(TextTableTest, EmptyTableRendersHeaderOnly) {
  TextTable table({"X", "Y"});
  const auto out = table.render();
  EXPECT_NE(out.find("| X | Y |"), std::string::npos);
}

TEST(SectionBannerTest, Format) {
  EXPECT_EQ(sectionBanner("Title"), "\n== Title ==\n");
}

}  // namespace
}  // namespace urlf::report
