// Concurrency battery for the resident campaign server (DESIGN.md §4.6).
// The core contract: N tenants running full paper campaigns at once over a
// shared snapshot must each produce a report digest byte-identical to a
// solo runPaperCampaign — shared verdict store, world pooling and admission
// control may change timing and cost, never results.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "http/message.h"
#include "report/json.h"
#include "scenarios/campaign.h"
#include "serve/channel.h"
#include "serve/loop.h"
#include "serve/server.h"

namespace {

using namespace urlf;
using report::Json;

http::Request post(const std::string& path, const Json& body) {
  http::Request request;
  request.method = "POST";
  request.url = *net::Url::parse("http://campaigns.sim" + path);
  request.headers.set("Content-Type", "application/json");
  request.body = body.dump();
  return request;
}

http::Request get(const std::string& path) {
  http::Request request;
  request.method = "GET";
  request.url = *net::Url::parse("http://campaigns.sim" + path);
  return request;
}

Json campaignBody(const std::string& snapshot, std::size_t classifyThreads = 0) {
  Json body = Json::object();
  body["kind"] = Json::string("campaign");
  body["snapshot"] = Json::string(snapshot);
  if (classifyThreads != 0)
    body["classify_threads"] =
        Json::number(static_cast<std::int64_t>(classifyThreads));
  return body;
}

std::string digestOf(const http::Response& response) {
  const auto body = Json::parse(response.body);
  if (!body) return "<unparseable>";
  const auto* digest = body->find("digest");
  if (digest == nullptr || !digest->asString()) return "<missing>";
  return *digest->asString();
}

/// The ground truth every server-run campaign must reproduce.
std::string soloDigest() {
  static const std::string digest = [] {
    return scenarios::runPaperCampaign(scenarios::CampaignOptions{}).digestHex();
  }();
  return digest;
}

TEST(CampaignServerTest, SingleSessionMatchesSoloDigest) {
  serve::CampaignServer server({.workers = 2});
  server.addSnapshot("paper");

  const auto response = server.handle(post("/v1/session", campaignBody("paper")));
  ASSERT_EQ(response.statusCode, 200) << response.body;
  EXPECT_EQ(digestOf(response), soloDigest());

  const auto stats = server.stats();
  EXPECT_EQ(stats.campaignsCompleted, 1u);
  EXPECT_EQ(stats.admission.completed, 1u);
}

TEST(CampaignServerTest, UnknownSnapshotIs404) {
  serve::CampaignServer server({.workers = 1});
  const auto response =
      server.handle(post("/v1/session", campaignBody("nope")));
  EXPECT_EQ(response.statusCode, 404);
  EXPECT_EQ(server.stats().badRequests, 1u);
}

/// K identical concurrent campaigns at a given worker count: every digest
/// must equal the solo run's, regardless of interleaving.
void runConcurrentBattery(std::size_t workers, std::size_t sessions) {
  serve::CampaignServer server({.workers = workers, .maxQueued = sessions});
  server.addSnapshot("paper");

  std::vector<std::promise<http::Response>> slots(sessions);
  std::vector<std::future<http::Response>> futures;
  futures.reserve(sessions);
  for (auto& slot : slots) futures.push_back(slot.get_future());

  for (std::size_t i = 0; i < sessions; ++i) {
    server.submit(post("/v1/session", campaignBody("paper")),
                  [&slot = slots[i]](http::Response response) {
                    slot.set_value(std::move(response));
                  });
  }

  for (std::size_t i = 0; i < sessions; ++i) {
    const auto response = futures[i].get();
    ASSERT_EQ(response.statusCode, 200) << response.body;
    EXPECT_EQ(digestOf(response), soloDigest())
        << "session " << i << " of " << sessions << " at workers=" << workers;
  }
  server.drain();

  const auto stats = server.stats();
  EXPECT_EQ(stats.campaignsCompleted, sessions);
  EXPECT_EQ(stats.admission.shed, 0u);
  EXPECT_EQ(stats.admission.completed, sessions);
  // Identical sessions share one verdict scope, so the battery must have
  // populated the cross-session store.
  EXPECT_GT(stats.memo.inserts, 0u);
}

TEST(CampaignServerTest, ConcurrentCampaignsSingleWorker) {
  runConcurrentBattery(/*workers=*/1, /*sessions=*/3);
}

TEST(CampaignServerTest, ConcurrentCampaignsFourWorkers) {
  runConcurrentBattery(/*workers=*/4, /*sessions=*/4);
}

TEST(CampaignServerTest, BackToBackSessionsHitSharedStore) {
  serve::CampaignServer server({.workers = 1});
  server.addSnapshot("paper");

  const auto first = server.handle(post("/v1/session", campaignBody("paper")));
  ASSERT_EQ(first.statusCode, 200);
  const auto afterFirst = server.stats().memo;
  EXPECT_GT(afterFirst.inserts, 0u);

  // The second identical session replays the same deterministic fetch
  // sequence, so every safe-chain verdict the first inserted is a hit now —
  // and the digest must not move an inch.
  const auto second = server.handle(post("/v1/session", campaignBody("paper")));
  ASSERT_EQ(second.statusCode, 200);
  EXPECT_EQ(digestOf(second), soloDigest());
  const auto afterSecond = server.stats().memo;
  EXPECT_GT(afterSecond.hits, afterFirst.hits);
}

TEST(CampaignServerTest, SharingDisabledStillMatchesDigest) {
  serve::CampaignServer server({.workers = 2, .shareVerdicts = false});
  server.addSnapshot("paper");
  const auto response = server.handle(post("/v1/session", campaignBody("paper")));
  ASSERT_EQ(response.statusCode, 200);
  EXPECT_EQ(digestOf(response), soloDigest());
  EXPECT_EQ(server.stats().memo.inserts, 0u);
}

TEST(CampaignServerTest, StaggeredStartsInterleaveWithoutPerturbation) {
  serve::CampaignServer server(
      {.workers = 4, .maxQueued = 8, .classifyThreads = 1});
  server.addSnapshot("paper");

  constexpr std::size_t kSessions = 6;
  const std::size_t classifyChoices[] = {1, 2, 4};

  std::vector<std::promise<http::Response>> slots(kSessions);
  std::vector<std::future<http::Response>> futures;
  futures.reserve(kSessions);
  for (auto& slot : slots) futures.push_back(slot.get_future());

  // Three client threads, staggered, each submitting two sessions with a
  // different classify-thread fan-out — a deliberately messy interleaving.
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5 * c));
      for (std::size_t j = 0; j < 2; ++j) {
        const std::size_t i = c * 2 + j;
        server.submit(
            post("/v1/session",
                 campaignBody("paper", classifyChoices[(i + c) % 3])),
            [&slot = slots[i]](http::Response response) {
              slot.set_value(std::move(response));
            });
      }
    });
  }
  for (auto& client : clients) client.join();

  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto response = futures[i].get();
    ASSERT_EQ(response.statusCode, 200) << response.body;
    EXPECT_EQ(digestOf(response), soloDigest()) << "staggered session " << i;
  }
  server.drain();
  EXPECT_EQ(server.stats().campaignsCompleted, kSessions);
}

TEST(CampaignServerTest, LoopCarriesSessionsOverWireFormat) {
  serve::CampaignServer server({.workers = 2, .maxQueued = 4});
  server.addSnapshot("paper");
  serve::ServerLoop loop(server);

  auto alpha = loop.connect();
  auto beta = loop.connect();
  ASSERT_EQ(loop.connectionCount(), 2u);

  // Fire both campaigns before awaiting either: the loop dispatches them to
  // worker threads, so the two sessions overlap on the wire.
  alpha->sendRequest(post("/v1/session", campaignBody("paper")));
  beta->sendRequest(post("/v1/session", campaignBody("paper")));

  const auto fromAlpha = alpha->awaitResponse();
  const auto fromBeta = beta->awaitResponse();
  ASSERT_TRUE(fromAlpha.ok()) << fromAlpha.error();
  ASSERT_TRUE(fromBeta.ok()) << fromBeta.error();
  ASSERT_EQ(fromAlpha.value().statusCode, 200) << fromAlpha.value().body;
  ASSERT_EQ(fromBeta.value().statusCode, 200) << fromBeta.value().body;
  EXPECT_EQ(digestOf(fromAlpha.value()), soloDigest());
  EXPECT_EQ(digestOf(fromBeta.value()), soloDigest());

  // Status rides the same connection after the sessions.
  const auto status = alpha->roundTrip(get("/v1/status"));
  ASSERT_TRUE(status.ok()) << status.error();
  ASSERT_EQ(status.value().statusCode, 200);
  const auto body = Json::parse(status.value().body);
  ASSERT_TRUE(body.has_value());
  const auto* completed = body->find("campaigns_completed");
  ASSERT_NE(completed, nullptr);
  ASSERT_TRUE(completed->asNumber());
  EXPECT_EQ(static_cast<int>(*completed->asNumber()), 2);

  loop.stop();
  EXPECT_EQ(loop.connectionCount(), 0u);
}

}  // namespace
